# Empty dependencies file for test_space_tree.
# This may be replaced when dependencies are built.
