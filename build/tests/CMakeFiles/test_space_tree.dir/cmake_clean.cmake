file(REMOVE_RECURSE
  "CMakeFiles/test_space_tree.dir/core/test_space_tree.cpp.o"
  "CMakeFiles/test_space_tree.dir/core/test_space_tree.cpp.o.d"
  "test_space_tree"
  "test_space_tree.pdb"
  "test_space_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_space_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
