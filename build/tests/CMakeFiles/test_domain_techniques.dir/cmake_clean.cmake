file(REMOVE_RECURSE
  "CMakeFiles/test_domain_techniques.dir/search/test_domain_techniques.cpp.o"
  "CMakeFiles/test_domain_techniques.dir/search/test_domain_techniques.cpp.o.d"
  "test_domain_techniques"
  "test_domain_techniques.pdb"
  "test_domain_techniques[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_domain_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
