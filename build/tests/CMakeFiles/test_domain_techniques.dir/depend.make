# Empty dependencies file for test_domain_techniques.
# This may be replaced when dependencies are built.
