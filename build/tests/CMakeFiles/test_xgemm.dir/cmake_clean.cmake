file(REMOVE_RECURSE
  "CMakeFiles/test_xgemm.dir/kernels/test_xgemm.cpp.o"
  "CMakeFiles/test_xgemm.dir/kernels/test_xgemm.cpp.o.d"
  "test_xgemm"
  "test_xgemm.pdb"
  "test_xgemm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
