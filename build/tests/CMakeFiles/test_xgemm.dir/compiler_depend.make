# Empty compiler generated dependencies file for test_xgemm.
# This may be replaced when dependencies are built.
