# Empty compiler generated dependencies file for test_costfn.
# This may be replaced when dependencies are built.
