file(REMOVE_RECURSE
  "CMakeFiles/test_costfn.dir/costfn/test_costfn.cpp.o"
  "CMakeFiles/test_costfn.dir/costfn/test_costfn.cpp.o.d"
  "test_costfn"
  "test_costfn.pdb"
  "test_costfn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costfn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
