# Empty dependencies file for test_value_configuration.
# This may be replaced when dependencies are built.
