file(REMOVE_RECURSE
  "CMakeFiles/test_value_configuration.dir/core/test_value_configuration.cpp.o"
  "CMakeFiles/test_value_configuration.dir/core/test_value_configuration.cpp.o.d"
  "test_value_configuration"
  "test_value_configuration.pdb"
  "test_value_configuration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_value_configuration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
