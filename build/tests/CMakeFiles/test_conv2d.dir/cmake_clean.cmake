file(REMOVE_RECURSE
  "CMakeFiles/test_conv2d.dir/kernels/test_conv2d.cpp.o"
  "CMakeFiles/test_conv2d.dir/kernels/test_conv2d.cpp.o.d"
  "test_conv2d"
  "test_conv2d.pdb"
  "test_conv2d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conv2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
