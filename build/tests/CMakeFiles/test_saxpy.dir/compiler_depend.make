# Empty compiler generated dependencies file for test_saxpy.
# This may be replaced when dependencies are built.
