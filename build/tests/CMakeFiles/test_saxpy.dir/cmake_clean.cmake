file(REMOVE_RECURSE
  "CMakeFiles/test_saxpy.dir/kernels/test_saxpy.cpp.o"
  "CMakeFiles/test_saxpy.dir/kernels/test_saxpy.cpp.o.d"
  "test_saxpy"
  "test_saxpy.pdb"
  "test_saxpy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_saxpy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
