file(REMOVE_RECURSE
  "CMakeFiles/test_space_properties.dir/core/test_space_properties.cpp.o"
  "CMakeFiles/test_space_properties.dir/core/test_space_properties.cpp.o.d"
  "test_space_properties"
  "test_space_properties.pdb"
  "test_space_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_space_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
