# Empty dependencies file for test_space_properties.
# This may be replaced when dependencies are built.
