# Empty compiler generated dependencies file for test_range.
# This may be replaced when dependencies are built.
