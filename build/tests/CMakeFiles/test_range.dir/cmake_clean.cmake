file(REMOVE_RECURSE
  "CMakeFiles/test_range.dir/core/test_range.cpp.o"
  "CMakeFiles/test_range.dir/core/test_range.cpp.o.d"
  "test_range"
  "test_range.pdb"
  "test_range[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
