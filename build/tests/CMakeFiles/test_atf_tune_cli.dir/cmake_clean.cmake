file(REMOVE_RECURSE
  "CMakeFiles/test_atf_tune_cli.dir/tools/test_atf_tune_cli.cpp.o"
  "CMakeFiles/test_atf_tune_cli.dir/tools/test_atf_tune_cli.cpp.o.d"
  "test_atf_tune_cli"
  "test_atf_tune_cli.pdb"
  "test_atf_tune_cli[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atf_tune_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
