# Empty compiler generated dependencies file for test_atf_tune_cli.
# This may be replaced when dependencies are built.
