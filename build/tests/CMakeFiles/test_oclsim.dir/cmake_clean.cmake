file(REMOVE_RECURSE
  "CMakeFiles/test_oclsim.dir/oclsim/test_oclsim.cpp.o"
  "CMakeFiles/test_oclsim.dir/oclsim/test_oclsim.cpp.o.d"
  "test_oclsim"
  "test_oclsim.pdb"
  "test_oclsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oclsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
