# Empty dependencies file for test_oclsim.
# This may be replaced when dependencies are built.
