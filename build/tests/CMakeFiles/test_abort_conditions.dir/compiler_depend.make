# Empty compiler generated dependencies file for test_abort_conditions.
# This may be replaced when dependencies are built.
