file(REMOVE_RECURSE
  "CMakeFiles/test_abort_conditions.dir/core/test_abort_conditions.cpp.o"
  "CMakeFiles/test_abort_conditions.dir/core/test_abort_conditions.cpp.o.d"
  "test_abort_conditions"
  "test_abort_conditions.pdb"
  "test_abort_conditions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abort_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
