# Empty dependencies file for test_blasmini.
# This may be replaced when dependencies are built.
