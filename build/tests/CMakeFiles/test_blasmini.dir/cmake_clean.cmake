file(REMOVE_RECURSE
  "CMakeFiles/test_blasmini.dir/blasmini/test_blasmini.cpp.o"
  "CMakeFiles/test_blasmini.dir/blasmini/test_blasmini.cpp.o.d"
  "test_blasmini"
  "test_blasmini.pdb"
  "test_blasmini[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blasmini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
