file(REMOVE_RECURSE
  "CMakeFiles/test_reduce.dir/kernels/test_reduce.cpp.o"
  "CMakeFiles/test_reduce.dir/kernels/test_reduce.cpp.o.d"
  "test_reduce"
  "test_reduce.pdb"
  "test_reduce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
