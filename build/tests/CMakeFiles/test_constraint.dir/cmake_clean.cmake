file(REMOVE_RECURSE
  "CMakeFiles/test_constraint.dir/core/test_constraint.cpp.o"
  "CMakeFiles/test_constraint.dir/core/test_constraint.cpp.o.d"
  "test_constraint"
  "test_constraint.pdb"
  "test_constraint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
