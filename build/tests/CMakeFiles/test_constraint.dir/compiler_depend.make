# Empty compiler generated dependencies file for test_constraint.
# This may be replaced when dependencies are built.
