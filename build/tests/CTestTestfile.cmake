# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_range[1]_include.cmake")
include("/root/repo/build/tests/test_constraint[1]_include.cmake")
include("/root/repo/build/tests/test_space_tree[1]_include.cmake")
include("/root/repo/build/tests/test_search_space[1]_include.cmake")
include("/root/repo/build/tests/test_tuner[1]_include.cmake")
include("/root/repo/build/tests/test_techniques[1]_include.cmake")
include("/root/repo/build/tests/test_domain_techniques[1]_include.cmake")
include("/root/repo/build/tests/test_oclsim[1]_include.cmake")
include("/root/repo/build/tests/test_saxpy[1]_include.cmake")
include("/root/repo/build/tests/test_xgemm[1]_include.cmake")
include("/root/repo/build/tests/test_costfn[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_conv2d[1]_include.cmake")
include("/root/repo/build/tests/test_reduce[1]_include.cmake")
include("/root/repo/build/tests/test_value_configuration[1]_include.cmake")
include("/root/repo/build/tests/test_abort_conditions[1]_include.cmake")
include("/root/repo/build/tests/test_space_properties[1]_include.cmake")
include("/root/repo/build/tests/test_blasmini[1]_include.cmake")
include("/root/repo/build/tests/test_atf_tune_cli[1]_include.cmake")
