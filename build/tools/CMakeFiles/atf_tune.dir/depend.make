# Empty dependencies file for atf_tune.
# This may be replaced when dependencies are built.
