file(REMOVE_RECURSE
  "CMakeFiles/atf_tune.dir/atf_tune.cpp.o"
  "CMakeFiles/atf_tune.dir/atf_tune.cpp.o.d"
  "atf_tune"
  "atf_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atf_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
