file(REMOVE_RECURSE
  "CMakeFiles/conv_tuning.dir/conv_tuning.cpp.o"
  "CMakeFiles/conv_tuning.dir/conv_tuning.cpp.o.d"
  "conv_tuning"
  "conv_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
