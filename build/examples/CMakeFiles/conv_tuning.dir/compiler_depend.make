# Empty compiler generated dependencies file for conv_tuning.
# This may be replaced when dependencies are built.
