# Empty compiler generated dependencies file for tuned_blas_library.
# This may be replaced when dependencies are built.
