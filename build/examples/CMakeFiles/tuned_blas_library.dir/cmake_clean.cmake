file(REMOVE_RECURSE
  "CMakeFiles/tuned_blas_library.dir/tuned_blas_library.cpp.o"
  "CMakeFiles/tuned_blas_library.dir/tuned_blas_library.cpp.o.d"
  "tuned_blas_library"
  "tuned_blas_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuned_blas_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
