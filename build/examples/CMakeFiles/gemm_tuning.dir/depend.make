# Empty dependencies file for gemm_tuning.
# This may be replaced when dependencies are built.
