file(REMOVE_RECURSE
  "CMakeFiles/gemm_tuning.dir/gemm_tuning.cpp.o"
  "CMakeFiles/gemm_tuning.dir/gemm_tuning.cpp.o.d"
  "gemm_tuning"
  "gemm_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
