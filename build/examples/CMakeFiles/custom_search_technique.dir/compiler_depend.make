# Empty compiler generated dependencies file for custom_search_technique.
# This may be replaced when dependencies are built.
