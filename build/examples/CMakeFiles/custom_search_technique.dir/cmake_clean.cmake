file(REMOVE_RECURSE
  "CMakeFiles/custom_search_technique.dir/custom_search_technique.cpp.o"
  "CMakeFiles/custom_search_technique.dir/custom_search_technique.cpp.o.d"
  "custom_search_technique"
  "custom_search_technique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_search_technique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
