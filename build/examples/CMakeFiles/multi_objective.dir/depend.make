# Empty dependencies file for multi_objective.
# This may be replaced when dependencies are built.
