file(REMOVE_RECURSE
  "CMakeFiles/multi_objective.dir/multi_objective.cpp.o"
  "CMakeFiles/multi_objective.dir/multi_objective.cpp.o.d"
  "multi_objective"
  "multi_objective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
