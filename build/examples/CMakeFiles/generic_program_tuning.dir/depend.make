# Empty dependencies file for generic_program_tuning.
# This may be replaced when dependencies are built.
