file(REMOVE_RECURSE
  "CMakeFiles/generic_program_tuning.dir/generic_program_tuning.cpp.o"
  "CMakeFiles/generic_program_tuning.dir/generic_program_tuning.cpp.o.d"
  "generic_program_tuning"
  "generic_program_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_program_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
