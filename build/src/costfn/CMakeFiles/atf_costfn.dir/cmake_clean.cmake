file(REMOVE_RECURSE
  "CMakeFiles/atf_costfn.dir/src/ocl.cpp.o"
  "CMakeFiles/atf_costfn.dir/src/ocl.cpp.o.d"
  "CMakeFiles/atf_costfn.dir/src/program.cpp.o"
  "CMakeFiles/atf_costfn.dir/src/program.cpp.o.d"
  "libatf_costfn.a"
  "libatf_costfn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atf_costfn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
