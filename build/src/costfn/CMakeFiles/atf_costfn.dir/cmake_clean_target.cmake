file(REMOVE_RECURSE
  "libatf_costfn.a"
)
