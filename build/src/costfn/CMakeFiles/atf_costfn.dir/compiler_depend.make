# Empty compiler generated dependencies file for atf_costfn.
# This may be replaced when dependencies are built.
