file(REMOVE_RECURSE
  "CMakeFiles/blasmini.dir/src/gemm.cpp.o"
  "CMakeFiles/blasmini.dir/src/gemm.cpp.o.d"
  "CMakeFiles/blasmini.dir/src/tuning_db.cpp.o"
  "CMakeFiles/blasmini.dir/src/tuning_db.cpp.o.d"
  "libblasmini.a"
  "libblasmini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blasmini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
