# Empty dependencies file for blasmini.
# This may be replaced when dependencies are built.
