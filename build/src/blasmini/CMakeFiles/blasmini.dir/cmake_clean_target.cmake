file(REMOVE_RECURSE
  "libblasmini.a"
)
