file(REMOVE_RECURSE
  "CMakeFiles/atf_common.dir/src/csv_writer.cpp.o"
  "CMakeFiles/atf_common.dir/src/csv_writer.cpp.o.d"
  "CMakeFiles/atf_common.dir/src/logging.cpp.o"
  "CMakeFiles/atf_common.dir/src/logging.cpp.o.d"
  "CMakeFiles/atf_common.dir/src/math_utils.cpp.o"
  "CMakeFiles/atf_common.dir/src/math_utils.cpp.o.d"
  "CMakeFiles/atf_common.dir/src/statistics.cpp.o"
  "CMakeFiles/atf_common.dir/src/statistics.cpp.o.d"
  "CMakeFiles/atf_common.dir/src/string_utils.cpp.o"
  "CMakeFiles/atf_common.dir/src/string_utils.cpp.o.d"
  "CMakeFiles/atf_common.dir/src/thread_pool.cpp.o"
  "CMakeFiles/atf_common.dir/src/thread_pool.cpp.o.d"
  "libatf_common.a"
  "libatf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
