
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/src/csv_writer.cpp" "src/common/CMakeFiles/atf_common.dir/src/csv_writer.cpp.o" "gcc" "src/common/CMakeFiles/atf_common.dir/src/csv_writer.cpp.o.d"
  "/root/repo/src/common/src/logging.cpp" "src/common/CMakeFiles/atf_common.dir/src/logging.cpp.o" "gcc" "src/common/CMakeFiles/atf_common.dir/src/logging.cpp.o.d"
  "/root/repo/src/common/src/math_utils.cpp" "src/common/CMakeFiles/atf_common.dir/src/math_utils.cpp.o" "gcc" "src/common/CMakeFiles/atf_common.dir/src/math_utils.cpp.o.d"
  "/root/repo/src/common/src/statistics.cpp" "src/common/CMakeFiles/atf_common.dir/src/statistics.cpp.o" "gcc" "src/common/CMakeFiles/atf_common.dir/src/statistics.cpp.o.d"
  "/root/repo/src/common/src/string_utils.cpp" "src/common/CMakeFiles/atf_common.dir/src/string_utils.cpp.o" "gcc" "src/common/CMakeFiles/atf_common.dir/src/string_utils.cpp.o.d"
  "/root/repo/src/common/src/thread_pool.cpp" "src/common/CMakeFiles/atf_common.dir/src/thread_pool.cpp.o" "gcc" "src/common/CMakeFiles/atf_common.dir/src/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
