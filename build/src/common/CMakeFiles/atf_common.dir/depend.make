# Empty dependencies file for atf_common.
# This may be replaced when dependencies are built.
