file(REMOVE_RECURSE
  "libatf_common.a"
)
