
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/src/conv2d.cpp" "src/kernels/CMakeFiles/atf_kernels.dir/src/conv2d.cpp.o" "gcc" "src/kernels/CMakeFiles/atf_kernels.dir/src/conv2d.cpp.o.d"
  "/root/repo/src/kernels/src/reduce.cpp" "src/kernels/CMakeFiles/atf_kernels.dir/src/reduce.cpp.o" "gcc" "src/kernels/CMakeFiles/atf_kernels.dir/src/reduce.cpp.o.d"
  "/root/repo/src/kernels/src/reference.cpp" "src/kernels/CMakeFiles/atf_kernels.dir/src/reference.cpp.o" "gcc" "src/kernels/CMakeFiles/atf_kernels.dir/src/reference.cpp.o.d"
  "/root/repo/src/kernels/src/saxpy.cpp" "src/kernels/CMakeFiles/atf_kernels.dir/src/saxpy.cpp.o" "gcc" "src/kernels/CMakeFiles/atf_kernels.dir/src/saxpy.cpp.o.d"
  "/root/repo/src/kernels/src/xgemm_direct.cpp" "src/kernels/CMakeFiles/atf_kernels.dir/src/xgemm_direct.cpp.o" "gcc" "src/kernels/CMakeFiles/atf_kernels.dir/src/xgemm_direct.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/oclsim/CMakeFiles/ocls.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/atf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
