# Empty compiler generated dependencies file for atf_kernels.
# This may be replaced when dependencies are built.
