file(REMOVE_RECURSE
  "CMakeFiles/atf_kernels.dir/src/conv2d.cpp.o"
  "CMakeFiles/atf_kernels.dir/src/conv2d.cpp.o.d"
  "CMakeFiles/atf_kernels.dir/src/reduce.cpp.o"
  "CMakeFiles/atf_kernels.dir/src/reduce.cpp.o.d"
  "CMakeFiles/atf_kernels.dir/src/reference.cpp.o"
  "CMakeFiles/atf_kernels.dir/src/reference.cpp.o.d"
  "CMakeFiles/atf_kernels.dir/src/saxpy.cpp.o"
  "CMakeFiles/atf_kernels.dir/src/saxpy.cpp.o.d"
  "CMakeFiles/atf_kernels.dir/src/xgemm_direct.cpp.o"
  "CMakeFiles/atf_kernels.dir/src/xgemm_direct.cpp.o.d"
  "libatf_kernels.a"
  "libatf_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atf_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
