file(REMOVE_RECURSE
  "libatf_kernels.a"
)
