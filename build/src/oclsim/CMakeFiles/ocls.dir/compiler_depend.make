# Empty compiler generated dependencies file for ocls.
# This may be replaced when dependencies are built.
