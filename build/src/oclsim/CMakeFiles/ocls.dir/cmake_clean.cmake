file(REMOVE_RECURSE
  "CMakeFiles/ocls.dir/src/context.cpp.o"
  "CMakeFiles/ocls.dir/src/context.cpp.o.d"
  "CMakeFiles/ocls.dir/src/define_map.cpp.o"
  "CMakeFiles/ocls.dir/src/define_map.cpp.o.d"
  "CMakeFiles/ocls.dir/src/device.cpp.o"
  "CMakeFiles/ocls.dir/src/device.cpp.o.d"
  "CMakeFiles/ocls.dir/src/energy.cpp.o"
  "CMakeFiles/ocls.dir/src/energy.cpp.o.d"
  "CMakeFiles/ocls.dir/src/kernel.cpp.o"
  "CMakeFiles/ocls.dir/src/kernel.cpp.o.d"
  "CMakeFiles/ocls.dir/src/ndrange.cpp.o"
  "CMakeFiles/ocls.dir/src/ndrange.cpp.o.d"
  "libocls.a"
  "libocls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
