file(REMOVE_RECURSE
  "libocls.a"
)
