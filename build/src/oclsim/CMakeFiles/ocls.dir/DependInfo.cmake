
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oclsim/src/context.cpp" "src/oclsim/CMakeFiles/ocls.dir/src/context.cpp.o" "gcc" "src/oclsim/CMakeFiles/ocls.dir/src/context.cpp.o.d"
  "/root/repo/src/oclsim/src/define_map.cpp" "src/oclsim/CMakeFiles/ocls.dir/src/define_map.cpp.o" "gcc" "src/oclsim/CMakeFiles/ocls.dir/src/define_map.cpp.o.d"
  "/root/repo/src/oclsim/src/device.cpp" "src/oclsim/CMakeFiles/ocls.dir/src/device.cpp.o" "gcc" "src/oclsim/CMakeFiles/ocls.dir/src/device.cpp.o.d"
  "/root/repo/src/oclsim/src/energy.cpp" "src/oclsim/CMakeFiles/ocls.dir/src/energy.cpp.o" "gcc" "src/oclsim/CMakeFiles/ocls.dir/src/energy.cpp.o.d"
  "/root/repo/src/oclsim/src/kernel.cpp" "src/oclsim/CMakeFiles/ocls.dir/src/kernel.cpp.o" "gcc" "src/oclsim/CMakeFiles/ocls.dir/src/kernel.cpp.o.d"
  "/root/repo/src/oclsim/src/ndrange.cpp" "src/oclsim/CMakeFiles/ocls.dir/src/ndrange.cpp.o" "gcc" "src/oclsim/CMakeFiles/ocls.dir/src/ndrange.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/atf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
