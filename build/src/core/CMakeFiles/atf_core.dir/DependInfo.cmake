
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/abort_condition.cpp" "src/core/CMakeFiles/atf_core.dir/src/abort_condition.cpp.o" "gcc" "src/core/CMakeFiles/atf_core.dir/src/abort_condition.cpp.o.d"
  "/root/repo/src/core/src/configuration.cpp" "src/core/CMakeFiles/atf_core.dir/src/configuration.cpp.o" "gcc" "src/core/CMakeFiles/atf_core.dir/src/configuration.cpp.o.d"
  "/root/repo/src/core/src/search_space.cpp" "src/core/CMakeFiles/atf_core.dir/src/search_space.cpp.o" "gcc" "src/core/CMakeFiles/atf_core.dir/src/search_space.cpp.o.d"
  "/root/repo/src/core/src/space_tree.cpp" "src/core/CMakeFiles/atf_core.dir/src/space_tree.cpp.o" "gcc" "src/core/CMakeFiles/atf_core.dir/src/space_tree.cpp.o.d"
  "/root/repo/src/core/src/value.cpp" "src/core/CMakeFiles/atf_core.dir/src/value.cpp.o" "gcc" "src/core/CMakeFiles/atf_core.dir/src/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/atf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
