file(REMOVE_RECURSE
  "libatf_core.a"
)
