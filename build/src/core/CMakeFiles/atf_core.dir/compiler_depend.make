# Empty compiler generated dependencies file for atf_core.
# This may be replaced when dependencies are built.
