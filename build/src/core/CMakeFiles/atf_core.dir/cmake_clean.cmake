file(REMOVE_RECURSE
  "CMakeFiles/atf_core.dir/src/abort_condition.cpp.o"
  "CMakeFiles/atf_core.dir/src/abort_condition.cpp.o.d"
  "CMakeFiles/atf_core.dir/src/configuration.cpp.o"
  "CMakeFiles/atf_core.dir/src/configuration.cpp.o.d"
  "CMakeFiles/atf_core.dir/src/search_space.cpp.o"
  "CMakeFiles/atf_core.dir/src/search_space.cpp.o.d"
  "CMakeFiles/atf_core.dir/src/space_tree.cpp.o"
  "CMakeFiles/atf_core.dir/src/space_tree.cpp.o.d"
  "CMakeFiles/atf_core.dir/src/value.cpp.o"
  "CMakeFiles/atf_core.dir/src/value.cpp.o.d"
  "libatf_core.a"
  "libatf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
