file(REMOVE_RECURSE
  "CMakeFiles/atf_baselines.dir/src/cltune_like.cpp.o"
  "CMakeFiles/atf_baselines.dir/src/cltune_like.cpp.o.d"
  "CMakeFiles/atf_baselines.dir/src/opentuner_like.cpp.o"
  "CMakeFiles/atf_baselines.dir/src/opentuner_like.cpp.o.d"
  "libatf_baselines.a"
  "libatf_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
