# Empty compiler generated dependencies file for atf_baselines.
# This may be replaced when dependencies are built.
