file(REMOVE_RECURSE
  "libatf_baselines.a"
)
