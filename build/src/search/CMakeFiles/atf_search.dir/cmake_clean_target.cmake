file(REMOVE_RECURSE
  "libatf_search.a"
)
