file(REMOVE_RECURSE
  "CMakeFiles/atf_search.dir/src/auc_bandit.cpp.o"
  "CMakeFiles/atf_search.dir/src/auc_bandit.cpp.o.d"
  "CMakeFiles/atf_search.dir/src/ensemble.cpp.o"
  "CMakeFiles/atf_search.dir/src/ensemble.cpp.o.d"
  "CMakeFiles/atf_search.dir/src/genetic.cpp.o"
  "CMakeFiles/atf_search.dir/src/genetic.cpp.o.d"
  "CMakeFiles/atf_search.dir/src/mutation.cpp.o"
  "CMakeFiles/atf_search.dir/src/mutation.cpp.o.d"
  "CMakeFiles/atf_search.dir/src/nelder_mead.cpp.o"
  "CMakeFiles/atf_search.dir/src/nelder_mead.cpp.o.d"
  "CMakeFiles/atf_search.dir/src/numeric_domain.cpp.o"
  "CMakeFiles/atf_search.dir/src/numeric_domain.cpp.o.d"
  "CMakeFiles/atf_search.dir/src/opentuner_search.cpp.o"
  "CMakeFiles/atf_search.dir/src/opentuner_search.cpp.o.d"
  "CMakeFiles/atf_search.dir/src/particle_swarm.cpp.o"
  "CMakeFiles/atf_search.dir/src/particle_swarm.cpp.o.d"
  "CMakeFiles/atf_search.dir/src/pattern_search.cpp.o"
  "CMakeFiles/atf_search.dir/src/pattern_search.cpp.o.d"
  "CMakeFiles/atf_search.dir/src/random_search.cpp.o"
  "CMakeFiles/atf_search.dir/src/random_search.cpp.o.d"
  "CMakeFiles/atf_search.dir/src/simulated_annealing.cpp.o"
  "CMakeFiles/atf_search.dir/src/simulated_annealing.cpp.o.d"
  "CMakeFiles/atf_search.dir/src/torczon.cpp.o"
  "CMakeFiles/atf_search.dir/src/torczon.cpp.o.d"
  "libatf_search.a"
  "libatf_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atf_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
