
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/src/auc_bandit.cpp" "src/search/CMakeFiles/atf_search.dir/src/auc_bandit.cpp.o" "gcc" "src/search/CMakeFiles/atf_search.dir/src/auc_bandit.cpp.o.d"
  "/root/repo/src/search/src/ensemble.cpp" "src/search/CMakeFiles/atf_search.dir/src/ensemble.cpp.o" "gcc" "src/search/CMakeFiles/atf_search.dir/src/ensemble.cpp.o.d"
  "/root/repo/src/search/src/genetic.cpp" "src/search/CMakeFiles/atf_search.dir/src/genetic.cpp.o" "gcc" "src/search/CMakeFiles/atf_search.dir/src/genetic.cpp.o.d"
  "/root/repo/src/search/src/mutation.cpp" "src/search/CMakeFiles/atf_search.dir/src/mutation.cpp.o" "gcc" "src/search/CMakeFiles/atf_search.dir/src/mutation.cpp.o.d"
  "/root/repo/src/search/src/nelder_mead.cpp" "src/search/CMakeFiles/atf_search.dir/src/nelder_mead.cpp.o" "gcc" "src/search/CMakeFiles/atf_search.dir/src/nelder_mead.cpp.o.d"
  "/root/repo/src/search/src/numeric_domain.cpp" "src/search/CMakeFiles/atf_search.dir/src/numeric_domain.cpp.o" "gcc" "src/search/CMakeFiles/atf_search.dir/src/numeric_domain.cpp.o.d"
  "/root/repo/src/search/src/opentuner_search.cpp" "src/search/CMakeFiles/atf_search.dir/src/opentuner_search.cpp.o" "gcc" "src/search/CMakeFiles/atf_search.dir/src/opentuner_search.cpp.o.d"
  "/root/repo/src/search/src/particle_swarm.cpp" "src/search/CMakeFiles/atf_search.dir/src/particle_swarm.cpp.o" "gcc" "src/search/CMakeFiles/atf_search.dir/src/particle_swarm.cpp.o.d"
  "/root/repo/src/search/src/pattern_search.cpp" "src/search/CMakeFiles/atf_search.dir/src/pattern_search.cpp.o" "gcc" "src/search/CMakeFiles/atf_search.dir/src/pattern_search.cpp.o.d"
  "/root/repo/src/search/src/random_search.cpp" "src/search/CMakeFiles/atf_search.dir/src/random_search.cpp.o" "gcc" "src/search/CMakeFiles/atf_search.dir/src/random_search.cpp.o.d"
  "/root/repo/src/search/src/simulated_annealing.cpp" "src/search/CMakeFiles/atf_search.dir/src/simulated_annealing.cpp.o" "gcc" "src/search/CMakeFiles/atf_search.dir/src/simulated_annealing.cpp.o.d"
  "/root/repo/src/search/src/torczon.cpp" "src/search/CMakeFiles/atf_search.dir/src/torczon.cpp.o" "gcc" "src/search/CMakeFiles/atf_search.dir/src/torczon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/atf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/atf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
