# Empty compiler generated dependencies file for atf_search.
# This may be replaced when dependencies are built.
