file(REMOVE_RECURSE
  "CMakeFiles/search_techniques.dir/search_techniques.cpp.o"
  "CMakeFiles/search_techniques.dir/search_techniques.cpp.o.d"
  "search_techniques"
  "search_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
