# Empty dependencies file for search_techniques.
# This may be replaced when dependencies are built.
