file(REMOVE_RECURSE
  "CMakeFiles/ensemble_ablation.dir/ensemble_ablation.cpp.o"
  "CMakeFiles/ensemble_ablation.dir/ensemble_ablation.cpp.o.d"
  "ensemble_ablation"
  "ensemble_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
