# Empty compiler generated dependencies file for ensemble_ablation.
# This may be replaced when dependencies are built.
