# Empty dependencies file for saxpy_tuning.
# This may be replaced when dependencies are built.
