file(REMOVE_RECURSE
  "CMakeFiles/saxpy_tuning.dir/saxpy_tuning.cpp.o"
  "CMakeFiles/saxpy_tuning.dir/saxpy_tuning.cpp.o.d"
  "saxpy_tuning"
  "saxpy_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saxpy_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
