file(REMOVE_RECURSE
  "CMakeFiles/fig2_xgemm.dir/fig2_xgemm.cpp.o"
  "CMakeFiles/fig2_xgemm.dir/fig2_xgemm.cpp.o.d"
  "fig2_xgemm"
  "fig2_xgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_xgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
