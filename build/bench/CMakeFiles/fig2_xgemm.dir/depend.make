# Empty dependencies file for fig2_xgemm.
# This may be replaced when dependencies are built.
