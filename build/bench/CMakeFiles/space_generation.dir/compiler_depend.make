# Empty compiler generated dependencies file for space_generation.
# This may be replaced when dependencies are built.
