file(REMOVE_RECURSE
  "CMakeFiles/space_generation.dir/space_generation.cpp.o"
  "CMakeFiles/space_generation.dir/space_generation.cpp.o.d"
  "space_generation"
  "space_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/space_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
