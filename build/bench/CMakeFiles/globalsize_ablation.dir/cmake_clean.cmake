file(REMOVE_RECURSE
  "CMakeFiles/globalsize_ablation.dir/globalsize_ablation.cpp.o"
  "CMakeFiles/globalsize_ablation.dir/globalsize_ablation.cpp.o.d"
  "globalsize_ablation"
  "globalsize_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/globalsize_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
