# Empty dependencies file for globalsize_ablation.
# This may be replaced when dependencies are built.
