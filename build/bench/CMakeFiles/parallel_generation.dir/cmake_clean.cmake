file(REMOVE_RECURSE
  "CMakeFiles/parallel_generation.dir/parallel_generation.cpp.o"
  "CMakeFiles/parallel_generation.dir/parallel_generation.cpp.o.d"
  "parallel_generation"
  "parallel_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
