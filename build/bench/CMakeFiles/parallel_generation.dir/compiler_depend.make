# Empty compiler generated dependencies file for parallel_generation.
# This may be replaced when dependencies are built.
