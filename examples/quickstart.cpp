// Quickstart: the paper's Listing 2, line for line.
//
// Auto-tunes the CLBlast saxpy kernel (Listing 1) for a fixed input size N:
//   * WPT (work-per-thread) in [1, N], constrained to divide N;
//   * LS  (local size)      in [1, N], constrained to divide N / WPT.
// The cost function is ATF's pre-implemented OpenCL cost function bound to
// the simulated "Tesla K20" device of the NVIDIA platform; exploration uses
// simulated annealing under a duration abort condition.
//
// Build & run:  ./examples/quickstart
#include <chrono>
#include <cstdio>
#include <memory>

#include "atf/atf.hpp"
#include "atf/cf/ocl.hpp"
#include "atf/kernels/saxpy.hpp"
#include "atf/search/simulated_annealing.hpp"

using namespace std::chrono_literals;

int main() {
  const std::size_t N = std::size_t{1} << 20;  // fixed user-defined size

  // --- Step 1: describe the search space with tuning parameters ----------
  auto WPT = atf::tp("WPT", atf::interval<std::size_t>(1, N),
                     atf::divides(N));
  auto LS = atf::tp("LS", atf::interval<std::size_t>(1, N),
                    atf::divides(N / WPT));

  // --- Step 2: the pre-implemented OpenCL cost function -------------------
  auto cf_saxpy =
      atf::cf::ocl("NVIDIA", "Tesla K20", atf::kernels::saxpy::make_kernel())
          .inputs(atf::cf::scalar<std::size_t>(N),  // N
                  atf::cf::scalar<float>(),         // a: random
                  atf::cf::buffer<float>(N),        // x: random, N elements
                  atf::cf::buffer<float>(N))        // y: random, N elements
          .glb_size(N / WPT)   // global size as an arithmetic expression
          .lcl_size(LS);       // local size

  // --- Step 3: explore the search space -----------------------------------
  atf::tuner tuner;
  tuner.tuning_parameters(WPT, LS);
  tuner.search_technique(std::make_unique<atf::search::simulated_annealing>());
  tuner.abort_condition(atf::cond::duration(1s) ||
                        atf::cond::evaluations(5'000));
  auto result = tuner.tune(cf_saxpy);

  const auto& best_config = result.best_configuration();
  std::printf("tuned saxpy for N = 2^20 on the simulated Tesla K20\n");
  std::printf("  evaluations:     %llu\n",
              static_cast<unsigned long long>(result.evaluations));
  std::printf("  best WPT:        %zu\n",
              static_cast<std::size_t>(best_config["WPT"]));
  std::printf("  best LS:         %zu\n",
              static_cast<std::size_t>(best_config["LS"]));
  std::printf("  best kernel time: %.2f us\n", *result.best_cost / 1e3);
  return 0;
}
