// The complete downstream workflow of an auto-tuned kernel library
// (CLBlast-style), built on ATF — now with multi-size dynamic dispatch:
//
//   1. Install time: grid-tune a set of representative GEMM shapes, each
//      under its own crash-safe session journal, winners persisted in the
//      tuning database.
//   2. Application, cold call: a shape the grid never saw is served its
//      nearest tuned neighbour's configuration (log-size metric, surrogate
//      re-ranking over the journals) — already faster than the built-in
//      defaults, and the shape is queued for background refinement.
//   3. Refinement: the queue is drained by an exact-shape tune; the same
//      call is now an exact database hit served at full tuned speed.
//
// Build & run:  ./examples/tuned_blas_library
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "blasmini/dispatch.hpp"

namespace xg = atf::kernels::xgemm;

namespace {

const char* source_name(blasmini::dispatcher::source s) {
  switch (s) {
    case blasmini::dispatcher::source::exact: return "exact hit";
    case blasmini::dispatcher::source::reranked: return "re-ranked";
    case blasmini::dispatcher::source::nearest: return "nearest";
    case blasmini::dispatcher::source::defaults: return "defaults";
  }
  return "?";
}

void report(blasmini::dispatcher& dispatch, std::size_t m, std::size_t n,
            std::size_t k) {
  const auto decision = dispatch.dispatch(m, n, k);
  const double t = dispatch.executor().modeled_time_ns(m, n, k,
                                                       decision.params);
  const double t_def =
      dispatch.executor().modeled_time_ns(m, n, k, xg::params::defaults());
  std::printf("  dispatch %zux%zux%zu: %-9s", m, n, k,
              source_name(decision.from));
  if (!decision.neighbor.empty()) {
    std::printf(" (from %s, log-distance %.2f)", decision.neighbor.c_str(),
                decision.distance);
  }
  std::printf("  %8.2f us vs defaults %8.2f us  -> %.2fx\n", t / 1e3,
              t_def / 1e3, t_def / t);
}

}  // namespace

int main() {
  const std::string db_path = "/tmp/blasmini_example_db.tsv";
  const std::string journal_dir = "/tmp/blasmini_example_journals";
  (void)std::system(("rm -rf '" + journal_dir + "' && mkdir -p '" +
                     journal_dir + "'")
                        .c_str());

  const auto dev = ocls::find_device("NVIDIA", "K20m");

  // --- "Install-time" grid tune -------------------------------------------
  {
    blasmini::tuning_db db;
    blasmini::dispatch_options opts;
    opts.journal_dir = journal_dir;  // crash-safe: SIGKILL + rerun resumes
    opts.tuning.evaluations = 400;
    blasmini::dispatcher dispatch(dev, &db, opts);

    const auto grid = blasmini::size_grid::parse("96,384x96,384x96,256");
    std::printf("grid-tuning %zu shapes on %s (journals in %s)...\n",
                grid.sizes.size(), dev.name().c_str(), journal_dir.c_str());
    dispatch.tune_grid(grid);
    db.save(db_path);
    std::printf("database saved: %s (%zu entries), re-ranker trained on %zu "
                "journal records\n\n",
                db_path.c_str(), db.size(), dispatch.rerank_samples());
  }

  // --- "Application" process: reload and dispatch -------------------------
  auto db = blasmini::tuning_db::load(db_path);
  blasmini::dispatch_options opts;
  opts.journal_dir = journal_dir;  // re-ranker retrains from the journals
  opts.tuning.evaluations = 400;
  blasmini::dispatcher dispatch(dev, &db, opts);

  std::printf("grid shapes dispatch as exact hits:\n");
  report(dispatch, 96, 96, 96);

  std::printf("\ncold shapes are served their nearest tuned neighbour:\n");
  report(dispatch, 256, 192, 160);
  report(dispatch, 144, 320, 96);

  // Every cold dispatch queued its shape for exact-shape refinement.
  const auto pending = dispatch.pending_refinements();
  std::printf("\n%zu shapes pending refinement; tuning the first...\n",
              pending.size());
  dispatch.refine(1);

  std::printf("after refinement the same call is an exact hit:\n");
  report(dispatch, 256, 192, 160);

  std::remove(db_path.c_str());
  (void)std::system(("rm -rf '" + journal_dir + "'").c_str());
  return 0;
}
