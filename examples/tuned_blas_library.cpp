// The complete downstream workflow of an auto-tuned kernel library
// (CLBlast-style), built on ATF: tune a GEMM shape once per device, persist
// the result in a tuning database, reload it in a "fresh process", and
// dispatch with the tuned configuration — falling back to built-in
// defaults for shapes that were never tuned (the behaviour whose
// performance cost the paper's Section VI-B quantifies).
//
// Build & run:  ./examples/tuned_blas_library
#include <cstdio>
#include <vector>

#include "blasmini/gemm.hpp"
#include "blasmini/tuning_db.hpp"

int main() {
  const std::string db_path = "/tmp/blasmini_example_db.tsv";
  const std::size_t m = 10, n = 500, k = 64;  // the paper's IS4 shape

  // --- "Install-time" tuning run ------------------------------------------
  {
    blasmini::tuning_db db;
    for (const char* device_name : {"Xeon", "K20m"}) {
      blasmini::gemm_executor gemm(ocls::find_device("", device_name), &db);
      const auto best = gemm.tune(m, n, k, /*evaluations=*/8'000);
      std::printf("tuned %zux%zux%zu on %s: WGD=%llu MDIMCD=%llu "
                  "NDIMCD=%llu VWMD=%llu KWID=%llu\n",
                  m, n, k, device_name,
                  static_cast<unsigned long long>(best.wgd),
                  static_cast<unsigned long long>(best.mdimcd),
                  static_cast<unsigned long long>(best.ndimcd),
                  static_cast<unsigned long long>(best.vwmd),
                  static_cast<unsigned long long>(best.kwid));
    }
    db.save(db_path);
    std::printf("database saved: %s (%zu entries)\n\n", db_path.c_str(),
                db.size());
  }

  // --- "Application" run: reload the database and dispatch ----------------
  auto db = blasmini::tuning_db::load(db_path);
  std::vector<float> a(m * k, 1.0f), b(k * n, 0.5f), c(m * n);

  for (const char* device_name : {"Xeon", "K20m"}) {
    const auto dev = ocls::find_device("", device_name);
    blasmini::gemm_executor tuned(dev, &db);
    blasmini::gemm_executor defaults(dev);  // no database: built-in params
    const double t_tuned = tuned.run(m, n, k, a, b, c);
    const double t_default = defaults.run(m, n, k, a, b, c);
    std::printf("%-26s tuned %8.2f us   defaults %8.2f us   speedup %.2fx\n",
                dev.name().c_str(), t_tuned / 1e3, t_default / 1e3,
                t_default / t_tuned);
  }
  std::remove(db_path.c_str());
  return 0;
}
