// The generic *program* cost function (paper, Section II Step 2): tuning a
// program written in an arbitrary language — here a POSIX shell script —
// with user-provided compile and run scripts and a log file carrying
// multi-objective costs.
//
// The example generates three files in a temp directory:
//   * program.sh       — the "application": reads its tuned BLOCK/UNROLL
//                        values from program.cfg and writes
//                        "runtime,energy" to a log file;
//   * compile.sh       — receives NAME=VALUE pairs and materializes
//                        program.cfg (the analogue of recompilation);
//   * run.sh           — executes the program.
// ATF then minimizes the (runtime, energy) pairs lexicographically.
//
// Build & run:  ./examples/generic_program_tuning
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "atf/atf.hpp"
#include "atf/cf/program.hpp"

namespace {

void write_file(const std::string& path, const std::string& content,
                bool executable = false) {
  {
    std::ofstream out(path);
    out << content;
  }
  if (executable) {
    const std::string cmd = "chmod +x '" + path + "'";
    if (std::system(cmd.c_str()) != 0) {
      std::perror("chmod");
    }
  }
}

}  // namespace

int main() {
  const std::string dir = "/tmp/atf_generic_program_example";
  const std::string mk = "mkdir -p '" + dir + "'";
  if (std::system(mk.c_str()) != 0) {
    return 1;
  }
  const std::string source = dir + "/program.sh";
  const std::string compile = dir + "/compile.sh";
  const std::string run = dir + "/run.sh";
  const std::string log = dir + "/cost.log";
  const std::string cfg = dir + "/program.cfg";

  // The "application": cost landscape with a minimum at BLOCK=32, UNROLL=4,
  // written as comma-separated (runtime, energy) to the log file.
  write_file(source,
             "#!/bin/sh\n"
             ". '" + cfg + "'\n"
             "runtime=$(( (BLOCK-32)*(BLOCK-32) + (UNROLL-4)*(UNROLL-4)*10 ))\n"
             "energy=$(( BLOCK + UNROLL ))\n"
             "echo \"$runtime,$energy\" > '" + log + "'\n",
             /*executable=*/true);

  // Compile script: <compile.sh> <source> NAME=VALUE... -> program.cfg.
  write_file(compile,
             "#!/bin/sh\n"
             "shift\n"
             "rm -f '" + cfg + "'\n"
             "for kv in \"$@\"; do echo \"$kv\" >> '" + cfg + "'; done\n",
             /*executable=*/true);

  // Run script: <run.sh> <source>.
  write_file(run,
             "#!/bin/sh\n"
             "exec \"$1\"\n",
             /*executable=*/true);

  auto BLOCK = atf::tp("BLOCK", atf::interval<int>(1, 64),
                       atf::power_of_two());
  auto UNROLL = atf::tp("UNROLL", atf::set(1, 2, 4, 8));

  auto cf = atf::cf::program(source, compile, run).log_file(log);

  atf::tuner tuner;
  tuner.tuning_parameters(BLOCK, UNROLL);
  auto result = tuner.tune(cf);  // exhaustive: 7 x 4 = 28 program runs

  const auto& best = result.best_configuration();
  std::printf("generic program tuning (shell script application)\n");
  std::printf("  evaluations: %llu\n",
              static_cast<unsigned long long>(result.evaluations));
  std::printf("  best BLOCK=%d UNROLL=%d\n", int(best["BLOCK"]),
              int(best["UNROLL"]));
  std::printf("  cost (runtime, energy): (%g, %g)\n",
              result.best_cost->values[0], result.best_cost->values[1]);
  return 0;
}
