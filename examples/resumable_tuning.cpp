// Crash-safe, resumable tuning of CLBlast's XgemmDirect (DESIGN.md §9).
//
// Every measured evaluation is appended to a JSONL journal; run the binary
// twice with the same journal and the second process serves the first one's
// measurements from the replayed result store instead of re-running the
// cost function — the cross-process analogue of the in-memory evaluation
// cache. Kill the first run at any point (Ctrl-C, SIGKILL, power loss up
// to the fsync policy) and the next invocation resumes where it stopped:
// with a fixed seed it converges to the same best as an uninterrupted run.
//
// Build & run:  ./examples/resumable_tuning [journal.jsonl] [evaluations]
//               (run it twice to see the warm start)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "atf/atf.hpp"
#include "atf/cf/ocl.hpp"
#include "atf/kernels/xgemm_direct.hpp"
#include "atf/search/random_search.hpp"

namespace xg = atf::kernels::xgemm;

int main(int argc, char** argv) {
  const std::string journal = argc > 1 ? argv[1] : "xgemm_session.jsonl";
  const std::uint64_t evaluations =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500;

  const xg::problem prob = xg::caffe_input_size(4);
  const auto dev = ocls::find_device("", "K20m");

  // Open the session up front to report what a resume is starting from.
  const auto session = atf::session::tuning_session::open(journal);
  if (!session->store().empty()) {
    std::printf("resuming from '%s': %zu configuration(s) already measured",
                journal.c_str(), session->store().size());
    if (const auto prior = session->store().best()) {
      std::printf(", prior best %.2f us", prior->scalar / 1e3);
    }
    std::printf("\n");
  } else {
    std::printf("fresh session at '%s'\n", journal.c_str());
  }
  std::printf("this run is %s\n", session->run_id().c_str());

  auto setup = xg::make_tuning_parameters(
      prob, xg::size_mode::general, xg::device_limits::of(dev.profile()));
  auto m = static_cast<std::uint64_t>(prob.m);
  auto n = static_cast<std::uint64_t>(prob.n);
  auto cf = atf::cf::ocl(dev, xg::make_kernel())
                .inputs(atf::cf::scalar<std::size_t>(prob.m),
                        atf::cf::scalar<std::size_t>(prob.n),
                        atf::cf::scalar<std::size_t>(prob.k),
                        atf::cf::buffer<float>(prob.m * prob.k),
                        atf::cf::buffer<float>(prob.k * prob.n),
                        atf::cf::buffer<float>(prob.m * prob.n))
                .define("M", prob.m)
                .define("N", prob.n)
                .define("K", prob.k)
                .glb_size(atf::ceil_div(m, setup.wgd) * setup.mdimcd,
                          atf::ceil_div(n, setup.wgd) * setup.ndimcd)
                .lcl_size(setup.mdimcd, setup.ndimcd);

  // Failed kernel launches (device-limit violations) already surface as
  // atf::evaluation_error; the fault policy additionally retries transient
  // faults once so a single hiccup doesn't burn a configuration.
  atf::fault_policy faults;
  faults.max_retries = 1;

  atf::tuner tuner;
  tuner.tuning_parameters(setup.group());
  // The fixed seed is what makes interrupted and uninterrupted runs
  // converge to the same best: a resumed run re-proposes the same stream
  // and the journal serves the prefix it already measured.
  tuner.search_technique(std::make_unique<atf::search::random_search>(42));
  tuner.abort_condition(atf::cond::evaluations(evaluations));
  tuner.session(session);
  tuner.fault_tolerance(faults);

  auto result = tuner.tune(cf);

  std::printf("\n%llu evaluations: %llu measured this run, %llu served from "
              "previous runs, %llu failed\n",
              static_cast<unsigned long long>(result.evaluations),
              static_cast<unsigned long long>(
                  result.evaluations - result.store_hits -
                  result.cached_evaluations),
              static_cast<unsigned long long>(result.store_hits),
              static_cast<unsigned long long>(result.failed_evaluations));
  std::printf("best kernel time: %.2f us  [%s]\n", *result.best_cost / 1e3,
              result.best_configuration().to_string().c_str());

  // The store doubles as a queryable tuning database.
  std::printf("\ntop 3 across all runs:\n");
  for (const auto& record : session->store().top_k(3)) {
    std::printf("  %.2f us  (%s, %s)  %s\n", record.scalar / 1e3,
                record.run_id.c_str(), record.technique.c_str(),
                record.to_configuration().to_string().c_str());
  }
  for (const auto& [technique, stats] : session->store().per_technique()) {
    std::printf("technique %s: %llu measured, %llu failed\n",
                technique.c_str(),
                static_cast<unsigned long long>(stats.measured),
                static_cast<unsigned long long>(stats.failed));
  }
  std::printf("journal now holds %zu record(s) across %zu run(s); rerun me "
              "to warm-start from it\n",
              session->store().records().size(),
              session->store().run_ids().size());
  return 0;
}
