// Tuning CLBlast's XgemmDirect (the paper's Section VI workload) on both
// simulated devices, for one of the Caffe input sizes. Demonstrates:
//   * the 10 interdependent tuning parameters with their 17 constraints,
//   * arithmetic global/local-size expressions (CLBlast's ceil-rounding),
//   * boolean tuning parameters (PADA/PADB),
//   * failed-launch handling (configurations exceeding device limits).
//
// Build & run:  ./examples/gemm_tuning [input_size 1..4]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "atf/atf.hpp"
#include "atf/cf/ocl.hpp"
#include "atf/kernels/xgemm_direct.hpp"
#include "atf/search/simulated_annealing.hpp"

namespace xg = atf::kernels::xgemm;

int main(int argc, char** argv) {
  const int is = argc > 1 ? std::atoi(argv[1]) : 4;
  const xg::problem prob = xg::caffe_input_size(is);
  std::printf("XgemmDirect, IS%d: C[%zu x %zu] = A[%zu x %zu] * B[%zu x %zu]\n",
              is, prob.m, prob.n, prob.m, prob.k, prob.k, prob.n);

  for (const char* device_name : {"Xeon", "K20m"}) {
    const auto dev = ocls::find_device("", device_name);
    std::printf("\n--- %s ---\n", dev.name().c_str());

    // The 10 parameters, grouped and constrained as CLBlast defines them.
    auto setup = xg::make_tuning_parameters(
        prob, xg::size_mode::general, xg::device_limits::of(dev.profile()));

    // CLBlast's launch geometry as plain arithmetic over the parameters —
    // the expressiveness CLTune lacks (paper, Section III).
    auto m = static_cast<std::uint64_t>(prob.m);
    auto n = static_cast<std::uint64_t>(prob.n);
    auto cf = atf::cf::ocl(dev, xg::make_kernel())
                  .inputs(atf::cf::scalar<std::size_t>(prob.m),
                          atf::cf::scalar<std::size_t>(prob.n),
                          atf::cf::scalar<std::size_t>(prob.k),
                          atf::cf::buffer<float>(prob.m * prob.k),
                          atf::cf::buffer<float>(prob.k * prob.n),
                          atf::cf::buffer<float>(prob.m * prob.n))
                  .define("M", prob.m)
                  .define("N", prob.n)
                  .define("K", prob.k)
                  .glb_size(atf::ceil_div(m, setup.wgd) * setup.mdimcd,
                            atf::ceil_div(n, setup.wgd) * setup.ndimcd)
                  .lcl_size(setup.mdimcd, setup.ndimcd);

    atf::tuner tuner;
    tuner.tuning_parameters(setup.group());
    tuner.search_technique(
        std::make_unique<atf::search::simulated_annealing>(4.0, 42));
    tuner.abort_condition(atf::cond::evaluations(20'000));

    std::printf("search space: %llu valid configurations (generated in "
                "%.2f s)\n",
                static_cast<unsigned long long>(tuner.space().size()),
                tuner.space().generation_seconds());

    auto result = tuner.tune(cf);
    std::printf("evaluations: %llu (%llu failed launches)\n",
                static_cast<unsigned long long>(result.evaluations),
                static_cast<unsigned long long>(result.failed_evaluations));
    std::printf("best kernel time: %.2f us\n", *result.best_cost / 1e3);
    std::printf("best configuration: %s\n",
                result.best_configuration().to_string().c_str());
  }
  return 0;
}
