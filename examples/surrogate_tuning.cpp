// Surrogate-model-guided tuning of CLBlast's XgemmDirect (DESIGN.md §10).
//
// The surrogate technique fits a random-forest regressor on every measured
// (configuration → cost) pair and ranks a random candidate pool by a
// lower-confidence-bound acquisition score, so most proposals are filtered
// by the model instead of measured. Failed launches train a separate
// invalid-region classifier rather than poisoning the regression.
//
// Run it under a session journal and the forest warm-starts from every
// record of the previous runs before the first proposal — a resumed
// session gets *smarter*, not just cheaper:
//
//   ./examples/surrogate_tuning [journal.jsonl] [evaluations]
//   (run it twice; the second run starts from a trained model)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "atf/atf.hpp"
#include "atf/cf/ocl.hpp"
#include "atf/kernels/xgemm_direct.hpp"
#include "atf/search/surrogate_search.hpp"

namespace xg = atf::kernels::xgemm;

int main(int argc, char** argv) {
  const std::string journal = argc > 1 ? argv[1] : "xgemm_surrogate.jsonl";
  const std::uint64_t evaluations =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300;

  const xg::problem prob = xg::caffe_input_size(4);
  const auto dev = ocls::find_device("", "K20m");

  const auto session = atf::session::tuning_session::open(journal);
  if (!session->store().empty()) {
    std::printf("warm-starting the surrogate from '%s': %zu prior "
                "measurement(s)\n",
                journal.c_str(), session->store().size());
  } else {
    std::printf("fresh session at '%s' — the model trains from scratch\n",
                journal.c_str());
  }

  auto setup = xg::make_tuning_parameters(
      prob, xg::size_mode::general, xg::device_limits::of(dev.profile()));
  auto m = static_cast<std::uint64_t>(prob.m);
  auto n = static_cast<std::uint64_t>(prob.n);
  auto cf = atf::cf::ocl(dev, xg::make_kernel())
                .inputs(atf::cf::scalar<std::size_t>(prob.m),
                        atf::cf::scalar<std::size_t>(prob.n),
                        atf::cf::scalar<std::size_t>(prob.k),
                        atf::cf::buffer<float>(prob.m * prob.k),
                        atf::cf::buffer<float>(prob.k * prob.n),
                        atf::cf::buffer<float>(prob.m * prob.n))
                .define("M", prob.m)
                .define("N", prob.n)
                .define("K", prob.k)
                .glb_size(atf::ceil_div(m, setup.wgd) * setup.mdimcd,
                          atf::ceil_div(n, setup.wgd) * setup.ndimcd)
                .lcl_size(setup.mdimcd, setup.ndimcd);

  auto technique = std::make_unique<atf::search::surrogate_search>(42);
  // Keep a handle for the diagnostics printed below; the tuner owns it.
  const auto* surrogate = technique.get();

  atf::tuner tuner;
  tuner.tuning_parameters(setup.group());
  tuner.search_technique(std::move(technique));
  tuner.abort_condition(atf::cond::evaluations(evaluations));
  tuner.session(session);

  auto result = tuner.tune(cf);

  std::printf("\n%llu evaluations: %llu measured this run, %llu served from "
              "previous runs, %llu failed\n",
              static_cast<unsigned long long>(result.evaluations),
              static_cast<unsigned long long>(
                  result.evaluations - result.store_hits -
                  result.cached_evaluations),
              static_cast<unsigned long long>(result.store_hits),
              static_cast<unsigned long long>(result.failed_evaluations));
  std::printf("best kernel time: %.2f us  [%s]\n", *result.best_cost / 1e3,
              result.best_configuration().to_string().c_str());
  std::printf("surrogate: %zu training sample(s) (%zu invalid), %llu "
              "refit(s), model %s\n",
              surrogate->training_samples(),
              surrogate->invalid_training_samples(),
              static_cast<unsigned long long>(surrogate->refits()),
              surrogate->model_ready() ? "trained" : "not yet trained");
  std::printf("rerun me on the same journal and the forest starts from all "
              "%zu record(s)\n",
              session->store().records().size());
  return 0;
}
