// Multi-objective tuning (paper, Section II Step 2): minimize runtime
// first, energy second, via a cost function returning lexicographically
// ordered pairs.
//
// The simulated device reports both the modeled kernel time and the modeled
// energy (board power interpolated by utilization x time), so the cost
// function simply returns atf::cost_pair{runtime_ns, energy_uj}. Among
// configurations with (near) identical runtime, the tuner then prefers the
// one drawing less energy.
//
// Build & run:  ./examples/multi_objective
#include <cstdio>
#include <memory>

#include "atf/atf.hpp"
#include "atf/cf/ocl.hpp"
#include "atf/kernels/saxpy.hpp"
#include "atf/search/opentuner_search.hpp"

int main() {
  const std::size_t N = std::size_t{1} << 20;

  auto WPT = atf::tp("WPT", atf::interval<std::size_t>(1, N),
                     atf::divides(N));
  auto LS = atf::tp("LS", atf::interval<std::size_t>(1, N),
                    atf::divides(N / WPT));

  auto cf = atf::cf::ocl("NVIDIA", "Tesla K20",
                         atf::kernels::saxpy::make_kernel())
                .inputs(atf::cf::scalar<std::size_t>(N),
                        atf::cf::scalar<float>(), atf::cf::buffer<float>(N),
                        atf::cf::buffer<float>(N))
                .glb_size(N / WPT)
                .lcl_size(LS);

  // The pair-returning cost function: runtime is the primary objective,
  // energy the tie-breaker. Any user-defined comparable type works the
  // same way.
  auto cf_runtime_energy = [&](const atf::configuration& config) {
    return cf.runtime_energy(config);
  };

  atf::tuner tuner;
  tuner.tuning_parameters(WPT, LS);
  tuner.search_technique(std::make_unique<atf::search::opentuner_search>());
  tuner.abort_condition(atf::cond::evaluations(3'000));
  auto result = tuner.tune(cf_runtime_energy);

  const auto& best = result.best_configuration();
  std::printf("multi-objective saxpy tuning (runtime, then energy)\n");
  std::printf("  best WPT=%zu LS=%zu\n",
              static_cast<std::size_t>(best["WPT"]),
              static_cast<std::size_t>(best["LS"]));
  std::printf("  runtime: %.2f us\n", result.best_cost->primary / 1e3);
  std::printf("  energy:  %.2f uJ\n", result.best_cost->secondary);

  // For contrast: tune for runtime only and report that configuration's
  // energy — the multi-objective result never draws more energy at equal
  // runtime.
  atf::tuner runtime_only;
  runtime_only.tuning_parameters(WPT, LS);
  runtime_only.search_technique(
      std::make_unique<atf::search::opentuner_search>());
  runtime_only.abort_condition(atf::cond::evaluations(3'000));
  auto baseline = runtime_only.tune(cf);
  WPT.set_current(baseline.best_configuration()["WPT"]);
  LS.set_current(baseline.best_configuration()["LS"]);
  const auto baseline_pair =
      cf.runtime_energy(baseline.best_configuration());
  std::printf("runtime-only tuning for comparison:\n");
  std::printf("  best %s -> %.2f us, %.2f uJ\n",
              baseline.best_configuration().to_string().c_str(),
              baseline_pair.primary / 1e3, baseline_pair.secondary);
  return 0;
}
