// Tuning a direct 2D convolution (Caffe-style layer shape) with multiple
// dependency groups — the Section V feature: independent parameter groups
// are generated in parallel, one thread per group.
//
// Build & run:  ./examples/conv_tuning
#include <cstdio>
#include <memory>

#include "atf/atf.hpp"
#include "atf/cf/ocl.hpp"
#include "atf/kernels/conv2d.hpp"
#include "atf/search/opentuner_search.hpp"

namespace cv = atf::kernels::conv2d;

int main() {
  // A Caffe-like first-layer shape: 28x28 MNIST image, 5x5 filter.
  const cv::problem prob{28, 28, 5, 5};

  for (const char* device_name : {"Xeon", "K20m"}) {
    const auto dev = ocls::find_device("", device_name);
    std::printf("--- conv2d %zux%zu * %zux%zu on %s ---\n", prob.height,
                prob.width, prob.filter_height, prob.filter_width,
                dev.name().c_str());

    auto setup = cv::make_tuning_parameters(
        prob, dev.profile().max_work_group_size,
        dev.profile().local_mem_bytes);

    const auto w_out = static_cast<std::uint64_t>(prob.out_width());
    const auto h_out = static_cast<std::uint64_t>(prob.out_height());
    auto cf =
        atf::cf::ocl(dev, cv::make_kernel())
            .inputs(atf::cf::scalar<std::size_t>(prob.height),
                    atf::cf::scalar<std::size_t>(prob.width),
                    atf::cf::scalar<std::size_t>(prob.filter_height),
                    atf::cf::scalar<std::size_t>(prob.filter_width),
                    atf::cf::buffer<float>(prob.height * prob.width),
                    atf::cf::buffer<float>(prob.filter_height *
                                           prob.filter_width),
                    atf::cf::buffer<float>(prob.out_height() *
                                           prob.out_width()))
            .define("H", prob.height)
            .define("W", prob.width)
            .define("R", prob.filter_height)
            .define("S", prob.filter_width)
            .glb_size(atf::ceil_div(w_out, setup.tbx) * setup.lx,
                      atf::ceil_div(h_out, setup.tby) * setup.ly)
            .lcl_size(setup.lx, setup.ly);

    atf::tuner tuner;
    // Two dependency groups (Section V): generated in parallel threads.
    auto groups = setup.groups();
    tuner.tuning_parameters(std::move(groups[0]), std::move(groups[1]));
    tuner.search_technique(std::make_unique<atf::search::opentuner_search>());
    tuner.abort_condition(atf::cond::evaluations(5'000) ||
                          atf::cond::speedup(1.001, std::uint64_t{2'000}));
    tuner.cache_evaluations(true);

    std::printf("space: %llu configurations in %zu groups (generated in "
                "%.3f s)\n",
                static_cast<unsigned long long>(tuner.space().size()),
                tuner.space().num_groups(),
                tuner.space().generation_seconds());
    auto result = tuner.tune(cf);
    std::printf("evaluations: %llu (%llu served from cache)\n",
                static_cast<unsigned long long>(result.evaluations),
                static_cast<unsigned long long>(result.cached_evaluations));
    std::printf("best: %s -> %.2f us\n\n",
                result.best_configuration().to_string().c_str(),
                *result.best_cost / 1e3);
  }
  return 0;
}
