// Extending ATF with a user-defined search technique (paper, Section IV:
// "Further search techniques can be added to ATF by implementing the
// search_technique interface").
//
// The example implements a "latin sweep" technique: it stratifies the flat
// configuration-index space into equal slices, samples each slice once in
// random order (ensuring coverage of the whole space), then re-stratifies
// around the best slice. All four interface methods are shown:
// initialize / finalize / get_next_config / report_cost.
//
// The samples of one round are planned before any is measured — they are
// independent — so the technique also overrides propose_batch/report_batch
// and the tuner runs with batched evaluation: the engine measures a whole
// slice of the round concurrently, one leased evaluation context per
// configuration, and reports the costs back in proposal order.
//
// Build & run:  ./examples/custom_search_technique
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "atf/atf.hpp"
#include "atf/cf/generic.hpp"
#include "atf/common/rng.hpp"

namespace {

class latin_sweep final : public atf::search_technique {
public:
  explicit latin_sweep(std::size_t strata = 64, std::uint64_t seed = 1)
      : strata_(strata), rng_(seed) {}

  void initialize(const atf::search_space& space) override {
    atf::search_technique::initialize(space);
    lo_ = 0;
    hi_ = space.size();
    plan_round();
  }

  void finalize() override {
    std::printf("[latin_sweep] finished after %llu rounds\n",
                static_cast<unsigned long long>(rounds_));
  }

  atf::configuration get_next_config() override {
    if (cursor_ >= samples_.size()) {
      roll_round();
    }
    last_index_ = samples_[cursor_++];
    return space().config_at(last_index_);
  }

  void report_cost(double cost) override {
    if (cost < best_cost_) {
      best_cost_ = cost;
      best_index_ = last_index_;
    }
  }

  // Batch extension: the unmeasured tail of the current round, clamped to
  // max_configs — its samples were planned together, so they are
  // independent by construction. Never crosses a round boundary (re-
  // stratification needs the round's best).
  std::vector<atf::configuration> propose_batch(
      std::size_t max_configs) override {
    if (cursor_ >= samples_.size()) {
      roll_round();
    }
    std::vector<atf::configuration> batch;
    const std::size_t count =
        std::min(max_configs, samples_.size() - cursor_);
    batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      batch.push_back(space().config_at(samples_[cursor_ + i]));
    }
    return batch;
  }

  void report_batch(const std::vector<atf::configuration>& configs,
                    const std::vector<double>& costs) override {
    for (std::size_t i = 0; i < costs.size(); ++i) {
      if (costs[i] < best_cost_) {
        best_cost_ = costs[i];
        best_index_ = *configs[i].space_index();
      }
    }
    cursor_ += costs.size();
  }

private:
  // Re-stratify around the best index seen so far and plan the next round.
  void roll_round() {
    const std::uint64_t width = std::max<std::uint64_t>(
        1, (hi_ - lo_) / std::max<std::size_t>(strata_, 1));
    const std::uint64_t center = best_index_;
    lo_ = center > width ? center - width : 0;
    hi_ = std::min<std::uint64_t>(space().size(), center + width + 1);
    plan_round();
  }

  void plan_round() {
    ++rounds_;
    samples_.clear();
    const std::uint64_t span = hi_ - lo_;
    const std::size_t count =
        static_cast<std::size_t>(std::min<std::uint64_t>(strata_, span));
    for (std::size_t s = 0; s < count; ++s) {
      const std::uint64_t begin = lo_ + span * s / count;
      const std::uint64_t end = lo_ + span * (s + 1) / count;
      samples_.push_back(begin + rng_.below(std::max<std::uint64_t>(
                                     1, end - begin)));
    }
    for (std::size_t i = samples_.size(); i > 1; --i) {
      std::swap(samples_[i - 1], samples_[rng_.below(i)]);
    }
    cursor_ = 0;
  }

  std::size_t strata_;
  atf::common::xoshiro256 rng_;
  std::uint64_t lo_ = 0, hi_ = 0;
  std::vector<std::uint64_t> samples_;
  std::size_t cursor_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t last_index_ = 0;
  std::uint64_t best_index_ = 0;
  double best_cost_ = std::numeric_limits<double>::infinity();
};

}  // namespace

int main() {
  // A deceptive landscape: a broad valley plus a sharp off-center minimum.
  auto x = atf::tp("x", atf::interval<int>(0, 1 << 16));
  auto cost = [](const atf::configuration& config) {
    const int v = config["x"];
    const double broad = std::abs(v - 20'000) / 100.0;
    const double sharp = v == 61'234 ? -1000.0 : 0.0;
    return broad + sharp;
  };

  atf::tuner tuner;
  tuner.tuning_parameters(x);
  tuner.search_technique(std::make_unique<latin_sweep>(128, 7));
  tuner.abort_condition(atf::cond::evaluations(4'000));
  // The cost function is a pure computation, so whole slices of a round can
  // be measured concurrently; results still commit in proposal order.
  tuner.evaluation(atf::evaluation_mode::batched).concurrency(4);
  auto result = tuner.tune(atf::cf::pure(cost));

  std::printf("custom technique result: x=%d, cost=%.2f after %llu "
              "evaluations\n",
              static_cast<int>(result.best_configuration()["x"]),
              *result.best_cost,
              static_cast<unsigned long long>(result.evaluations));
  return 0;
}
