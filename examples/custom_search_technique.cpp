// Extending ATF with a user-defined search technique (paper, Section IV:
// "Further search techniques can be added to ATF by implementing the
// search_technique interface").
//
// The example implements a "latin sweep" technique: it stratifies the flat
// configuration-index space into equal slices, samples each slice once in
// random order (ensuring coverage of the whole space), then re-stratifies
// around the best slice. All four interface methods are shown:
// initialize / finalize / get_next_config / report_cost.
//
// Build & run:  ./examples/custom_search_technique
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "atf/atf.hpp"
#include "atf/common/rng.hpp"

namespace {

class latin_sweep final : public atf::search_technique {
public:
  explicit latin_sweep(std::size_t strata = 64, std::uint64_t seed = 1)
      : strata_(strata), rng_(seed) {}

  void initialize(const atf::search_space& space) override {
    atf::search_technique::initialize(space);
    lo_ = 0;
    hi_ = space.size();
    plan_round();
  }

  void finalize() override {
    std::printf("[latin_sweep] finished after %llu rounds\n",
                static_cast<unsigned long long>(rounds_));
  }

  atf::configuration get_next_config() override {
    if (cursor_ >= samples_.size()) {
      // Round complete: zoom into the best stratum and re-plan.
      const std::uint64_t width = std::max<std::uint64_t>(
          1, (hi_ - lo_) / std::max<std::size_t>(strata_, 1));
      const std::uint64_t center = best_index_;
      lo_ = center > width ? center - width : 0;
      hi_ = std::min<std::uint64_t>(space().size(), center + width + 1);
      plan_round();
    }
    last_index_ = samples_[cursor_++];
    return space().config_at(last_index_);
  }

  void report_cost(double cost) override {
    if (cost < best_cost_) {
      best_cost_ = cost;
      best_index_ = last_index_;
    }
  }

private:
  void plan_round() {
    ++rounds_;
    samples_.clear();
    const std::uint64_t span = hi_ - lo_;
    const std::size_t count =
        static_cast<std::size_t>(std::min<std::uint64_t>(strata_, span));
    for (std::size_t s = 0; s < count; ++s) {
      const std::uint64_t begin = lo_ + span * s / count;
      const std::uint64_t end = lo_ + span * (s + 1) / count;
      samples_.push_back(begin + rng_.below(std::max<std::uint64_t>(
                                     1, end - begin)));
    }
    for (std::size_t i = samples_.size(); i > 1; --i) {
      std::swap(samples_[i - 1], samples_[rng_.below(i)]);
    }
    cursor_ = 0;
  }

  std::size_t strata_;
  atf::common::xoshiro256 rng_;
  std::uint64_t lo_ = 0, hi_ = 0;
  std::vector<std::uint64_t> samples_;
  std::size_t cursor_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t last_index_ = 0;
  std::uint64_t best_index_ = 0;
  double best_cost_ = std::numeric_limits<double>::infinity();
};

}  // namespace

int main() {
  // A deceptive landscape: a broad valley plus a sharp off-center minimum.
  auto x = atf::tp("x", atf::interval<int>(0, 1 << 16));
  auto cost = [](const atf::configuration& config) {
    const int v = config["x"];
    const double broad = std::abs(v - 20'000) / 100.0;
    const double sharp = v == 61'234 ? -1000.0 : 0.0;
    return broad + sharp;
  };

  atf::tuner tuner;
  tuner.tuning_parameters(x);
  tuner.search_technique(std::make_unique<latin_sweep>(128, 7));
  tuner.abort_condition(atf::cond::evaluations(4'000));
  auto result = tuner.tune(cost);

  std::printf("custom technique result: x=%d, cost=%.2f after %llu "
              "evaluations\n",
              static_cast<int>(result.best_configuration()["x"]),
              *result.best_cost,
              static_cast<unsigned long long>(result.evaluations));
  return 0;
}
