#include "ocls/define_map.hpp"

#include <cerrno>
#include <cstdlib>

#include "ocls/error.hpp"

namespace ocls {

void define_map::set(const std::string& name, std::string value) {
  defines_[name] = std::move(value);
}
void define_map::set(const std::string& name, std::uint64_t value) {
  defines_[name] = std::to_string(value);
}
void define_map::set(const std::string& name, std::int64_t value) {
  defines_[name] = std::to_string(value);
}
void define_map::set(const std::string& name, double value) {
  defines_[name] = std::to_string(value);
}
void define_map::set(const std::string& name, bool value) {
  defines_[name] = value ? "true" : "false";
}

bool define_map::contains(const std::string& name) const {
  return defines_.find(name) != defines_.end();
}

const std::string& define_map::raw(const std::string& name) const {
  const auto it = defines_.find(name);
  if (it == defines_.end()) {
    throw build_error("ocls: undefined preprocessor symbol '" + name + "'");
  }
  return it->second;
}

std::uint64_t define_map::get_uint(const std::string& name) const {
  const std::string& text = raw(name);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    throw build_error("ocls: define '" + name + "' = '" + text +
                      "' is not an unsigned integer");
  }
  return v;
}

std::int64_t define_map::get_int(const std::string& name) const {
  const std::string& text = raw(name);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    throw build_error("ocls: define '" + name + "' = '" + text +
                      "' is not an integer");
  }
  return v;
}

double define_map::get_double(const std::string& name) const {
  const std::string& text = raw(name);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    throw build_error("ocls: define '" + name + "' = '" + text +
                      "' is not a number");
  }
  return v;
}

bool define_map::get_bool(const std::string& name) const {
  const std::string& text = raw(name);
  if (text == "true" || text == "1") {
    return true;
  }
  if (text == "false" || text == "0") {
    return false;
  }
  throw build_error("ocls: define '" + name + "' = '" + text +
                    "' is not a boolean");
}

std::string define_map::build_options() const {
  std::string out;
  for (const auto& [name, value] : defines_) {
    if (!out.empty()) {
      out += ' ';
    }
    out += "-D" + name + "=" + value;
  }
  return out;
}

}  // namespace ocls
