#include "ocls/ndrange.hpp"

// nd_range / nd_item are header-only; this translation unit exists so the
// header gets compiled standalone at least once (include hygiene).
