#include "ocls/context.hpp"

#include <string>

#include "atf/common/thread_pool.hpp"
#include "ocls/error.hpp"

namespace ocls {

namespace {

/// Work-group execution is embarrassingly parallel; one process-wide pool
/// serves every queue (kernels bodies must be data-race-free across
/// work-groups, as real OpenCL kernels are).
atf::common::thread_pool& execution_pool() {
  static atf::common::thread_pool pool;
  return pool;
}

}  // namespace

void command_queue::validate(const kernel& k, const nd_range& range,
                             const define_map& defines) const {
  if (range.dims == 0 || range.dims > 3) {
    throw invalid_global_work_size("ocls: work dimensions must be 1..3");
  }
  for (unsigned d = 0; d < range.dims; ++d) {
    if (range.global[d] == 0) {
      throw invalid_global_work_size("ocls: zero global size in dim " +
                                     std::to_string(d));
    }
    if (range.local[d] == 0) {
      throw invalid_work_group_size("ocls: zero local size in dim " +
                                    std::to_string(d));
    }
    // The OpenCL specification requires the local size to divide the global
    // size — the constraint at the heart of the paper's saxpy example.
    if (range.global[d] % range.local[d] != 0) {
      throw invalid_work_group_size(
          "ocls: local size " + std::to_string(range.local[d]) +
          " does not divide global size " + std::to_string(range.global[d]) +
          " in dim " + std::to_string(d));
    }
  }
  const auto& profile = context_->dev().profile();
  if (range.local_total() > profile.max_work_group_size) {
    throw invalid_work_group_size(
        "ocls: work-group size " + std::to_string(range.local_total()) +
        " exceeds device limit " +
        std::to_string(profile.max_work_group_size));
  }
  const std::size_t local_mem = k.local_mem_bytes(defines);
  if (local_mem > profile.local_mem_bytes) {
    throw out_of_resources("ocls: kernel needs " + std::to_string(local_mem) +
                           " bytes of local memory, device has " +
                           std::to_string(profile.local_mem_bytes));
  }
}

void command_queue::execute_body(const kernel& k, const nd_range& range,
                                 const kernel_args& args,
                                 const define_map& defines) const {
  const std::size_t groups_x = range.global[0] / range.local[0];
  const std::size_t groups_y = range.global[1] / range.local[1];
  const std::size_t groups_z = range.global[2] / range.local[2];
  const std::size_t total_groups = groups_x * groups_y * groups_z;

  const auto& body = k.body();
  execution_pool().parallel_for(total_groups, [&](std::size_t flat_group) {
    std::array<std::size_t, 3> group{};
    group[0] = flat_group % groups_x;
    group[1] = (flat_group / groups_x) % groups_y;
    group[2] = flat_group / (groups_x * groups_y);
    std::array<std::size_t, 3> local{};
    for (local[2] = 0; local[2] < range.local[2]; ++local[2]) {
      for (local[1] = 0; local[1] < range.local[1]; ++local[1]) {
        for (local[0] = 0; local[0] < range.local[0]; ++local[0]) {
          body(nd_item(range, group, local), args, defines);
        }
      }
    }
  });
}

event command_queue::launch(const kernel& k, const nd_range& range,
                            const kernel_args& args,
                            const define_map& defines) {
  validate(k, range, defines);

  if (context_->functional() && k.has_body()) {
    execute_body(k, range, args, defines);
  }

  perf_estimate estimate;
  if (k.has_perf_model()) {
    estimate = k.model()(range, context_->dev().profile(), defines);
  }
  const double total_ns =
      estimate.ns + context_->dev().profile().launch_overhead_ns;
  const double energy = energy_microjoules(context_->dev().profile(),
                                           total_ns, estimate.utilization);
  return event(total_ns, energy);
}

}  // namespace ocls
