#include "ocls/device.hpp"

#include <mutex>

#include "ocls/error.hpp"

namespace ocls {

device_profile xeon_e5_2640v2_profile() {
  device_profile p;
  p.platform_name = "Intel(R) OpenCL";
  p.device_name = "Intel Xeon E5-2640 v2";
  p.kind = device_kind::cpu;
  // The dual-socket system appears as one OpenCL device with 32 compute
  // units (2 sockets x 8 cores x 2 hyper-threads), as in the paper.
  p.compute_units = 32;
  p.simd_width = 8;  // AVX: 8 fp32 lanes
  p.max_work_group_size = 8192;
  p.local_mem_bytes = 32 * 1024;
  p.clock_ghz = 2.0;
  p.flops_per_cu_per_cycle = 16.0;  // AVX mul+add per cycle
  p.global_bw_gbps = 102.0;         // 2 x 51.2 GB/s (4-channel DDR3-1600)
  p.llc_bytes = 2 * 20 * 1024 * 1024;  // 2 x 20 MB L3
  p.cache_bw_multiplier = 5.0;
  // Profiled kernel time excludes enqueue latency; what remains is the
  // runtime's work distribution and per-work-group task dispatch.
  p.launch_overhead_ns = 300.0;
  p.workgroup_overhead_ns = 150.0;
  p.idle_watts = 70.0;
  p.max_watts = 190.0;
  return p;
}

device_profile tesla_k20m_profile() {
  device_profile p;
  p.platform_name = "NVIDIA CUDA";
  p.device_name = "Tesla K20m";
  p.kind = device_kind::gpu;
  p.compute_units = 13;  // SMX count
  p.simd_width = 32;     // warp
  p.max_work_group_size = 1024;
  p.local_mem_bytes = 48 * 1024;
  p.clock_ghz = 0.706;
  p.flops_per_cu_per_cycle = 384.0;  // 192 cores x FMA
  p.global_bw_gbps = 208.0;
  p.llc_bytes = 1280 * 1024;  // 1.25 MB L2
  p.cache_bw_multiplier = 2.5;
  p.launch_overhead_ns = 700.0;
  p.workgroup_overhead_ns = 60.0;
  p.idle_watts = 25.0;
  p.max_watts = 225.0;
  return p;
}

namespace {

std::mutex g_mutex;

std::vector<platform> make_builtin_platforms() {
  return {
      platform("Intel(R) OpenCL", {device(xeon_e5_2640v2_profile())}),
      platform("NVIDIA CUDA", {device(tesla_k20m_profile())}),
  };
}

std::vector<platform>& mutable_platforms() {
  static std::vector<platform> instance = make_builtin_platforms();
  return instance;
}

}  // namespace

const std::vector<platform>& platforms() {
  std::lock_guard lock(g_mutex);
  return mutable_platforms();
}

device find_device(const std::string& platform_name,
                   const std::string& device_name) {
  std::lock_guard lock(g_mutex);
  for (const auto& p : mutable_platforms()) {
    if (p.name().find(platform_name) == std::string::npos) {
      continue;
    }
    for (const auto& d : p.devices()) {
      if (d.name().find(device_name) != std::string::npos) {
        return d;
      }
    }
  }
  throw device_not_found("ocls: no device matching platform '" +
                         platform_name + "', device '" + device_name + "'");
}

void register_device(const device_profile& profile) {
  std::lock_guard lock(g_mutex);
  auto& all = mutable_platforms();
  for (auto& p : all) {
    if (p.name() == profile.platform_name) {
      // Platforms hold devices by value; rebuild the platform with the
      // extra device appended.
      std::vector<device> devices = p.devices();
      devices.emplace_back(profile);
      p = platform(p.name(), std::move(devices));
      return;
    }
  }
  all.emplace_back(profile.platform_name,
                   std::vector<device>{device(profile)});
}

void reset_registered_devices() {
  std::lock_guard lock(g_mutex);
  mutable_platforms() = make_builtin_platforms();
}

}  // namespace ocls
