#include "ocls/device.hpp"

#include <cmath>
#include <mutex>
#include <string>

#include "ocls/error.hpp"

namespace ocls {

device_profile xeon_e5_2640v2_profile() {
  device_profile p;
  p.platform_name = "Intel(R) OpenCL";
  p.device_name = "Intel Xeon E5-2640 v2";
  p.kind = device_kind::cpu;
  // The dual-socket system appears as one OpenCL device with 32 compute
  // units (2 sockets x 8 cores x 2 hyper-threads), as in the paper.
  p.compute_units = 32;
  p.simd_width = 8;  // AVX: 8 fp32 lanes
  p.max_work_group_size = 8192;
  p.local_mem_bytes = 32 * 1024;
  p.clock_ghz = 2.0;
  p.flops_per_cu_per_cycle = 16.0;  // AVX mul+add per cycle
  p.global_bw_gbps = 102.0;         // 2 x 51.2 GB/s (4-channel DDR3-1600)
  p.llc_bytes = 2 * 20 * 1024 * 1024;  // 2 x 20 MB L3
  p.cache_bw_multiplier = 5.0;
  // Profiled kernel time excludes enqueue latency; what remains is the
  // runtime's work distribution and per-work-group task dispatch.
  p.launch_overhead_ns = 300.0;
  p.workgroup_overhead_ns = 150.0;
  p.idle_watts = 70.0;
  p.max_watts = 190.0;
  return p;
}

device_profile tesla_k20m_profile() {
  device_profile p;
  p.platform_name = "NVIDIA CUDA";
  p.device_name = "Tesla K20m";
  p.kind = device_kind::gpu;
  p.compute_units = 13;  // SMX count
  p.simd_width = 32;     // warp
  p.max_work_group_size = 1024;
  p.local_mem_bytes = 48 * 1024;
  p.clock_ghz = 0.706;
  p.flops_per_cu_per_cycle = 384.0;  // 192 cores x FMA
  p.global_bw_gbps = 208.0;
  p.llc_bytes = 1280 * 1024;  // 1.25 MB L2
  p.cache_bw_multiplier = 2.5;
  p.launch_overhead_ns = 700.0;
  p.workgroup_overhead_ns = 60.0;
  p.idle_watts = 25.0;
  p.max_watts = 225.0;
  return p;
}

device_profile iris6100_profile() {
  device_profile p;
  p.platform_name = "Intel(R) OpenCL HD Graphics";
  p.device_name = "Intel Iris Graphics 6100";
  p.kind = device_kind::gpu;
  p.compute_units = 6;   // subslices of 8 EUs each
  p.simd_width = 8;      // EU SIMD-8 fp32 issue
  p.max_work_group_size = 256;
  p.local_mem_bytes = 64 * 1024;
  p.clock_ghz = 1.05;
  p.flops_per_cu_per_cycle = 128.0;  // 8 EUs x SIMD-8 x FMA
  p.global_bw_gbps = 25.6;           // shared dual-channel DDR3-1600
  p.llc_bytes = 4 * 1024 * 1024;     // shared LLC slice
  p.cache_bw_multiplier = 4.0;
  p.launch_overhead_ns = 1200.0;
  p.workgroup_overhead_ns = 90.0;
  p.idle_watts = 3.0;
  p.max_watts = 28.0;
  return p;
}

device_profile vega56_profile() {
  device_profile p;
  p.platform_name = "AMD Accelerated Parallel Processing";
  p.device_name = "Radeon RX Vega 56";
  p.kind = device_kind::gpu;
  p.compute_units = 56;
  p.simd_width = 64;  // wavefront
  p.max_work_group_size = 256;
  p.local_mem_bytes = 64 * 1024;
  p.clock_ghz = 1.471;
  p.flops_per_cu_per_cycle = 128.0;  // 64 lanes x FMA
  p.global_bw_gbps = 410.0;          // HBM2
  p.llc_bytes = 4 * 1024 * 1024;     // L2
  p.cache_bw_multiplier = 3.0;
  p.launch_overhead_ns = 900.0;
  p.workgroup_overhead_ns = 40.0;
  p.idle_watts = 30.0;
  p.max_watts = 210.0;
  return p;
}

void validate_profile(const device_profile& profile) {
  const std::string who = "ocls: device_profile '" + profile.device_name +
                          "': ";
  auto positive_u = [&](const char* field, double v) {
    if (!(v > 0.0)) {
      throw invalid_device_profile(who + field + " must be positive, got " +
                                   std::to_string(v));
    }
  };
  auto finite_pos = [&](const char* field, double v) {
    if (!std::isfinite(v) || !(v > 0.0)) {
      throw invalid_device_profile(who + field +
                                   " must be positive and finite, got " +
                                   std::to_string(v));
    }
  };
  auto finite_nonneg = [&](const char* field, double v) {
    if (!std::isfinite(v) || v < 0.0) {
      throw invalid_device_profile(who + field +
                                   " must be non-negative and finite, got " +
                                   std::to_string(v));
    }
  };
  positive_u("compute_units", static_cast<double>(profile.compute_units));
  positive_u("simd_width", static_cast<double>(profile.simd_width));
  positive_u("max_work_group_size",
             static_cast<double>(profile.max_work_group_size));
  finite_pos("clock_ghz", profile.clock_ghz);
  finite_pos("flops_per_cu_per_cycle", profile.flops_per_cu_per_cycle);
  finite_pos("global_bw_gbps", profile.global_bw_gbps);
  finite_pos("cache_bw_multiplier", profile.cache_bw_multiplier);
  finite_nonneg("launch_overhead_ns", profile.launch_overhead_ns);
  finite_nonneg("workgroup_overhead_ns", profile.workgroup_overhead_ns);
  finite_nonneg("idle_watts", profile.idle_watts);
  finite_nonneg("max_watts", profile.max_watts);
  if (profile.max_watts < profile.idle_watts) {
    throw invalid_device_profile(who +
                                 "max_watts must be >= idle_watts, got " +
                                 std::to_string(profile.max_watts) + " < " +
                                 std::to_string(profile.idle_watts));
  }
}

namespace {

std::mutex g_mutex;

std::vector<platform> make_builtin_platforms() {
  return {
      platform("Intel(R) OpenCL", {device(xeon_e5_2640v2_profile())}),
      platform("NVIDIA CUDA", {device(tesla_k20m_profile())}),
      platform("Intel(R) OpenCL HD Graphics", {device(iris6100_profile())}),
      platform("AMD Accelerated Parallel Processing",
               {device(vega56_profile())}),
  };
}

std::vector<platform>& mutable_platforms() {
  static std::vector<platform> instance = make_builtin_platforms();
  return instance;
}

}  // namespace

const std::vector<platform>& platforms() {
  std::lock_guard lock(g_mutex);
  return mutable_platforms();
}

device find_device(const std::string& platform_name,
                   const std::string& device_name) {
  std::lock_guard lock(g_mutex);
  for (const auto& p : mutable_platforms()) {
    if (p.name().find(platform_name) == std::string::npos) {
      continue;
    }
    for (const auto& d : p.devices()) {
      if (d.name().find(device_name) != std::string::npos) {
        return d;
      }
    }
  }
  throw device_not_found("ocls: no device matching platform '" +
                         platform_name + "', device '" + device_name + "'");
}

void register_device(const device_profile& profile) {
  validate_profile(profile);
  std::lock_guard lock(g_mutex);
  auto& all = mutable_platforms();
  for (auto& p : all) {
    if (p.name() == profile.platform_name) {
      // Platforms hold devices by value; rebuild the platform with the
      // extra device appended.
      std::vector<device> devices = p.devices();
      devices.emplace_back(profile);
      p = platform(p.name(), std::move(devices));
      return;
    }
  }
  all.emplace_back(profile.platform_name,
                   std::vector<device>{device(profile)});
}

void reset_registered_devices() {
  std::lock_guard lock(g_mutex);
  mutable_platforms() = make_builtin_platforms();
}

}  // namespace ocls
