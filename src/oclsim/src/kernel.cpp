#include "ocls/kernel.hpp"

// kernel is header-only; this translation unit compiles the header
// standalone (include hygiene).
