#include "ocls/energy.hpp"

#include <algorithm>

namespace ocls {

double power_watts(const device_profile& profile,
                   double utilization) noexcept {
  const double u = std::clamp(utilization, 0.0, 1.0);
  return profile.idle_watts + (profile.max_watts - profile.idle_watts) * u;
}

double energy_microjoules(const device_profile& profile, double ns,
                          double utilization) noexcept {
  // watts * seconds = joules; ns * 1e-9 s * W * 1e6 uJ/J = ns * W * 1e-3.
  return power_watts(profile, utilization) * ns * 1e-3;
}

}  // namespace ocls
