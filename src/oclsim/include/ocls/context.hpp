// Context and command queue: launch validation, functional execution and
// profiling.
//
// `context` binds a device; `command_queue` launches kernels. A launch
//   1. validates the ND-range against the OpenCL rules (the local size must
//      divide the global size in every dimension; the work-group may not
//      exceed the device limit) and the kernel's local-memory requirement
//      against the device,
//   2. optionally executes the kernel body functionally — all work-groups,
//      all work-items, work-groups distributed over a host thread pool,
//   3. evaluates the kernel's performance model and returns an event whose
//      profiling query reports the modeled runtime (the analogue of
//      CL_PROFILING_COMMAND_START/END) and modeled energy.
//
// Functional execution is optional because tuning only needs the model (the
// paper tunes on random data and never downloads results); correctness
// checks enable it explicitly.
#pragma once

#include <memory>

#include "ocls/define_map.hpp"
#include "ocls/device.hpp"
#include "ocls/energy.hpp"
#include "ocls/kernel.hpp"

namespace ocls {

/// The completed-launch handle; mirrors an OpenCL event with profiling.
class event {
public:
  event() = default;
  event(double ns, double energy_uj) : ns_(ns), energy_uj_(energy_uj) {}

  /// Modeled kernel runtime in nanoseconds.
  [[nodiscard]] double profile_ns() const noexcept { return ns_; }
  /// Modeled energy in microjoules.
  [[nodiscard]] double energy_uj() const noexcept { return energy_uj_; }

private:
  double ns_ = 0.0;
  double energy_uj_ = 0.0;
};

class context {
public:
  explicit context(device dev) : device_(std::move(dev)) {}

  [[nodiscard]] const device& dev() const noexcept { return device_; }

  /// Enables/disables functional execution of kernel bodies (default off:
  /// tuning needs only the model).
  context& execute_functionally(bool enabled) {
    functional_ = enabled;
    return *this;
  }
  [[nodiscard]] bool functional() const noexcept { return functional_; }

private:
  device device_;
  bool functional_ = false;
};

class command_queue {
public:
  explicit command_queue(std::shared_ptr<context> ctx)
      : context_(std::move(ctx)) {}

  /// Validates and launches `k`. Throws invalid_work_group_size,
  /// invalid_global_work_size, out_of_resources or invalid_kernel_args.
  event launch(const kernel& k, const nd_range& range,
               const kernel_args& args, const define_map& defines);

  [[nodiscard]] const context& ctx() const noexcept { return *context_; }

private:
  void validate(const kernel& k, const nd_range& range,
                const define_map& defines) const;
  void execute_body(const kernel& k, const nd_range& range,
                    const kernel_args& args, const define_map& defines) const;

  std::shared_ptr<context> context_;
};

}  // namespace ocls
