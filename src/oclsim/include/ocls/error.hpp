// Error hierarchy of the OpenCL simulator. The names mirror the OpenCL
// error codes that real host code would receive (CL_INVALID_WORK_GROUP_SIZE
// etc.), so downstream code — in particular ATF's OpenCL cost function —
// handles simulator failures exactly like real runtime failures.
#pragma once

#include <stdexcept>
#include <string>

namespace ocls {

/// Base class of all simulator errors.
class error : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Unknown platform or device name (CL_DEVICE_NOT_FOUND).
class device_not_found : public error {
public:
  using error::error;
};

/// A device_profile with physically meaningless fields (zero compute units,
/// non-positive bandwidth, ...) was handed to register_device. Rejected
/// eagerly: a bad profile would otherwise surface much later as NaN/inf
/// model times deep inside a tuning run.
class invalid_device_profile : public error {
public:
  using error::error;
};

/// Launch geometry violates the OpenCL spec: the local size does not divide
/// the global size, or exceeds the device's work-group limit
/// (CL_INVALID_WORK_GROUP_SIZE).
class invalid_work_group_size : public error {
public:
  using error::error;
};

/// Zero global size or too many dimensions (CL_INVALID_GLOBAL_WORK_SIZE).
class invalid_global_work_size : public error {
public:
  using error::error;
};

/// The kernel's local-memory requirement exceeds the device limit
/// (CL_OUT_OF_RESOURCES).
class out_of_resources : public error {
public:
  using error::error;
};

/// Kernel argument mismatch (CL_INVALID_ARG_VALUE / CL_INVALID_KERNEL_ARGS).
class invalid_kernel_args : public error {
public:
  using error::error;
};

/// A required preprocessor define is missing or malformed — the analogue of
/// an OpenCL build failure (CL_BUILD_PROGRAM_FAILURE).
class build_error : public error {
public:
  using error::error;
};

}  // namespace ocls
