// Simulated kernels.
//
// A kernel couples
//   * a functional body — a C++ callable executed once per work-item with
//     full ND-range semantics, producing real results (used for correctness
//     checking, exactly like ATF's optional result verification); and
//   * an analytical performance model — a callable mapping (launch geometry,
//     device profile, preprocessor defines) onto an estimated runtime and a
//     utilization figure, which backs the profiling API and the energy
//     model; and
//   * a local-memory model — bytes of __local storage the kernel would
//     allocate for given defines, validated against the device limit.
//
// Kernel bodies read their tuning parameters from the define_map, mirroring
// how real auto-tuners inject parameters via the OpenCL preprocessor.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "ocls/buffer.hpp"
#include "ocls/define_map.hpp"
#include "ocls/device.hpp"
#include "ocls/ndrange.hpp"

namespace ocls {

/// The outcome of a performance-model evaluation.
struct perf_estimate {
  double ns = 0.0;           ///< modeled kernel runtime
  double utilization = 0.5;  ///< 0..1, drives the energy model
};

using kernel_body =
    std::function<void(const nd_item&, const kernel_args&, const define_map&)>;
using perf_model = std::function<perf_estimate(
    const nd_range&, const device_profile&, const define_map&)>;
using local_mem_model = std::function<std::size_t(const define_map&)>;

class kernel {
public:
  kernel() = default;
  explicit kernel(std::string name) : name_(std::move(name)) {}

  kernel& set_body(kernel_body body) {
    body_ = std::move(body);
    return *this;
  }
  kernel& set_perf_model(perf_model model) {
    perf_ = std::move(model);
    return *this;
  }
  kernel& set_local_mem_model(local_mem_model model) {
    local_mem_ = std::move(model);
    return *this;
  }
  /// Attaches the kernel's source text (carried for fidelity/debugging; the
  /// simulator never parses it).
  kernel& set_source(std::string source) {
    source_ = std::move(source);
    return *this;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& source() const noexcept { return source_; }
  [[nodiscard]] bool has_body() const noexcept {
    return static_cast<bool>(body_);
  }
  [[nodiscard]] bool has_perf_model() const noexcept {
    return static_cast<bool>(perf_);
  }

  [[nodiscard]] const kernel_body& body() const noexcept { return body_; }
  [[nodiscard]] const perf_model& model() const noexcept { return perf_; }

  /// Local-memory requirement for the given defines (0 if no model is set).
  [[nodiscard]] std::size_t local_mem_bytes(const define_map& defines) const {
    return local_mem_ ? local_mem_(defines) : 0;
  }

private:
  std::string name_;
  std::string source_;
  kernel_body body_;
  perf_model perf_;
  local_mem_model local_mem_;
};

}  // namespace ocls
