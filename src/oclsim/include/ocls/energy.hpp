// Power/energy model — the substrate behind multi-objective (runtime +
// energy) tuning. Board power is interpolated linearly between the profile's
// idle and full-utilization wattage; energy is power x modeled time.
#pragma once

#include "ocls/device.hpp"

namespace ocls {

/// Board power in watts at a given utilization in [0,1].
[[nodiscard]] double power_watts(const device_profile& profile,
                                 double utilization) noexcept;

/// Energy in microjoules for a kernel of `ns` nanoseconds at `utilization`.
[[nodiscard]] double energy_microjoules(const device_profile& profile,
                                        double ns,
                                        double utilization) noexcept;

}  // namespace ocls
