// Simulated OpenCL platforms and devices.
//
// The paper's testbed is modeled by two built-in devices:
//   * platform "Intel(R) OpenCL", device "Intel Xeon E5-2640 v2" — the
//     dual-socket 8-core CPU (one OpenCL device with 32 compute units,
//     matching the paper's description);
//   * platform "NVIDIA CUDA", device "Tesla K20m" — the evaluation GPU
//     (the paper's Listing 2 targets the sibling card "Tesla K20c").
// Two further calibrated built-ins diversify the tuning landscapes beyond
// the paper's testbed (DESIGN.md §14):
//   * "Intel Iris Graphics 6100" — an integrated GPU on shared DDR3, the
//     low-bandwidth profile;
//   * "Radeon RX Vega 56" — a 56-CU discrete GPU behind HBM2, the
//     occupancy-bound profile.
// Devices are looked up by platform and device *name substrings*, exactly
// the convenience ATF advertises over CLTune's numeric ids (Section III).
// Additional devices can be registered for tests and experiments; profiles
// are validated at registration (validate_profile).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ocls {

enum class device_kind { cpu, gpu };

/// The analytic description of a device that performance models consume.
struct device_profile {
  std::string platform_name;
  std::string device_name;
  device_kind kind = device_kind::gpu;

  unsigned compute_units = 1;        ///< SMX count / logical cores
  unsigned simd_width = 1;           ///< warp width / vector lanes
  std::size_t max_work_group_size = 1;
  std::size_t local_mem_bytes = 0;

  double clock_ghz = 1.0;
  double flops_per_cu_per_cycle = 1.0;  ///< peak fused FLOPs per CU per cycle
  double global_bw_gbps = 1.0;          ///< STREAM-like global bandwidth
  std::size_t llc_bytes = 0;            ///< last-level cache capacity
  double cache_bw_multiplier = 1.0;     ///< bandwidth gain for LLC-resident data
  double launch_overhead_ns = 0.0;      ///< fixed cost per kernel launch
  double workgroup_overhead_ns = 0.0;   ///< scheduling cost per work-group

  double idle_watts = 0.0;   ///< board/package power at idle
  double max_watts = 0.0;    ///< power at full utilization

  /// Peak arithmetic throughput in FLOP/s.
  [[nodiscard]] double peak_flops() const noexcept {
    return static_cast<double>(compute_units) * flops_per_cu_per_cycle *
           clock_ghz * 1e9;
  }
  /// Peak global-memory bandwidth in bytes/s.
  [[nodiscard]] double peak_bytes_per_s() const noexcept {
    return global_bw_gbps * 1e9;
  }
};

class device {
public:
  device() = default;
  explicit device(device_profile profile) : profile_(std::move(profile)) {}

  [[nodiscard]] const device_profile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] const std::string& name() const noexcept {
    return profile_.device_name;
  }

private:
  device_profile profile_;
};

class platform {
public:
  platform() = default;
  platform(std::string name, std::vector<device> devices)
      : name_(std::move(name)), devices_(std::move(devices)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<device>& devices() const noexcept {
    return devices_;
  }

private:
  std::string name_;
  std::vector<device> devices_;
};

/// All platforms visible to the "runtime" (built-ins + registered).
[[nodiscard]] const std::vector<platform>& platforms();

/// Finds a device whose platform name contains `platform_name` and whose
/// device name contains `device_name` (case-sensitive substring match, like
/// typical host-code lookup helpers). Throws device_not_found.
[[nodiscard]] device find_device(const std::string& platform_name,
                                 const std::string& device_name);

/// Checks that a profile is physically meaningful: positive compute-unit
/// count, SIMD width, work-group limit, clock, per-cycle FLOPs, bandwidth
/// and cache multiplier; finite non-negative overheads; idle <= max power.
/// Throws invalid_device_profile naming the offending field.
void validate_profile(const device_profile& profile);

/// Registers an additional device (e.g. a synthetic profile in tests).
/// The device is appended to an existing platform of the same name or to a
/// new platform. Throws invalid_device_profile when the profile fails
/// validate_profile — a nonsense profile must not enter the device list.
void register_device(const device_profile& profile);

/// Removes every registered (non-built-in) device.
void reset_registered_devices();

/// The built-in profile of the paper's CPU (dual-socket Xeon E5-2640 v2).
[[nodiscard]] device_profile xeon_e5_2640v2_profile();

/// The built-in profile of the paper's GPU (Tesla K20m).
[[nodiscard]] device_profile tesla_k20m_profile();

/// Built-in integrated-GPU profile (Intel Iris Graphics 6100): few EUs on
/// the CPU's shared DDR3 — a *low-bandwidth* landscape where staging and
/// vector-width knobs matter far more than occupancy.
[[nodiscard]] device_profile iris6100_profile();

/// Built-in many-CU discrete-GPU profile (Radeon RX Vega 56): 56 compute
/// units behind HBM2 — an *occupancy-bound* landscape that rewards
/// work-group packing and punishes small launches.
[[nodiscard]] device_profile vega56_profile();

}  // namespace ocls
