// Preprocessor-style defines.
//
// ATF substitutes tuning-parameter names in kernel source via the OpenCL
// preprocessor (-DWPT=8 -DLS=64 ...). In the simulator a kernel receives the
// same information as a define_map; the typed getters perform the parsing a
// compiled kernel would have done at build time, and throw build_error for
// missing/malformed values — the analogue of a kernel build failure.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace ocls {

class define_map {
public:
  define_map() = default;

  void set(const std::string& name, std::string value);
  void set(const std::string& name, std::uint64_t value);
  void set(const std::string& name, std::int64_t value);
  void set(const std::string& name, double value);
  void set(const std::string& name, bool value);

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Raw textual value; throws build_error if missing.
  [[nodiscard]] const std::string& raw(const std::string& name) const;

  [[nodiscard]] std::uint64_t get_uint(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  /// Accepts "true"/"false"/"1"/"0".
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, std::string>& all() const {
    return defines_;
  }

  /// "-DWPT=8 -DLS=64" — the build-options string real host code would pass.
  [[nodiscard]] std::string build_options() const;

private:
  std::map<std::string, std::string> defines_;
};

}  // namespace ocls
