// Host-backed device buffers and type-erased kernel arguments.
//
// A buffer<T> owns a host vector standing in for device memory. Arguments
// are passed to kernels through the small `arg` variant; kernel bodies
// recover typed views with arg::scalar<T>() / arg::buffer<T>().
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <variant>
#include <vector>

#include "ocls/error.hpp"

namespace ocls {

namespace detail {
struct buffer_base {
  virtual ~buffer_base() = default;
  [[nodiscard]] virtual std::size_t size_bytes() const noexcept = 0;
};
}  // namespace detail

template <typename T>
class buffer final : public detail::buffer_base {
public:
  explicit buffer(std::size_t count) : data_(count) {}
  explicit buffer(std::vector<T> data) : data_(std::move(data)) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t size_bytes() const noexcept override {
    return data_.size() * sizeof(T);
  }

  [[nodiscard]] std::span<T> host() noexcept { return data_; }
  [[nodiscard]] std::span<const T> host() const noexcept { return data_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

private:
  std::vector<T> data_;
};

/// A type-erased kernel argument: a scalar or a shared buffer handle.
class arg {
public:
  template <typename T>
    requires std::is_arithmetic_v<T>
  arg(T scalar)  // NOLINT(google-explicit-constructor)
      : value_(static_cast<double>(scalar)), is_scalar_(true) {}

  template <typename T>
  arg(std::shared_ptr<buffer<T>> buf)  // NOLINT(google-explicit-constructor)
      : handle_(std::move(buf)), is_scalar_(false) {}

  [[nodiscard]] bool is_scalar() const noexcept { return is_scalar_; }

  /// The scalar value as T; throws invalid_kernel_args for buffer args.
  template <typename T>
  [[nodiscard]] T scalar() const {
    if (!is_scalar_) {
      throw invalid_kernel_args("ocls: argument is a buffer, not a scalar");
    }
    return static_cast<T>(value_);
  }

  /// The buffer as buffer<T>; throws invalid_kernel_args on mismatch.
  template <typename T>
  [[nodiscard]] buffer<T>& buf() const {
    if (is_scalar_) {
      throw invalid_kernel_args("ocls: argument is a scalar, not a buffer");
    }
    auto typed = std::dynamic_pointer_cast<buffer<T>>(handle_);
    if (!typed) {
      throw invalid_kernel_args("ocls: buffer argument has a different "
                                "element type than requested");
    }
    return *typed;
  }

  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return is_scalar_ ? sizeof(double) : handle_->size_bytes();
  }

private:
  double value_ = 0.0;
  std::shared_ptr<detail::buffer_base> handle_;
  bool is_scalar_;
};

using kernel_args = std::vector<arg>;

}  // namespace ocls
