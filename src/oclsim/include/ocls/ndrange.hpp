// ND-range launch geometry and the per-work-item view (nd_item).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace ocls {

/// Launch geometry: up to three dimensions of global and local sizes.
struct nd_range {
  std::array<std::size_t, 3> global{1, 1, 1};
  std::array<std::size_t, 3> local{1, 1, 1};
  unsigned dims = 1;

  static nd_range d1(std::size_t g, std::size_t l) {
    return {{g, 1, 1}, {l, 1, 1}, 1};
  }
  static nd_range d2(std::size_t gx, std::size_t gy, std::size_t lx,
                     std::size_t ly) {
    return {{gx, gy, 1}, {lx, ly, 1}, 2};
  }
  static nd_range d3(std::size_t gx, std::size_t gy, std::size_t gz,
                     std::size_t lx, std::size_t ly, std::size_t lz) {
    return {{gx, gy, gz}, {lx, ly, lz}, 3};
  }

  [[nodiscard]] std::size_t global_total() const noexcept {
    return global[0] * global[1] * global[2];
  }
  [[nodiscard]] std::size_t local_total() const noexcept {
    return local[0] * local[1] * local[2];
  }
  [[nodiscard]] std::size_t num_groups() const noexcept {
    return global_total() / local_total();
  }
};

/// The work-item view a kernel body receives (get_global_id etc.).
class nd_item {
public:
  nd_item(const nd_range& range, std::array<std::size_t, 3> group,
          std::array<std::size_t, 3> local) noexcept
      : range_(&range), group_(group), local_(local) {}

  [[nodiscard]] std::size_t global_id(unsigned dim = 0) const noexcept {
    return group_[dim] * range_->local[dim] + local_[dim];
  }
  [[nodiscard]] std::size_t local_id(unsigned dim = 0) const noexcept {
    return local_[dim];
  }
  [[nodiscard]] std::size_t group_id(unsigned dim = 0) const noexcept {
    return group_[dim];
  }
  [[nodiscard]] std::size_t global_size(unsigned dim = 0) const noexcept {
    return range_->global[dim];
  }
  [[nodiscard]] std::size_t local_size(unsigned dim = 0) const noexcept {
    return range_->local[dim];
  }
  [[nodiscard]] std::size_t num_groups(unsigned dim = 0) const noexcept {
    return range_->global[dim] / range_->local[dim];
  }

private:
  const nd_range* range_;
  std::array<std::size_t, 3> group_;
  std::array<std::size_t, 3> local_;
};

}  // namespace ocls
