// Umbrella header for the OpenCL simulator substrate.
#pragma once

#include "ocls/buffer.hpp"
#include "ocls/context.hpp"
#include "ocls/define_map.hpp"
#include "ocls/device.hpp"
#include "ocls/energy.hpp"
#include "ocls/error.hpp"
#include "ocls/kernel.hpp"
#include "ocls/ndrange.hpp"
