// A persistent tuning database: (device, kernel, problem) -> best-found
// configuration. This is the downstream half of the auto-tuning story the
// paper's evaluation revolves around — CLBlast ships exactly such a
// database filled by its tuner, and falls back to built-in defaults for
// unknown devices/shapes (the paper's Section VI-B fallback behaviour).
//
// The store is a flat text file, one record per line:
//   device<TAB>kernel<TAB>problem<TAB>k1=v1 k2=v2 ...
// Keys are free-form strings; values are the textual forms used for
// preprocessor defines, so a record can be replayed into an
// ocls::define_map directly.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace blasmini {

/// One stored configuration: parameter name -> textual value.
using record = std::map<std::string, std::string>;

class tuning_db {
public:
  tuning_db() = default;

  /// Loads a database file; missing files yield an empty database.
  static tuning_db load(const std::string& path);

  /// Writes the database; throws std::runtime_error on I/O failure.
  /// Crash-safe: the content goes to a sibling temp file (fsynced where
  /// supported) which atomically renames over `path`, so every consumer
  /// sharing the database sees either the old or the new content — a crash
  /// mid-save can no longer truncate it. `progress` is a test-only
  /// fault-injection hook, called after each record line is written to the
  /// temp file (1-based count).
  void save(const std::string& path,
            const std::function<void(std::size_t)>& progress = {}) const;

  [[nodiscard]] std::optional<record> lookup(const std::string& device,
                                             const std::string& kernel,
                                             const std::string& problem) const;

  void store(const std::string& device, const std::string& kernel,
             const std::string& problem, record config);

  /// Every (problem, config) stored for one (device, kernel), in ascending
  /// problem-key order — the enumeration the size dispatcher walks to find
  /// nearest tuned shapes. Deterministic: the underlying map is ordered.
  [[nodiscard]] std::vector<std::pair<std::string, record>> entries_for(
      const std::string& device, const std::string& kernel) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

private:
  struct key {
    std::string device;
    std::string kernel;
    std::string problem;

    friend bool operator<(const key& a, const key& b) {
      return std::tie(a.device, a.kernel, a.problem) <
             std::tie(b.device, b.kernel, b.problem);
    }
  };

  std::map<key, record> entries_;
};

}  // namespace blasmini
