// blasmini::dispatcher — multi-size dynamic dispatch for the auto-tuned
// GEMM (the production-traffic half of the CLBlast story; the Kernel Tuning
// Toolkit paper demonstrates the same dynamic-autotuning-for-varying-inputs
// workflow).
//
// A library tune targets one problem size; production traffic has arbitrary
// sizes. The dispatcher closes the gap in three stages:
//
//   1. Grid tuning. tune_grid() tunes the kernel over a configurable
//      problem-size grid, each grid point under its own crash-safe session
//      journal (DESIGN.md §9) — a SIGKILLed grid tune resumed on the same
//      journal directory replays every measured prefix from the stores and
//      converges bit-identically to the uninterrupted run. Winners land in
//      the shared tuning_db, exactly like single-shape tunes.
//   2. Size-aware dispatch. dispatch(m, n, k) serves exact database hits
//      directly; an *unseen* size gets the configuration of its nearest
//      tuned neighbour under the log-size metric
//          d = sqrt(sum_i (ln a_i - ln b_i)^2),  i in {m, n, k}
//      (relative size differences matter, absolute ones do not). When the
//      per-size journals are available, a surrogate forest trained on every
//      journal record re-ranks the k nearest neighbours' best
//      configurations at the query size and may overrule plain
//      nearest-neighbour. Every served configuration is constraint-checked
//      against the query shape; the kernel defaults remain the final
//      fallback.
//   3. Background refinement. A dispatch miss enqueues the exact shape on a
//      bounded refinement queue; refine() drains it by exact-shape tuning
//      (journaled like grid points), so a hot production size graduates
//      from "served nearest config" to "served its own tuned config".
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "atf/kernels/xgemm_direct.hpp"
#include "atf/search/surrogate_model.hpp"
#include "atf/session/result_store.hpp"
#include "blasmini/gemm.hpp"
#include "blasmini/tuning_db.hpp"
#include "ocls/ocls.hpp"

namespace blasmini {

/// A set of problem shapes to grid-tune. Built explicitly, from per-axis
/// factor lists (cross product), or parsed from a compact spec string.
struct size_grid {
  std::vector<atf::kernels::xgemm::problem> sizes;

  /// Cross product of per-axis extents: every (m, n, k) with m in ms,
  /// n in ns, k in ks, in lexicographic order.
  [[nodiscard]] static size_grid cross(const std::vector<std::size_t>& ms,
                                       const std::vector<std::size_t>& ns,
                                       const std::vector<std::size_t>& ks);

  /// Parses "8,32x8,32x8,64" (per-axis comma lists, 'x'-separated — the
  /// cross product) or "10x500x64;20x576x25" (';'-separated explicit
  /// shapes); the two forms combine across ';'. Throws std::invalid_argument
  /// on malformed specs or zero extents.
  [[nodiscard]] static size_grid parse(const std::string& spec);

  [[nodiscard]] bool empty() const noexcept { return sizes.empty(); }
};

/// Dispatch policy knobs. The defaults serve nearest-neighbour with
/// surrogate re-ranking over 3 neighbours when journals are present.
struct dispatch_options {
  /// Budget/technique/seed template for grid and refinement tunes. The
  /// per-size seed is derived from this seed and the problem signature, so
  /// grid points explore independent streams deterministically. The
  /// journal field is ignored (journal_dir owns per-size paths).
  tune_options tuning;
  /// Non-empty: per-size session journals live here ("<device>-<sig>.jsonl")
  /// and grid tuning becomes crash-safe and warm-startable. Empty: tunes
  /// are unjournaled and re-ranking stays off (no training data).
  std::string journal_dir;
  /// Stored sizes considered per query (k of the k-nearest-neighbour step).
  std::size_t neighbors = 3;
  /// Re-rank the neighbours' configurations with a surrogate forest trained
  /// on the per-size journal records (requires journal_dir).
  bool surrogate_rerank = true;
  /// Valid journal records required before the re-ranker trains; below the
  /// gate dispatch stays plain nearest-neighbour.
  std::size_t min_rerank_samples = 64;
  /// Seed of the re-ranker forest (independent of the tuning seed).
  std::uint64_t rerank_seed = 0x5eed;
  /// Refinement-queue bound; older pending shapes are kept, new misses
  /// beyond the bound are dropped.
  std::size_t max_pending = 64;
};

class dispatcher {
public:
  /// `db` must outlive the dispatcher and may be shared with plain
  /// gemm_executor users; grid and refinement winners are stored into it.
  dispatcher(ocls::device dev, tuning_db* db, dispatch_options opts = {});

  /// Tunes every grid size in order (skipping nothing — completed sizes
  /// resume instantly from their journals) and reloads the dispatch state.
  /// Returns the number of grid points tuned.
  std::size_t tune_grid(const size_grid& grid);

  /// Where a dispatch decision came from, strongest to weakest.
  enum class source { exact, reranked, nearest, defaults };

  struct decision {
    atf::kernels::xgemm::params params;
    source from = source::defaults;
    /// Signature of the stored size whose configuration was served
    /// (empty for exact hits and default fallbacks).
    std::string neighbor;
    /// Log-space distance to that size (0 for exact hits).
    double distance = 0.0;
  };

  /// The dispatch decision for an arbitrary shape. Cold shapes (anything
  /// but an exact hit) are enqueued for refinement as a side effect.
  decision dispatch(std::size_t m, std::size_t n, std::size_t k);

  /// dispatch().params — the drop-in replacement for
  /// gemm_executor::params_for once a grid is tuned.
  atf::kernels::xgemm::params params_for(std::size_t m, std::size_t n,
                                         std::size_t k);

  /// Dispatches and executes in one step; returns the modeled kernel time.
  double run(std::size_t m, std::size_t n, std::size_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c);

  /// Shapes waiting for exact-shape refinement, oldest first.
  [[nodiscard]] std::vector<atf::kernels::xgemm::problem>
  pending_refinements() const;

  /// Drains up to `max_tunes` pending shapes by exact-shape tuning
  /// (journaled like grid points); returns the number tuned. Subsequent
  /// dispatches of a refined shape are exact hits.
  std::size_t refine(std::size_t max_tunes = 1);

  /// Journal path of one problem signature under journal_dir (empty when
  /// journals are disabled). Exposed so tests and tools can stage crashes.
  [[nodiscard]] std::string journal_path(const std::string& signature) const;

  /// Re-reads the database and every per-size journal and refits the
  /// re-ranker — a fresh process pointed at an existing database/journal
  /// directory calls this (tune_grid and refine do it automatically).
  void reload();

  /// Stored sizes dispatch currently selects among (ascending signature).
  [[nodiscard]] std::vector<std::string> known_sizes() const;

  /// Valid journal records backing the re-ranker (0 = re-ranking off).
  [[nodiscard]] std::size_t rerank_samples() const noexcept {
    return rerank_samples_;
  }

  /// Misses dropped because the refinement queue was full — previously a
  /// silent loss. Operators watch this (atf_served surfaces it in its
  /// stats) to size max_pending; it only ever grows, refine() does not
  /// reset it.
  [[nodiscard]] std::uint64_t dropped_refinements() const noexcept {
    return dropped_refinements_;
  }

  [[nodiscard]] const dispatch_options& options() const noexcept {
    return opts_;
  }
  [[nodiscard]] gemm_executor& executor() noexcept { return executor_; }

private:
  struct stored_size {
    atf::kernels::xgemm::problem shape;
    std::string signature;
    atf::kernels::xgemm::params params;  ///< the db winner for this shape
  };

  /// Tunes one shape under its per-size journal/seed and stores the winner.
  void tune_one(const atf::kernels::xgemm::problem& shape);
  void enqueue_refinement(const atf::kernels::xgemm::problem& shape);
  [[nodiscard]] std::uint64_t seed_for(const std::string& signature) const;

  ocls::device device_;
  tuning_db* db_;
  dispatch_options opts_;
  gemm_executor executor_;

  std::vector<stored_size> stored_;         ///< ascending signature
  atf::search::surrogate_model reranker_;
  std::size_t rerank_samples_ = 0;
  std::deque<atf::kernels::xgemm::problem> pending_;
  std::uint64_t dropped_refinements_ = 0;
};

}  // namespace blasmini
