// blasmini::gemm — a CLBlast-style auto-tuned GEMM routine on top of the
// simulator and ATF: the downstream-consumer layer of the auto-tuning
// pipeline.
//
//   blasmini::gemm_executor gemm(device, &db);
//   gemm.tune(m, n, k);                   // once per device/shape; fills db
//   auto t = gemm.run(m, n, k, A, B, C);  // dispatches with tuned params
//
// run() uses, in order of preference: the database entry for the exact
// (device, shape); otherwise the kernel's built-in defaults — the same
// fallback logic CLBlast applies, whose performance consequences Section
// VI-B quantifies.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "atf/kernels/xgemm_direct.hpp"
#include "blasmini/tuning_db.hpp"
#include "ocls/ocls.hpp"

namespace blasmini {

class gemm_executor {
public:
  /// `db` may be null: every dispatch then uses the kernel defaults.
  explicit gemm_executor(ocls::device dev, tuning_db* db = nullptr);

  /// Tunes XgemmDirect for this shape with ATF (simulated annealing under
  /// an evaluation budget) and stores the best configuration in the
  /// database. Returns the best-found parameters.
  atf::kernels::xgemm::params tune(std::size_t m, std::size_t n,
                                   std::size_t k,
                                   std::uint64_t evaluations = 20'000,
                                   std::uint64_t seed = 1);

  /// Computes C[m x n] = A[m x k] * B[k x n] functionally on the simulated
  /// device using the best-known parameters; returns the modeled kernel
  /// time in nanoseconds.
  double run(std::size_t m, std::size_t n, std::size_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c) const;

  /// The parameters run() would use for this shape (db entry or defaults).
  [[nodiscard]] atf::kernels::xgemm::params params_for(std::size_t m,
                                                       std::size_t n,
                                                       std::size_t k) const;

  [[nodiscard]] static std::string problem_signature(std::size_t m,
                                                     std::size_t n,
                                                     std::size_t k);

private:
  ocls::device device_;
  tuning_db* db_;
};

}  // namespace blasmini
