// blasmini::gemm — a CLBlast-style auto-tuned GEMM routine on top of the
// simulator and ATF: the downstream-consumer layer of the auto-tuning
// pipeline.
//
//   blasmini::gemm_executor gemm(device, &db);
//   gemm.tune(m, n, k);                   // once per device/shape; fills db
//   auto t = gemm.run(m, n, k, A, B, C);  // dispatches with tuned params
//
// run() uses, in order of preference: the database entry for the exact
// (device, shape); otherwise the kernel's built-in defaults — the same
// fallback logic CLBlast applies, whose performance consequences Section
// VI-B quantifies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "atf/kernels/xgemm_direct.hpp"
#include "blasmini/tuning_db.hpp"
#include "ocls/ocls.hpp"

namespace blasmini {

/// Search techniques tune() can drive. `opentuner` is the AUC-bandit
/// ensemble (the historical default); `surrogate` the model-guided search —
/// both reusable by the size-grid dispatcher without touching this layer.
enum class tune_technique { opentuner, annealing, surrogate, random };

/// Knobs of one tuning run. The defaults reproduce the historical
/// tune(m, n, k) behaviour exactly: ensemble search, 20'000 evaluations,
/// seed 1, no session journal (pinned by a regression test).
struct tune_options {
  tune_technique technique = tune_technique::opentuner;
  std::uint64_t evaluations = 20'000;
  std::uint64_t seed = 1;
  /// Non-empty: attach a crash-safe session journal (DESIGN.md §9) at this
  /// path — a killed tune resumed on the same journal replays its measured
  /// prefix from the store and converges to the uninterrupted result.
  std::string journal;
  /// Called once per *fresh* cost-function invocation (store hits replayed
  /// from a journal never reach the cost function). Progress reporting —
  /// and the honest crash the kill-and-resume harness stages.
  std::function<void()> on_measure;
};

/// Rebuilds kernel parameters from a database record, falling back to the
/// kernel defaults *per parameter* for missing or unparsable values — a
/// hand-edited or corrupt database line degrades gracefully, it never
/// throws at dispatch time.
[[nodiscard]] atf::kernels::xgemm::params params_from_record(
    const record& config);

class gemm_executor {
public:
  /// `db` may be null: every dispatch then uses the kernel defaults.
  explicit gemm_executor(ocls::device dev, tuning_db* db = nullptr);

  /// Tunes XgemmDirect for this shape with ATF under an evaluation budget
  /// and stores the best configuration in the database. Returns the
  /// best-found parameters. This overload keeps the historical defaults
  /// (ensemble search, no journal).
  atf::kernels::xgemm::params tune(std::size_t m, std::size_t n,
                                   std::size_t k,
                                   std::uint64_t evaluations = 20'000,
                                   std::uint64_t seed = 1);

  /// Full-control overload: technique, budget, seed and session journal.
  atf::kernels::xgemm::params tune(std::size_t m, std::size_t n,
                                   std::size_t k, const tune_options& opts);

  /// Computes C[m x n] = A[m x k] * B[k x n] functionally on the simulated
  /// device using the best-known parameters; returns the modeled kernel
  /// time in nanoseconds.
  double run(std::size_t m, std::size_t n, std::size_t k,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c) const;

  /// run() with explicit parameters instead of the db/defaults chain — the
  /// entry point the size dispatcher executes its decisions through.
  double run_with(const atf::kernels::xgemm::params& p, std::size_t m,
                  std::size_t n, std::size_t k, std::span<const float> a,
                  std::span<const float> b, std::span<float> c) const;

  /// Modeled kernel time (ns) of one configuration on this device, without
  /// computing the result matrix — the measurement behind every tuning run
  /// and the dispatched-vs-oracle-vs-defaults quality comparisons. Throws
  /// ocls::error when the configuration cannot launch.
  [[nodiscard]] double modeled_time_ns(
      std::size_t m, std::size_t n, std::size_t k,
      const atf::kernels::xgemm::params& p) const;

  /// The parameters run() would use for this shape (db entry or defaults).
  [[nodiscard]] atf::kernels::xgemm::params params_for(std::size_t m,
                                                       std::size_t n,
                                                       std::size_t k) const;

  [[nodiscard]] const ocls::device& device() const noexcept {
    return device_;
  }
  [[nodiscard]] tuning_db* db() const noexcept { return db_; }

  [[nodiscard]] static std::string problem_signature(std::size_t m,
                                                     std::size_t n,
                                                     std::size_t k);

private:
  ocls::device device_;
  tuning_db* db_;
};

}  // namespace blasmini
