#include "blasmini/gemm.hpp"

#include <cmath>
#include <memory>

#include "atf/atf.hpp"
#include "atf/search/opentuner_search.hpp"
#include "atf/search/simulated_annealing.hpp"

namespace blasmini {

namespace xg = atf::kernels::xgemm;

gemm_executor::gemm_executor(ocls::device dev, tuning_db* db)
    : device_(std::move(dev)), db_(db) {}

std::string gemm_executor::problem_signature(std::size_t m, std::size_t n,
                                             std::size_t k) {
  return std::to_string(m) + "x" + std::to_string(n) + "x" +
         std::to_string(k);
}

xg::params gemm_executor::params_for(std::size_t m, std::size_t n,
                                     std::size_t k) const {
  if (db_ != nullptr) {
    const auto hit = db_->lookup(device_.name(), "XgemmDirect",
                                 problem_signature(m, n, k));
    if (hit.has_value()) {
      ocls::define_map defines;
      for (const auto& [name, value] : *hit) {
        defines.set(name, value);
      }
      return xg::params::from_defines(defines);
    }
  }
  return xg::params::defaults();
}

xg::params gemm_executor::tune(std::size_t m, std::size_t n, std::size_t k,
                               std::uint64_t evaluations,
                               std::uint64_t seed) {
  const xg::problem prob{m, n, k};
  auto setup = xg::make_tuning_parameters(
      prob, xg::size_mode::general,
      xg::device_limits::of(device_.profile()));

  const ocls::kernel kernel = xg::make_kernel();
  auto ctx = std::make_shared<ocls::context>(device_);

  atf::tuner tuner;
  tuner.tuning_parameters(setup.group());
  tuner.search_technique(
      std::make_unique<atf::search::opentuner_search>(seed));
  tuner.abort_condition(atf::cond::evaluations(evaluations));
  tuner.cache_evaluations(true);

  auto measure_params = [&](const xg::params& p) {
    ocls::command_queue queue(ctx);
    return queue
        .launch(kernel, xg::launch_range(prob, p, xg::size_mode::general),
                {}, xg::make_defines(prob, p))
        .profile_ns();
  };

  auto result = tuner.tune([&](const atf::configuration& config) {
    xg::params p;
    p.wgd = config["WGD"];
    p.mdimcd = config["MDIMCD"];
    p.ndimcd = config["NDIMCD"];
    p.mdimad = config["MDIMAD"];
    p.ndimbd = config["NDIMBD"];
    p.kwid = config["KWID"];
    p.vwmd = config["VWMD"];
    p.vwnd = config["VWND"];
    p.pada = config["PADA"];
    p.padb = config["PADB"];
    ocls::command_queue queue(ctx);
    try {
      return queue
          .launch(kernel, xg::launch_range(prob, p, xg::size_mode::general),
                  {}, xg::make_defines(prob, p))
          .profile_ns();
    } catch (const ocls::error& error) {
      throw atf::evaluation_error(error.what());
    }
  });

  const auto& best = result.best_configuration();
  ocls::define_map defines;
  xg::params p;
  p.wgd = best["WGD"];
  p.mdimcd = best["MDIMCD"];
  p.ndimcd = best["NDIMCD"];
  p.mdimad = best["MDIMAD"];
  p.ndimbd = best["NDIMBD"];
  p.kwid = best["KWID"];
  p.vwmd = best["VWMD"];
  p.vwnd = best["VWND"];
  p.pada = best["PADA"];
  p.padb = best["PADB"];
  // A tuned library must never regress below its shipped defaults: if the
  // search budget was too small to beat them, keep the defaults (the same
  // guard CLBlast applies when adopting tuner output).
  if (xg::valid(prob, xg::params::defaults(), xg::size_mode::general,
                xg::device_limits::of(device_.profile())) &&
      measure_params(xg::params::defaults()) < *result.best_cost) {
    p = xg::params::defaults();
  }
  if (db_ != nullptr) {
    p.to_defines(defines);
    record config;
    for (const auto& [name, value] : defines.all()) {
      config[name] = value;
    }
    db_->store(device_.name(), "XgemmDirect", problem_signature(m, n, k),
               std::move(config));
  }
  return p;
}

double gemm_executor::run(std::size_t m, std::size_t n, std::size_t k,
                          std::span<const float> a, std::span<const float> b,
                          std::span<float> c) const {
  const xg::problem prob{m, n, k};
  const xg::params p = params_for(m, n, k);

  auto ctx = std::make_shared<ocls::context>(device_);
  ctx->execute_functionally(true);
  ocls::command_queue queue(ctx);

  auto a_buf = std::make_shared<ocls::buffer<float>>(
      std::vector<float>(a.begin(), a.end()));
  auto b_buf = std::make_shared<ocls::buffer<float>>(
      std::vector<float>(b.begin(), b.end()));
  auto c_buf = std::make_shared<ocls::buffer<float>>(m * n);

  ocls::kernel_args args{ocls::arg(static_cast<double>(m)),
                         ocls::arg(static_cast<double>(n)),
                         ocls::arg(static_cast<double>(k)),
                         ocls::arg(a_buf), ocls::arg(b_buf),
                         ocls::arg(c_buf)};
  const auto event =
      queue.launch(xg::make_kernel(),
                   xg::launch_range(prob, p, xg::size_mode::general), args,
                   xg::make_defines(prob, p));
  const auto host = c_buf->host();
  std::copy(host.begin(), host.end(), c.begin());
  return event.profile_ns();
}

}  // namespace blasmini
