#include "blasmini/gemm.hpp"

#include <cmath>
#include <memory>

#include "atf/atf.hpp"
#include "atf/search/opentuner_search.hpp"
#include "atf/search/random_search.hpp"
#include "atf/search/simulated_annealing.hpp"
#include "atf/search/surrogate_search.hpp"

namespace blasmini {

namespace xg = atf::kernels::xgemm;

namespace {

xg::params params_from_config(const atf::configuration& config) {
  xg::params p;
  p.wgd = config["WGD"];
  p.mdimcd = config["MDIMCD"];
  p.ndimcd = config["NDIMCD"];
  p.mdimad = config["MDIMAD"];
  p.ndimbd = config["NDIMBD"];
  p.kwid = config["KWID"];
  p.vwmd = config["VWMD"];
  p.vwnd = config["VWND"];
  p.pada = config["PADA"];
  p.padb = config["PADB"];
  return p;
}

std::unique_ptr<atf::search_technique> make_technique(tune_technique which,
                                                      std::uint64_t seed) {
  switch (which) {
    case tune_technique::annealing:
      return std::make_unique<atf::search::simulated_annealing>(4.0, seed);
    case tune_technique::surrogate:
      return std::make_unique<atf::search::surrogate_search>(seed);
    case tune_technique::random:
      return std::make_unique<atf::search::random_search>(seed);
    case tune_technique::opentuner:
      break;
  }
  return std::make_unique<atf::search::opentuner_search>(seed);
}

}  // namespace

xg::params params_from_record(const record& config) {
  ocls::define_map defines;
  for (const auto& [name, value] : config) {
    defines.set(name, value);
  }
  xg::params p;  // the defaults; each parameter overridden independently
  const auto read_uint = [&](const char* name, std::uint64_t& out) {
    try {
      if (defines.contains(name)) {
        out = defines.get_uint(name);
      }
    } catch (const ocls::error&) {
      // unparsable value: keep the default
    }
  };
  const auto read_bool = [&](const char* name, bool& out) {
    try {
      if (defines.contains(name)) {
        out = defines.get_bool(name);
      }
    } catch (const ocls::error&) {
    }
  };
  read_uint("WGD", p.wgd);
  read_uint("MDIMCD", p.mdimcd);
  read_uint("NDIMCD", p.ndimcd);
  read_uint("MDIMAD", p.mdimad);
  read_uint("NDIMBD", p.ndimbd);
  read_uint("KWID", p.kwid);
  read_uint("VWMD", p.vwmd);
  read_uint("VWND", p.vwnd);
  read_bool("PADA", p.pada);
  read_bool("PADB", p.padb);
  return p;
}

gemm_executor::gemm_executor(ocls::device dev, tuning_db* db)
    : device_(std::move(dev)), db_(db) {}

std::string gemm_executor::problem_signature(std::size_t m, std::size_t n,
                                             std::size_t k) {
  return std::to_string(m) + "x" + std::to_string(n) + "x" +
         std::to_string(k);
}

xg::params gemm_executor::params_for(std::size_t m, std::size_t n,
                                     std::size_t k) const {
  if (db_ != nullptr) {
    const auto hit = db_->lookup(device_.name(), "XgemmDirect",
                                 problem_signature(m, n, k));
    if (hit.has_value()) {
      return params_from_record(*hit);
    }
  }
  return xg::params::defaults();
}

xg::params gemm_executor::tune(std::size_t m, std::size_t n, std::size_t k,
                               std::uint64_t evaluations,
                               std::uint64_t seed) {
  tune_options opts;
  opts.evaluations = evaluations;
  opts.seed = seed;
  return tune(m, n, k, opts);
}

xg::params gemm_executor::tune(std::size_t m, std::size_t n, std::size_t k,
                               const tune_options& opts) {
  const xg::problem prob{m, n, k};
  auto setup = xg::make_tuning_parameters(
      prob, xg::size_mode::general,
      xg::device_limits::of(device_.profile()));

  const ocls::kernel kernel = xg::make_kernel();
  auto ctx = std::make_shared<ocls::context>(device_);

  atf::tuner tuner;
  tuner.tuning_parameters(setup.group());
  tuner.search_technique(make_technique(opts.technique, opts.seed));
  tuner.abort_condition(atf::cond::evaluations(opts.evaluations));
  tuner.cache_evaluations(true);
  if (!opts.journal.empty()) {
    tuner.session(opts.journal);
  }

  auto measure_params = [&](const xg::params& p) {
    ocls::command_queue queue(ctx);
    return queue
        .launch(kernel, xg::launch_range(prob, p, xg::size_mode::general),
                {}, xg::make_defines(prob, p))
        .profile_ns();
  };

  auto result = tuner.tune([&](const atf::configuration& config) {
    if (opts.on_measure) {
      opts.on_measure();
    }
    const xg::params p = params_from_config(config);
    ocls::command_queue queue(ctx);
    try {
      return queue
          .launch(kernel, xg::launch_range(prob, p, xg::size_mode::general),
                  {}, xg::make_defines(prob, p))
          .profile_ns();
    } catch (const ocls::error& error) {
      throw atf::evaluation_error(error.what());
    }
  });

  xg::params p = params_from_config(result.best_configuration());
  // A tuned library must never regress below its shipped defaults: if the
  // search budget was too small to beat them, keep the defaults (the same
  // guard CLBlast applies when adopting tuner output).
  if (xg::valid(prob, xg::params::defaults(), xg::size_mode::general,
                xg::device_limits::of(device_.profile())) &&
      measure_params(xg::params::defaults()) < *result.best_cost) {
    p = xg::params::defaults();
  }
  if (db_ != nullptr) {
    ocls::define_map defines;
    p.to_defines(defines);
    record config;
    for (const auto& [name, value] : defines.all()) {
      config[name] = value;
    }
    db_->store(device_.name(), "XgemmDirect", problem_signature(m, n, k),
               std::move(config));
  }
  return p;
}

double gemm_executor::modeled_time_ns(std::size_t m, std::size_t n,
                                      std::size_t k,
                                      const xg::params& p) const {
  const xg::problem prob{m, n, k};
  auto ctx = std::make_shared<ocls::context>(device_);
  ocls::command_queue queue(ctx);
  return queue
      .launch(xg::make_kernel(),
              xg::launch_range(prob, p, xg::size_mode::general), {},
              xg::make_defines(prob, p))
      .profile_ns();
}

double gemm_executor::run(std::size_t m, std::size_t n, std::size_t k,
                          std::span<const float> a, std::span<const float> b,
                          std::span<float> c) const {
  return run_with(params_for(m, n, k), m, n, k, a, b, c);
}

double gemm_executor::run_with(const xg::params& p, std::size_t m,
                               std::size_t n, std::size_t k,
                               std::span<const float> a,
                               std::span<const float> b,
                               std::span<float> c) const {
  const xg::problem prob{m, n, k};

  auto ctx = std::make_shared<ocls::context>(device_);
  ctx->execute_functionally(true);
  ocls::command_queue queue(ctx);

  auto a_buf = std::make_shared<ocls::buffer<float>>(
      std::vector<float>(a.begin(), a.end()));
  auto b_buf = std::make_shared<ocls::buffer<float>>(
      std::vector<float>(b.begin(), b.end()));
  auto c_buf = std::make_shared<ocls::buffer<float>>(m * n);

  ocls::kernel_args args{ocls::arg(static_cast<double>(m)),
                         ocls::arg(static_cast<double>(n)),
                         ocls::arg(static_cast<double>(k)),
                         ocls::arg(a_buf), ocls::arg(b_buf),
                         ocls::arg(c_buf)};
  const auto event =
      queue.launch(xg::make_kernel(),
                   xg::launch_range(prob, p, xg::size_mode::general), args,
                   xg::make_defines(prob, p));
  const auto host = c_buf->host();
  std::copy(host.begin(), host.end(), c.begin());
  return event.profile_ns();
}

}  // namespace blasmini
