#include "blasmini/tuning_db.hpp"

#include <fstream>
#include <stdexcept>

#include "atf/common/string_utils.hpp"

namespace blasmini {

tuning_db tuning_db::load(const std::string& path) {
  tuning_db db;
  std::ifstream in(path);
  if (!in) {
    return db;  // no database yet: every lookup misses
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') {
      continue;
    }
    const auto fields = atf::common::split(line, '\t');
    if (fields.size() != 4) {
      continue;  // tolerate foreign lines
    }
    record config;
    for (const auto& pair : atf::common::split(fields[3], ' ')) {
      const auto eq = pair.find('=');
      if (eq == std::string::npos) {
        continue;
      }
      config[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
    db.entries_[{fields[0], fields[1], fields[2]}] = std::move(config);
  }
  return db;
}

void tuning_db::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("tuning_db: cannot write '" + path + "'");
  }
  out << "# blasmini tuning database: device\tkernel\tproblem\tconfig\n";
  for (const auto& [key, config] : entries_) {
    out << key.device << '\t' << key.kernel << '\t' << key.problem << '\t';
    bool first = true;
    for (const auto& [name, value] : config) {
      if (!first) {
        out << ' ';
      }
      out << name << '=' << value;
      first = false;
    }
    out << '\n';
  }
}

std::optional<record> tuning_db::lookup(const std::string& device,
                                        const std::string& kernel,
                                        const std::string& problem) const {
  const auto it = entries_.find({device, kernel, problem});
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void tuning_db::store(const std::string& device, const std::string& kernel,
                      const std::string& problem, record config) {
  entries_[{device, kernel, problem}] = std::move(config);
}

}  // namespace blasmini
