#include "blasmini/tuning_db.hpp"

#include <fstream>
#include <stdexcept>

#include "atf/common/string_utils.hpp"

namespace blasmini {

namespace {

// The file format delimits records with tabs and newlines and config pairs
// with spaces and '='. Free-form keys and values may contain any of those,
// so every field is escaped on save and unescaped on load — symmetric, and
// a database written by an older build (no backslashes) reads unchanged.
std::string escape_field(const std::string& raw, bool config_field) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case ' ':
        if (config_field) {
          out += "\\s";
        } else {
          out += c;
        }
        break;
      case '=':
        if (config_field) {
          out += "\\e";
        } else {
          out += c;
        }
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string unescape_field(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\' || i + 1 == escaped.size()) {
      out += escaped[i];
      continue;
    }
    switch (escaped[++i]) {
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      case 's':
        out += ' ';
        break;
      case 'e':
        out += '=';
        break;
      default:  // includes "\\\\"
        out += escaped[i];
    }
  }
  return out;
}

}  // namespace

tuning_db tuning_db::load(const std::string& path) {
  tuning_db db;
  std::ifstream in(path);
  if (!in) {
    return db;  // no database yet: every lookup misses
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') {
      continue;
    }
    const auto fields = atf::common::split(line, '\t');
    if (fields.size() != 4) {
      continue;  // tolerate foreign lines
    }
    record config;
    for (const auto& pair : atf::common::split(fields[3], ' ')) {
      // Literal '=' inside a name or value is escaped ("\e"), so the first
      // raw '=' is always the delimiter.
      const auto eq = pair.find('=');
      if (eq == std::string::npos) {
        continue;
      }
      config[unescape_field(pair.substr(0, eq))] =
          unescape_field(pair.substr(eq + 1));
    }
    db.entries_[{unescape_field(fields[0]), unescape_field(fields[1]),
                 unescape_field(fields[2])}] = std::move(config);
  }
  return db;
}

void tuning_db::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("tuning_db: cannot write '" + path + "'");
  }
  out << "# blasmini tuning database: device\tkernel\tproblem\tconfig\n";
  for (const auto& [key, config] : entries_) {
    // A device name starting with '#' would read back as a comment line;
    // "\#" unescapes to '#' (the default case), so the record survives.
    if (!key.device.empty() && key.device.front() == '#') {
      out << '\\';
    }
    out << escape_field(key.device, false) << '\t'
        << escape_field(key.kernel, false) << '\t'
        << escape_field(key.problem, false) << '\t';
    bool first = true;
    for (const auto& [name, value] : config) {
      if (!first) {
        out << ' ';
      }
      out << escape_field(name, true) << '=' << escape_field(value, true);
      first = false;
    }
    out << '\n';
  }
}

std::optional<record> tuning_db::lookup(const std::string& device,
                                        const std::string& kernel,
                                        const std::string& problem) const {
  const auto it = entries_.find({device, kernel, problem});
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void tuning_db::store(const std::string& device, const std::string& kernel,
                      const std::string& problem, record config) {
  entries_[{device, kernel, problem}] = std::move(config);
}

std::vector<std::pair<std::string, record>> tuning_db::entries_for(
    const std::string& device, const std::string& kernel) const {
  std::vector<std::pair<std::string, record>> out;
  for (auto it = entries_.lower_bound({device, kernel, ""});
       it != entries_.end() && it->first.device == device &&
       it->first.kernel == kernel;
       ++it) {
    out.emplace_back(it->first.problem, it->second);
  }
  return out;
}

}  // namespace blasmini
