#include "blasmini/tuning_db.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define BLASMINI_HAVE_FSYNC 1
#endif

#include "atf/common/string_utils.hpp"

namespace blasmini {

namespace {

/// Best-effort fsync of a closed file (durability of the temp content
/// before it renames over the live database). No-op without fsync.
void sync_file(const std::string& path) {
#if BLASMINI_HAVE_FSYNC
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

/// Best-effort fsync of the directory holding `path` (durability of the
/// rename itself).
void sync_parent_directory(const std::string& path) {
#if BLASMINI_HAVE_FSYNC
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

// The file format delimits records with tabs and newlines and config pairs
// with spaces and '='. Free-form keys and values may contain any of those,
// so every field is escaped on save and unescaped on load — symmetric, and
// a database written by an older build (no backslashes) reads unchanged.
std::string escape_field(const std::string& raw, bool config_field) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case ' ':
        if (config_field) {
          out += "\\s";
        } else {
          out += c;
        }
        break;
      case '=':
        if (config_field) {
          out += "\\e";
        } else {
          out += c;
        }
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string unescape_field(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\' || i + 1 == escaped.size()) {
      out += escaped[i];
      continue;
    }
    switch (escaped[++i]) {
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      case 's':
        out += ' ';
        break;
      case 'e':
        out += '=';
        break;
      default:  // includes "\\\\"
        out += escaped[i];
    }
  }
  return out;
}

}  // namespace

tuning_db tuning_db::load(const std::string& path) {
  tuning_db db;
  std::ifstream in(path);
  if (!in) {
    return db;  // no database yet: every lookup misses
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '#') {
      continue;
    }
    const auto fields = atf::common::split(line, '\t');
    if (fields.size() != 4) {
      continue;  // tolerate foreign lines
    }
    record config;
    for (const auto& pair : atf::common::split(fields[3], ' ')) {
      // Literal '=' inside a name or value is escaped ("\e"), so the first
      // raw '=' is always the delimiter.
      const auto eq = pair.find('=');
      if (eq == std::string::npos) {
        continue;
      }
      config[unescape_field(pair.substr(0, eq))] =
          unescape_field(pair.substr(eq + 1));
    }
    db.entries_[{unescape_field(fields[0]), unescape_field(fields[1]),
                 unescape_field(fields[2])}] = std::move(config);
  }
  return db;
}

void tuning_db::save(const std::string& path,
                     const std::function<void(std::size_t)>& progress) const {
  // Write-to-temp + atomic rename: a crash mid-save must never truncate
  // the database every consumer shares. The temp file is a sibling so the
  // rename stays within one filesystem.
  const std::string temp = path + ".tmp";
  std::ofstream out(temp, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("tuning_db: cannot write '" + temp + "'");
  }
  out << "# blasmini tuning database: device\tkernel\tproblem\tconfig\n";
  std::size_t written = 0;
  for (const auto& [key, config] : entries_) {
    // A device name starting with '#' would read back as a comment line;
    // "\#" unescapes to '#' (the default case), so the record survives.
    if (!key.device.empty() && key.device.front() == '#') {
      out << '\\';
    }
    out << escape_field(key.device, false) << '\t'
        << escape_field(key.kernel, false) << '\t'
        << escape_field(key.problem, false) << '\t';
    bool first = true;
    for (const auto& [name, value] : config) {
      if (!first) {
        out << ' ';
      }
      out << escape_field(name, true) << '=' << escape_field(value, true);
      first = false;
    }
    out << '\n';
    ++written;
    if (progress) {
      out.flush();
      progress(written);
    }
  }
  out.flush();
  if (!out) {
    out.close();
    std::remove(temp.c_str());
    throw std::runtime_error("tuning_db: write to '" + temp + "' failed");
  }
  out.close();
  sync_file(temp);
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    throw std::runtime_error("tuning_db: cannot rename '" + temp +
                             "' over '" + path + "'");
  }
  sync_parent_directory(path);
}

std::optional<record> tuning_db::lookup(const std::string& device,
                                        const std::string& kernel,
                                        const std::string& problem) const {
  const auto it = entries_.find({device, kernel, problem});
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void tuning_db::store(const std::string& device, const std::string& kernel,
                      const std::string& problem, record config) {
  entries_[{device, kernel, problem}] = std::move(config);
}

std::vector<std::pair<std::string, record>> tuning_db::entries_for(
    const std::string& device, const std::string& kernel) const {
  std::vector<std::pair<std::string, record>> out;
  for (auto it = entries_.lower_bound({device, kernel, ""});
       it != entries_.end() && it->first.device == device &&
       it->first.kernel == kernel;
       ++it) {
    out.emplace_back(it->first.problem, it->second);
  }
  return out;
}

}  // namespace blasmini
