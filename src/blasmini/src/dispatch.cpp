#include "blasmini/dispatch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "atf/common/hash.hpp"
#include "atf/common/string_utils.hpp"
#include "atf/session/journal.hpp"

namespace blasmini {

namespace xg = atf::kernels::xgemm;

namespace {

std::size_t parse_extent(const std::string& text) {
  // stoull accepts "-4" (wrapping to a huge value), leading whitespace and
  // "+"; an extent is digits only.
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("size_grid: bad extent '" + text + "'");
  }
  std::size_t consumed = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("size_grid: bad extent '" + text + "'");
  }
  if (consumed != text.size() || value == 0) {
    throw std::invalid_argument("size_grid: bad extent '" + text + "'");
  }
  return static_cast<std::size_t>(value);
}

std::vector<std::size_t> parse_extent_list(const std::string& text) {
  std::vector<std::size_t> out;
  for (const auto& item : atf::common::split(text, ',')) {
    out.push_back(parse_extent(item));
  }
  if (out.empty()) {
    throw std::invalid_argument("size_grid: empty extent list");
  }
  return out;
}

/// "MxNxK" back to a problem; nullopt for foreign signatures.
std::optional<xg::problem> parse_signature(const std::string& signature) {
  const auto fields = atf::common::split(signature, 'x');
  if (fields.size() != 3) {
    return std::nullopt;
  }
  xg::problem prob;
  std::size_t* const dims[3] = {&prob.m, &prob.n, &prob.k};
  for (std::size_t i = 0; i < 3; ++i) {
    try {
      std::size_t consumed = 0;
      *dims[i] = static_cast<std::size_t>(std::stoull(fields[i], &consumed));
      if (consumed != fields[i].size() || *dims[i] == 0) {
        return std::nullopt;
      }
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  return prob;
}

double log_distance(const xg::problem& a, const xg::problem& b) {
  const auto axis = [](std::size_t x, std::size_t y) {
    const double d = std::log(static_cast<double>(std::max<std::size_t>(x, 1))) -
                     std::log(static_cast<double>(std::max<std::size_t>(y, 1)));
    return d * d;
  };
  return std::sqrt(axis(a.m, b.m) + axis(a.n, b.n) + axis(a.k, b.k));
}

/// File-name-safe rendering of a device name ("Tesla K20m" -> "Tesla_K20m").
std::string sanitize(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '.';
    out += keep ? c : '_';
  }
  return out;
}

/// Feature vector of the re-ranker: the query shape and the configuration,
/// both log-compressed (sizes and power-of-two-ish parameters span orders
/// of magnitude; the forest splits better on their exponents).
atf::search::feature_vector rerank_features(const xg::problem& prob,
                                            const xg::params& p) {
  const auto lg = [](double v) { return std::log2(std::max(v, 1.0)); };
  return {lg(static_cast<double>(prob.m)), lg(static_cast<double>(prob.n)),
          lg(static_cast<double>(prob.k)), lg(static_cast<double>(p.wgd)),
          lg(static_cast<double>(p.mdimcd)),
          lg(static_cast<double>(p.ndimcd)),
          lg(static_cast<double>(p.mdimad)),
          lg(static_cast<double>(p.ndimbd)),
          lg(static_cast<double>(p.kwid)), lg(static_cast<double>(p.vwmd)),
          lg(static_cast<double>(p.vwnd)), p.pada ? 1.0 : 0.0,
          p.padb ? 1.0 : 0.0};
}

/// Rebuilds params from a journal record's (name, value) pairs; nullopt when
/// a parameter is missing (foreign or truncated record).
std::optional<xg::params> params_from_tuning_record(
    const atf::session::tuning_record& rec) {
  const auto config = rec.to_configuration();
  const char* const names[] = {"WGD",    "MDIMCD", "NDIMCD", "MDIMAD",
                               "NDIMBD", "KWID",   "VWMD",   "VWND",
                               "PADA",   "PADB"};
  for (const char* name : names) {
    if (!config.contains(name)) {
      return std::nullopt;
    }
  }
  xg::params p;
  p.wgd = config["WGD"];
  p.mdimcd = config["MDIMCD"];
  p.ndimcd = config["NDIMCD"];
  p.mdimad = config["MDIMAD"];
  p.ndimbd = config["NDIMBD"];
  p.kwid = config["KWID"];
  p.vwmd = config["VWMD"];
  p.vwnd = config["VWND"];
  p.pada = config["PADA"];
  p.padb = config["PADB"];
  return p;
}

}  // namespace

size_grid size_grid::cross(const std::vector<std::size_t>& ms,
                           const std::vector<std::size_t>& ns,
                           const std::vector<std::size_t>& ks) {
  size_grid grid;
  for (const std::size_t m : ms) {
    for (const std::size_t n : ns) {
      for (const std::size_t k : ks) {
        if (m == 0 || n == 0 || k == 0) {
          throw std::invalid_argument("size_grid: extents must be positive");
        }
        grid.sizes.push_back({m, n, k});
      }
    }
  }
  return grid;
}

size_grid size_grid::parse(const std::string& spec) {
  size_grid grid;
  for (const auto& item : atf::common::split(spec, ';')) {
    if (item.empty()) {
      continue;
    }
    const auto axes = atf::common::split(item, 'x');
    if (axes.size() != 3) {
      throw std::invalid_argument(
          "size_grid: expected MxNxK (each a comma list), got '" + item +
          "'");
    }
    const size_grid part = cross(parse_extent_list(axes[0]),
                                 parse_extent_list(axes[1]),
                                 parse_extent_list(axes[2]));
    grid.sizes.insert(grid.sizes.end(), part.sizes.begin(),
                      part.sizes.end());
  }
  if (grid.sizes.empty()) {
    throw std::invalid_argument("size_grid: empty spec");
  }
  return grid;
}

dispatcher::dispatcher(ocls::device dev, tuning_db* db, dispatch_options opts)
    : device_(dev), db_(db), opts_(std::move(opts)), executor_(dev, db) {
  reload();
}

std::string dispatcher::journal_path(const std::string& signature) const {
  if (opts_.journal_dir.empty()) {
    return {};
  }
  return opts_.journal_dir + "/" + sanitize(device_.name()) + "-" +
         sanitize(signature) + ".jsonl";
}

std::uint64_t dispatcher::seed_for(const std::string& signature) const {
  // Independent deterministic streams per grid point: the base seed XORed
  // with the signature's content hash (stable across builds and machines).
  return opts_.tuning.seed ^ atf::common::fnv1a(signature);
}

void dispatcher::tune_one(const xg::problem& shape) {
  const std::string signature =
      gemm_executor::problem_signature(shape.m, shape.n, shape.k);
  tune_options topts = opts_.tuning;
  topts.seed = seed_for(signature);
  topts.journal = journal_path(signature);
  executor_.tune(shape.m, shape.n, shape.k, topts);
}

std::size_t dispatcher::tune_grid(const size_grid& grid) {
  for (const xg::problem& shape : grid.sizes) {
    tune_one(shape);
  }
  reload();
  return grid.sizes.size();
}

void dispatcher::reload() {
  stored_.clear();
  reranker_.reset();
  rerank_samples_ = 0;
  if (db_ == nullptr) {
    return;
  }

  for (auto& [signature, config] :
       db_->entries_for(device_.name(), "XgemmDirect")) {
    const auto shape = parse_signature(signature);
    if (!shape.has_value()) {
      continue;  // foreign problem key — not a GEMM shape
    }
    stored_.push_back({*shape, signature, params_from_record(config)});
  }

  if (!opts_.surrogate_rerank || opts_.journal_dir.empty()) {
    return;
  }
  // Train the re-ranker on every per-size journal record, sizes in stored
  // (ascending-signature) order, records in journal order: both orders are
  // reproducible across crash-resume cycles, so the fitted forest — and
  // every dispatch it decides — is too.
  std::vector<atf::search::feature_vector> features;
  std::vector<double> targets;
  for (const stored_size& entry : stored_) {
    const auto report =
        atf::session::read_journal(journal_path(entry.signature));
    for (const auto& rec : report.records) {
      if (!rec.valid || !std::isfinite(rec.scalar)) {
        continue;
      }
      const auto p = params_from_tuning_record(rec);
      if (!p.has_value()) {
        continue;
      }
      features.push_back(rerank_features(entry.shape, *p));
      targets.push_back(std::asinh(rec.scalar));
    }
  }
  if (features.size() >= opts_.min_rerank_samples) {
    reranker_.fit(features, targets, opts_.rerank_seed);
    rerank_samples_ = features.size();
  }
}

void dispatcher::enqueue_refinement(const xg::problem& shape) {
  const auto same = [&](const xg::problem& p) {
    return p.m == shape.m && p.n == shape.n && p.k == shape.k;
  };
  if (std::any_of(pending_.begin(), pending_.end(), same)) {
    return;  // already queued: a repeat miss is not a drop
  }
  if (pending_.size() >= opts_.max_pending) {
    ++dropped_refinements_;  // count what used to vanish silently
    return;
  }
  pending_.push_back(shape);
}

dispatcher::decision dispatcher::dispatch(std::size_t m, std::size_t n,
                                          std::size_t k) {
  const xg::problem query{m, n, k};
  const std::string signature = gemm_executor::problem_signature(m, n, k);
  const auto limits = xg::device_limits::of(device_.profile());

  for (const stored_size& entry : stored_) {
    if (entry.signature == signature) {
      return {entry.params, source::exact, {}, 0.0};
    }
  }
  enqueue_refinement(query);

  // The k nearest tuned shapes in log-size space, constraint-checked at the
  // query shape. Ties break on the signature so the order never depends on
  // container internals.
  std::vector<const stored_size*> nearest;
  for (const stored_size& entry : stored_) {
    if (xg::valid(query, entry.params, xg::size_mode::general, limits)) {
      nearest.push_back(&entry);
    }
  }
  std::sort(nearest.begin(), nearest.end(),
            [&](const stored_size* a, const stored_size* b) {
              const double da = log_distance(query, a->shape);
              const double db = log_distance(query, b->shape);
              if (da != db) {
                return da < db;
              }
              return a->signature < b->signature;
            });
  if (nearest.empty()) {
    return {xg::params::defaults(), source::defaults, {}, 0.0};
  }
  if (nearest.size() > opts_.neighbors) {
    nearest.resize(opts_.neighbors);
  }

  const stored_size* chosen = nearest.front();
  source from = source::nearest;
  if (reranker_.trained()) {
    // Surrogate re-rank: predict each candidate's cost at the *query*
    // shape and serve the lowest prediction. The candidates are already in
    // deterministic (distance, signature) order, so strict `<` makes the
    // argmin reproducible.
    double best_score = std::numeric_limits<double>::infinity();
    for (const stored_size* candidate : nearest) {
      const double score =
          reranker_.predict(rerank_features(query, candidate->params)).mean;
      if (score < best_score) {
        best_score = score;
        chosen = candidate;
      }
    }
    from = source::reranked;
  }
  return {chosen->params, from, chosen->signature,
          log_distance(query, chosen->shape)};
}

xg::params dispatcher::params_for(std::size_t m, std::size_t n,
                                  std::size_t k) {
  return dispatch(m, n, k).params;
}

double dispatcher::run(std::size_t m, std::size_t n, std::size_t k,
                       std::span<const float> a, std::span<const float> b,
                       std::span<float> c) {
  return executor_.run_with(dispatch(m, n, k).params, m, n, k, a, b, c);
}

std::vector<xg::problem> dispatcher::pending_refinements() const {
  return {pending_.begin(), pending_.end()};
}

std::size_t dispatcher::refine(std::size_t max_tunes) {
  std::size_t tuned = 0;
  while (tuned < max_tunes && !pending_.empty()) {
    const xg::problem shape = pending_.front();
    pending_.pop_front();
    tune_one(shape);
    ++tuned;
  }
  if (tuned > 0) {
    reload();
  }
  return tuned;
}

std::vector<std::string> dispatcher::known_sizes() const {
  std::vector<std::string> out;
  out.reserve(stored_.size());
  for (const stored_size& entry : stored_) {
    out.push_back(entry.signature);
  }
  return out;
}

}  // namespace blasmini
