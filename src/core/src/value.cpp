#include "atf/value.hpp"

#include <cstdio>

namespace atf {

std::string to_string(const tp_value& v) {
  return std::visit(
      [](auto x) -> std::string {
        using X = decltype(x);
        if constexpr (std::is_same_v<X, bool>) {
          return x ? "true" : "false";
        } else if constexpr (std::is_same_v<X, double>) {
          char buffer[64];
          std::snprintf(buffer, sizeof(buffer), "%.17g", x);
          return buffer;
        } else {
          return std::to_string(x);
        }
      },
      v);
}

double to_double(const tp_value& v) {
  return std::visit(
      [](auto x) -> double {
        if constexpr (std::is_same_v<decltype(x), bool>) {
          return x ? 1.0 : 0.0;
        } else {
          return static_cast<double>(x);
        }
      },
      v);
}

bool value_equals(const tp_value& a, const tp_value& b) noexcept {
  return a == b;
}

}  // namespace atf
