#include "atf/abort_condition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace atf {

std::optional<double> tuning_status::best_cost_at(
    std::chrono::nanoseconds at) const {
  std::optional<double> best;
  for (const auto& event : history) {
    if (event.elapsed > at) {
      break;
    }
    best = event.cost;
  }
  return best;
}

std::optional<double> tuning_status::best_cost_at_evaluation(
    std::uint64_t evals) const {
  std::optional<double> best;
  for (const auto& event : history) {
    if (event.evaluations > evals) {
      break;
    }
    best = event.cost;
  }
  return best;
}

namespace cond {

abort_condition evaluations(std::uint64_t n) {
  return abort_condition(
      [n](const tuning_status& s) { return s.evaluations >= n; });
}

abort_condition fraction(double f) {
  if (f < 0.0 || f > 1.0) {
    throw std::invalid_argument("atf::cond::fraction: f must be in [0,1]");
  }
  return abort_condition([f](const tuning_status& s) {
    const auto limit = static_cast<std::uint64_t>(
        std::ceil(f * static_cast<double>(s.search_space_size)));
    return s.evaluations >= limit;
  });
}

abort_condition cost(double c) {
  return abort_condition([c](const tuning_status& s) {
    return s.best_cost.has_value() && *s.best_cost <= c;
  });
}

abort_condition speedup(double s, std::uint64_t n) {
  return abort_condition([s, n](const tuning_status& status) {
    if (status.evaluations < n || !status.best_cost.has_value()) {
      return false;
    }
    const auto old_best =
        status.best_cost_at_evaluation(status.evaluations - n);
    if (!old_best.has_value()) {
      return false;
    }
    return *old_best / *status.best_cost < s;
  });
}

}  // namespace cond

}  // namespace atf
