#include "atf/configuration.hpp"

#include <stdexcept>

namespace atf {

void configuration::add(std::string name, tp_value value) {
  if (contains(name)) {
    throw std::invalid_argument("configuration: duplicate parameter name '" +
                                name + "'");
  }
  entries_.emplace_back(std::move(name), value);
}

bool configuration::contains(std::string_view name) const noexcept {
  for (const auto& [key, _] : entries_) {
    if (key == name) {
      return true;
    }
  }
  return false;
}

const tp_value& configuration::value_of(std::string_view name) const {
  for (const auto& [key, value] : entries_) {
    if (key == name) {
      return value;
    }
  }
  throw std::out_of_range("configuration: unknown parameter '" +
                          std::string(name) + "'");
}

std::string configuration::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += entries_[i].first;
    out += '=';
    out += atf::to_string(entries_[i].second);
  }
  return out;
}

}  // namespace atf
