#include "atf/configuration.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "atf/common/hash.hpp"

namespace atf {

void configuration::add(std::string name, tp_value value) {
  if (contains(name)) {
    throw std::invalid_argument("configuration: duplicate parameter name '" +
                                name + "'");
  }
  entries_.emplace_back(std::move(name), value);
}

bool configuration::contains(std::string_view name) const noexcept {
  for (const auto& [key, _] : entries_) {
    if (key == name) {
      return true;
    }
  }
  return false;
}

const tp_value& configuration::value_of(std::string_view name) const {
  for (const auto& [key, value] : entries_) {
    if (key == name) {
      return value;
    }
  }
  throw std::out_of_range("configuration: unknown parameter '" +
                          std::string(name) + "'");
}

std::uint64_t configuration::hash() const noexcept {
  // Canonical order: lexicographic by name. Sorting a name view (not the
  // entries) keeps hash() const and cheap for the typical <=16 parameters.
  std::vector<const std::pair<std::string, tp_value>*> ordered;
  ordered.reserve(entries_.size());
  for (const auto& entry : entries_) {
    ordered.push_back(&entry);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  std::uint64_t state = common::fnv1a_offset_basis;
  for (const auto* entry : ordered) {
    state = common::fnv1a(entry->first, state);
    // Separator byte so ("AB", x) and ("A", ...) prefixes cannot alias.
    state ^= 0x1fu;
    state *= common::fnv1a_prime;
    // Type tag + canonical 8-byte payload per variant alternative.
    const auto tag = static_cast<std::uint64_t>(entry->second.index());
    state ^= tag;
    state *= common::fnv1a_prime;
    const std::uint64_t payload = std::visit(
        [](auto v) -> std::uint64_t {
          using V = decltype(v);
          if constexpr (std::is_same_v<V, bool>) {
            return v ? 1u : 0u;
          } else if constexpr (std::is_same_v<V, double>) {
            return std::bit_cast<std::uint64_t>(v);
          } else {
            return static_cast<std::uint64_t>(v);
          }
        },
        entry->second);
    state = common::fnv1a_u64(payload, state);
  }
  return state;
}

std::string configuration::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += entries_[i].first;
    out += '=';
    out += atf::to_string(entries_[i].second);
  }
  return out;
}

}  // namespace atf
