#include "atf/space_storage.hpp"

#include <algorithm>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "atf/common/bitpack.hpp"

namespace atf {

const char* to_string(space_storage_backend backend) noexcept {
  switch (backend) {
    case space_storage_backend::dense:
      return "dense";
    case space_storage_backend::packed:
      return "packed";
    case space_storage_backend::lazy:
      return "lazy";
  }
  return "unknown";
}

namespace detail {

std::uint64_t expand_levels(const std::vector<std::shared_ptr<itp>>& params,
                            std::size_t lvl, std::uint64_t lo,
                            std::uint64_t hi, expansion_buffers& out) {
  csr_level& nodes = out.levels[lvl];
  const itp& param = *params[lvl];
  const bool is_last = lvl + 1 == out.levels.size();

  std::uint64_t leaves = 0;
  for (std::uint64_t i = lo; i < hi; ++i) {
    ++out.visited_values;
    if (!param.set_and_check(i)) {
      continue;
    }
    const std::uint64_t node = nodes.size();
    nodes.value_index.push_back(static_cast<std::uint32_t>(i));
    nodes.child_begin.push_back(is_last ? 0 : out.levels[lvl + 1].size());
    nodes.child_count.push_back(0);
    nodes.leaf_count.push_back(0);

    std::uint64_t sub = 1;
    if (!is_last) {
      sub = expand_levels(params, lvl + 1, 0, params[lvl + 1]->range_size(),
                          out);
      if (sub == 0) {
        // No valid completion below this prefix: the recursive call left the
        // deeper levels untouched (its own dead children were popped), so we
        // only need to pop this node.
        ++out.dead_prefixes;
        nodes.value_index.pop_back();
        nodes.child_begin.pop_back();
        nodes.child_count.pop_back();
        nodes.leaf_count.pop_back();
        continue;
      }
      nodes.child_count[node] = static_cast<std::uint32_t>(
          out.levels[lvl + 1].size() - nodes.child_begin[node]);
    }
    nodes.leaf_count[node] = sub;
    leaves += sub;
  }
  return leaves;
}

namespace {

// ---------------------------------------------------------------------------
// dense: the CSR vectors exactly as generation produced them.

class dense_storage final : public space_storage {
public:
  explicit dense_storage(std::vector<csr_level> levels)
      : levels_(std::move(levels)) {}

  [[nodiscard]] space_storage_backend backend() const noexcept override {
    return space_storage_backend::dense;
  }
  [[nodiscard]] std::size_t depth() const noexcept override {
    return levels_.size();
  }
  [[nodiscard]] std::uint64_t level_size(
      std::size_t lvl) const noexcept override {
    return levels_[lvl].size();
  }
  [[nodiscard]] std::uint64_t node_count() const noexcept override {
    std::uint64_t total = 0;
    for (const csr_level& nodes : levels_) {
      total += nodes.size();
    }
    return total;
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    std::size_t total = 0;
    for (const csr_level& nodes : levels_) {
      total += nodes.memory_bytes();
    }
    return total;
  }

  class dense_cursor final : public cursor {
  public:
    explicit dense_cursor(const std::vector<csr_level>& levels)
        : levels_(levels) {}

    [[nodiscard]] node_ref node(std::size_t lvl,
                                std::uint64_t id) override {
      const csr_level& nodes = levels_[lvl];
      return {nodes.value_index[id], nodes.child_begin[id],
              nodes.child_count[id], nodes.leaf_count[id]};
    }
    [[nodiscard]] std::uint64_t root_scan_start(std::uint64_t&) override {
      return 0;
    }
    [[nodiscard]] std::uint64_t leaves_before_root(
        std::uint64_t node) override {
      const csr_level& roots = levels_[0];
      std::uint64_t leaves = 0;
      for (std::uint64_t sibling = 0; sibling < node; ++sibling) {
        leaves += roots.leaf_count[sibling];
      }
      return leaves;
    }

  private:
    const std::vector<csr_level>& levels_;
  };

  [[nodiscard]] std::unique_ptr<cursor> make_cursor() const override {
    return std::make_unique<dense_cursor>(levels_);
  }

private:
  std::vector<csr_level> levels_;
};

// ---------------------------------------------------------------------------
// packed: the same levels, every array bit-packed to its minimal width.
// Leaf levels nearly vanish: child_begin/child_count are all zero (width 0,
// no words) and leaf_count is all ones (width 1).

struct packed_level {
  common::packed_u64_vector value_index;
  common::packed_u64_vector child_begin;
  common::packed_u64_vector child_count;
  common::packed_u64_vector leaf_count;

  [[nodiscard]] std::uint64_t size() const noexcept {
    return value_index.size();
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return value_index.memory_bytes() + child_begin.memory_bytes() +
           child_count.memory_bytes() + leaf_count.memory_bytes();
  }
};

class packed_storage final : public space_storage {
public:
  explicit packed_storage(const std::vector<csr_level>& levels) {
    levels_.reserve(levels.size());
    for (const csr_level& nodes : levels) {
      packed_level packed;
      packed.value_index = common::packed_u64_vector::pack(nodes.value_index);
      packed.child_begin = common::packed_u64_vector::pack(nodes.child_begin);
      packed.child_count = common::packed_u64_vector::pack(nodes.child_count);
      packed.leaf_count = common::packed_u64_vector::pack(nodes.leaf_count);
      levels_.push_back(std::move(packed));
    }
  }

  [[nodiscard]] space_storage_backend backend() const noexcept override {
    return space_storage_backend::packed;
  }
  [[nodiscard]] std::size_t depth() const noexcept override {
    return levels_.size();
  }
  [[nodiscard]] std::uint64_t level_size(
      std::size_t lvl) const noexcept override {
    return levels_[lvl].size();
  }
  [[nodiscard]] std::uint64_t node_count() const noexcept override {
    std::uint64_t total = 0;
    for (const packed_level& nodes : levels_) {
      total += nodes.size();
    }
    return total;
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    std::size_t total = 0;
    for (const packed_level& nodes : levels_) {
      total += nodes.memory_bytes();
    }
    return total;
  }

  class packed_cursor final : public cursor {
  public:
    explicit packed_cursor(const std::vector<packed_level>& levels)
        : levels_(levels) {}

    [[nodiscard]] node_ref node(std::size_t lvl,
                                std::uint64_t id) override {
      const packed_level& nodes = levels_[lvl];
      return {static_cast<std::uint32_t>(nodes.value_index[id]),
              nodes.child_begin[id],
              static_cast<std::uint32_t>(nodes.child_count[id]),
              nodes.leaf_count[id]};
    }
    [[nodiscard]] std::uint64_t root_scan_start(std::uint64_t&) override {
      return 0;
    }
    [[nodiscard]] std::uint64_t leaves_before_root(
        std::uint64_t node) override {
      const packed_level& roots = levels_[0];
      std::uint64_t leaves = 0;
      for (std::uint64_t sibling = 0; sibling < node; ++sibling) {
        leaves += roots.leaf_count[sibling];
      }
      return leaves;
    }

  private:
    const std::vector<packed_level>& levels_;
  };

  [[nodiscard]] std::unique_ptr<cursor> make_cursor() const override {
    return std::make_unique<packed_cursor>(levels_);
  }

private:
  std::vector<packed_level> levels_;
};

// ---------------------------------------------------------------------------
// lazy: per-chunk summaries + an LRU cache of regenerated chunk subtrees.
//
// Generation's chunks partition the root range into disjoint contiguous
// spans, and sequential expansion numbers nodes chunk-by-chunk in root
// order — so per-chunk node-count prefix sums translate between the global
// dense numbering and a chunk-local one exactly, and re-expanding a span
// reproduces its nodes bit-identically (constraints are deterministic).

class lazy_storage final : public space_storage {
public:
  lazy_storage(std::vector<std::shared_ptr<itp>> params,
               std::vector<lazy_chunk_summary> chunks,
               std::size_t cache_bytes)
      : params_(std::move(params)), budget_(cache_bytes) {
    // Chunks whose every prefix died contribute no nodes and no leaves;
    // keeping them would only pad the prefix arrays.
    chunks_.reserve(chunks.size());
    for (lazy_chunk_summary& chunk : chunks) {
      if (chunk.leaves != 0) {
        chunks_.push_back(std::move(chunk));
      }
    }
    const std::size_t depth =
        chunks_.empty() ? params_.size() : chunks_[0].level_nodes.size();
    depth_ = depth;
    leaf_before_.assign(chunks_.size() + 1, 0);
    node_before_.assign(depth, std::vector<std::uint64_t>(chunks_.size() + 1, 0));
    for (std::size_t c = 0; c < chunks_.size(); ++c) {
      leaf_before_[c + 1] = leaf_before_[c] + chunks_[c].leaves;
      for (std::size_t lvl = 0; lvl < depth; ++lvl) {
        node_before_[lvl][c + 1] =
            node_before_[lvl][c] + chunks_[c].level_nodes[lvl];
      }
    }
  }

  [[nodiscard]] space_storage_backend backend() const noexcept override {
    return space_storage_backend::lazy;
  }
  [[nodiscard]] std::size_t depth() const noexcept override { return depth_; }
  [[nodiscard]] std::uint64_t level_size(
      std::size_t lvl) const noexcept override {
    return node_before_[lvl].back();
  }
  [[nodiscard]] std::uint64_t node_count() const noexcept override {
    std::uint64_t total = 0;
    for (const auto& prefix : node_before_) {
      total += prefix.back();
    }
    return total;
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    std::size_t total = leaf_before_.capacity() * sizeof(std::uint64_t);
    for (const auto& prefix : node_before_) {
      total += prefix.capacity() * sizeof(std::uint64_t);
    }
    for (const lazy_chunk_summary& chunk : chunks_) {
      total += sizeof(lazy_chunk_summary) +
               chunk.level_nodes.capacity() * sizeof(std::uint64_t);
    }
    std::lock_guard lock(mutex_);
    return total + cached_bytes_;
  }

  /// A regenerated chunk subtree. Handed out as shared_ptr<const> so LRU
  /// eviction can never free a chunk an in-flight cursor still reads.
  struct materialized {
    std::vector<csr_level> levels;
    std::size_t bytes = 0;
  };

  [[nodiscard]] std::shared_ptr<const materialized> chunk(
      std::size_t c) const {
    {
      std::lock_guard lock(mutex_);
      const auto it = cache_.find(c);
      if (it != cache_.end()) {
        recency_.splice(recency_.begin(), recency_, it->second.position);
        return it->second.data;
      }
    }
    // Regenerate outside the lock: expansion replays set_and_check through
    // the calling thread's current evaluation context (thread-exclusive, so
    // concurrent regenerations cannot race; a concurrent regeneration of
    // the same chunk just produces an identical duplicate and one wins).
    auto data = std::make_shared<materialized>();
    expansion_buffers buffers;
    buffers.levels.resize(depth_);
    (void)expand_levels(params_, 0, chunks_[c].root_lo, chunks_[c].root_hi,
                        buffers);
    data->levels = std::move(buffers.levels);
    for (const csr_level& nodes : data->levels) {
      data->bytes += nodes.memory_bytes();
    }

    std::lock_guard lock(mutex_);
    const auto it = cache_.find(c);
    if (it != cache_.end()) {
      recency_.splice(recency_.begin(), recency_, it->second.position);
      return it->second.data;
    }
    recency_.push_front(c);
    cache_.emplace(c, entry{data, recency_.begin()});
    cached_bytes_ += data->bytes;
    // Evict least-recently-used chunks down to the budget, always keeping
    // the chunk just inserted (a single oversized chunk must still work).
    while (cached_bytes_ > budget_ && cache_.size() > 1) {
      const std::size_t victim = recency_.back();
      recency_.pop_back();
      const auto victim_it = cache_.find(victim);
      cached_bytes_ -= victim_it->second.data->bytes;
      cache_.erase(victim_it);
    }
    return data;
  }

  class lazy_cursor final : public cursor {
  public:
    explicit lazy_cursor(const lazy_storage& storage) : storage_(storage) {}

    [[nodiscard]] node_ref node(std::size_t lvl,
                                std::uint64_t id) override {
      const std::size_t c = chunk_of(storage_.node_before_[lvl], id);
      pin(c);
      const csr_level& nodes = pinned_->levels[lvl];
      const std::uint64_t local = id - storage_.node_before_[lvl][c];
      node_ref ref{nodes.value_index[local], nodes.child_begin[local],
                   nodes.child_count[local], nodes.leaf_count[local]};
      if (lvl + 1 < storage_.depth_) {
        ref.child_begin += storage_.node_before_[lvl + 1][c];
      }
      return ref;
    }

    [[nodiscard]] std::uint64_t root_scan_start(
        std::uint64_t& index) override {
      const auto& before = storage_.leaf_before_;
      const std::size_t c = static_cast<std::size_t>(
          std::upper_bound(before.begin(), before.end(), index) -
          before.begin() - 1);
      index -= before[c];
      return storage_.node_before_[0][c];
    }

    [[nodiscard]] std::uint64_t leaves_before_root(
        std::uint64_t node) override {
      const std::size_t c = chunk_of(storage_.node_before_[0], node);
      pin(c);
      std::uint64_t leaves = storage_.leaf_before_[c];
      const csr_level& roots = pinned_->levels[0];
      const std::uint64_t local_end = node - storage_.node_before_[0][c];
      for (std::uint64_t local = 0; local < local_end; ++local) {
        leaves += roots.leaf_count[local];
      }
      return leaves;
    }

  private:
    [[nodiscard]] std::size_t chunk_of(
        const std::vector<std::uint64_t>& before, std::uint64_t id) const {
      // The pinned chunk almost always owns the next access (all nodes of
      // one leaf's path live in one chunk); fall back to binary search.
      if (pinned_ && id >= before[pinned_chunk_] &&
          id < before[pinned_chunk_ + 1]) {
        return pinned_chunk_;
      }
      return static_cast<std::size_t>(
          std::upper_bound(before.begin(), before.end(), id) -
          before.begin() - 1);
    }

    void pin(std::size_t c) {
      if (pinned_ && pinned_chunk_ == c) {
        return;
      }
      pinned_ = storage_.chunk(c);
      pinned_chunk_ = c;
    }

    const lazy_storage& storage_;
    std::shared_ptr<const materialized> pinned_;
    std::size_t pinned_chunk_ = 0;
  };

  [[nodiscard]] std::unique_ptr<cursor> make_cursor() const override {
    return std::make_unique<lazy_cursor>(*this);
  }

private:
  struct entry {
    std::shared_ptr<const materialized> data;
    std::list<std::size_t>::iterator position;
  };

  std::vector<std::shared_ptr<itp>> params_;
  std::vector<lazy_chunk_summary> chunks_;  ///< root order, leaves > 0 only
  std::vector<std::uint64_t> leaf_before_;  ///< per-chunk leaf prefix sums
  /// node_before_[lvl][c]: nodes of level lvl in chunks before c — the
  /// translation between global dense node ids and chunk-local ones.
  std::vector<std::vector<std::uint64_t>> node_before_;
  std::size_t depth_ = 0;
  std::size_t budget_;

  mutable std::mutex mutex_;
  mutable std::list<std::size_t> recency_;  ///< chunk ids, most recent first
  mutable std::unordered_map<std::size_t, entry> cache_;
  mutable std::size_t cached_bytes_ = 0;
};

}  // namespace

std::shared_ptr<space_storage> make_dense_storage(
    std::vector<csr_level> levels) {
  return std::make_shared<dense_storage>(std::move(levels));
}

std::shared_ptr<space_storage> make_packed_storage(
    const std::vector<csr_level>& levels) {
  return std::make_shared<packed_storage>(levels);
}

std::shared_ptr<space_storage> make_lazy_storage(
    std::vector<std::shared_ptr<itp>> params,
    std::vector<lazy_chunk_summary> chunks, std::size_t cache_bytes) {
  return std::make_shared<lazy_storage>(std::move(params), std::move(chunks),
                                        cache_bytes);
}

}  // namespace detail
}  // namespace atf
