#include "atf/search_space.hpp"

#include <limits>
#include <stdexcept>
#include <thread>

#include "atf/common/logging.hpp"
#include "atf/common/stopwatch.hpp"
#include "atf/common/thread_pool.hpp"

namespace atf {

search_space search_space::generate(const std::vector<tp_group>& groups,
                                    bool parallel) {
  return generate(groups,
                  parallel ? generation_mode::intra_group
                           : generation_mode::sequential);
}

search_space search_space::generate(const std::vector<tp_group>& groups,
                                    generation_mode mode,
                                    std::size_t threads,
                                    const generation_policy& policy,
                                    const space_storage_policy& storage) {
  search_space space;
  space.trees_.resize(groups.size());

  common::stopwatch timer;
  switch (mode) {
    case generation_mode::sequential:
      for (std::size_t g = 0; g < groups.size(); ++g) {
        space.trees_[g] = space_tree::generate(groups[g], storage);
      }
      break;

    case generation_mode::per_group: {
      if (groups.size() <= 1) {
        for (std::size_t g = 0; g < groups.size(); ++g) {
          space.trees_[g] = space_tree::generate(groups[g], storage);
        }
        break;
      }
      // One thread per dependency group (paper, Section V). Constraints may
      // only reference parameters of the same group, so each thread's writes
      // into the ambient evaluation context touch disjoint tp states.
      std::vector<std::thread> workers;
      workers.reserve(groups.size());
      std::vector<std::exception_ptr> errors(groups.size());
      for (std::size_t g = 0; g < groups.size(); ++g) {
        workers.emplace_back([&, g] {
          try {
            space.trees_[g] = space_tree::generate(groups[g], storage);
          } catch (...) {
            errors[g] = std::current_exception();
          }
        });
      }
      for (auto& worker : workers) {
        worker.join();
      }
      for (const auto& error : errors) {
        if (error) {
          std::rethrow_exception(error);
        }
      }
      break;
    }

    case generation_mode::intra_group: {
      // Nested parallelism on one shared pool: the outer parallel_for
      // spreads groups, and every group's generation chunks its root range
      // onto the same pool (parallel_for is re-entrant — the group task
      // itself drains chunk iterations). Per-thread evaluation contexts keep
      // concurrent chunks of the same group from racing on the tp slots.
      // The pool is clamped to the number of leasable contexts: a wider
      // pool gains nothing (every chunk task leases a context, so the
      // excess workers would only block inside the lease registry).
      std::size_t resolved = common::thread_pool::resolve_num_threads(threads);
      if (resolved > detail::max_leased_contexts()) {
        common::log_warn(
            "search_space: clamping the generation pool from ", resolved,
            " to ", detail::max_leased_contexts(),
            " threads — the per-parameter slot registry holds ",
            detail::max_eval_contexts,
            " evaluation contexts (one is the ambient context)");
        resolved = detail::max_leased_contexts();
      }
      common::thread_pool pool(resolved);
      pool.parallel_for(groups.size(), [&](std::size_t g) {
        space.trees_[g] = space_tree::generate(groups[g], pool, policy,
                                               storage);
      });
      break;
    }
  }
  space.generation_seconds_ = timer.elapsed_seconds();

  std::uint64_t size = groups.empty() ? 0 : 1;
  for (const auto& tree : space.trees_) {
    if (tree.size() != 0 &&
        size > std::numeric_limits<std::uint64_t>::max() / tree.size()) {
      throw std::overflow_error(
          "search_space: more than 2^64-1 valid configurations");
    }
    size *= tree.size();
  }
  space.size_ = size;
  return space;
}

std::size_t search_space::num_parameters() const noexcept {
  std::size_t count = 0;
  for (const auto& tree : trees_) {
    count += tree.depth();
  }
  return count;
}

std::vector<std::string> search_space::parameter_names() const {
  std::vector<std::string> names;
  names.reserve(num_parameters());
  for (const auto& tree : trees_) {
    for (std::size_t lvl = 0; lvl < tree.depth(); ++lvl) {
      names.push_back(tree.param_name(lvl));
    }
  }
  return names;
}

void search_space::decompose(std::uint64_t index,
                             std::vector<std::uint64_t>& out) const {
  out.resize(trees_.size());
  for (std::size_t g = trees_.size(); g-- > 0;) {
    const std::uint64_t group_size = trees_[g].size();
    out[g] = index % group_size;
    index /= group_size;
  }
}

configuration search_space::config_at(std::uint64_t index) const {
  if (index >= size_) {
    throw std::out_of_range("search_space: configuration index out of range");
  }
  std::vector<std::uint64_t> leaves;
  decompose(index, leaves);
  configuration config;
  for (std::size_t g = 0; g < trees_.size(); ++g) {
    const auto values = trees_[g].values_at(leaves[g]);
    for (std::size_t lvl = 0; lvl < values.size(); ++lvl) {
      config.add(trees_[g].param_name(lvl), values[lvl]);
    }
  }
  config.set_space_index(index);
  return config;
}

void search_space::apply(std::uint64_t index) const {
  if (index >= size_) {
    throw std::out_of_range("search_space: configuration index out of range");
  }
  std::vector<std::uint64_t> leaves;
  decompose(index, leaves);
  for (std::size_t g = 0; g < trees_.size(); ++g) {
    trees_[g].apply(leaves[g]);
  }
}

void search_space::apply(std::uint64_t index,
                         const scoped_eval_context& context) const {
  const auto guard = context.activate();
  apply(index);
}

std::uint64_t search_space::random_index(common::xoshiro256& rng) const {
  return rng.below(size_);
}

std::uint64_t search_space::random_neighbor(std::uint64_t index,
                                            common::xoshiro256& rng) const {
  if (size_ <= 1) {
    return index;
  }
  std::vector<std::uint64_t> leaves;
  decompose(index, leaves);

  // Pick a group that actually has more than one leaf.
  std::vector<std::size_t> candidates;
  candidates.reserve(trees_.size());
  for (std::size_t g = 0; g < trees_.size(); ++g) {
    if (trees_[g].size() > 1) {
      candidates.push_back(g);
    }
  }
  const std::size_t g = candidates[rng.below(candidates.size())];
  leaves[g] = trees_[g].random_neighbor(leaves[g], rng);

  std::uint64_t composed = 0;
  for (std::size_t i = 0; i < trees_.size(); ++i) {
    composed = composed * trees_[i].size() + leaves[i];
  }
  return composed;
}

double search_space::sequential_generation_seconds() const noexcept {
  double total = 0.0;
  for (const auto& tree : trees_) {
    total += tree.stats().seconds;
  }
  return total;
}

std::uint64_t search_space::node_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& tree : trees_) {
    total += tree.node_count();
  }
  return total;
}

std::size_t search_space::memory_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& tree : trees_) {
    total += tree.memory_bytes();
  }
  return total;
}

void search_space::drop_stats() {
  for (auto& tree : trees_) {
    tree.drop_stats();
  }
}

}  // namespace atf
