#include "atf/space_tree.hpp"

#include <algorithm>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "atf/common/stopwatch.hpp"

namespace atf {

namespace {

/// A unit of generation work: one contiguous span of root values. Chunks
/// are pulled from a shared work queue; a hot chunk pushes the tail half of
/// its remaining span back as a fresh task.
struct chunk_task {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// Shared mutable state of one adaptive scheduling run: the completed-chunk
/// cost ledger the hot-chunk predicate compares against, and the chunk
/// budget that bounds re-splitting.
class chunk_scheduler {
public:
  chunk_scheduler(const generation_policy& policy, std::size_t initial_chunks,
                  std::size_t workers)
      : policy_(policy), chunk_count_(initial_chunks) {
    max_chunks_ = policy.max_chunks != 0
                      ? policy.max_chunks
                      : std::max(initial_chunks, workers * 32);
    completed_.reserve(max_chunks_);
  }

  /// Decides between root values of a running chunk whether to re-split.
  /// `visited` is the chunk's work so far, `remaining` its unexpanded root
  /// values, `starving` the queue's blocked-consumer count. On true, the
  /// chunk budget is already debited for the new chunk.
  bool should_split(std::uint64_t visited, std::uint64_t remaining,
                    std::size_t starving) {
    if (!policy_.adaptive || remaining < 2 ||
        visited < policy_.min_split_visited) {
      return false;
    }
    if (policy_.split_only_when_starving && starving == 0) {
      return false;
    }
    std::lock_guard lock(mutex_);
    if (chunk_count_ >= max_chunks_) {
      return false;
    }
    // Median completed-chunk cost, floored by the split grain so a burst of
    // near-empty chunks cannot make everything look hot.
    std::uint64_t median = policy_.min_split_visited;
    if (!completed_.empty()) {
      median = std::max(median, completed_[completed_.size() / 2]);
    }
    if (static_cast<double>(visited) <=
        policy_.hot_factor * static_cast<double>(median)) {
      return false;
    }
    ++chunk_count_;
    ++resplits_;
    return true;
  }

  /// Records a finished chunk's cost (kept sorted for O(1) median reads).
  void complete(std::uint64_t visited) {
    std::lock_guard lock(mutex_);
    completed_.insert(
        std::upper_bound(completed_.begin(), completed_.end(), visited),
        visited);
  }

  [[nodiscard]] std::uint64_t resplits() const noexcept { return resplits_; }

private:
  generation_policy policy_;
  std::size_t max_chunks_;
  std::size_t chunk_count_;               ///< chunks created (initial + splits)
  std::uint64_t resplits_ = 0;
  std::vector<std::uint64_t> completed_;  ///< sorted completed-chunk costs
  std::mutex mutex_;
};

/// Per-chunk expansion output: a full set of CSR levels plus the counters
/// that sum across chunks. Chunk c expands root values [root_lo, root_hi)
/// only; deeper levels always iterate their full range. root_lo keys the
/// stitch order — spans are disjoint and contiguous, so sorting chunks by
/// root_lo reproduces the sequential expansion order no matter which worker
/// ran a chunk or how often it was re-split.
struct chunk_result {
  detail::expansion_buffers buffers;
  std::uint64_t root_lo = 0;
  std::uint64_t root_hi = 0;
  std::uint64_t leaves = 0;
  double seconds = 0.0;
};

/// Dense CSR bytes of one chunk's nodes (by logical size, not capacity) —
/// the representation-independent cost a chunk contributes if stitched.
std::size_t chunk_dense_bytes(const chunk_result& part) {
  std::size_t bytes = 0;
  for (const detail::csr_level& nodes : part.buffers.levels) {
    bytes += nodes.size() * (2 * sizeof(std::uint32_t) +
                             2 * sizeof(std::uint64_t));
  }
  return bytes;
}

std::uint64_t chunk_node_count(const chunk_result& part) {
  std::uint64_t nodes = 0;
  for (const detail::csr_level& level : part.buffers.levels) {
    nodes += level.size();
  }
  return nodes;
}

/// Concatenates the per-chunk level arrays in root-value order into one
/// global CSR level set. Sequential expansion appends a level's nodes
/// grouped by root value, in root-value order; chunks partition the root
/// range contiguously, so concatenating in chunk order reproduces the
/// sequential node order exactly. Only child_begin needs fixing up: chunk
/// c's entries at level l index into its private level l+1 array, so they
/// shift by the combined level-(l+1) size of all earlier chunks.
std::vector<detail::csr_level> stitch_levels(std::vector<chunk_result>& parts,
                                             std::size_t depth) {
  std::vector<detail::csr_level> levels(depth);
  for (std::size_t lvl = 0; lvl < depth; ++lvl) {
    detail::csr_level& dst = levels[lvl];
    std::uint64_t total = 0;
    for (const chunk_result& part : parts) {
      total += part.buffers.levels[lvl].size();
    }
    dst.value_index.reserve(total);
    dst.child_begin.reserve(total);
    dst.child_count.reserve(total);
    dst.leaf_count.reserve(total);

    const bool is_last = lvl + 1 == depth;
    std::uint64_t next_level_offset = 0;
    for (chunk_result& part : parts) {
      detail::csr_level& src = part.buffers.levels[lvl];
      dst.value_index.insert(dst.value_index.end(), src.value_index.begin(),
                             src.value_index.end());
      dst.child_count.insert(dst.child_count.end(), src.child_count.begin(),
                             src.child_count.end());
      dst.leaf_count.insert(dst.leaf_count.end(), src.leaf_count.begin(),
                            src.leaf_count.end());
      if (is_last) {
        // Leaf nodes store child_begin == 0 — append verbatim.
        dst.child_begin.insert(dst.child_begin.end(), src.child_begin.begin(),
                               src.child_begin.end());
      } else {
        for (const std::uint64_t begin : src.child_begin) {
          dst.child_begin.push_back(begin + next_level_offset);
        }
        next_level_offset += part.buffers.levels[lvl + 1].size();
      }
    }
  }
  return levels;
}

}  // namespace

space_tree space_tree::generate(const tp_group& group,
                                const space_storage_policy& storage) {
  return generate_impl(group, nullptr, generation_policy{}, storage);
}

space_tree space_tree::generate(const tp_group& group,
                                common::thread_pool& pool,
                                const generation_policy& policy,
                                const space_storage_policy& storage) {
  return generate_impl(group, &pool, policy, storage);
}

space_tree space_tree::generate_impl(const tp_group& group,
                                     common::thread_pool* pool,
                                     const generation_policy& policy,
                                     const space_storage_policy& storage) {
  space_tree tree;
  tree.params_.reserve(group.size());
  for (const auto& param : group.params()) {
    if (param->range_size() >
        std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument(
          "space_tree: range of parameter '" + param->name() +
          "' exceeds 2^32 values");
    }
    tree.params_.push_back(param);
  }
  const std::size_t depth = tree.params_.size();
  const bool lazy = storage.backend == space_storage_backend::lazy;

  common::stopwatch timer;
  if (depth == 0) {
    // A group with no parameters contributes exactly one (empty)
    // configuration so that cross-group products stay well-defined.
    tree.leaf_total_ = 1;
    if (lazy) {
      tree.storage_ = detail::make_lazy_storage(tree.params_, {},
                                                storage.chunk_cache_bytes);
    } else if (storage.backend == space_storage_backend::packed) {
      tree.storage_ = detail::make_packed_storage({});
    } else {
      tree.storage_ = detail::make_dense_storage({});
    }
  } else {
    const std::uint64_t root_range = tree.params_[0]->range_size();

    std::vector<chunk_result> parts;                    // dense / packed
    std::vector<detail::lazy_chunk_summary> summaries;  // lazy
    std::vector<chunk_stat> chunk_stats;
    std::uint64_t visited_values = 0;
    std::uint64_t dead_prefixes = 0;
    std::uint64_t leaf_total = 0;
    std::uint64_t chunks_expanded = 0;

    // Consumes one finished chunk. In lazy mode the node buffers are
    // summarized and dropped right here — this is what makes generation
    // stream: at no point do all chunks' nodes coexist.
    auto consume = [&](chunk_result&& part) {
      chunk_stat stat;
      stat.root_lo = part.root_lo;
      stat.root_hi = part.root_hi;
      stat.visited_values = part.buffers.visited_values;
      stat.leaves = part.leaves;
      stat.nodes = chunk_node_count(part);
      stat.bytes = chunk_dense_bytes(part);
      stat.seconds = part.seconds;
      chunk_stats.push_back(stat);
      visited_values += part.buffers.visited_values;
      dead_prefixes += part.buffers.dead_prefixes;
      leaf_total += part.leaves;
      ++chunks_expanded;
      if (lazy) {
        detail::lazy_chunk_summary summary;
        summary.root_lo = part.root_lo;
        summary.root_hi = part.root_hi;
        summary.leaves = part.leaves;
        summary.level_nodes.reserve(depth);
        for (const detail::csr_level& nodes : part.buffers.levels) {
          summary.level_nodes.push_back(nodes.size());
        }
        summaries.push_back(std::move(summary));
        // part (and its node buffers) dies here.
      } else {
        parts.push_back(std::move(part));
      }
    };

    // Expands root span [lo, hi) on the calling thread into one chunk.
    auto expand_chunk = [&](std::uint64_t lo, std::uint64_t hi) {
      chunk_result part;
      part.buffers.levels.resize(depth);
      part.root_lo = lo;
      part.root_hi = hi;
      common::stopwatch chunk_timer;
      part.leaves =
          detail::expand_levels(tree.params_, 0, lo, hi, part.buffers);
      part.seconds = chunk_timer.elapsed_seconds();
      return part;
    };

    if (pool == nullptr || root_range <= 1) {
      // Sequential generation on the calling thread in the ambient
      // evaluation context. The lazy backend still chunks the root range —
      // its summaries are its storage, and finer chunks mean finer
      // regeneration units — while the other backends expand one chunk.
      if (lazy && root_range > 1) {
        const std::size_t target = std::min<std::uint64_t>(
            root_range, storage.lazy_target_chunks != 0
                            ? storage.lazy_target_chunks
                            : 64);
        const auto bounds = common::partition_evenly(
            static_cast<std::size_t>(root_range), target);
        for (std::size_t c = 0; c + 1 < bounds.size(); ++c) {
          consume(expand_chunk(bounds[c], bounds[c + 1]));
        }
      } else {
        consume(expand_chunk(0, root_range));
      }
    } else {
      // Over-partition the root range relative to the worker count so chunks
      // whose root values die early do not straggle the rest, then let
      // workers pull chunks from a shared queue. Chunk boundaries never
      // affect the result, only load balance. Lazy raises the floor to its
      // target chunk count: chunks are also its regeneration granularity.
      const std::size_t workers = pool->size() + 1;
      std::uint64_t floor = static_cast<std::uint64_t>(
          std::max<std::size_t>(1, workers * policy.over_partition));
      if (lazy) {
        floor = std::max<std::uint64_t>(
            floor, storage.lazy_target_chunks != 0 ? storage.lazy_target_chunks
                                                   : 64);
      }
      const std::size_t initial = static_cast<std::size_t>(
          std::min<std::uint64_t>(root_range, floor));
      const auto bounds = common::partition_evenly(
          static_cast<std::size_t>(root_range), initial);

      chunk_scheduler scheduler(policy, bounds.size() - 1, workers);
      common::work_queue<chunk_task> queue;
      for (std::size_t c = 0; c + 1 < bounds.size(); ++c) {
        queue.push({bounds[c], bounds[c + 1]});
      }

      std::mutex consume_mutex;
      queue.drain(*pool, [&](chunk_task task) {
        // Lease a private evaluation context so this chunk's constraint
        // evaluations read/write slots disjoint from every concurrent chunk
        // (and from the ambient context of per-group generation threads).
        detail::scoped_eval_context context;
        chunk_result part;
        part.buffers.levels.resize(depth);
        part.root_lo = task.lo;
        common::stopwatch chunk_timer;
        // Expand one root value at a time so the hot-chunk check runs
        // between values; appending value-by-value writes exactly the same
        // bytes as expanding the span in one call.
        std::uint64_t hi = task.hi;
        for (std::uint64_t i = task.lo; i < hi; ++i) {
          part.leaves +=
              detail::expand_levels(tree.params_, 0, i, i + 1, part.buffers);
          const std::uint64_t remaining = hi - (i + 1);
          if (scheduler.should_split(part.buffers.visited_values, remaining,
                                     queue.starving())) {
            // Give away the tail half of the remaining span; the new chunk
            // carries its own root_lo, so stitching stays order-exact.
            const std::uint64_t mid = (i + 1) + remaining / 2;
            queue.push({mid, hi});
            hi = mid;
          }
        }
        part.root_hi = hi;
        part.seconds = chunk_timer.elapsed_seconds();
        scheduler.complete(part.buffers.visited_values);
        std::lock_guard lock(consume_mutex);
        consume(std::move(part));
      });
      tree.stats_.resplits = scheduler.resplits();
    }

    // Chunks completed in scheduling order; restore root-value order. The
    // spans are disjoint and cover [0, root_range), so this is exactly the
    // sequential expansion order.
    const auto by_root = [](const auto& a, const auto& b) {
      return a.root_lo < b.root_lo;
    };
    std::sort(chunk_stats.begin(), chunk_stats.end(), by_root);

    tree.leaf_total_ = leaf_total;
    tree.stats_.visited_values = visited_values;
    tree.stats_.dead_prefixes = dead_prefixes;
    tree.stats_.chunks = chunks_expanded;
    tree.stats_.per_chunk = std::move(chunk_stats);

    if (lazy) {
      std::sort(summaries.begin(), summaries.end(), by_root);
      tree.storage_ = detail::make_lazy_storage(tree.params_,
                                                std::move(summaries),
                                                storage.chunk_cache_bytes);
    } else {
      std::sort(parts.begin(), parts.end(), by_root);
      auto levels = stitch_levels(parts, depth);
      parts.clear();
      if (storage.backend == space_storage_backend::packed) {
        tree.storage_ = detail::make_packed_storage(levels);
      } else {
        tree.storage_ = detail::make_dense_storage(std::move(levels));
      }
    }
  }
  tree.stats_.seconds = timer.elapsed_seconds();
  tree.stats_.nodes = tree.node_count();
  tree.stats_.bytes = tree.memory_bytes();
  if (lazy) {
    // Per-chunk accounting at lazy chunk counts is itself a per-space
    // allocation — exactly what the lazy backend exists to avoid.
    tree.drop_stats();
  }
  return tree;
}

void space_tree::drop_stats() {
  stats_.per_chunk.clear();
  stats_.per_chunk.shrink_to_fit();
}

void space_tree::path_of_with(detail::space_storage::cursor& cursor,
                              std::uint64_t index, std::uint64_t* path) const {
  std::uint64_t node = cursor.root_scan_start(index);
  for (std::size_t lvl = 0; lvl < depth(); ++lvl) {
    // Scan siblings, subtracting subtree sizes, until `index` lands inside.
    detail::node_ref ref = cursor.node(lvl, node);
    while (index >= ref.leaf_count) {
      index -= ref.leaf_count;
      ++node;
      ref = cursor.node(lvl, node);
    }
    path[lvl] = node;
    if (lvl + 1 < depth()) {
      node = ref.child_begin;
    }
  }
}

void space_tree::path_of(std::uint64_t index, std::uint64_t* path) const {
  if (index >= leaf_total_) {
    throw std::out_of_range("space_tree: leaf index out of range");
  }
  if (depth() == 0) {
    return;
  }
  const auto cursor = storage_->make_cursor();
  path_of_with(*cursor, index, path);
}

std::uint64_t space_tree::leaf_index_of_path(
    detail::space_storage::cursor& cursor, const std::uint64_t* path) const {
  if (depth() == 0) {
    return 0;
  }
  std::uint64_t index = cursor.leaves_before_root(path[0]);
  for (std::size_t lvl = 1; lvl < depth(); ++lvl) {
    const detail::node_ref parent = cursor.node(lvl - 1, path[lvl - 1]);
    for (std::uint64_t sibling = parent.child_begin; sibling < path[lvl];
         ++sibling) {
      index += cursor.node(lvl, sibling).leaf_count;
    }
  }
  return index;
}

std::vector<tp_value> space_tree::values_at(std::uint64_t index) const {
  if (index >= leaf_total_) {
    throw std::out_of_range("space_tree: leaf index out of range");
  }
  std::vector<tp_value> values;
  values.reserve(depth());
  if (depth() == 0) {
    return values;
  }
  const auto cursor = storage_->make_cursor();
  std::vector<std::uint64_t> path(depth());
  path_of_with(*cursor, index, path.data());
  for (std::size_t lvl = 0; lvl < depth(); ++lvl) {
    values.push_back(
        params_[lvl]->value_at(cursor->node(lvl, path[lvl]).value_index));
  }
  return values;
}

void space_tree::apply(std::uint64_t index) const {
  if (index >= leaf_total_) {
    throw std::out_of_range("space_tree: leaf index out of range");
  }
  if (depth() == 0) {
    return;
  }
  const auto cursor = storage_->make_cursor();
  std::vector<std::uint64_t> path(depth());
  path_of_with(*cursor, index, path.data());
  // Collect every value index before touching the tp slots: a lazy-backend
  // node read may regenerate a chunk, and regeneration itself replays
  // set_and_check through the current context — interleaving the reads with
  // the final writes could clobber values already applied.
  std::vector<std::uint32_t> value_indices(depth());
  for (std::size_t lvl = 0; lvl < depth(); ++lvl) {
    value_indices[lvl] = cursor->node(lvl, path[lvl]).value_index;
  }
  for (std::size_t lvl = 0; lvl < depth(); ++lvl) {
    // set_and_check both writes the shared slot and re-evaluates the
    // constraint; the value is valid by construction, so the result is
    // discarded.
    (void)params_[lvl]->set_and_check(value_indices[lvl]);
  }
}

std::uint64_t space_tree::random_index(common::xoshiro256& rng) const {
  return rng.below(leaf_total_);
}

std::uint64_t space_tree::random_neighbor(std::uint64_t index,
                                          common::xoshiro256& rng) const {
  if (leaf_total_ <= 1 || depth() == 0) {
    return index;
  }
  const auto cursor = storage_->make_cursor();
  std::vector<std::uint64_t> path(depth());
  path_of_with(*cursor, index, path.data());

  // Sibling spans along the current path: {first sibling, sibling count}.
  struct span {
    std::uint64_t begin;
    std::uint64_t count;
  };
  std::vector<span> spans(depth());
  spans[0] = {0, storage_->level_size(0)};
  for (std::size_t d = 1; d < depth(); ++d) {
    const detail::node_ref parent = cursor->node(d - 1, path[d - 1]);
    spans[d] = {parent.child_begin, parent.child_count};
  }

  // Try levels in random order until one offers a sibling to move to.
  std::vector<std::size_t> order(depth());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  for (const std::size_t lvl : order) {
    const span siblings = spans[lvl];
    if (siblings.count <= 1) {
      continue;
    }
    // Geometrically distributed step in sibling order. Ranges are ordered,
    // so adjacent siblings hold adjacent parameter values — this makes the
    // move genuinely local, which simulated annealing relies on.
    const std::uint64_t ordinal = path[lvl] - siblings.begin;
    std::uint64_t step = 1;
    while (rng.uniform() < 0.5 && step < siblings.count) {
      step *= 2;
    }
    step = std::min<std::uint64_t>(step, siblings.count - 1);
    std::uint64_t target;
    if (rng.uniform() < 0.5) {
      target = ordinal >= step ? ordinal - step : ordinal + step;
    } else {
      target = ordinal + step < siblings.count ? ordinal + step
                                               : ordinal - step;
    }
    if (target >= siblings.count) {
      target = (ordinal + 1) % siblings.count;
    }
    if (target == ordinal) {
      target = (ordinal + 1) % siblings.count;
    }

    // Build the new path: prefix unchanged, new sibling at `lvl`, and below
    // it keep each level's child *ordinal* (clamped) so the suffix stays as
    // close as the tree allows to the old configuration.
    std::vector<std::uint64_t> next(path);
    next[lvl] = siblings.begin + target;
    for (std::size_t d = lvl + 1; d < depth(); ++d) {
      const detail::node_ref parent = cursor->node(d - 1, next[d - 1]);
      const std::uint64_t old_ordinal = path[d] - spans[d].begin;
      next[d] = parent.child_begin +
                std::min<std::uint64_t>(old_ordinal, parent.child_count - 1);
    }
    return leaf_index_of_path(*cursor, next.data());
  }
  return index;
}

std::uint64_t space_tree::node_count() const noexcept {
  return storage_ ? storage_->node_count() : 0;
}

std::size_t space_tree::memory_bytes() const noexcept {
  return storage_ ? storage_->memory_bytes() : 0;
}

space_storage_backend space_tree::storage_backend() const noexcept {
  return storage_ ? storage_->backend() : space_storage_backend::dense;
}

}  // namespace atf
