#include "atf/space_tree.hpp"

#include <algorithm>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "atf/common/stopwatch.hpp"

namespace atf {

namespace {

/// A unit of generation work: one contiguous span of root values. Chunks
/// are pulled from a shared work queue; a hot chunk pushes the tail half of
/// its remaining span back as a fresh task.
struct chunk_task {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

/// Shared mutable state of one adaptive scheduling run: the completed-chunk
/// cost ledger the hot-chunk predicate compares against, and the chunk
/// budget that bounds re-splitting.
class chunk_scheduler {
public:
  chunk_scheduler(const generation_policy& policy, std::size_t initial_chunks,
                  std::size_t workers)
      : policy_(policy), chunk_count_(initial_chunks) {
    max_chunks_ = policy.max_chunks != 0
                      ? policy.max_chunks
                      : std::max(initial_chunks, workers * 32);
    completed_.reserve(max_chunks_);
  }

  /// Decides between root values of a running chunk whether to re-split.
  /// `visited` is the chunk's work so far, `remaining` its unexpanded root
  /// values, `starving` the queue's blocked-consumer count. On true, the
  /// chunk budget is already debited for the new chunk.
  bool should_split(std::uint64_t visited, std::uint64_t remaining,
                    std::size_t starving) {
    if (!policy_.adaptive || remaining < 2 ||
        visited < policy_.min_split_visited) {
      return false;
    }
    if (policy_.split_only_when_starving && starving == 0) {
      return false;
    }
    std::lock_guard lock(mutex_);
    if (chunk_count_ >= max_chunks_) {
      return false;
    }
    // Median completed-chunk cost, floored by the split grain so a burst of
    // near-empty chunks cannot make everything look hot.
    std::uint64_t median = policy_.min_split_visited;
    if (!completed_.empty()) {
      median = std::max(median, completed_[completed_.size() / 2]);
    }
    if (static_cast<double>(visited) <=
        policy_.hot_factor * static_cast<double>(median)) {
      return false;
    }
    ++chunk_count_;
    ++resplits_;
    return true;
  }

  /// Records a finished chunk's cost (kept sorted for O(1) median reads).
  void complete(std::uint64_t visited) {
    std::lock_guard lock(mutex_);
    completed_.insert(
        std::upper_bound(completed_.begin(), completed_.end(), visited),
        visited);
  }

  [[nodiscard]] std::uint64_t resplits() const noexcept { return resplits_; }

private:
  generation_policy policy_;
  std::size_t max_chunks_;
  std::size_t chunk_count_;               ///< chunks created (initial + splits)
  std::uint64_t resplits_ = 0;
  std::vector<std::uint64_t> completed_;  ///< sorted completed-chunk costs
  std::mutex mutex_;
};

}  // namespace

/// Per-chunk expansion buffers: a full set of levels plus the counters that
/// sum across chunks. Chunk c expands root values [root_lo, root_hi) only;
/// deeper levels always iterate their full range. root_lo keys the stitch
/// order — spans are disjoint and contiguous, so sorting partials by root_lo
/// reproduces the sequential expansion order no matter which worker ran a
/// chunk or how often it was re-split.
struct space_tree::partial {
  std::vector<level> levels;
  std::uint64_t root_lo = 0;
  std::uint64_t root_hi = 0;
  std::uint64_t leaves = 0;
  std::uint64_t visited_values = 0;
  std::uint64_t dead_prefixes = 0;
  double seconds = 0.0;
};

space_tree space_tree::generate(const tp_group& group) {
  return generate_impl(group, nullptr, generation_policy{});
}

space_tree space_tree::generate(const tp_group& group,
                                common::thread_pool& pool,
                                const generation_policy& policy) {
  return generate_impl(group, &pool, policy);
}

space_tree space_tree::generate_impl(const tp_group& group,
                                     common::thread_pool* pool,
                                     const generation_policy& policy) {
  space_tree tree;
  tree.params_.reserve(group.size());
  for (const auto& param : group.params()) {
    if (param->range_size() >
        std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument(
          "space_tree: range of parameter '" + param->name() +
          "' exceeds 2^32 values");
    }
    tree.params_.push_back(param);
  }
  tree.levels_.resize(tree.params_.size());

  common::stopwatch timer;
  if (tree.params_.empty()) {
    // A group with no parameters contributes exactly one (empty)
    // configuration so that cross-group products stay well-defined.
    tree.leaf_total_ = 1;
  } else {
    const std::uint64_t root_range = tree.params_[0]->range_size();
    std::vector<partial> parts;

    if (pool == nullptr || root_range <= 1) {
      // Sequential generation (or nothing to split): one chunk expanded on
      // the calling thread in the ambient evaluation context.
      partial part;
      part.levels.resize(tree.params_.size());
      part.root_hi = root_range;
      common::stopwatch chunk_timer;
      part.leaves = expand_range(tree.params_, 0, 0, root_range, part);
      part.seconds = chunk_timer.elapsed_seconds();
      parts.push_back(std::move(part));
    } else {
      // Over-partition the root range relative to the worker count so chunks
      // whose root values die early do not straggle the rest, then let
      // workers pull chunks from a shared queue. Chunk boundaries never
      // affect the result, only load balance.
      const std::size_t workers = pool->size() + 1;
      const std::size_t initial = static_cast<std::size_t>(
          std::min<std::uint64_t>(root_range,
                                  static_cast<std::uint64_t>(std::max<std::size_t>(
                                      1, workers * policy.over_partition))));
      const auto bounds = common::partition_evenly(
          static_cast<std::size_t>(root_range), initial);

      chunk_scheduler scheduler(policy, bounds.size() - 1, workers);
      common::work_queue<chunk_task> queue;
      for (std::size_t c = 0; c + 1 < bounds.size(); ++c) {
        queue.push({bounds[c], bounds[c + 1]});
      }

      std::mutex parts_mutex;
      queue.drain(*pool, [&](chunk_task task) {
        // Lease a private evaluation context so this chunk's constraint
        // evaluations read/write slots disjoint from every concurrent chunk
        // (and from the ambient context of per-group generation threads).
        detail::scoped_eval_context context;
        partial part;
        part.levels.resize(tree.params_.size());
        part.root_lo = task.lo;
        common::stopwatch chunk_timer;
        // Expand one root value at a time so the hot-chunk check runs
        // between values; appending value-by-value writes exactly the same
        // bytes as expanding the span in one call.
        std::uint64_t hi = task.hi;
        for (std::uint64_t i = task.lo; i < hi; ++i) {
          part.leaves += expand_range(tree.params_, 0, i, i + 1, part);
          const std::uint64_t remaining = hi - (i + 1);
          if (scheduler.should_split(part.visited_values, remaining,
                                     queue.starving())) {
            // Give away the tail half of the remaining span; the new chunk
            // carries its own root_lo, so stitching stays order-exact.
            const std::uint64_t mid = (i + 1) + remaining / 2;
            queue.push({mid, hi});
            hi = mid;
          }
        }
        part.root_hi = hi;
        part.seconds = chunk_timer.elapsed_seconds();
        scheduler.complete(part.visited_values);
        std::lock_guard lock(parts_mutex);
        parts.push_back(std::move(part));
      });

      // Chunks completed in scheduling order; restore root-value order. The
      // spans are disjoint and cover [0, root_range), so this is exactly the
      // sequential expansion order.
      std::sort(parts.begin(), parts.end(),
                [](const partial& a, const partial& b) {
                  return a.root_lo < b.root_lo;
                });
      tree.stats_.resplits = scheduler.resplits();
    }

    tree.stitch(parts);
    tree.stats_.chunks = parts.size();
  }
  tree.stats_.seconds = timer.elapsed_seconds();
  tree.stats_.nodes = tree.node_count();
  return tree;
}

std::uint64_t space_tree::expand_range(
    const std::vector<std::shared_ptr<itp>>& params, std::size_t lvl,
    std::uint64_t lo, std::uint64_t hi, partial& out) {
  level& nodes = out.levels[lvl];
  const itp& param = *params[lvl];
  const bool is_last = lvl + 1 == out.levels.size();

  std::uint64_t leaves = 0;
  for (std::uint64_t i = lo; i < hi; ++i) {
    ++out.visited_values;
    if (!param.set_and_check(i)) {
      continue;
    }
    const std::uint64_t node = nodes.size();
    nodes.value_index.push_back(static_cast<std::uint32_t>(i));
    nodes.child_begin.push_back(is_last ? 0 : out.levels[lvl + 1].size());
    nodes.child_count.push_back(0);
    nodes.leaf_count.push_back(0);

    std::uint64_t sub = 1;
    if (!is_last) {
      sub = expand_range(params, lvl + 1, 0, params[lvl + 1]->range_size(),
                         out);
      if (sub == 0) {
        // No valid completion below this prefix: the recursive call left the
        // deeper levels untouched (its own dead children were popped), so we
        // only need to pop this node.
        ++out.dead_prefixes;
        nodes.value_index.pop_back();
        nodes.child_begin.pop_back();
        nodes.child_count.pop_back();
        nodes.leaf_count.pop_back();
        continue;
      }
      nodes.child_count[node] = static_cast<std::uint32_t>(
          out.levels[lvl + 1].size() - nodes.child_begin[node]);
    }
    nodes.leaf_count[node] = sub;
    leaves += sub;
  }
  return leaves;
}

void space_tree::stitch(std::vector<partial>& parts) {
  // Sequential expansion appends a level's nodes grouped by root value, in
  // root-value order; chunks partition the root range contiguously, so
  // concatenating the per-chunk level arrays in chunk order reproduces the
  // sequential node order exactly. Only child_begin needs fixing up: chunk
  // c's entries at level l index into its private level l+1 array, so they
  // shift by the combined level-(l+1) size of all earlier chunks.
  leaf_total_ = 0;
  stats_.visited_values = 0;
  stats_.dead_prefixes = 0;
  stats_.per_chunk.clear();
  stats_.per_chunk.reserve(parts.size());
  for (const partial& part : parts) {
    leaf_total_ += part.leaves;
    stats_.visited_values += part.visited_values;
    stats_.dead_prefixes += part.dead_prefixes;
    chunk_stat stat;
    stat.root_lo = part.root_lo;
    stat.root_hi = part.root_hi;
    stat.visited_values = part.visited_values;
    stat.leaves = part.leaves;
    for (const level& nodes : part.levels) {
      stat.nodes += nodes.size();
    }
    stat.seconds = part.seconds;
    stats_.per_chunk.push_back(stat);
  }

  for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
    level& dst = levels_[lvl];
    std::uint64_t total = 0;
    for (const partial& part : parts) {
      total += part.levels[lvl].size();
    }
    dst.value_index.reserve(total);
    dst.child_begin.reserve(total);
    dst.child_count.reserve(total);
    dst.leaf_count.reserve(total);

    const bool is_last = lvl + 1 == levels_.size();
    std::uint64_t next_level_offset = 0;
    for (partial& part : parts) {
      level& src = part.levels[lvl];
      dst.value_index.insert(dst.value_index.end(), src.value_index.begin(),
                             src.value_index.end());
      dst.child_count.insert(dst.child_count.end(), src.child_count.begin(),
                             src.child_count.end());
      dst.leaf_count.insert(dst.leaf_count.end(), src.leaf_count.begin(),
                            src.leaf_count.end());
      if (is_last) {
        // Leaf nodes store child_begin == 0 — append verbatim.
        dst.child_begin.insert(dst.child_begin.end(), src.child_begin.begin(),
                               src.child_begin.end());
      } else {
        for (const std::uint64_t begin : src.child_begin) {
          dst.child_begin.push_back(begin + next_level_offset);
        }
        next_level_offset += part.levels[lvl + 1].size();
      }
    }
  }
}

space_tree::span space_tree::children_of(std::size_t lvl,
                                         std::uint64_t node) const {
  const level& nodes = levels_[lvl];
  return {nodes.child_begin[node], nodes.child_count[node]};
}

void space_tree::path_of(std::uint64_t index, std::uint64_t* path) const {
  if (index >= leaf_total_) {
    throw std::out_of_range("space_tree: leaf index out of range");
  }
  std::uint64_t begin = 0;
  std::uint64_t count = levels_.empty() ? 0 : levels_[0].size();
  for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
    const level& nodes = levels_[lvl];
    std::uint64_t node = begin;
    // Scan siblings, subtracting subtree sizes, until `index` lands inside.
    while (index >= nodes.leaf_count[node]) {
      index -= nodes.leaf_count[node];
      ++node;
    }
    (void)count;
    path[lvl] = node;
    if (lvl + 1 < levels_.size()) {
      const span next = children_of(lvl, node);
      begin = next.begin;
      count = next.count;
    }
  }
}

std::uint64_t space_tree::leaf_index_of_path(const std::uint64_t* path) const {
  std::uint64_t index = 0;
  std::uint64_t begin = 0;
  for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
    const level& nodes = levels_[lvl];
    for (std::uint64_t sibling = begin; sibling < path[lvl]; ++sibling) {
      index += nodes.leaf_count[sibling];
    }
    if (lvl + 1 < levels_.size()) {
      begin = children_of(lvl, path[lvl]).begin;
    }
  }
  return index;
}

std::vector<tp_value> space_tree::values_at(std::uint64_t index) const {
  std::vector<std::uint64_t> path(levels_.size());
  path_of(index, path.data());
  std::vector<tp_value> values;
  values.reserve(levels_.size());
  for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
    values.push_back(
        params_[lvl]->value_at(levels_[lvl].value_index[path[lvl]]));
  }
  return values;
}

void space_tree::apply(std::uint64_t index) const {
  std::vector<std::uint64_t> path(levels_.size());
  path_of(index, path.data());
  for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
    // set_and_check both writes the shared slot and re-evaluates the
    // constraint; the value is valid by construction, so the result is
    // discarded.
    (void)params_[lvl]->set_and_check(levels_[lvl].value_index[path[lvl]]);
  }
}

std::uint64_t space_tree::random_index(common::xoshiro256& rng) const {
  return rng.below(leaf_total_);
}

std::uint64_t space_tree::leaves_before_sibling(std::size_t lvl,
                                                std::uint64_t first_sibling,
                                                std::uint64_t node) const {
  std::uint64_t leaves = 0;
  for (std::uint64_t sibling = first_sibling; sibling < node; ++sibling) {
    leaves += levels_[lvl].leaf_count[sibling];
  }
  return leaves;
}

std::uint64_t space_tree::descend_random(std::size_t lvl, std::uint64_t node,
                                         common::xoshiro256& rng) const {
  // Leaves of a subtree are contiguous in flat-index space, so a uniform
  // leaf of `node`'s subtree is just a uniform offset below it.
  return rng.below(levels_[lvl].leaf_count[node]);
}

std::uint64_t space_tree::random_neighbor(std::uint64_t index,
                                          common::xoshiro256& rng) const {
  if (leaf_total_ <= 1 || levels_.empty()) {
    return index;
  }
  std::vector<std::uint64_t> path(levels_.size());
  path_of(index, path.data());

  // Sibling spans along the current path.
  std::vector<span> spans(levels_.size());
  spans[0] = {0, levels_[0].size()};
  for (std::size_t d = 1; d < levels_.size(); ++d) {
    spans[d] = children_of(d - 1, path[d - 1]);
  }

  // Try levels in random order until one offers a sibling to move to.
  std::vector<std::size_t> order(levels_.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  for (const std::size_t lvl : order) {
    const span siblings = spans[lvl];
    if (siblings.count <= 1) {
      continue;
    }
    // Geometrically distributed step in sibling order. Ranges are ordered,
    // so adjacent siblings hold adjacent parameter values — this makes the
    // move genuinely local, which simulated annealing relies on.
    const std::uint64_t ordinal = path[lvl] - siblings.begin;
    std::uint64_t step = 1;
    while (rng.uniform() < 0.5 && step < siblings.count) {
      step *= 2;
    }
    step = std::min<std::uint64_t>(step, siblings.count - 1);
    std::uint64_t target;
    if (rng.uniform() < 0.5) {
      target = ordinal >= step ? ordinal - step : ordinal + step;
    } else {
      target = ordinal + step < siblings.count ? ordinal + step
                                               : ordinal - step;
    }
    if (target >= siblings.count) {
      target = (ordinal + 1) % siblings.count;
    }
    if (target == ordinal) {
      target = (ordinal + 1) % siblings.count;
    }

    // Build the new path: prefix unchanged, new sibling at `lvl`, and below
    // it keep each level's child *ordinal* (clamped) so the suffix stays as
    // close as the tree allows to the old configuration.
    std::vector<std::uint64_t> next(path);
    next[lvl] = siblings.begin + target;
    for (std::size_t d = lvl + 1; d < levels_.size(); ++d) {
      const span children = children_of(d - 1, next[d - 1]);
      const std::uint64_t old_ordinal = path[d] - spans[d].begin;
      next[d] = children.begin +
                std::min<std::uint64_t>(old_ordinal, children.count - 1);
    }
    return leaf_index_of_path(next.data());
  }
  return index;
}

std::uint64_t space_tree::node_count() const noexcept {
  std::uint64_t total = 0;
  for (const level& nodes : levels_) {
    total += nodes.size();
  }
  return total;
}

}  // namespace atf
