// Umbrella header for the ATF core library.
//
//   #include <atf/atf.hpp>
//
// brings in tuning parameters, ranges, constraints, expressions, the search
// space, abort conditions, the search-technique interface, exhaustive search
// and the tuner. Search techniques beyond exhaustive live in
// <atf/search/...>, cost functions in <atf/cf/...>.
#pragma once

#include "atf/abort_condition.hpp"
#include "atf/configuration.hpp"
#include "atf/constraint.hpp"
#include "atf/cost.hpp"
#include "atf/exhaustive.hpp"
#include "atf/expression.hpp"
#include "atf/range.hpp"
#include "atf/search_space.hpp"
#include "atf/search_technique.hpp"
#include "atf/space_tree.hpp"
#include "atf/tp.hpp"
#include "atf/tuner.hpp"
#include "atf/value.hpp"
