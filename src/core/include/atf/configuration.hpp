// A configuration: one concrete value per tuning parameter.
//
// Values are looked up by parameter name (paper: best_config["LS"]). The
// operator[] proxy converts implicitly to the requested type so the value can
// be used directly in arithmetic, while get<T>() is the explicit form.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "atf/value.hpp"

namespace atf {

class configuration {
public:
  configuration() = default;

  /// Appends a (name, value) entry. Names must be unique; duplicates throw.
  void add(std::string name, tp_value value);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  [[nodiscard]] bool contains(std::string_view name) const noexcept;

  /// The raw variant value; throws std::out_of_range for unknown names.
  [[nodiscard]] const tp_value& value_of(std::string_view name) const;

  /// Typed access; throws on unknown name or type mismatch.
  template <typename T>
  [[nodiscard]] T get(std::string_view name) const {
    return from_tp_value<T>(value_of(name));
  }

  /// Implicitly convertible access: `std::size_t ls = config["LS"];`.
  class value_proxy {
  public:
    value_proxy(const configuration& config, std::string_view name)
        : config_(config), name_(name) {}

    template <typename T>
      requires(std::is_arithmetic_v<T> || std::is_enum_v<T>)
    operator T() const {  // NOLINT(google-explicit-constructor)
      return config_.get<T>(name_);
    }

  private:
    const configuration& config_;
    std::string_view name_;
  };

  [[nodiscard]] value_proxy operator[](std::string_view name) const {
    return value_proxy(*this, name);
  }

  /// Ordered (declaration-order) view of the entries.
  [[nodiscard]] const std::vector<std::pair<std::string, tp_value>>& entries()
      const noexcept {
    return entries_;
  }

  /// The flat index of this configuration within the search space it came
  /// from, if it came from one (used by search techniques and the log).
  [[nodiscard]] std::optional<std::uint64_t> space_index() const noexcept {
    return space_index_;
  }
  void set_space_index(std::uint64_t index) noexcept { space_index_ = index; }

  /// "WPT=8, LS=64" — used in logs and reports.
  [[nodiscard]] std::string to_string() const;

  /// A stable 64-bit content hash: FNV-1a over the (name, value) pairs in
  /// canonical order (lexicographic by parameter name, so the hash does not
  /// depend on entry order), each value folded as a type tag plus a
  /// canonical 8-byte payload. The algorithm is fully specified — the same
  /// configuration hashes to the same value in every process, build and
  /// run, which is what lets a tuning session match journal records written
  /// by an earlier process against freshly proposed configurations. The
  /// space index does not participate (it is layout-, not content-derived).
  [[nodiscard]] std::uint64_t hash() const noexcept;

  /// Equality compares names and values (not the space index).
  friend bool operator==(const configuration& a, const configuration& b) {
    return a.entries_ == b.entries_;
  }

private:
  std::vector<std::pair<std::string, tp_value>> entries_;
  std::optional<std::uint64_t> space_index_;
};

}  // namespace atf
