// The constrained search-space tree — ATF's contribution (iii).
//
// One tree is generated per dependency group. Parameters are expanded in
// declaration order: for every valid prefix of values, the next parameter's
// *range* is iterated and filtered by its constraint (which may read the
// prefix through shared tp slots). Prefixes with no valid completion are
// discarded. The cost of generation is therefore proportional to the number
// of valid prefixes — never to the size of the unconstrained Cartesian
// product, which is what makes ATF's generation take under a second where a
// product-then-filter generator (CLTune) runs for hours (paper, Section VI-A).
//
// The tree is stored level-by-level in CSR form behind a pluggable
// space_storage backend (space_storage.hpp): dense vectors, bit-packed
// vectors, or lazily regenerated chunks. Every node records the number of
// leaves below it, so the tree supports random access by flat leaf index in
// O(depth x average-branching) in every backend. That random access is what
// lets the OpenTuner-style search technique treat the whole constrained
// space as a single integer parameter TP in [0, S) (paper, Section IV-C).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "atf/common/rng.hpp"
#include "atf/common/thread_pool.hpp"
#include "atf/space_storage.hpp"
#include "atf/tp.hpp"
#include "atf/value.hpp"

namespace atf {

/// Knobs of the adaptive intra-group chunk scheduler (DESIGN.md §7).
///
/// Generation starts from an over-partition of the root range and re-splits
/// chunks that turn out hot — on skewed constraint spaces (divides-chains)
/// a few root values own nearly all surviving prefixes, so no static split
/// can balance the load. None of these knobs affects the generated tree,
/// only how the work is scheduled: all settings produce spaces bit-identical
/// to sequential generation.
struct generation_policy {
  /// Initial over-partition: the root range starts as (workers + 1) × this
  /// many chunks. Re-splitting refines from there, so this only sets the
  /// granularity floor; 4 matches the pre-adaptive fixed factor.
  std::size_t over_partition = 4;
  /// A running chunk is *hot* — eligible for re-splitting — once its
  /// visited-value count exceeds this factor × the median visited-value
  /// count of the chunks completed so far.
  double hot_factor = 2.0;
  /// Never re-split before a chunk has tested at least this many candidate
  /// values; also the median stand-in while no chunk has completed. Keeps
  /// the split bookkeeping amortized against real expansion work.
  std::uint64_t min_split_visited = 512;
  /// Upper bound on total chunks, bounding stitch overhead however skewed
  /// the space is (0 = automatic: max(initial chunks, 32 × workers)).
  std::size_t max_chunks = 0;
  /// Only re-split while some consumer is starving (the shared queue ran
  /// dry) — splitting when work is still queued adds overhead for nothing.
  /// Tests turn this off to make the re-split path deterministic.
  bool split_only_when_starving = true;
  /// false restores the legacy fixed pre-partition (equal chunks, workers
  /// pull but never re-split) — the benches' imbalance baseline.
  bool adaptive = true;
};

class space_tree {
public:
  /// Per-chunk cost accounting (one entry per expanded root-range chunk, in
  /// root-value order) — what makes generation imbalance measurable.
  struct chunk_stat {
    std::uint64_t root_lo = 0;         ///< first root value of the chunk
    std::uint64_t root_hi = 0;         ///< one past the last root value
    std::uint64_t visited_values = 0;  ///< candidate values tested
    std::uint64_t leaves = 0;          ///< valid configurations survived
    std::uint64_t nodes = 0;           ///< stored tree nodes contributed
    std::uint64_t bytes = 0;           ///< dense CSR bytes of those nodes —
                                       ///< what lazy streaming avoids holding
    double seconds = 0.0;              ///< wall-clock expansion time
  };

  /// Statistics about a generation run (reported by benches and tests).
  struct generation_stats {
    std::uint64_t nodes = 0;            ///< logical tree nodes (all levels)
    std::uint64_t visited_values = 0;   ///< candidate values tested
    std::uint64_t dead_prefixes = 0;    ///< prefixes discarded for lack of completion
    std::uint64_t chunks = 1;           ///< root-range chunks expanded (1 = sequential)
    std::uint64_t resplits = 0;         ///< hot chunks re-split by the scheduler
    std::uint64_t bytes = 0;            ///< storage memory_bytes() right after generation
    double seconds = 0.0;               ///< wall-clock generation time
    std::vector<chunk_stat> per_chunk;  ///< per-chunk accounting, root order
  };

  space_tree() = default;

  /// Generates the tree for a dependency group. The group's parameters keep
  /// sharing state with the caller's tp handles, so replaying a
  /// configuration through this tree updates the caller's expressions.
  /// `storage` chooses the node representation (space_storage.hpp); every
  /// backend yields bit-identical leaves, order and access results.
  static space_tree generate(const tp_group& group,
                             const space_storage_policy& storage = {});

  /// Intra-group parallel generation: the root parameter's range is over-
  /// partitioned into contiguous chunks that workers *pull* from a shared
  /// work queue, each chunk expanded into a private partial tree under its
  /// own evaluation context (tp.hpp). A chunk whose cost races ahead of the
  /// completed-chunk median while other workers starve gives away the tail
  /// half of its remaining root span as a new chunk (generation_policy).
  /// Partial trees are stitched back in root-value order, so the result is
  /// bit-identical to sequential generation — same node order, child spans,
  /// leaf counts and flat-index order, regardless of worker count, chunk
  /// schedule or re-splits — and every index-based consumer is oblivious to
  /// how the tree was built. This is what parallelizes the Fig. 2
  /// XgemmDirect case, a *single* group that Section V's one-thread-
  /// per-group scheme cannot speed up.
  ///
  /// With the lazy storage backend, generation *streams*: each chunk is
  /// summarized ([root_lo, root_hi) → leaf/node counts) and its node
  /// buffers dropped immediately, so peak memory scales with the largest
  /// in-flight chunk plus the chunk cache — never with the space.
  static space_tree generate(const tp_group& group, common::thread_pool& pool,
                             const generation_policy& policy = {},
                             const space_storage_policy& storage = {});

  /// Number of valid configurations (leaves).
  [[nodiscard]] std::uint64_t size() const noexcept { return leaf_total_; }

  /// Number of parameters (tree depth).
  [[nodiscard]] std::size_t depth() const noexcept { return params_.size(); }

  [[nodiscard]] const std::string& param_name(std::size_t level) const {
    return params_[level]->name();
  }

  [[nodiscard]] const generation_stats& stats() const noexcept {
    return stats_;
  }

  /// Releases the per-chunk accounting (generation_stats::per_chunk) while
  /// keeping the aggregate counters. Long-lived processes holding many
  /// large trees call this once the per-chunk breakdown has been consumed;
  /// the lazy backend calls it automatically — its chunk counts are large
  /// by design.
  void drop_stats();

  /// Writes the per-level node positions of leaf `index` into `path` (which
  /// must have depth() slots). A node position is an index into that level's
  /// node arrays (the global dense numbering, whatever the backend).
  void path_of(std::uint64_t index, std::uint64_t* path) const;

  /// The type-erased values of leaf `index`, one per parameter.
  [[nodiscard]] std::vector<tp_value> values_at(std::uint64_t index) const;

  /// Replays leaf `index` into the shared tp slots (so that constraint /
  /// global-size expressions see its values).
  void apply(std::uint64_t index) const;

  /// A random valid configuration index.
  [[nodiscard]] std::uint64_t random_index(common::xoshiro256& rng) const;

  /// A neighbor of `index`: a uniformly chosen level's node is replaced by a
  /// random *sibling* (keeping the prefix), and the suffix below is re-drawn
  /// uniformly. If the chosen node has no sibling another level is tried; if
  /// no level has siblings (size()==1) the index itself is returned. This is
  /// the simulated-annealing move (paper, Section IV-B: "a random neighbor").
  [[nodiscard]] std::uint64_t random_neighbor(std::uint64_t index,
                                              common::xoshiro256& rng) const;

  /// Total logical nodes — identical across storage backends.
  [[nodiscard]] std::uint64_t node_count() const noexcept;

  /// Heap bytes the node storage holds right now. Dense counts its CSR
  /// vectors, packed its bit-packed words, lazy its summaries plus the
  /// chunks currently materialized in the cache.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Which representation backs this tree.
  [[nodiscard]] space_storage_backend storage_backend() const noexcept;

private:
  static space_tree generate_impl(const tp_group& group,
                                  common::thread_pool* pool,
                                  const generation_policy& policy,
                                  const space_storage_policy& storage);

  /// path_of against an existing cursor (one cursor per public operation:
  /// the lazy backend pins the chunk it is walking on the cursor).
  void path_of_with(detail::space_storage::cursor& cursor,
                    std::uint64_t index, std::uint64_t* path) const;
  [[nodiscard]] std::uint64_t leaf_index_of_path(
      detail::space_storage::cursor& cursor, const std::uint64_t* path) const;

  std::vector<std::shared_ptr<itp>> params_;
  std::shared_ptr<const detail::space_storage> storage_;
  std::uint64_t leaf_total_ = 0;
  generation_stats stats_;
};

}  // namespace atf
