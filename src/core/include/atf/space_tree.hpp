// The constrained search-space tree — ATF's contribution (iii).
//
// One tree is generated per dependency group. Parameters are expanded in
// declaration order: for every valid prefix of values, the next parameter's
// *range* is iterated and filtered by its constraint (which may read the
// prefix through shared tp slots). Prefixes with no valid completion are
// discarded. The cost of generation is therefore proportional to the number
// of valid prefixes — never to the size of the unconstrained Cartesian
// product, which is what makes ATF's generation take under a second where a
// product-then-filter generator (CLTune) runs for hours (paper, Section VI-A).
//
// The tree is stored level-by-level in CSR form; every node records the
// number of leaves below it, so the tree supports random access by flat leaf
// index in O(depth x average-branching). That random access is what lets the
// OpenTuner-style search technique treat the whole constrained space as a
// single integer parameter TP in [0, S) (paper, Section IV-C).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "atf/common/rng.hpp"
#include "atf/common/thread_pool.hpp"
#include "atf/tp.hpp"
#include "atf/value.hpp"

namespace atf {

class space_tree {
public:
  /// Statistics about a generation run (reported by benches and tests).
  struct generation_stats {
    std::uint64_t nodes = 0;            ///< stored tree nodes (all levels)
    std::uint64_t visited_values = 0;   ///< candidate values tested
    std::uint64_t dead_prefixes = 0;    ///< prefixes discarded for lack of completion
    std::uint64_t chunks = 1;           ///< root-range chunks expanded (1 = sequential)
    double seconds = 0.0;               ///< wall-clock generation time
  };

  space_tree() = default;

  /// Generates the tree for a dependency group. The group's parameters keep
  /// sharing state with the caller's tp handles, so replaying a
  /// configuration through this tree updates the caller's expressions.
  static space_tree generate(const tp_group& group);

  /// Intra-group parallel generation: the root parameter's range is split
  /// into contiguous chunks dispatched on `pool`, each chunk expanded into a
  /// private partial tree under its own evaluation context (tp.hpp), and the
  /// partial trees stitched back in root-value order. The result is
  /// bit-identical to sequential generation — same node order, child spans,
  /// leaf counts and flat-index order — so every index-based consumer is
  /// oblivious to how the tree was built. This is what parallelizes the
  /// Fig. 2 XgemmDirect case, a *single* group that Section V's one-thread-
  /// per-group scheme cannot speed up.
  static space_tree generate(const tp_group& group, common::thread_pool& pool);

  /// Number of valid configurations (leaves).
  [[nodiscard]] std::uint64_t size() const noexcept { return leaf_total_; }

  /// Number of parameters (tree depth).
  [[nodiscard]] std::size_t depth() const noexcept { return params_.size(); }

  [[nodiscard]] const std::string& param_name(std::size_t level) const {
    return params_[level]->name();
  }

  [[nodiscard]] const generation_stats& stats() const noexcept {
    return stats_;
  }

  /// Writes the per-level node positions of leaf `index` into `path` (which
  /// must have depth() slots). A node position is an index into that level's
  /// node arrays.
  void path_of(std::uint64_t index, std::uint64_t* path) const;

  /// The type-erased values of leaf `index`, one per parameter.
  [[nodiscard]] std::vector<tp_value> values_at(std::uint64_t index) const;

  /// Replays leaf `index` into the shared tp slots (so that constraint /
  /// global-size expressions see its values).
  void apply(std::uint64_t index) const;

  /// A random valid configuration index.
  [[nodiscard]] std::uint64_t random_index(common::xoshiro256& rng) const;

  /// A neighbor of `index`: a uniformly chosen level's node is replaced by a
  /// random *sibling* (keeping the prefix), and the suffix below is re-drawn
  /// uniformly. If the chosen node has no sibling another level is tried; if
  /// no level has siblings (size()==1) the index itself is returned. This is
  /// the simulated-annealing move (paper, Section IV-B: "a random neighbor").
  [[nodiscard]] std::uint64_t random_neighbor(std::uint64_t index,
                                              common::xoshiro256& rng) const;

  /// Total stored nodes (memory diagnostics).
  [[nodiscard]] std::uint64_t node_count() const noexcept;

private:
  /// CSR node storage for one level (= one parameter).
  struct level {
    std::vector<std::uint32_t> value_index;  ///< index into the parameter's range
    std::vector<std::uint64_t> child_begin;  ///< first child in the next level
    std::vector<std::uint32_t> child_count;  ///< number of children
    std::vector<std::uint64_t> leaf_count;   ///< leaves in this node's subtree

    [[nodiscard]] std::uint64_t size() const noexcept {
      return value_index.size();
    }
  };

  /// Children span of `node` at `lvl` (root: pass lvl == npos semantics via
  /// the level-0 full span).
  struct span {
    std::uint64_t begin;
    std::uint64_t count;
  };

  /// Buffers of one chunk expansion (levels + counters); defined in the
  /// .cpp. Sequential generation is the one-chunk special case, so both
  /// paths share expand_range and are identical by construction.
  struct partial;

  [[nodiscard]] span children_of(std::size_t lvl, std::uint64_t node) const;
  [[nodiscard]] std::uint64_t leaf_index_of_path(const std::uint64_t* path) const;
  static std::uint64_t expand_range(
      const std::vector<std::shared_ptr<itp>>& params, std::size_t lvl,
      std::uint64_t lo, std::uint64_t hi, partial& out);
  static space_tree generate_impl(const tp_group& group,
                                  common::thread_pool* pool);
  void stitch(std::vector<partial>& parts);
  [[nodiscard]] std::uint64_t descend_random(std::size_t lvl,
                                             std::uint64_t node,
                                             common::xoshiro256& rng) const;
  /// Flat leaf index of the first leaf under `node` at `lvl`, given the path
  /// to its parent chain has already been accounted for; helper for
  /// random_neighbor.
  [[nodiscard]] std::uint64_t leaves_before_sibling(std::size_t lvl,
                                                    std::uint64_t first_sibling,
                                                    std::uint64_t node) const;

  std::vector<std::shared_ptr<itp>> params_;
  std::vector<level> levels_;
  std::uint64_t leaf_total_ = 0;
  generation_stats stats_;
};

}  // namespace atf
