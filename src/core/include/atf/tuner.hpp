// The tuning driver: generates the search space from the declared tuning
// parameters, then explores it with the chosen search technique until the
// abort condition fires (paper, Section II). The cost function may return
// any type with operator< (multi-objective tuning via lexicographic
// composites); the best configuration under that order is returned.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "atf/abort_condition.hpp"
#include "atf/common/csv_writer.hpp"
#include "atf/common/logging.hpp"
#include "atf/common/stopwatch.hpp"
#include "atf/configuration.hpp"
#include "atf/cost.hpp"
#include "atf/exhaustive.hpp"
#include "atf/search_space.hpp"
#include "atf/search_technique.hpp"
#include "atf/tp.hpp"

namespace atf {

/// Thrown when the generated search space contains no valid configuration —
/// the situation CLBlast runs into when CLTune's restricted WGD range cannot
/// divide the result-matrix extents (paper, Section VI-A).
class empty_search_space_error : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// The outcome of a tuning run.
template <typename CostT>
struct tuning_result {
  configuration best;                 ///< valid only if best_cost has a value
  std::optional<CostT> best_cost;
  std::uint64_t evaluations = 0;      ///< configurations tested
  std::uint64_t failed_evaluations = 0;
  std::uint64_t cached_evaluations = 0;  ///< duplicates served from the cache
  std::chrono::nanoseconds elapsed{};
  std::uint64_t search_space_size = 0;
  std::vector<improvement> history;   ///< best-cost improvement trace

  [[nodiscard]] bool has_best() const noexcept {
    return best_cost.has_value();
  }

  /// The best configuration found; throws if every evaluation failed.
  [[nodiscard]] const configuration& best_configuration() const {
    if (!has_best()) {
      throw std::logic_error("tuning_result: no valid configuration found");
    }
    return best;
  }
};

class tuner {
public:
  tuner() = default;

  /// Declares the tuning parameters as a single dependency group, in
  /// declaration order. Constraints may only reference parameters declared
  /// earlier in the list.
  template <typename... Ts>
  tuner& tuning_parameters(const tp<Ts>&... params) {
    groups_.clear();
    groups_.push_back(G(params...));
    space_.reset();
    return *this;
  }

  /// Declares the tuning parameters as explicit dependency groups (paper,
  /// Section V); the groups' sub-spaces are generated in parallel.
  template <typename... Gs>
    requires(std::conjunction_v<std::is_same<std::decay_t<Gs>, tp_group>...>)
  tuner& tuning_parameters(Gs&&... groups) {
    groups_ = {std::forward<Gs>(groups)...};
    space_.reset();
    return *this;
  }

  /// Chooses the search technique; defaults to exhaustive search.
  tuner& search_technique(std::unique_ptr<atf::search_technique> technique) {
    technique_ = std::move(technique);
    return *this;
  }

  /// Sets the abort condition; defaults to evaluations(S) — one sweep over
  /// the whole space.
  tuner& abort_condition(atf::abort_condition condition) {
    abort_ = std::move(condition);
    return *this;
  }

  /// Chooses how the search space is generated (default: intra_group — the
  /// nested groups-by-chunks parallel mode; all modes produce bit-identical
  /// spaces, so tuning results do not depend on this choice).
  tuner& generation(generation_mode mode) {
    generation_mode_ = mode;
    space_.reset();
    return *this;
  }

  /// Back-compat toggle: disables parallel generation entirely (false) or
  /// selects the full nested mode (true). Diagnostics/benches.
  tuner& parallel_generation(bool enabled) {
    return generation(enabled ? generation_mode::intra_group
                              : generation_mode::sequential);
  }

  /// Appends every evaluation to a CSV file.
  tuner& log_file(std::string path) {
    log_path_ = std::move(path);
    return *this;
  }

  /// Caches evaluation results by configuration index: when a search
  /// technique proposes a configuration it has already measured, the cost
  /// is served from the cache instead of re-running the cost function
  /// (the results-database idea of OpenTuner). Off by default — real
  /// measurements are noisy and some users want re-measurement.
  tuner& cache_evaluations(bool enabled) {
    cache_ = enabled;
    return *this;
  }

  /// Prints best-cost improvements to stderr while tuning. verbose(false)
  /// restores the log level that was active before verbose(true) raised it
  /// (and is a no-op if verbosity was never enabled), so toggling verbosity
  /// does not permanently hijack the process-wide log threshold.
  tuner& verbose(bool enabled) {
    if (enabled) {
      if (!pre_verbose_log_level_.has_value()) {
        pre_verbose_log_level_ = common::get_log_level();
      }
      common::set_log_level(common::log_level::info);
    } else if (pre_verbose_log_level_.has_value()) {
      common::set_log_level(*pre_verbose_log_level_);
      pre_verbose_log_level_.reset();
    }
    return *this;
  }

  /// Forces regeneration and returns the search space (generates lazily on
  /// first use otherwise).
  const search_space& space() {
    if (!space_.has_value()) {
      space_ = search_space::generate(groups_, generation_mode_);
    }
    return *space_;
  }

  /// Runs the exploration loop. CF is any callable taking a
  /// const configuration& and returning a type with operator<.
  template <typename CF>
  auto tune(CF&& cost_function)
      -> tuning_result<std::decay_t<std::invoke_result_t<CF&, const configuration&>>> {
    using cost_t =
        std::decay_t<std::invoke_result_t<CF&, const configuration&>>;
    using traits = cost_traits<cost_t>;

    const search_space& sp = space();
    if (sp.empty()) {
      throw empty_search_space_error(
          "atf::tuner: the constrained search space is empty");
    }

    if (!technique_) {
      technique_ = std::make_unique<exhaustive>();
    }
    atf::abort_condition abort =
        abort_.valid() ? abort_ : cond::evaluations(sp.size());

    std::unique_ptr<common::csv_writer> log;
    const std::vector<std::string> log_names = sp.parameter_names();
    if (!log_path_.empty()) {
      std::vector<std::string> header{"evaluation", "elapsed_ns", "index"};
      for (const auto& name : log_names) {
        header.push_back(name);
      }
      header.emplace_back("cost");
      header.emplace_back("valid");
      log = std::make_unique<common::csv_writer>(log_path_, header);
    }

    tuning_result<cost_t> result;
    result.search_space_size = sp.size();

    // index -> (cost or failure) for cache_evaluations(true).
    std::unordered_map<std::uint64_t, std::optional<cost_t>> seen;

    tuning_status status;
    status.search_space_size = sp.size();

    technique_->initialize(sp);
    common::stopwatch timer;

    for (;;) {
      configuration config = technique_->get_next_config();
      // Replay the configuration into the shared tp slots so that dependent
      // expressions (kernel launch geometry etc.) evaluate against it.
      if (config.space_index().has_value()) {
        sp.apply(*config.space_index());
      }

      std::optional<cost_t> cost;
      double scalar = std::numeric_limits<double>::infinity();
      bool from_cache = false;
      if (cache_ && config.space_index().has_value()) {
        const auto hit = seen.find(*config.space_index());
        if (hit != seen.end()) {
          from_cache = true;
          cost = hit->second;
          if (cost.has_value()) {
            scalar = traits::scalar(*cost);
          }
          ++result.cached_evaluations;
        }
      }
      if (!from_cache) {
        try {
          cost = cost_function(static_cast<const configuration&>(config));
          scalar = traits::scalar(*cost);
        } catch (const evaluation_error& error) {
          ++result.failed_evaluations;
          ++status.failed_evaluations;
          common::log_debug("evaluation failed: ", error.what());
        }
        if (cache_ && config.space_index().has_value()) {
          seen.emplace(*config.space_index(), cost);
        }
      }

      ++result.evaluations;
      status.evaluations = result.evaluations;
      status.elapsed = timer.elapsed();

      if (cost.has_value() &&
          (!result.best_cost.has_value() || *cost < *result.best_cost)) {
        result.best_cost = cost;
        result.best = config;
        const improvement event{status.elapsed, result.evaluations, scalar};
        result.history.push_back(event);
        status.history.push_back(event);
        status.best_cost = scalar;
        common::log_info("new best after ", result.evaluations,
                         " evaluations: cost=", traits::describe(*cost), " [",
                         config.to_string(), "]");
      }

      if (log) {
        std::vector<std::string> row{
            std::to_string(result.evaluations),
            std::to_string(status.elapsed.count()),
            config.space_index().has_value()
                ? std::to_string(*config.space_index())
                : std::string("-")};
        // Align values to the header by *name*: a custom search technique
        // may hand back a configuration with fewer or reordered entries, and
        // positional emission would corrupt columns (or throw mid-run on a
        // row-length mismatch) — absent parameters log as "-".
        for (const auto& name : log_names) {
          row.push_back(config.contains(name)
                            ? atf::to_string(config.value_of(name))
                            : std::string("-"));
        }
        row.push_back(cost.has_value() ? traits::describe(*cost)
                                       : std::string("failed"));
        row.push_back(cost.has_value() ? "1" : "0");
        log->write_row(row);
      }

      technique_->report_cost(scalar);

      if (abort(status)) {
        break;
      }
    }

    technique_->finalize();
    result.elapsed = timer.elapsed();
    return result;
  }

  /// Paper-style spelling: the tuner object is callable.
  template <typename CF>
  auto operator()(CF&& cost_function) {
    return tune(std::forward<CF>(cost_function));
  }

private:
  std::vector<tp_group> groups_;
  std::unique_ptr<atf::search_technique> technique_;
  atf::abort_condition abort_;
  std::optional<search_space> space_;
  generation_mode generation_mode_ = generation_mode::intra_group;
  std::optional<common::log_level> pre_verbose_log_level_;
  bool cache_ = false;
  std::string log_path_;
};

}  // namespace atf
