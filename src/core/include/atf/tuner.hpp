// The tuning driver: generates the search space from the declared tuning
// parameters, then explores it with the chosen search technique until the
// abort condition fires (paper, Section II). The cost function may return
// any type with operator< (multi-objective tuning via lexicographic
// composites); the best configuration under that order is returned.
//
// The exploration loop itself is a thin shell: the tuner asks the technique
// for a batch of configurations (one, unless the technique supports batch
// proposals and batched evaluation is enabled), hands the batch to the
// evaluation engine — which owns the measure/cache/log/best-tracking
// pipeline, see evaluation_engine.hpp — and reports the committed costs
// back. Batched evaluation measures independent configurations concurrently
// and is bit-identical to sequential evaluation for pure cost functions.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "atf/abort_condition.hpp"
#include "atf/common/logging.hpp"
#include "atf/configuration.hpp"
#include "atf/cost.hpp"
#include "atf/evaluation_engine.hpp"
#include "atf/exhaustive.hpp"
#include "atf/fault_policy.hpp"
#include "atf/search_space.hpp"
#include "atf/search_technique.hpp"
#include "atf/session/session.hpp"
#include "atf/tp.hpp"

namespace atf {

/// Thrown when the generated search space contains no valid configuration —
/// the situation CLBlast runs into when CLTune's restricted WGD range cannot
/// divide the result-matrix extents (paper, Section VI-A).
class empty_search_space_error : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

class tuner {
public:
  tuner() = default;

  /// Declares the tuning parameters as a single dependency group, in
  /// declaration order. Constraints may only reference parameters declared
  /// earlier in the list.
  template <typename... Ts>
  tuner& tuning_parameters(const tp<Ts>&... params) {
    groups_.clear();
    groups_.push_back(G(params...));
    space_.reset();
    return *this;
  }

  /// Declares the tuning parameters as explicit dependency groups (paper,
  /// Section V); the groups' sub-spaces are generated in parallel.
  template <typename... Gs>
    requires(std::conjunction_v<std::is_same<std::decay_t<Gs>, tp_group>...>)
  tuner& tuning_parameters(Gs&&... groups) {
    groups_ = {std::forward<Gs>(groups)...};
    space_.reset();
    return *this;
  }

  /// Declares the tuning parameters from a runtime-built list of dependency
  /// groups — the form generic drivers (the kernel registry) use, where the
  /// group structure is only known at run time.
  tuner& tuning_parameters(std::vector<tp_group> groups) {
    groups_ = std::move(groups);
    space_.reset();
    return *this;
  }

  /// Chooses the search technique; defaults to exhaustive search.
  tuner& search_technique(std::unique_ptr<atf::search_technique> technique) {
    technique_ = std::move(technique);
    return *this;
  }

  /// Sets the abort condition; defaults to evaluations(S) — one sweep over
  /// the whole space.
  tuner& abort_condition(atf::abort_condition condition) {
    abort_ = std::move(condition);
    return *this;
  }

  /// Chooses how the search space is generated (default: intra_group — the
  /// nested groups-by-chunks parallel mode; all modes produce bit-identical
  /// spaces, so tuning results do not depend on this choice).
  tuner& generation(generation_mode mode) {
    generation_mode_ = mode;
    space_.reset();
    return *this;
  }

  /// Chooses the generation mode *and* tunes the adaptive chunk scheduler
  /// behind intra_group mode — the over-partition factor and the hot-chunk
  /// re-split policy (see generation_policy). The policy affects generation
  /// speed only; the generated space stays bit-identical across all
  /// settings.
  tuner& generation(generation_mode mode,
                    const atf::generation_policy& policy) {
    generation_mode_ = mode;
    generation_policy_ = policy;
    space_.reset();
    return *this;
  }

  /// Chooses how the generated space stores its nodes (space_storage.hpp):
  /// dense CSR (default), bit-packed CSR (3-8x smaller, same O(1) reads),
  /// or lazy chunk regeneration behind a bounded LRU cache — the backend
  /// for spaces too large to materialize. Every backend yields bit-identical
  /// configurations, index order and therefore tuning results; only memory
  /// (and, for lazy, regeneration work on access) differs.
  tuner& space_storage(const space_storage_policy& policy) {
    storage_policy_ = policy;
    space_.reset();
    return *this;
  }

  /// Back-compat toggle: disables parallel generation entirely (false) or
  /// selects the full nested mode (true). Diagnostics/benches.
  tuner& parallel_generation(bool enabled) {
    return generation(enabled ? generation_mode::intra_group
                              : generation_mode::sequential);
  }

  /// Chooses how proposed configurations are evaluated. The default is
  /// sequential — safe for every cost function. Batched mode measures the
  /// configurations of a batch concurrently on worker threads (each one
  /// replayed into a private evaluation context) and is the right choice
  /// for pure cost functions such as the simulator-backed ones; results
  /// are bit-identical to sequential mode there. A cost function that is
  /// not annotated thread-safe (see atf::declares_thread_safe_cost) earns
  /// a warning but the explicit choice is honoured.
  tuner& evaluation(evaluation_mode mode) {
    evaluation_mode_ = mode;
    return *this;
  }

  /// Worker count for batched evaluation (0 = hardware concurrency).
  /// Clamped to the number of leasable evaluation contexts
  /// (detail::max_eval_contexts - 1), with a logged warning.
  tuner& concurrency(std::size_t workers) {
    concurrency_ = workers;
    return *this;
  }

  /// Appends every evaluation to a CSV file.
  tuner& log_file(std::string path) {
    log_path_ = std::move(path);
    return *this;
  }

  /// Caches evaluation results by configuration content: when a search
  /// technique proposes a configuration it has already measured, the cost
  /// is served from the cache instead of re-running the cost function
  /// (the results-database idea of OpenTuner). Off by default — real
  /// measurements are noisy and some users want re-measurement. Results
  /// replayed from a resumed session (see session()) are always served
  /// regardless of this flag.
  tuner& cache_evaluations(bool enabled) {
    cache_ = enabled;
    return *this;
  }

  /// Attaches a crash-safe tuning session backed by the JSONL journal at
  /// `path` (created if absent; DESIGN.md §9). Every measured evaluation
  /// is appended to the journal, and an existing journal warm-starts the
  /// run: previously measured configurations are served from the replayed
  /// store — counted toward the abort condition but never re-measured —
  /// and the prior best seeds the best tracker, so a killed run resumed
  /// with the same seed converges to the same result as an uninterrupted
  /// one. A locked or unreadable journal degrades to a non-persistent
  /// session with a warning; it never aborts the run.
  tuner& session(const std::string& path,
                 const atf::session::options& session_opts = {}) {
    session_ = atf::session::tuning_session::open(path, session_opts);
    return *this;
  }

  /// Attaches an already opened session (sharing one across tuners, or
  /// passing a preconfigured fsync policy/read-only store).
  tuner& session(std::shared_ptr<atf::session::tuning_session> session) {
    session_ = std::move(session);
    return *this;
  }

  /// The attached session, if any — for inspecting the store after tuning.
  [[nodiscard]] const std::shared_ptr<atf::session::tuning_session>&
  current_session() const noexcept {
    return session_;
  }

  /// Fault tolerance for the cost function: retries, catch-all exception
  /// conversion, a post-hoc timeout and the penalty scalar reported for
  /// invalid evaluations (see atf/fault_policy.hpp). Default: only
  /// atf::evaluation_error is tolerated, no retries, no deadline.
  tuner& fault_tolerance(const fault_policy& policy) {
    faults_ = policy;
    return *this;
  }

  /// Prints best-cost improvements to stderr while tuning. verbose(false)
  /// restores the log level that was active before verbose(true) raised it
  /// (and is a no-op if verbosity was never enabled), so toggling verbosity
  /// does not permanently hijack the process-wide log threshold.
  tuner& verbose(bool enabled) {
    if (enabled) {
      if (!pre_verbose_log_level_.has_value()) {
        pre_verbose_log_level_ = common::get_log_level();
      }
      common::set_log_level(common::log_level::info);
    } else if (pre_verbose_log_level_.has_value()) {
      common::set_log_level(*pre_verbose_log_level_);
      pre_verbose_log_level_.reset();
    }
    return *this;
  }

  /// The search space, generated lazily on first use and reused afterwards.
  /// Declaring parameters or changing the generation mode discards the
  /// cached space; call invalidate_space() to force regeneration by hand.
  const search_space& space() {
    if (!space_.has_value()) {
      space_ = search_space::generate(groups_, generation_mode_,
                                      /*threads=*/0, generation_policy_,
                                      storage_policy_);
    }
    return *space_;
  }

  /// Discards the cached search space so the next space()/tune() call
  /// regenerates it from the declared parameters — for callers that mutate
  /// ranges or constraints behind the tp handles and genuinely need a
  /// fresh generation.
  tuner& invalidate_space() {
    space_.reset();
    return *this;
  }

  /// Runs the exploration loop. CF is any callable taking a
  /// const configuration& and returning a type with operator<.
  template <typename CF>
  auto tune(CF&& cost_function)
      -> tuning_result<std::decay_t<std::invoke_result_t<CF&, const configuration&>>> {
    using cost_t =
        std::decay_t<std::invoke_result_t<CF&, const configuration&>>;

    const search_space& sp = space();
    if (sp.empty()) {
      throw empty_search_space_error(
          "atf::tuner: the constrained search space is empty");
    }

    if (!technique_) {
      technique_ = std::make_unique<exhaustive>();
    }

    typename evaluation_engine<cost_t>::options opts;
    opts.mode = evaluation_mode_;
    opts.concurrency = concurrency_;
    opts.cache = cache_;
    opts.log_path = log_path_;
    // The engine warns (once per tune, deduped across batches) when
    // batched mode meets a cost function without a purity annotation.
    opts.cost_thread_safe = declares_thread_safe_cost(cost_function);
    opts.session = session_;
    opts.faults = faults_;
    opts.technique = technique_->name();

    evaluation_engine<cost_t> engine(
        sp,
        [&cost_function](const configuration& config) -> cost_t {
          return cost_function(config);
        },
        abort_.valid() ? abort_ : cond::evaluations(sp.size()),
        std::move(opts));

    technique_->initialize(sp);
    if (session_) {
      // Replayed journal history shapes warm-start-capable techniques (the
      // surrogate's training set) before the first proposal.
      technique_->warm_start(session_->store());
    }
    const std::size_t batch_limit = engine.batch_limit();
    for (;;) {
      const std::vector<configuration> batch =
          technique_->propose_batch(batch_limit);
      if (batch.empty()) {
        break;  // the technique has nothing left to propose
      }
      const auto outcome = engine.evaluate(batch);
      technique_->report_batch(batch, outcome.scalars);
      if (outcome.aborted) {
        break;
      }
    }
    technique_->finalize();
    return engine.finish();
  }

  /// Paper-style spelling: the tuner object is callable.
  template <typename CF>
  auto operator()(CF&& cost_function) {
    return tune(std::forward<CF>(cost_function));
  }

private:
  std::vector<tp_group> groups_;
  std::unique_ptr<atf::search_technique> technique_;
  atf::abort_condition abort_;
  std::optional<search_space> space_;
  generation_mode generation_mode_ = generation_mode::intra_group;
  atf::generation_policy generation_policy_;
  atf::space_storage_policy storage_policy_;
  evaluation_mode evaluation_mode_ = evaluation_mode::sequential;
  std::size_t concurrency_ = 0;
  std::optional<common::log_level> pre_verbose_log_level_;
  bool cache_ = false;
  std::string log_path_;
  std::shared_ptr<atf::session::tuning_session> session_;
  fault_policy faults_;
};

}  // namespace atf
