// The evaluation engine: everything that happens between "the search
// technique proposed a configuration" and "the technique learns its cost" —
// cache lookup, cost-function invocation, failure accounting, best-cost
// tracking, improvement history, CSV logging and abort-condition updates —
// factored out of the tuner's exploration loop so the same pipeline serves
// both sequential and batched evaluation.
//
// Batched mode measures the configurations of one batch concurrently on a
// shared thread pool. Each worker leases a private evaluation context
// (tp.hpp), replays its configuration into that context and invokes the
// cost function there, so arbitrarily many applied configurations are alive
// at once and launch-geometry expressions evaluate against the right one.
// Results are *committed* strictly in proposal order, which makes the
// observable outcome — evaluation numbering, cache contents, CSV rows,
// improvement history, abort accounting, the returned best — identical to
// sequential evaluation for pure cost functions, regardless of worker
// count or completion order. Only wall-clock timestamps differ.
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "atf/abort_condition.hpp"
#include "atf/common/csv_writer.hpp"
#include "atf/common/logging.hpp"
#include "atf/common/stopwatch.hpp"
#include "atf/common/thread_pool.hpp"
#include "atf/configuration.hpp"
#include "atf/cost.hpp"
#include "atf/search_space.hpp"
#include "atf/tp.hpp"

namespace atf {

/// How the engine evaluates a proposed batch. Sequential is the default:
/// real-measurement cost functions (actual devices, compile-and-run
/// scripts) are rarely safe to invoke concurrently. Batched mode is the
/// throughput lever for pure cost functions — simulators and profile
/// models — whose invocations are independent.
enum class evaluation_mode {
  sequential,  ///< one configuration at a time, on the calling thread
  batched,     ///< whole batches concurrently on a worker pool
};

/// The outcome of a tuning run.
template <typename CostT>
struct tuning_result {
  configuration best;                 ///< valid only if best_cost has a value
  std::optional<CostT> best_cost;
  std::uint64_t evaluations = 0;      ///< configurations tested
  std::uint64_t failed_evaluations = 0;
  std::uint64_t cached_evaluations = 0;  ///< duplicates served from the cache
  std::chrono::nanoseconds elapsed{};
  std::uint64_t search_space_size = 0;
  std::vector<improvement> history;   ///< best-cost improvement trace

  [[nodiscard]] bool has_best() const noexcept {
    return best_cost.has_value();
  }

  /// The best configuration found; throws if every evaluation failed.
  [[nodiscard]] const configuration& best_configuration() const {
    if (!has_best()) {
      throw std::logic_error("tuning_result: no valid configuration found");
    }
    return best;
  }
};

template <typename CostT>
class evaluation_engine {
public:
  using traits = cost_traits<CostT>;
  using cost_function = std::function<CostT(const configuration&)>;

  struct options {
    evaluation_mode mode = evaluation_mode::sequential;
    std::size_t concurrency = 0;  ///< batched-mode workers; 0 = hardware
    bool cache = false;           ///< serve repeated indices from a cache
    std::string log_path;         ///< CSV log; empty = no log
    /// Whether the cost function is annotated thread-safe (see
    /// atf::declares_thread_safe_cost). Batched mode with an unannotated
    /// cost function logs a warning on the first evaluated batch — once
    /// per engine lifetime (i.e. once per tune), not once per batch — but
    /// the caller's explicit mode choice is honoured.
    bool cost_thread_safe = true;
  };

  /// The committed slice of one evaluated batch: scalars[i] is the
  /// (scalarized, +inf on failure) cost of the batch's i-th configuration.
  /// When the abort condition fires mid-batch, scalars covers only the
  /// configurations committed before the stop.
  struct batch_outcome {
    std::vector<double> scalars;
    bool aborted = false;
  };

  evaluation_engine(const search_space& space, cost_function cost,
                    abort_condition abort, options opts)
      : space_(&space),
        cost_(std::move(cost)),
        abort_(std::move(abort)),
        opts_(std::move(opts)) {
    result_.search_space_size = space_->size();
    status_.search_space_size = space_->size();

    if (opts_.mode == evaluation_mode::batched) {
      std::size_t workers =
          common::thread_pool::resolve_num_threads(opts_.concurrency);
      if (workers > detail::max_leased_contexts()) {
        common::log_warn(
            "evaluation_engine: clamping evaluation concurrency from ",
            workers, " to ", detail::max_leased_contexts(),
            " — the per-parameter slot registry holds ",
            detail::max_eval_contexts,
            " evaluation contexts (one is the ambient context)");
        workers = detail::max_leased_contexts();
      }
      batch_limit_ = workers;
      if (workers > 1) {
        pool_ = std::make_unique<common::thread_pool>(workers);
      }
    }

    if (!opts_.log_path.empty()) {
      std::vector<std::string> header{"evaluation", "elapsed_ns", "index"};
      log_names_ = space_->parameter_names();
      for (const auto& name : log_names_) {
        header.push_back(name);
      }
      header.emplace_back("cost");
      header.emplace_back("valid");
      log_ = std::make_unique<common::csv_writer>(opts_.log_path, header);
    }
  }

  /// The widest batch the engine can evaluate concurrently (1 in
  /// sequential mode) — what the tuner passes to propose_batch.
  [[nodiscard]] std::size_t batch_limit() const noexcept {
    return batch_limit_;
  }

  /// Evaluates a batch and commits the results in proposal order. Exceptions
  /// other than atf::evaluation_error propagate after every earlier
  /// configuration of the batch has been committed — the same order of
  /// effects as evaluating one by one.
  batch_outcome evaluate(const std::vector<configuration>& batch) {
    batch_outcome out;
    if (batch.empty()) {
      return out;
    }

    if (opts_.mode == evaluation_mode::batched && !opts_.cost_thread_safe &&
        !warned_unsafe_cost_) {
      // Deduped across batches: evaluate() runs once per batch, but the
      // warning is per tune.
      warned_unsafe_cost_ = true;
      common::log_warn(
          "evaluation_engine: batched evaluation requested for a cost "
          "function that is not annotated thread-safe — batched mode "
          "assumes a pure cost function; keep real-measurement backends "
          "sequential");
    }

    std::vector<pending> slots(batch.size());
    if (pool_ && batch.size() > 1) {
      dispatch(batch, slots);
    }

    for (std::size_t i = 0; i < batch.size(); ++i) {
      pending& slot = slots[i];
      const std::optional<std::uint64_t> index = batch[i].space_index();
      if (!slot.evaluated && index.has_value()) {
        // Sequential path: replay into the ambient context, exactly like
        // the pre-engine tuner loop (batched workers replayed into their
        // own context already, inside dispatch).
        space_->apply(*index);
      }

      std::optional<CostT> cost;
      bool from_cache = false;
      if (opts_.cache && index.has_value()) {
        const auto hit = cache_.find(*index);
        if (hit != cache_.end()) {
          from_cache = true;
          cost = hit->second;
          ++result_.cached_evaluations;
        }
      }
      if (!from_cache) {
        if (!slot.evaluated) {
          run_cost(batch[i], slot);
        }
        if (slot.error) {
          std::rethrow_exception(slot.error);
        }
        cost = std::move(slot.cost);
        if (opts_.cache && index.has_value()) {
          cache_.emplace(*index, cost);
        }
      }

      out.scalars.push_back(commit(batch[i], cost, from_cache, slot.failure));
      if (abort_(status_)) {
        out.aborted = true;
        break;
      }
    }
    return out;
  }

  /// Finishes the run: stamps the total elapsed time and hands the
  /// accumulated result over.
  [[nodiscard]] tuning_result<CostT> finish() {
    result_.elapsed = timer_.elapsed();
    return std::move(result_);
  }

  [[nodiscard]] const tuning_status& status() const noexcept {
    return status_;
  }

private:
  /// One batch entry's evaluation outcome, filled either by a pool worker
  /// or inline during the commit loop.
  struct pending {
    std::optional<CostT> cost;
    std::string failure;         ///< evaluation_error message, if any
    std::exception_ptr error;    ///< non-evaluation_error escape
    bool evaluated = false;
  };

  /// Runs the cost function for one configuration on the calling thread.
  /// Expressions over tuning parameters read the calling thread's current
  /// evaluation context, into which the configuration was already replayed.
  void run_cost(const configuration& config, pending& slot) {
    try {
      slot.cost = cost_(config);
    } catch (const evaluation_error& error) {
      slot.failure = error.what();
    } catch (...) {
      slot.error = std::current_exception();
    }
    slot.evaluated = true;
  }

  /// Batched path: evaluates every batch entry that cannot be served from
  /// the cache on the pool, each under a freshly leased evaluation context.
  void dispatch(const std::vector<configuration>& batch,
                std::vector<pending>& slots) {
    // Decide in proposal order which entries actually run the cost
    // function: with caching on, an index that is already cached — or that
    // a preceding entry of this same batch will evaluate — is served from
    // the cache at commit time instead, exactly as the sequential loop
    // would have done.
    std::vector<std::size_t> to_run;
    to_run.reserve(batch.size());
    std::unordered_set<std::uint64_t> scheduled;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::optional<std::uint64_t> index = batch[i].space_index();
      if (opts_.cache && index.has_value()) {
        if (cache_.contains(*index) || !scheduled.insert(*index).second) {
          continue;
        }
      }
      to_run.push_back(i);
    }

    std::vector<std::future<void>> futures;
    futures.reserve(to_run.size());
    for (const std::size_t i : to_run) {
      futures.push_back(pool_->submit([this, &batch, &slots, i] {
        detail::scoped_eval_context context;
        const std::optional<std::uint64_t> index = batch[i].space_index();
        if (index.has_value()) {
          space_->apply(*index, context);
        }
        run_cost(batch[i], slots[i]);
      }));
    }
    for (auto& future : futures) {
      future.get();
    }
  }

  /// Folds one evaluated configuration into the run's accumulated state and
  /// returns the scalar reported to the search technique.
  double commit(const configuration& config, const std::optional<CostT>& cost,
                bool from_cache, const std::string& failure) {
    double scalar = std::numeric_limits<double>::infinity();
    if (cost.has_value()) {
      scalar = traits::scalar(*cost);
    } else if (!from_cache) {
      ++result_.failed_evaluations;
      ++status_.failed_evaluations;
      common::log_debug("evaluation failed: ", failure);
    }

    ++result_.evaluations;
    status_.evaluations = result_.evaluations;
    status_.elapsed = timer_.elapsed();

    if (cost.has_value() &&
        (!result_.best_cost.has_value() || *cost < *result_.best_cost)) {
      result_.best_cost = cost;
      result_.best = config;
      const improvement event{status_.elapsed, result_.evaluations, scalar};
      result_.history.push_back(event);
      status_.history.push_back(event);
      status_.best_cost = scalar;
      common::log_info("new best after ", result_.evaluations,
                       " evaluations: cost=", traits::describe(*cost), " [",
                       config.to_string(), "]");
    }

    if (log_) {
      std::vector<std::string> row{
          std::to_string(result_.evaluations),
          std::to_string(status_.elapsed.count()),
          config.space_index().has_value()
              ? std::to_string(*config.space_index())
              : std::string("-")};
      // Align values to the header by *name*: a custom search technique
      // may hand back a configuration with fewer or reordered entries, and
      // positional emission would corrupt columns (or throw mid-run on a
      // row-length mismatch) — absent parameters log as "-".
      for (const auto& name : log_names_) {
        row.push_back(config.contains(name)
                          ? atf::to_string(config.value_of(name))
                          : std::string("-"));
      }
      row.push_back(cost.has_value() ? traits::describe(*cost)
                                     : std::string("failed"));
      row.push_back(cost.has_value() ? "1" : "0");
      log_->write_row(row);
    }
    return scalar;
  }

  const search_space* space_;
  cost_function cost_;
  abort_condition abort_;
  options opts_;
  std::size_t batch_limit_ = 1;
  std::unique_ptr<common::thread_pool> pool_;
  std::unique_ptr<common::csv_writer> log_;
  std::vector<std::string> log_names_;
  std::unordered_map<std::uint64_t, std::optional<CostT>> cache_;
  tuning_result<CostT> result_;
  tuning_status status_;
  common::stopwatch timer_;
  bool warned_unsafe_cost_ = false;
};

}  // namespace atf
