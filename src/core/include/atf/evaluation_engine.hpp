// The evaluation engine: everything that happens between "the search
// technique proposed a configuration" and "the technique learns its cost" —
// cache lookup, session-store lookup, cost-function invocation, fault
// handling, best-cost tracking, improvement history, CSV logging, journal
// appends and abort-condition updates — factored out of the tuner's
// exploration loop so the same pipeline serves both sequential and batched
// evaluation.
//
// Batched mode measures the configurations of one batch concurrently on a
// shared thread pool. Each worker leases a private evaluation context
// (tp.hpp), replays its configuration into that context and invokes the
// cost function there, so arbitrarily many applied configurations are alive
// at once and launch-geometry expressions evaluate against the right one.
// Results are *committed* strictly in proposal order, which makes the
// observable outcome — evaluation numbering, cache contents, CSV rows,
// improvement history, abort accounting, the returned best — identical to
// sequential evaluation for pure cost functions, regardless of worker
// count or completion order. Only wall-clock timestamps differ.
//
// Crash-safe sessions (DESIGN.md §9). With options::session set the engine
// becomes durable: at construction it *replays* every journal record into
// its cache (keyed by configuration::hash(), so records match across
// processes and even across space-layout changes) and seeds the best
// tracker; during the run every fresh measurement is appended to the
// journal in commit (i.e. proposal) order. A proposal whose hash is already
// in the store is served without invoking the cost function and counted as
// a store hit — re-proposing is what keeps a fixed-seed resumed run on the
// uninterrupted run's exact proposal stream, because the technique sees
// bit-identical scalars either way.
#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "atf/abort_condition.hpp"
#include "atf/common/csv_writer.hpp"
#include "atf/common/logging.hpp"
#include "atf/common/stopwatch.hpp"
#include "atf/common/thread_pool.hpp"
#include "atf/configuration.hpp"
#include "atf/cost.hpp"
#include "atf/fault_policy.hpp"
#include "atf/search_space.hpp"
#include "atf/session/cost_codec.hpp"
#include "atf/session/session.hpp"
#include "atf/tp.hpp"

namespace atf {

/// How the engine evaluates a proposed batch. Sequential is the default:
/// real-measurement cost functions (actual devices, compile-and-run
/// scripts) are rarely safe to invoke concurrently. Batched mode is the
/// throughput lever for pure cost functions — simulators and profile
/// models — whose invocations are independent.
enum class evaluation_mode {
  sequential,  ///< one configuration at a time, on the calling thread
  batched,     ///< whole batches concurrently on a worker pool
};

/// The outcome of a tuning run.
template <typename CostT>
struct tuning_result {
  configuration best;                 ///< valid only if best_cost has a value
  std::optional<CostT> best_cost;
  std::uint64_t evaluations = 0;      ///< configurations tested
  std::uint64_t failed_evaluations = 0;
  std::uint64_t cached_evaluations = 0;  ///< duplicates served from the cache
  std::uint64_t store_hits = 0;  ///< served from a prior run's journal records
  std::chrono::nanoseconds elapsed{};
  std::uint64_t search_space_size = 0;
  std::vector<improvement> history;   ///< best-cost improvement trace
  std::string run_id;                 ///< session run id; empty without session

  [[nodiscard]] bool has_best() const noexcept {
    return best_cost.has_value();
  }

  /// The best configuration found; throws if every evaluation failed.
  [[nodiscard]] const configuration& best_configuration() const {
    if (!has_best()) {
      throw std::logic_error("tuning_result: no valid configuration found");
    }
    return best;
  }
};

template <typename CostT>
class evaluation_engine {
public:
  using traits = cost_traits<CostT>;
  using cost_function = std::function<CostT(const configuration&)>;

  struct options {
    evaluation_mode mode = evaluation_mode::sequential;
    std::size_t concurrency = 0;  ///< batched-mode workers; 0 = hardware
    bool cache = false;           ///< serve repeated configurations from a cache
    std::string log_path;         ///< CSV log; empty = no log
    /// Whether the cost function is annotated thread-safe (see
    /// atf::declares_thread_safe_cost). Batched mode with an unannotated
    /// cost function logs a warning on the first evaluated batch — once
    /// per engine lifetime (i.e. once per tune), not once per batch — but
    /// the caller's explicit mode choice is honoured.
    bool cost_thread_safe = true;
    /// Durable session: replayed into the cache/best-tracker at
    /// construction, appended with every fresh measurement. Requires a
    /// session::cost_codec for CostT; without one the engine warns and
    /// runs the session non-persistently (dropped).
    std::shared_ptr<session::tuning_session> session;
    /// Fault tolerance for the cost function (see atf/fault_policy.hpp).
    fault_policy faults;
    /// Tag recorded on journal records: the proposing technique's name.
    std::string technique;
  };

  /// The committed slice of one evaluated batch: scalars[i] is the
  /// (scalarized; fault_policy::penalty on failure) cost of the batch's
  /// i-th configuration. When the abort condition fires mid-batch, scalars
  /// covers only the configurations committed before the stop.
  struct batch_outcome {
    std::vector<double> scalars;
    bool aborted = false;
  };

  evaluation_engine(const search_space& space, cost_function cost,
                    abort_condition abort, options opts)
      : space_(&space),
        cost_(std::move(cost)),
        abort_(std::move(abort)),
        opts_(std::move(opts)) {
    result_.search_space_size = space_->size();
    status_.search_space_size = space_->size();

    if (opts_.mode == evaluation_mode::batched) {
      std::size_t workers =
          common::thread_pool::resolve_num_threads(opts_.concurrency);
      if (workers > detail::max_leased_contexts()) {
        common::log_warn(
            "evaluation_engine: clamping evaluation concurrency from ",
            workers, " to ", detail::max_leased_contexts(),
            " — the per-parameter slot registry holds ",
            detail::max_eval_contexts,
            " evaluation contexts (one is the ambient context)");
        workers = detail::max_leased_contexts();
      }
      batch_limit_ = workers;
      if (workers > 1) {
        pool_ = std::make_unique<common::thread_pool>(workers);
      }
    }

    replay_session();

    if (!opts_.log_path.empty()) {
      std::vector<std::string> header{"evaluation", "elapsed_ns", "index"};
      log_names_ = space_->parameter_names();
      for (const auto& name : log_names_) {
        header.push_back(name);
      }
      header.emplace_back("cost");
      header.emplace_back("valid");
      // Resumed-run auditability: which run produced the row, and whether
      // the cost was freshly measured, a this-run cache duplicate, or
      // replayed from a previous run's journal.
      header.emplace_back("run");
      header.emplace_back("source");
      log_ = std::make_unique<common::csv_writer>(opts_.log_path, header);
    }
  }

  /// The widest batch the engine can evaluate concurrently (1 in
  /// sequential mode) — what the tuner passes to propose_batch.
  [[nodiscard]] std::size_t batch_limit() const noexcept {
    return batch_limit_;
  }

  /// Evaluates a batch and commits the results in proposal order. Exceptions
  /// other than atf::evaluation_error propagate after every earlier
  /// configuration of the batch has been committed — the same order of
  /// effects as evaluating one by one — unless fault_policy::catch_all
  /// turns them into recorded failures.
  batch_outcome evaluate(const std::vector<configuration>& batch) {
    batch_outcome out;
    if (batch.empty()) {
      return out;
    }

    if (opts_.mode == evaluation_mode::batched && !opts_.cost_thread_safe &&
        !warned_unsafe_cost_) {
      // Deduped across batches: evaluate() runs once per batch, but the
      // warning is per tune.
      warned_unsafe_cost_ = true;
      common::log_warn(
          "evaluation_engine: batched evaluation requested for a cost "
          "function that is not annotated thread-safe — batched mode "
          "assumes a pure cost function; keep real-measurement backends "
          "sequential");
    }

    // One content hash per entry: the cache/store key (stable across runs,
    // unlike the space index) — computed once, used by the dispatch skip
    // logic, the commit-time lookup and the journal append.
    std::vector<std::uint64_t> hashes(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      hashes[i] = batch[i].hash();
    }

    std::vector<pending> slots(batch.size());
    if (pool_ && batch.size() > 1) {
      dispatch(batch, hashes, slots);
    }

    for (std::size_t i = 0; i < batch.size(); ++i) {
      pending& slot = slots[i];
      const std::optional<std::uint64_t> index = batch[i].space_index();
      if (!slot.evaluated && index.has_value()) {
        // Sequential path: replay into the ambient context, exactly like
        // the pre-engine tuner loop (batched workers replayed into their
        // own context already, inside dispatch).
        space_->apply(*index);
      }

      std::optional<CostT> cost;
      eval_source source = eval_source::measured;
      const cache_entry* hit = lookup(hashes[i]);
      if (hit != nullptr) {
        source = hit->from_store ? eval_source::store : eval_source::cache;
        cost = hit->cost;
      } else {
        if (!slot.evaluated) {
          run_cost(batch[i], slot);
        }
        if (slot.error) {
          std::rethrow_exception(slot.error);
        }
        cost = std::move(slot.cost);
        if (opts_.cache) {
          cache_[hashes[i]] = cache_entry{cost, /*from_store=*/false};
        }
      }

      out.scalars.push_back(
          commit(batch[i], hashes[i], cost, source, slot.failure));
      if (abort_(status_)) {
        out.aborted = true;
        break;
      }
    }
    return out;
  }

  /// Finishes the run: stamps the total elapsed time and hands the
  /// accumulated result over.
  [[nodiscard]] tuning_result<CostT> finish() {
    result_.elapsed = timer_.elapsed();
    return std::move(result_);
  }

  [[nodiscard]] const tuning_status& status() const noexcept {
    return status_;
  }

private:
  /// Where a committed cost came from.
  enum class eval_source { measured, cache, store };

  /// A cached (or journal-replayed) evaluation outcome. `cost` is empty for
  /// known-failing configurations.
  struct cache_entry {
    std::optional<CostT> cost;
    bool from_store = false;  ///< replayed from a previous run's journal
  };

  /// One batch entry's evaluation outcome, filled either by a pool worker
  /// or inline during the commit loop.
  struct pending {
    std::optional<CostT> cost;
    std::string failure;         ///< evaluation_error message, if any
    std::exception_ptr error;    ///< non-evaluation_error escape
    bool evaluated = false;
  };

  /// Cache lookup honouring the two independent reuse channels: this-run
  /// duplicates require opts_.cache, journal-replayed entries are always
  /// served (skipping re-measurement is the whole point of resume).
  [[nodiscard]] const cache_entry* lookup(std::uint64_t hash) const {
    if (cache_.empty()) {
      return nullptr;
    }
    const auto it = cache_.find(hash);
    if (it == cache_.end()) {
      return nullptr;
    }
    if (!it->second.from_store && !opts_.cache) {
      return nullptr;
    }
    return &it->second;
  }

  /// Replays the session's result store into the cache and best tracker.
  void replay_session() {
    if (!opts_.session) {
      return;
    }
    if constexpr (!session::has_cost_codec<CostT>) {
      common::log_warn(
          "evaluation_engine: cost type has no atf::session::cost_codec "
          "specialization — tuning continues but nothing is persisted and "
          "no warm start is possible");
      opts_.session.reset();
      return;
    } else {
      result_.run_id = opts_.session->run_id();
      std::size_t undecodable = 0;
      for (const session::tuning_record& record :
           opts_.session->store().records()) {
        cache_entry entry;
        entry.from_store = true;
        if (record.valid) {
          const std::optional<CostT> decoded =
              session::cost_codec<CostT>::decode(record.cost);
          if (!decoded.has_value()) {
            ++undecodable;
            continue;
          }
          entry.cost = decoded;
        }
        // Later records supersede earlier ones for the same hash (the
        // journal is append-only; re-measurements happen with caching off).
        cache_[record.config_hash] = entry;

        // Seed the best tracker so the prior best survives even if this
        // run's technique never re-proposes it. No history event: history
        // documents improvements observed during *this* run.
        if (entry.cost.has_value() &&
            (!result_.best_cost.has_value() ||
             *entry.cost < *result_.best_cost)) {
          result_.best_cost = entry.cost;
          result_.best = record.to_configuration();
          status_.best_cost = traits::scalar(*entry.cost);
        }
      }
      if (undecodable > 0) {
        common::log_warn("evaluation_engine: skipped ", undecodable,
                         " journal record(s) whose stored cost does not "
                         "decode as this run's cost type");
      }
      if (!cache_.empty()) {
        common::log_info("session ", opts_.session->run_id(),
                         ": warm start with ", cache_.size(),
                         " previously measured configuration(s)");
      }
    }
  }

  /// Runs the cost function for one configuration on the calling thread,
  /// applying the fault policy: retries, catch-all conversion, post-hoc
  /// timeout. Expressions over tuning parameters read the calling thread's
  /// current evaluation context, into which the configuration was already
  /// replayed.
  void run_cost(const configuration& config, pending& slot) {
    const fault_policy& faults = opts_.faults;
    for (std::size_t attempt = 0;; ++attempt) {
      slot.cost.reset();
      slot.failure.clear();
      slot.error = nullptr;
      common::stopwatch attempt_timer;
      try {
        slot.cost = cost_(config);
      } catch (const evaluation_error& error) {
        slot.failure = error.what();
      } catch (const std::exception& error) {
        if (faults.catch_all) {
          slot.failure = std::string("unhandled cost-function exception: ") +
                         error.what();
        } else {
          slot.error = std::current_exception();
        }
      } catch (...) {
        if (faults.catch_all) {
          slot.failure = "unhandled non-exception throw from cost function";
        } else {
          slot.error = std::current_exception();
        }
      }
      const std::chrono::nanoseconds took = attempt_timer.elapsed();
      if (faults.timeout.count() > 0 && took > faults.timeout &&
          !slot.error) {
        // Post-hoc deadline: the invocation cannot be preempted, but its
        // result must not contaminate the run. Not retried — an overlong
        // configuration would just time out again, twice as slowly.
        slot.cost.reset();
        slot.failure =
            "timed out: evaluation took " +
            std::to_string(
                std::chrono::duration_cast<std::chrono::milliseconds>(took)
                    .count()) +
            " ms against a " +
            std::to_string(std::chrono::duration_cast<std::chrono::milliseconds>(
                               faults.timeout)
                               .count()) +
            " ms deadline";
        break;
      }
      if (slot.cost.has_value() || slot.error || attempt >= faults.max_retries) {
        break;
      }
      common::log_debug("retrying failed evaluation (attempt ", attempt + 2,
                        " of ", faults.max_retries + 1, "): ", slot.failure);
    }
    slot.evaluated = true;
  }

  /// Batched path: evaluates every batch entry that cannot be served from
  /// the cache or the session store on the pool, each under a freshly
  /// leased evaluation context.
  void dispatch(const std::vector<configuration>& batch,
                const std::vector<std::uint64_t>& hashes,
                std::vector<pending>& slots) {
    // Decide in proposal order which entries actually run the cost
    // function: an entry that commit() will serve from the store/cache —
    // or that a preceding entry of this same batch will evaluate into the
    // cache — is skipped, exactly as the sequential loop would have done.
    std::vector<std::size_t> to_run;
    to_run.reserve(batch.size());
    std::unordered_set<std::uint64_t> scheduled;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (lookup(hashes[i]) != nullptr) {
        continue;
      }
      if (opts_.cache && !scheduled.insert(hashes[i]).second) {
        continue;
      }
      to_run.push_back(i);
    }

    std::vector<std::future<void>> futures;
    futures.reserve(to_run.size());
    for (const std::size_t i : to_run) {
      futures.push_back(pool_->submit([this, &batch, &slots, i] {
        detail::scoped_eval_context context;
        const std::optional<std::uint64_t> index = batch[i].space_index();
        if (index.has_value()) {
          space_->apply(*index, context);
        }
        run_cost(batch[i], slots[i]);
      }));
    }
    for (auto& future : futures) {
      future.get();
    }
  }

  /// Folds one evaluated configuration into the run's accumulated state and
  /// returns the scalar reported to the search technique.
  double commit(const configuration& config, std::uint64_t hash,
                const std::optional<CostT>& cost, eval_source source,
                const std::string& failure) {
    double scalar = opts_.faults.penalty;
    if (cost.has_value()) {
      scalar = traits::scalar(*cost);
    } else if (source == eval_source::measured) {
      ++result_.failed_evaluations;
      ++status_.failed_evaluations;
      common::log_debug("evaluation failed: ", failure);
    }

    ++result_.evaluations;
    status_.evaluations = result_.evaluations;
    status_.elapsed = timer_.elapsed();
    if (source == eval_source::cache) {
      ++result_.cached_evaluations;
    } else if (source == eval_source::store) {
      ++result_.store_hits;
      status_.store_hits = result_.store_hits;
    }

    if (cost.has_value() &&
        (!result_.best_cost.has_value() || *cost < *result_.best_cost)) {
      result_.best_cost = cost;
      result_.best = config;
      const improvement event{status_.elapsed, result_.evaluations, scalar};
      result_.history.push_back(event);
      status_.history.push_back(event);
      status_.best_cost = scalar;
      common::log_info("new best after ", result_.evaluations,
                       " evaluations: cost=", traits::describe(*cost), " [",
                       config.to_string(), "]");
    }

    journal(config, hash, cost, source, failure, scalar);

    if (log_) {
      std::vector<std::string> row{
          std::to_string(result_.evaluations),
          std::to_string(status_.elapsed.count()),
          config.space_index().has_value()
              ? std::to_string(*config.space_index())
              : std::string("-")};
      // Align values to the header by *name*: a custom search technique
      // may hand back a configuration with fewer or reordered entries, and
      // positional emission would corrupt columns (or throw mid-run on a
      // row-length mismatch) — absent parameters log as "-".
      for (const auto& name : log_names_) {
        row.push_back(config.contains(name)
                          ? atf::to_string(config.value_of(name))
                          : std::string("-"));
      }
      row.push_back(cost.has_value() ? traits::describe(*cost)
                                     : std::string("failed"));
      row.push_back(cost.has_value() ? "1" : "0");
      row.push_back(result_.run_id.empty() ? "-" : result_.run_id);
      row.push_back(source == eval_source::measured
                        ? "measured"
                        : (source == eval_source::cache ? "cache" : "store"));
      log_->write_row(row);
    }
    return scalar;
  }

  /// Appends a freshly measured evaluation to the session journal. Called
  /// from commit, i.e. in proposal order — the journal is as deterministic
  /// as the CSV log.
  void journal(const configuration& config, std::uint64_t hash,
               const std::optional<CostT>& cost, eval_source source,
               const std::string& failure, double scalar) {
    if (!opts_.session || source != eval_source::measured) {
      return;
    }
    if constexpr (session::has_cost_codec<CostT>) {
      session::tuning_record record;
      record.values = config.entries();
      record.config_hash = hash;
      record.space_index = config.space_index();
      record.technique = opts_.technique;
      record.valid = cost.has_value();
      if (cost.has_value()) {
        record.scalar = scalar;
        record.cost = session::cost_codec<CostT>::encode(*cost);
      } else {
        record.failure = failure;
      }
      opts_.session->append(std::move(record));
    }
  }

  const search_space* space_;
  cost_function cost_;
  abort_condition abort_;
  options opts_;
  std::size_t batch_limit_ = 1;
  std::unique_ptr<common::thread_pool> pool_;
  std::unique_ptr<common::csv_writer> log_;
  std::vector<std::string> log_names_;
  std::unordered_map<std::uint64_t, cache_entry> cache_;
  tuning_result<CostT> result_;
  tuning_status status_;
  common::stopwatch timer_;
  bool warned_unsafe_cost_ = false;
};

}  // namespace atf
