// The generic search-technique interface (paper, Section IV).
//
//   class search_technique {
//     void          initialize( search_space sp );
//     void          finalize();
//     configuration get_next_config();
//     void          report_cost( cost );
//   };
//
// `initialize` is called once before exploration with the generated search
// space; `finalize` after exploration. The tuner then loops: take a
// configuration via get_next_config, evaluate it with the cost function, and
// feed the (scalarized) cost back via report_cost — until the abort
// condition fires. New techniques are added by deriving from this class.
#pragma once

#include "atf/configuration.hpp"
#include "atf/search_space.hpp"

namespace atf {

class search_technique {
public:
  virtual ~search_technique() = default;

  /// Called once before exploration starts. The space outlives the
  /// exploration; the default implementation stores a pointer to it.
  virtual void initialize(const search_space& space) { space_ = &space; }

  /// Called once after exploration ends.
  virtual void finalize() {}

  /// The next configuration to evaluate.
  [[nodiscard]] virtual configuration get_next_config() = 0;

  /// Reports the (scalarized) cost of the configuration last returned by
  /// get_next_config. Failed evaluations are reported as +infinity.
  virtual void report_cost(double cost) = 0;

protected:
  [[nodiscard]] const search_space& space() const { return *space_; }

private:
  const search_space* space_ = nullptr;
};

}  // namespace atf
