// The generic search-technique interface (paper, Section IV).
//
//   class search_technique {
//     void          initialize( search_space sp );
//     void          finalize();
//     configuration get_next_config();
//     void          report_cost( cost );
//   };
//
// `initialize` is called once before exploration with the generated search
// space; `finalize` after exploration. The tuner then loops: take a
// configuration via get_next_config, evaluate it with the cost function, and
// feed the (scalarized) cost back via report_cost — until the abort
// condition fires. New techniques are added by deriving from this class.
//
// Batch extension. Techniques that can propose several *independent*
// configurations before seeing any of their costs may override
// propose_batch/report_batch; the evaluation engine then measures a whole
// batch concurrently (each configuration replayed into its own evaluation
// context). The default implementations shim onto the sequential protocol —
// propose_batch returns exactly the one configuration get_next_config would
// have returned, and report_batch forwards each cost to report_cost — so
// every existing technique keeps its exact sequential behaviour without
// changes.
#pragma once

#include <vector>

#include "atf/configuration.hpp"
#include "atf/search_space.hpp"

namespace atf::session {
class result_store;
}  // namespace atf::session

namespace atf {

class search_technique {
public:
  virtual ~search_technique() = default;

  /// A short stable identifier for this technique ("exhaustive",
  /// "random_search", ...), recorded on session journal records and used by
  /// per-technique store statistics. Stability matters more than beauty:
  /// journals written with one build are read by later ones.
  [[nodiscard]] virtual const char* name() const { return "unknown"; }

  /// Called once before exploration starts. The space outlives the
  /// exploration; the default implementation stores a pointer to it.
  virtual void initialize(const search_space& space) { space_ = &space; }

  /// Called once after exploration ends.
  virtual void finalize() {}

  /// Called by the tuner after initialize() when running under
  /// tuner::session(path): the store holds every record replayed from the
  /// journal. Techniques that can learn from prior measurements (e.g. the
  /// surrogate) override this; the default ignores the history.
  virtual void warm_start(const session::result_store& store) { (void)store; }

  /// The next configuration to evaluate.
  [[nodiscard]] virtual configuration get_next_config() = 0;

  /// Reports the (scalarized) cost of the configuration last returned by
  /// get_next_config. Failed evaluations are reported as +infinity.
  virtual void report_cost(double cost) = 0;

  /// Up to `max_configs` configurations whose evaluations are independent —
  /// none of them depends on the cost of another configuration in the same
  /// batch. Returning fewer (but at least one) is always allowed; the
  /// default returns a single configuration, which keeps techniques whose
  /// next proposal depends on the last reported cost (annealing, simplex
  /// methods) strictly sequential.
  [[nodiscard]] virtual std::vector<configuration> propose_batch(
      std::size_t max_configs) {
    (void)max_configs;
    std::vector<configuration> batch;
    batch.push_back(get_next_config());
    return batch;
  }

  /// Reports the costs of a batch previously returned by propose_batch:
  /// costs[i] belongs to configs[i]. When the abort condition fires inside a
  /// batch, `costs` covers only the evaluations that were committed —
  /// costs.size() <= configs.size(); the surplus configurations were never
  /// measured. The default forwards each cost to report_cost in order,
  /// which is exactly the sequential protocol.
  virtual void report_batch(const std::vector<configuration>& configs,
                            const std::vector<double>& costs) {
    (void)configs;
    for (const double cost : costs) {
      report_cost(cost);
    }
  }

protected:
  [[nodiscard]] const search_space& space() const { return *space_; }

private:
  const search_space* space_ = nullptr;
};

}  // namespace atf
