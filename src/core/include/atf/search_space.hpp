// The full search space: the cross product of per-group trees.
//
// Groups are independent by definition (Section V), so the space size is the
// product of the group sizes and a flat configuration index decomposes into
// one leaf index per group (mixed radix, group 0 most significant). Group
// trees can be generated concurrently — one thread per group as the paper
// describes, and additionally chunk-parallel *within* each group (per-thread
// evaluation contexts, see tp.hpp), so a single-group space such as
// XgemmDirect scales with cores instead of with group count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atf/common/rng.hpp"
#include "atf/configuration.hpp"
#include "atf/space_tree.hpp"
#include "atf/tp.hpp"

namespace atf {

/// How the per-group trees are generated.
enum class generation_mode {
  /// Everything on the calling thread, in the ambient evaluation context.
  sequential,
  /// One std::thread per dependency group (paper, Section V, verbatim).
  /// Within a group, generation stays sequential.
  per_group,
  /// Nested parallelism: groups are dispatched across a shared thread pool
  /// AND each group's root range is expanded in chunks on the same pool,
  /// each chunk under a private evaluation context. Results are
  /// bit-identical to the other modes.
  intra_group,
};

class search_space {
public:
  search_space() = default;

  /// Generates the space for the given groups. `threads` sizes the pool for
  /// intra_group mode (0 = hardware concurrency) and is ignored by the
  /// other modes. `policy` tunes the adaptive chunk scheduler of intra_group
  /// mode (over-partition factor, hot-chunk re-splitting — see
  /// generation_policy); it never affects the generated space, only load
  /// balance. `storage` chooses the per-group node representation
  /// (space_storage.hpp: dense, packed, or lazy) — every backend produces
  /// bit-identical configurations and index order.
  static search_space generate(const std::vector<tp_group>& groups,
                               generation_mode mode,
                               std::size_t threads = 0,
                               const generation_policy& policy = {},
                               const space_storage_policy& storage = {});

  /// Back-compat convenience: `parallel` maps to intra_group (the fastest
  /// mode; bit-identical results) and false to sequential — used by benches
  /// measuring the Section V speedup.
  static search_space generate(const std::vector<tp_group>& groups,
                               bool parallel = true);

  /// Total number of valid configurations. Throws std::overflow_error at
  /// construction if the product exceeds 2^64-1.
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] std::size_t num_groups() const noexcept {
    return trees_.size();
  }
  [[nodiscard]] const space_tree& group(std::size_t g) const {
    return trees_[g];
  }

  /// Total number of tuning parameters across all groups.
  [[nodiscard]] std::size_t num_parameters() const noexcept;

  /// Parameter names in declaration order (group order, then in-group order).
  [[nodiscard]] std::vector<std::string> parameter_names() const;

  /// Materializes the configuration with flat index `index`; the returned
  /// configuration carries its space index.
  [[nodiscard]] configuration config_at(std::uint64_t index) const;

  /// Replays configuration `index` into the shared tp slots so dependent
  /// expressions (e.g. atf::glb_size arithmetic) evaluate against it. The
  /// values land in the calling thread's *current* evaluation context.
  void apply(std::uint64_t index) const;

  /// Replays configuration `index` into the private evaluation context
  /// leased by `context`, leaving the calling thread's current context
  /// untouched. Holding one lease per configuration keeps several applied
  /// configurations alive at once — the batched cost-evaluation pattern:
  /// expressions read the replayed values while the lease's context is
  /// active (scoped_eval_context::activate, or evaluating on the thread
  /// that constructed the lease).
  void apply(std::uint64_t index, const scoped_eval_context& context) const;

  [[nodiscard]] std::uint64_t random_index(common::xoshiro256& rng) const;

  /// Neighbor move: a uniformly chosen group contributes a tree neighbor,
  /// the other groups keep their leaf. Groups of size 1 are skipped.
  [[nodiscard]] std::uint64_t random_neighbor(std::uint64_t index,
                                              common::xoshiro256& rng) const;

  /// Sum of per-group generation times had generation run sequentially.
  [[nodiscard]] double sequential_generation_seconds() const noexcept;

  /// Wall-clock time of the actual (possibly parallel) generation.
  [[nodiscard]] double generation_seconds() const noexcept {
    return generation_seconds_;
  }

  [[nodiscard]] std::uint64_t node_count() const noexcept;

  /// Heap bytes the per-group node storages hold right now (for the lazy
  /// backend this includes the currently materialized chunk caches).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Releases every group tree's per-chunk generation accounting
  /// (space_tree::drop_stats) — long-lived processes holding many spaces.
  void drop_stats();

private:
  void decompose(std::uint64_t index, std::vector<std::uint64_t>& out) const;

  std::vector<space_tree> trees_;
  std::uint64_t size_ = 0;
  double generation_seconds_ = 0.0;
};

}  // namespace atf
