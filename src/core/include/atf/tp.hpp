// Tuning parameters (paper, Section II Step 1).
//
// A tuning parameter has a *name* (its unique identifier), a *range* of
// candidate values, and an optional *constraint* — a callable that receives a
// candidate value and returns false for values to filter out. Constraints may
// read the values of previously declared parameters: a tp<T> is a cheap
// handle sharing a mutable value slot, and the search-space generator assigns
// slots in declaration order while expanding the space, so a constraint such
// as atf::divides(N / WPT) sees the WPT value of the prefix currently being
// expanded. This is the mechanism behind ATF's contribution (iii): invalid
// configurations are pruned while iterating *ranges*, never materializing the
// Cartesian product.
//
// Evaluation contexts. Because constraints and launch-geometry expressions
// capture tp *handles* (not values), the handles cannot be cloned per thread
// without re-capturing every closure — so instead of one slot per parameter
// there is one slot per parameter per *evaluation context*. A context id is
// thread-local: context 0 is the ambient context every thread starts in (the
// tuner, sequential generation and the per-group generation threads all live
// there), and concurrent expansions of the *same* group — the intra-group
// parallel generation — run each chunk under a scoped_eval_context that
// leases a private id, so their writes land in disjoint slots and the very
// same captured handles read the right prefix on every thread.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "atf/range.hpp"
#include "atf/value.hpp"

namespace atf {

namespace detail {

/// Number of value slots per parameter — the maximum number of evaluation
/// contexts that can be live at once. Context 0 is the ambient context;
/// ids 1..max_eval_contexts-1 are leased through eval_context_registry.
inline constexpr std::size_t max_eval_contexts = 64;

/// Largest number of *leased* contexts that can be live simultaneously
/// (context 0 is never leased). Thread pools and evaluation batches are
/// clamped to this width: a wider pool whose tasks all lease a context
/// would leave the excess tasks blocked in eval_context_registry::acquire,
/// and any future nesting of leases could then deadlock the registry.
[[nodiscard]] inline constexpr std::size_t max_leased_contexts() noexcept {
  return max_eval_contexts - 1;
}

/// The evaluation context this thread reads and writes tp slots through.
/// Plain thread_local integer: no dynamic initialization, so the access in
/// tp::eval() compiles to a single TLS load.
inline thread_local std::size_t eval_context_id = 0;

[[nodiscard]] inline std::size_t current_eval_context() noexcept {
  return eval_context_id;
}

/// Process-wide lease pool for context ids 1..max_eval_contexts-1. acquire()
/// blocks until an id is free; holders run one chunk expansion and release,
/// so the number of *concurrent* holders is bounded by the number of running
/// threads and waiting cannot deadlock (every holder makes progress without
/// acquiring a second id).
class eval_context_registry {
public:
  [[nodiscard]] static std::size_t acquire() {
    std::unique_lock lock(mutex());
    cv().wait(lock, [] { return !free_ids().empty(); });
    const std::size_t id = free_ids().back();
    free_ids().pop_back();
    return id;
  }

  static void release(std::size_t id) {
    {
      std::lock_guard lock(mutex());
      free_ids().push_back(id);
    }
    cv().notify_one();
  }

private:
  static std::mutex& mutex() {
    static std::mutex m;
    return m;
  }
  static std::condition_variable& cv() {
    static std::condition_variable c;
    return c;
  }
  static std::vector<std::size_t>& free_ids() {
    static std::vector<std::size_t> ids = [] {
      std::vector<std::size_t> v;
      v.reserve(max_eval_contexts - 1);
      for (std::size_t id = max_eval_contexts; id-- > 1;) {
        v.push_back(id);
      }
      return v;
    }();
    return ids;
  }
};

/// RAII switch of the calling thread onto an already-leased context id; the
/// previous context is restored on destruction. Lets one thread hold several
/// scoped_eval_context leases and hop between them (e.g. replaying a second
/// configuration while the first stays applied in its own context).
class eval_context_switch {
public:
  explicit eval_context_switch(std::size_t id) noexcept
      : previous_(eval_context_id) {
    eval_context_id = id;
  }

  eval_context_switch(const eval_context_switch&) = delete;
  eval_context_switch& operator=(const eval_context_switch&) = delete;

  ~eval_context_switch() { eval_context_id = previous_; }

private:
  std::size_t previous_;
};

/// RAII lease of a private evaluation context: acquires an id, installs it as
/// this thread's context, and restores the previous context on destruction.
/// Used by the intra-group parallel generator around each chunk expansion and
/// by the evaluation engine around each batched cost evaluation.
class scoped_eval_context {
public:
  scoped_eval_context()
      : id_(eval_context_registry::acquire()), previous_(eval_context_id) {
    eval_context_id = id_;
  }

  scoped_eval_context(const scoped_eval_context&) = delete;
  scoped_eval_context& operator=(const scoped_eval_context&) = delete;

  ~scoped_eval_context() {
    eval_context_id = previous_;
    eval_context_registry::release(id_);
  }

  [[nodiscard]] std::size_t id() const noexcept { return id_; }

  /// Switches the calling thread onto this lease's context for the guard's
  /// lifetime — expressions over tuning parameters then read the values
  /// replayed into this context (see search_space::apply(index, context)).
  [[nodiscard]] eval_context_switch activate() const noexcept {
    return eval_context_switch(id_);
  }

private:
  std::size_t id_;
  std::size_t previous_;
};

/// The shared, mutable state a tp handle points at. The generator writes the
/// candidate value into the *current context's* slot before evaluating
/// dependent constraints; slots are cache-line padded so concurrent chunk
/// expansions do not false-share.
template <typename T>
struct tp_state {
  std::string name;
  range<T> values;
  std::function<bool(T)> constraint;  // empty => unconstrained

  struct alignas(64) padded_slot {
    T value{};
  };
  std::array<padded_slot, max_eval_contexts> current{};
};

}  // namespace detail

/// Public spelling of the private-context lease: callers that keep several
/// applied configurations alive at once (batched cost evaluation) hold one
/// scoped_eval_context per configuration and replay through
/// search_space::apply(index, context).
using scoped_eval_context = detail::scoped_eval_context;

/// User-facing tuning-parameter handle. Copies share state, so a parameter
/// can appear both in the tuner's parameter list and inside the constraints
/// or global/local-size expressions of other parameters.
template <typename T>
class tp {
public:
  using value_type = T;

  /// Unconstrained parameter.
  tp(std::string name, range<T> values)
      : state_(std::make_shared<detail::tp_state<T>>()) {
    state_->name = std::move(name);
    state_->values = std::move(values);
  }

  /// Constrained parameter; `constraint` is any callable bool(T).
  template <typename Constraint>
    requires std::predicate<Constraint, T>
  tp(std::string name, range<T> values, Constraint constraint)
      : tp(std::move(name), std::move(values)) {
    state_->constraint = std::move(constraint);
  }

  /// Convenience: range given as an initializer list.
  tp(std::string name, std::initializer_list<T> values)
      : tp(std::move(name), atf::set<T>(values)) {}

  template <typename Constraint>
    requires std::predicate<Constraint, T>
  tp(std::string name, std::initializer_list<T> values, Constraint constraint)
      : tp(std::move(name), atf::set<T>(values), std::move(constraint)) {}

  [[nodiscard]] const std::string& name() const noexcept {
    return state_->name;
  }
  [[nodiscard]] const range<T>& values() const noexcept {
    return state_->values;
  }
  [[nodiscard]] bool has_constraint() const noexcept {
    return static_cast<bool>(state_->constraint);
  }

  /// The value of the prefix currently being expanded/evaluated *in this
  /// thread's evaluation context*. Expression templates call this, which is
  /// what makes `N / WPT` lazy — and context-indexed, which is what lets
  /// concurrent chunk expansions reuse the same captured handles.
  [[nodiscard]] T eval() const noexcept {
    return state_->current[detail::current_eval_context()].value;
  }

  /// Writes the current value into this thread's context slot (used by the
  /// generator and the tuner).
  void set_current(T v) const noexcept {
    state_->current[detail::current_eval_context()].value = std::move(v);
  }

  /// Checks this parameter's own constraint against a candidate value.
  [[nodiscard]] bool satisfies_constraint(T v) const {
    return !state_->constraint || state_->constraint(v);
  }

private:
  std::shared_ptr<detail::tp_state<T>> state_;
};

/// Deduction helpers so `atf::tp("WPT", atf::interval<std::size_t>(1, N))`
/// works without spelling the value type twice.
template <typename T>
tp(std::string, range<T>) -> tp<T>;
template <typename T, typename C>
tp(std::string, range<T>, C) -> tp<T>;

/// Type-erased view of a tuning parameter, used by the search-space tree.
class itp {
public:
  virtual ~itp() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual std::uint64_t range_size() const = 0;

  /// Sets the calling thread's context slot to range[i] and returns whether
  /// the parameter's own constraint accepts that value (given the prefix
  /// already set in the same context). The constraint runs on the calling
  /// thread, so its captured handles read the caller's context.
  virtual bool set_and_check(std::uint64_t i) const = 0;

  /// The type-erased value of range[i].
  [[nodiscard]] virtual tp_value value_at(std::uint64_t i) const = 0;

  /// Writes a type-erased value into the calling thread's context slot (used
  /// when replaying a configuration so that dependent expressions — e.g.
  /// global size — see it).
  virtual void set_value(const tp_value& v) const = 0;

  [[nodiscard]] virtual std::shared_ptr<itp> clone() const = 0;
};

namespace detail {

template <typename T>
class itp_impl final : public itp {
public:
  explicit itp_impl(tp<T> param) : param_(std::move(param)) {}

  [[nodiscard]] const std::string& name() const override {
    return param_.name();
  }
  [[nodiscard]] std::uint64_t range_size() const override {
    return param_.values().size();
  }
  bool set_and_check(std::uint64_t i) const override {
    const T v = param_.values()[i];
    param_.set_current(v);
    return param_.satisfies_constraint(v);
  }
  [[nodiscard]] tp_value value_at(std::uint64_t i) const override {
    return to_tp_value<T>(param_.values()[i]);
  }
  void set_value(const tp_value& v) const override {
    param_.set_current(from_tp_value<T>(v));
  }
  [[nodiscard]] std::shared_ptr<itp> clone() const override {
    return std::make_shared<itp_impl<T>>(param_);
  }

private:
  tp<T> param_;
};

}  // namespace detail

/// An ordered group of interdependent tuning parameters. Parameters in
/// different groups must not reference each other; each group's sub-space is
/// generated independently — and in parallel (paper, Section V).
class tp_group {
public:
  tp_group() = default;

  template <typename T>
  void add(const tp<T>& param) {
    params_.push_back(std::make_shared<detail::itp_impl<T>>(param));
  }

  [[nodiscard]] std::size_t size() const noexcept { return params_.size(); }
  [[nodiscard]] const itp& param(std::size_t i) const { return *params_[i]; }
  [[nodiscard]] const std::vector<std::shared_ptr<itp>>& params()
      const noexcept {
    return params_;
  }

private:
  std::vector<std::shared_ptr<itp>> params_;
};

/// The grouping function from Section V: G(tp1, tp2, ...) declares that the
/// listed parameters form one dependency group.
template <typename... Ts>
tp_group G(const tp<Ts>&... params) {
  tp_group group;
  (group.add(params), ...);
  return group;
}

}  // namespace atf
