// Constraints and the six constraint aliases (paper, Section II Step 1).
//
// A constraint is any callable taking a candidate value and returning bool.
// The aliases — divides, is_multiple_of, less_than, greater_than, equal,
// unequal — accept literals, tuning parameters or expressions, and evaluate
// their argument lazily so inter-parameter dependencies work naturally:
//
//   auto LS = atf::tp("LS", atf::interval<std::size_t>(1, N),
//                     atf::divides(N / WPT));
//
// Alias results are wrapped in atf::predicate so they can be combined with
// the logical operators && and ||, as the paper specifies.
//
// Thread-safety: the aliases close over lazy expressions, which close over
// tp handles; evaluation resolves through the calling thread's evaluation
// context (tp.hpp). One predicate object is thus safely shared by all
// intra-group generation chunks — each chunk's set_and_check runs the
// predicate on its own thread, against its own context's prefix.
#pragma once

#include <type_traits>
#include <utility>

#include "atf/expression.hpp"

namespace atf {

/// A combinable predicate wrapper. F is a (possibly generic) callable
/// bool(value). predicate models the same and adds operator&& / operator||.
template <typename F>
class predicate {
public:
  explicit predicate(F fn) : fn_(std::move(fn)) {}

  template <typename V>
    requires std::predicate<const F&, V>
  bool operator()(const V& v) const {
    return fn_(v);
  }

private:
  F fn_;
};

/// Wraps an arbitrary callable so it becomes combinable.
template <typename F>
predicate<std::decay_t<F>> pred(F&& fn) {
  return predicate<std::decay_t<F>>(std::forward<F>(fn));
}

template <typename A, typename B>
auto operator&&(predicate<A> a, predicate<B> b) {
  return pred([a = std::move(a), b = std::move(b)](const auto& v) {
    return a(v) && b(v);
  });
}

template <typename A, typename B>
auto operator||(predicate<A> a, predicate<B> b) {
  return pred([a = std::move(a), b = std::move(b)](const auto& v) {
    return a(v) || b(v);
  });
}

template <typename A>
auto operator!(predicate<A> a) {
  return pred([a = std::move(a)](const auto& v) { return !a(v); });
}

/// divides(e): the parameter's value must divide e (e.g. WPT divides N).
/// A zero candidate never divides anything and is filtered out.
template <typename E>
auto divides(const E& e) {
  auto lazy = make_expr(e);
  return pred([lazy](const auto& v) {
    if (v == 0) {
      return false;
    }
    return lazy.eval() % v == 0;
  });
}

/// is_multiple_of(e): the parameter's value must be a multiple of e.
template <typename E>
auto is_multiple_of(const E& e) {
  auto lazy = make_expr(e);
  return pred([lazy](const auto& v) {
    const auto d = lazy.eval();
    if (d == 0) {
      return false;
    }
    return v % d == 0;
  });
}

template <typename E>
auto less_than(const E& e) {
  auto lazy = make_expr(e);
  return pred([lazy](const auto& v) { return v < lazy.eval(); });
}

template <typename E>
auto greater_than(const E& e) {
  auto lazy = make_expr(e);
  return pred([lazy](const auto& v) { return v > lazy.eval(); });
}

template <typename E>
auto less_equal(const E& e) {
  auto lazy = make_expr(e);
  return pred([lazy](const auto& v) { return v <= lazy.eval(); });
}

template <typename E>
auto greater_equal(const E& e) {
  auto lazy = make_expr(e);
  return pred([lazy](const auto& v) { return v >= lazy.eval(); });
}

template <typename E>
auto equal(const E& e) {
  auto lazy = make_expr(e);
  return pred([lazy](const auto& v) { return v == lazy.eval(); });
}

template <typename E>
auto unequal(const E& e) {
  auto lazy = make_expr(e);
  return pred([lazy](const auto& v) { return v != lazy.eval(); });
}

/// power_of_two(): a user-style extra alias demonstrating that "further
/// aliases can be easily added" (paper, Section II).
inline auto power_of_two() {
  return pred([](const auto& v) {
    const auto u = static_cast<unsigned long long>(v);
    return u != 0 && (u & (u - 1)) == 0;
  });
}

}  // namespace atf
