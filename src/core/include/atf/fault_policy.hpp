// Fault tolerance for cost functions. Real tuning workloads fail in ways
// evaluation_error cannot anticipate: a compile script segfaults its
// toolchain (std::runtime_error from cf::program), a driver wedges and a
// measurement takes minutes instead of milliseconds, a flaky device drops
// one measurement out of fifty. Without a policy any one of those kills a
// multi-hour run; with a journaled session that is doubly wasteful because
// every completed measurement was already durable.
//
// The policy turns faults into recorded-invalid evaluations instead of
// crashes:
//   * catch_all   — exceptions other than atf::evaluation_error are also
//                   recorded as failures (off by default: an unknown escape
//                   is a bug in the cost function and hiding it silently
//                   would be worse — opt in for long unattended runs);
//   * max_retries — a failing invocation is retried up to this many extra
//                   times before being recorded invalid (transient faults:
//                   flaky devices, busy filesystems);
//   * timeout     — *post-hoc* deadline: an invocation whose wall time
//                   exceeds it is recorded invalid even if it returned a
//                   cost. A C++ library cannot preempt an arbitrary
//                   callable, so the overlong call itself still completes;
//                   the policy refuses to let its result contaminate the
//                   tuning result, and a timed-out call is not retried;
//   * penalty     — the scalar reported to the search technique (and the
//                   abort condition) for invalid evaluations. +infinity by
//                   default; finite penalties help techniques that rank
//                   rather than threshold (the OpenTuner-style ensemble).
#pragma once

#include <chrono>
#include <cstddef>
#include <limits>

namespace atf {

struct fault_policy {
  bool catch_all = false;
  std::size_t max_retries = 0;
  std::chrono::nanoseconds timeout{0};  ///< 0 = no deadline
  double penalty = std::numeric_limits<double>::infinity();
};

}  // namespace atf
