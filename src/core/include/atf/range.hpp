// Tuning-parameter ranges (paper, Section II Step 1).
//
// A range is either an interval — begin..end with an optional step size and
// an optional generator callable that maps each interval element to a
// domain-specific value (e.g. powers of two) — or an explicit set of values.
// Ranges are *lazy*: a range knows its cardinality and can produce the i-th
// element on demand, so an interval [1, 2^26] costs no memory. This is a
// prerequisite for ATF's optimized search-space generation, which iterates
// constrained ranges instead of materializing Cartesian products.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace atf {

/// A lazy, random-access sequence of values of type T.
template <typename T>
class range {
public:
  range() = default;

  /// A range backed by an index->value function.
  range(std::uint64_t size, std::function<T(std::uint64_t)> at)
      : size_(size), at_(std::move(at)) {}

  /// A range backed by explicit values.
  explicit range(std::vector<T> values)
      : size_(values.size()),
        at_([vals = std::move(values)](std::uint64_t i) { return vals[i]; }) {}

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// The i-th element; i must be < size().
  [[nodiscard]] T operator[](std::uint64_t i) const { return at_(i); }

  /// Materializes all elements (test/debug helper; beware of huge ranges).
  [[nodiscard]] std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::uint64_t i = 0; i < size_; ++i) {
      out.push_back(at_(i));
    }
    return out;
  }

private:
  std::uint64_t size_ = 0;
  std::function<T(std::uint64_t)> at_;
};

namespace detail {

/// Number of elements in begin..end with the given positive step.
template <typename T>
std::uint64_t interval_count(T begin, T end, T step) {
  if (step <= T{0}) {
    throw std::invalid_argument("atf::interval: step_size must be positive");
  }
  if (end < begin) {
    return 0;
  }
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<std::uint64_t>(
               (static_cast<U>(end) - static_cast<U>(begin)) /
               static_cast<U>(step)) +
           1;
  } else {
    return static_cast<std::uint64_t>((end - begin) / step) + 1;
  }
}

}  // namespace detail

/// interval<T>(begin, end): all values from begin to end inclusive, step 1.
template <typename T>
range<T> interval(T begin, T end) {
  const std::uint64_t count = detail::interval_count<T>(begin, end, T{1});
  return range<T>(count, [begin](std::uint64_t i) {
    return static_cast<T>(begin + static_cast<T>(i));
  });
}

/// interval<T>(begin, end, step_size).
template <typename T>
range<T> interval(T begin, T end, T step) {
  const std::uint64_t count = detail::interval_count<T>(begin, end, step);
  return range<T>(count, [begin, step](std::uint64_t i) {
    return static_cast<T>(begin + step * static_cast<T>(i));
  });
}

/// interval<T>(begin, end, step_size, generator): the elements are
/// generator(begin), generator(begin+step), ... — the range's value type
/// becomes the generator's return type (paper: "the range type changes
/// automatically to T'").
template <typename T, typename Gen>
  requires std::invocable<Gen, T>
auto interval(T begin, T end, T step, Gen gen)
    -> range<std::invoke_result_t<Gen, T>> {
  using Out = std::invoke_result_t<Gen, T>;
  const std::uint64_t count = detail::interval_count<T>(begin, end, step);
  return range<Out>(count, [begin, step, gen](std::uint64_t i) {
    return gen(static_cast<T>(begin + step * static_cast<T>(i)));
  });
}

/// interval<T>(begin, end, generator): step defaults to 1.
template <typename T, typename Gen>
  requires std::invocable<Gen, T>
auto interval(T begin, T end, Gen gen) -> range<std::invoke_result_t<Gen, T>> {
  return interval<T, Gen>(begin, end, T{1}, std::move(gen));
}

/// set(v1, ..., vn): an explicit, ordered collection of values. All values
/// must share a common type (after the usual conversions); this includes
/// values of enum types for user-defined domains.
template <typename T, typename... Rest>
auto set(T first, Rest... rest) {
  using C = std::common_type_t<T, Rest...>;
  std::vector<C> values{static_cast<C>(first), static_cast<C>(rest)...};
  return range<C>(std::move(values));
}

/// set from an initializer list (paper: "a set can be expressed also as an
/// std::initializer_list").
template <typename T>
range<T> set(std::initializer_list<T> values) {
  return range<T>(std::vector<T>(values));
}

/// set from an existing vector.
template <typename T>
range<T> set(std::vector<T> values) {
  return range<T>(std::move(values));
}

}  // namespace atf
