// Abort conditions (paper, Section II Step 3).
//
// ATF offers six conditions — duration, evaluations, fraction, cost,
// speedup-over-time and speedup-over-evaluations — all combinable with the
// logical operators && and ||. A condition is a predicate over the tuner's
// running status; the exploration loop stops as soon as it returns true.
// If the user passes no condition, the tuner defaults to evaluations(S)
// where S is the search-space size.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

namespace atf {

/// One best-cost improvement event, recorded by the tuner. The speedup
/// conditions consult this history.
struct improvement {
  std::chrono::nanoseconds elapsed{};
  std::uint64_t evaluations = 0;
  double cost = 0.0;  ///< scalarized cost after the improvement
};

/// A snapshot of the exploration progress, passed to abort conditions after
/// every evaluated configuration.
struct tuning_status {
  std::uint64_t evaluations = 0;        ///< configurations tested so far
  std::uint64_t failed_evaluations = 0; ///< evaluations whose cost function failed
  std::uint64_t store_hits = 0;         ///< served from a resumed session's journal
  std::chrono::nanoseconds elapsed{};   ///< wall time since tuning started
  std::uint64_t search_space_size = 0;
  std::optional<double> best_cost;      ///< scalarized; empty until a success
  std::vector<improvement> history;     ///< all best-cost improvements

  /// Best cost known at `at` (time since tuning start); empty if none yet.
  [[nodiscard]] std::optional<double> best_cost_at(
      std::chrono::nanoseconds at) const;

  /// Best cost known when `evals` configurations had been tested.
  [[nodiscard]] std::optional<double> best_cost_at_evaluation(
      std::uint64_t evals) const;
};

/// Type-erased, combinable abort condition.
class abort_condition {
public:
  abort_condition() = default;
  explicit abort_condition(std::function<bool(const tuning_status&)> fn)
      : fn_(std::move(fn)) {}

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(fn_); }

  [[nodiscard]] bool operator()(const tuning_status& status) const {
    return fn_(status);
  }

  friend abort_condition operator&&(abort_condition a, abort_condition b) {
    return abort_condition([a = std::move(a), b = std::move(b)](
                               const tuning_status& s) { return a(s) && b(s); });
  }

  friend abort_condition operator||(abort_condition a, abort_condition b) {
    return abort_condition([a = std::move(a), b = std::move(b)](
                               const tuning_status& s) { return a(s) || b(s); });
  }

private:
  std::function<bool(const tuning_status&)> fn_;
};

namespace cond {

/// duration(t): stop after the wall-clock interval t (any chrono duration).
template <typename Rep, typename Period>
abort_condition duration(std::chrono::duration<Rep, Period> t) {
  const auto limit = std::chrono::duration_cast<std::chrono::nanoseconds>(t);
  return abort_condition(
      [limit](const tuning_status& s) { return s.elapsed >= limit; });
}

/// evaluations(n): stop after n tested configurations.
abort_condition evaluations(std::uint64_t n);

/// fraction(f): stop after f*S tested configurations, f in [0,1].
abort_condition fraction(double f);

/// cost(c): stop once a configuration with scalarized cost <= c is found.
abort_condition cost(double c);

/// speedup(s, t): stop when within the last time interval t the best cost
/// was not lowered by a factor >= s.
template <typename Rep, typename Period>
abort_condition speedup(double s, std::chrono::duration<Rep, Period> t) {
  const auto window = std::chrono::duration_cast<std::chrono::nanoseconds>(t);
  return abort_condition([s, window](const tuning_status& status) {
    if (status.elapsed < window || !status.best_cost.has_value()) {
      return false;  // not enough history yet
    }
    const auto then = status.elapsed - window;
    const auto old_best = status.best_cost_at(then);
    if (!old_best.has_value()) {
      return false;
    }
    return *old_best / *status.best_cost < s;
  });
}

/// speedup(s, n): stop when within the last n tested configurations the best
/// cost was not lowered by a factor >= s.
abort_condition speedup(double s, std::uint64_t n);

}  // namespace cond

// Paper-style spellings: atf::duration<std::chrono::minutes>(10) etc.
template <typename D>
abort_condition duration(typename D::rep count) {
  return cond::duration(D(count));
}

}  // namespace atf
