// Pluggable node storage behind the constrained search-space tree.
//
// The tree's access algorithms (path_of, values_at, apply, random_neighbor)
// only ever read one node at a time — value index, child span, leaf count —
// so the *representation* of the CSR levels is swappable behind a small
// cursor interface without touching any index-based consumer. Three
// backends trade memory for regeneration work:
//
//   dense   today's CSR vectors, unchanged semantics — the bit-identity
//           reference every other backend is tested against.
//   packed  the same CSR levels bit-packed to the minimal uniform width per
//           array (atf/common/bitpack.hpp). Leaf levels collapse almost
//           entirely (child_begin/child_count are all zero, leaf_count is
//           all ones), so trees shrink 3-8x with O(1) reads.
//   lazy    no nodes at all: only per-chunk summaries ([root_lo, root_hi)
//           root spans with leaf/node counts) survive generation. Chunk
//           subtrees are regenerated on demand — constraint evaluation is
//           deterministic, so re-expansion reproduces the chunk bit-exactly
//           — into a bounded LRU cache. Peak memory scales with the cache
//           budget, not the space, which is what lets the tuner address
//           spaces that never fit in RAM (ROADMAP: billion-configuration
//           spaces).
//
// Random access stays O(depth x branching) in every backend: the lazy
// cursor jumps straight to the owning chunk via leaf-count prefix sums
// instead of scanning the root level from node 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "atf/tp.hpp"

namespace atf {

enum class space_storage_backend {
  dense,   ///< plain CSR vectors (the reference representation)
  packed,  ///< bit-packed CSR, minimal uniform width per array
  lazy,    ///< chunk summaries only; subtrees regenerated into an LRU cache
};

[[nodiscard]] const char* to_string(space_storage_backend backend) noexcept;

/// How a generated tree stores its nodes. Threaded from atf_tune /
/// tuner::space_storage(...) through search_space::generate down to
/// space_tree::generate. Never affects which configurations exist or their
/// flat-index order — only the representation (and, for lazy, whether
/// generation streams instead of stitching).
struct space_storage_policy {
  space_storage_backend backend = space_storage_backend::dense;
  /// lazy only: byte budget of the regenerated-chunk LRU cache. The most
  /// recently used chunk is always retained, so a single chunk larger than
  /// the budget still works (the cache just holds that one chunk).
  std::size_t chunk_cache_bytes = std::size_t{64} << 20;
  /// lazy only: how many root-range chunks generation should aim for
  /// (0 = automatic). More chunks mean finer regeneration units and a
  /// lower peak RSS during both generation and access.
  std::size_t lazy_target_chunks = 0;
};

namespace detail {

/// CSR node arrays of one tree level (= one parameter): the reference
/// representation that generation produces and every backend is built from.
struct csr_level {
  std::vector<std::uint32_t> value_index;  ///< index into the parameter's range
  std::vector<std::uint64_t> child_begin;  ///< first child in the next level
  std::vector<std::uint32_t> child_count;  ///< number of children
  std::vector<std::uint64_t> leaf_count;   ///< leaves in this node's subtree

  [[nodiscard]] std::uint64_t size() const noexcept {
    return value_index.size();
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return value_index.capacity() * sizeof(std::uint32_t) +
           child_begin.capacity() * sizeof(std::uint64_t) +
           child_count.capacity() * sizeof(std::uint32_t) +
           leaf_count.capacity() * sizeof(std::uint64_t);
  }
};

/// One materialized node, whatever the backend stores underneath.
struct node_ref {
  std::uint32_t value_index = 0;
  std::uint64_t child_begin = 0;  ///< global id of the first child
  std::uint32_t child_count = 0;
  std::uint64_t leaf_count = 0;
};

/// Expansion output of one root-range chunk: CSR levels plus the counters
/// that sum across chunks. Shared by tree generation and lazy chunk
/// regeneration so both produce identical bytes by construction.
struct expansion_buffers {
  std::vector<csr_level> levels;
  std::uint64_t visited_values = 0;
  std::uint64_t dead_prefixes = 0;
};

/// Expands root values [lo, hi) of level `lvl` into `out` (recursing over
/// the full range of every deeper level), filtering by each parameter's
/// constraint through the calling thread's current evaluation context.
/// Returns the number of valid configurations (leaves) appended. Prefixes
/// with no valid completion are popped, so surviving nodes are exactly the
/// valid prefixes.
std::uint64_t expand_levels(const std::vector<std::shared_ptr<itp>>& params,
                            std::size_t lvl, std::uint64_t lo,
                            std::uint64_t hi, expansion_buffers& out);

/// What generation keeps of a lazy chunk after dropping its node buffers.
struct lazy_chunk_summary {
  std::uint64_t root_lo = 0;  ///< first root value of the chunk
  std::uint64_t root_hi = 0;  ///< one past the last root value
  std::uint64_t leaves = 0;   ///< valid configurations in the chunk
  std::vector<std::uint64_t> level_nodes;  ///< node count per level
};

/// Abstract node storage. Node ids are *global* per level — identical to
/// the dense CSR numbering — so the tree's algorithms are representation-
/// agnostic. Reads go through a cursor: one cursor per tree operation,
/// giving the lazy backend a place to pin the chunk it is walking (the LRU
/// cache may not evict a chunk an operation still reads).
class space_storage {
public:
  class cursor {
  public:
    virtual ~cursor() = default;

    /// The node `id` (global per-level numbering) of level `lvl`.
    [[nodiscard]] virtual node_ref node(std::size_t lvl,
                                        std::uint64_t id) = 0;

    /// Entry point of a root-level sibling scan for leaf `index`: returns
    /// the global level-0 node id at which scanning may start and rewrites
    /// `index` relative to that node. Dense backends return 0 and leave
    /// `index` untouched; the lazy backend jumps to the owning chunk via
    /// leaf prefix sums so a scan never materializes unrelated chunks.
    [[nodiscard]] virtual std::uint64_t root_scan_start(
        std::uint64_t& index) = 0;

    /// Total leaves under level-0 nodes with id < `node` (the inverse of
    /// root_scan_start, used when composing a flat index from a path).
    [[nodiscard]] virtual std::uint64_t leaves_before_root(
        std::uint64_t node) = 0;
  };

  virtual ~space_storage() = default;

  [[nodiscard]] virtual space_storage_backend backend() const noexcept = 0;
  [[nodiscard]] virtual std::size_t depth() const noexcept = 0;
  /// Nodes of level `lvl` (global count, identical across backends).
  [[nodiscard]] virtual std::uint64_t level_size(
      std::size_t lvl) const noexcept = 0;
  /// Total logical nodes (identical across backends).
  [[nodiscard]] virtual std::uint64_t node_count() const noexcept = 0;
  /// Heap bytes actually held right now (for lazy: summaries + live cache).
  [[nodiscard]] virtual std::size_t memory_bytes() const noexcept = 0;
  [[nodiscard]] virtual std::unique_ptr<cursor> make_cursor() const = 0;
};

[[nodiscard]] std::shared_ptr<space_storage> make_dense_storage(
    std::vector<csr_level> levels);

[[nodiscard]] std::shared_ptr<space_storage> make_packed_storage(
    const std::vector<csr_level>& levels);

/// `params` must be the tree's own shared parameter handles: regeneration
/// replays set_and_check through them in the calling thread's *current*
/// evaluation context (contexts are thread-exclusive, so concurrent
/// operations regenerate without racing; no context is leased, so
/// regeneration can never deadlock against callers that already hold one).
[[nodiscard]] std::shared_ptr<space_storage> make_lazy_storage(
    std::vector<std::shared_ptr<itp>> params,
    std::vector<lazy_chunk_summary> chunks, std::size_t cache_bytes);

}  // namespace detail
}  // namespace atf
