// Cost types and multi-objective tuning support (paper, Section II Step 2).
//
// A cost function may return any type for which operator< is defined. ATF
// minimizes that type directly; for guiding numeric search techniques and for
// abort conditions it additionally derives a scalar view via cost_traits.
// Multi-objective tuning uses lexicographically ordered composites — e.g.
// cost_pair{runtime_ms, energy_uj} minimizes runtime first and breaks ties on
// energy — or a fully user-defined ordering via a custom comparable type.
#pragma once

#include <concepts>
#include <stdexcept>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>

namespace atf {

/// Thrown by cost functions when a configuration cannot be evaluated (e.g.
/// the kernel exceeds a device limit). The tuner records the evaluation as
/// failed and continues; failed configurations never become the best.
class evaluation_error : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// A two-objective cost with lexicographic order: `primary` is minimized
/// first, `secondary` breaks ties (paper: "pairs comprise runtime and energy
/// consumption and < is defined as lexicographical order").
struct cost_pair {
  double primary = 0.0;
  double secondary = 0.0;

  friend bool operator<(const cost_pair& a, const cost_pair& b) noexcept {
    return std::tie(a.primary, a.secondary) < std::tie(b.primary, b.secondary);
  }
  friend bool operator==(const cost_pair& a, const cost_pair& b) noexcept {
    return a.primary == b.primary && a.secondary == b.secondary;
  }
};

/// Customization point mapping a cost value onto a double for search
/// guidance and abort conditions. Specialize for user cost types.
template <typename CostT, typename = void>
struct cost_traits;

template <typename CostT>
struct cost_traits<CostT, std::enable_if_t<std::is_arithmetic_v<CostT>>> {
  static double scalar(const CostT& c) { return static_cast<double>(c); }
  static std::string describe(const CostT& c) { return std::to_string(c); }
};

template <>
struct cost_traits<cost_pair> {
  static double scalar(const cost_pair& c) { return c.primary; }
  static std::string describe(const cost_pair& c) {
    return "(" + std::to_string(c.primary) + ", " +
           std::to_string(c.secondary) + ")";
  }
};

template <typename A, typename B>
struct cost_traits<std::pair<A, B>> {
  static double scalar(const std::pair<A, B>& c) {
    return static_cast<double>(c.first);
  }
  static std::string describe(const std::pair<A, B>& c) {
    return "(" + std::to_string(c.first) + ", " + std::to_string(c.second) +
           ")";
  }
};

/// Purity annotation for cost functions. Batched evaluation runs a cost
/// function concurrently from several worker threads, which is only sound
/// when invocations do not share mutable state — true for the simulator-
/// backed cost functions (deterministic analytical models over read-only
/// inputs) and generally false for real-measurement backends (shared
/// devices, result-verification buffers, temp files).
///
/// A cost function declares itself either with a member function
/// `bool thread_safe() const` (when safety depends on runtime setup, e.g.
/// atf::cf::ocl is pure until result verification is enabled) or with a
/// static member `thread_safe` constant. Unannotated callables are
/// conservatively reported as not thread-safe; the tuner then logs a
/// warning when batched evaluation is requested but still honours the
/// caller's explicit choice.
template <typename CF>
[[nodiscard]] bool declares_thread_safe_cost(const CF& cf) {
  if constexpr (requires {
                  { cf.thread_safe() } -> std::convertible_to<bool>;
                }) {
    return cf.thread_safe();
  } else if constexpr (requires {
                         {
                           std::decay_t<CF>::thread_safe
                         } -> std::convertible_to<bool>;
                       }) {
    return std::decay_t<CF>::thread_safe;
  } else {
    return false;
  }
}

}  // namespace atf
