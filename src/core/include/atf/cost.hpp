// Cost types and multi-objective tuning support (paper, Section II Step 2).
//
// A cost function may return any type for which operator< is defined. ATF
// minimizes that type directly; for guiding numeric search techniques and for
// abort conditions it additionally derives a scalar view via cost_traits.
// Multi-objective tuning uses lexicographically ordered composites — e.g.
// cost_pair{runtime_ms, energy_uj} minimizes runtime first and breaks ties on
// energy — or a fully user-defined ordering via a custom comparable type.
#pragma once

#include <stdexcept>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>

namespace atf {

/// Thrown by cost functions when a configuration cannot be evaluated (e.g.
/// the kernel exceeds a device limit). The tuner records the evaluation as
/// failed and continues; failed configurations never become the best.
class evaluation_error : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// A two-objective cost with lexicographic order: `primary` is minimized
/// first, `secondary` breaks ties (paper: "pairs comprise runtime and energy
/// consumption and < is defined as lexicographical order").
struct cost_pair {
  double primary = 0.0;
  double secondary = 0.0;

  friend bool operator<(const cost_pair& a, const cost_pair& b) noexcept {
    return std::tie(a.primary, a.secondary) < std::tie(b.primary, b.secondary);
  }
  friend bool operator==(const cost_pair& a, const cost_pair& b) noexcept {
    return a.primary == b.primary && a.secondary == b.secondary;
  }
};

/// Customization point mapping a cost value onto a double for search
/// guidance and abort conditions. Specialize for user cost types.
template <typename CostT, typename = void>
struct cost_traits;

template <typename CostT>
struct cost_traits<CostT, std::enable_if_t<std::is_arithmetic_v<CostT>>> {
  static double scalar(const CostT& c) { return static_cast<double>(c); }
  static std::string describe(const CostT& c) { return std::to_string(c); }
};

template <>
struct cost_traits<cost_pair> {
  static double scalar(const cost_pair& c) { return c.primary; }
  static std::string describe(const cost_pair& c) {
    return "(" + std::to_string(c.primary) + ", " +
           std::to_string(c.secondary) + ")";
  }
};

template <typename A, typename B>
struct cost_traits<std::pair<A, B>> {
  static double scalar(const std::pair<A, B>& c) {
    return static_cast<double>(c.first);
  }
  static std::string describe(const std::pair<A, B>& c) {
    return "(" + std::to_string(c.first) + ", " + std::to_string(c.second) +
           ")";
  }
};

}  // namespace atf
