// Type-erased tuning-parameter values.
//
// ATF allows tuning parameters of arbitrary fundamental types (bool, integral
// and floating point) and of enum types (paper, Section II Step 1). The
// search-space machinery is type-erased, so parameter values are stored in a
// small variant. Enum values are stored as their underlying integer; the typed
// accessors cast back.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <variant>

namespace atf {

/// The storage variant for tuning-parameter values.
using tp_value = std::variant<bool, std::int64_t, std::uint64_t, double>;

/// Thrown on a type-mismatched access to a configuration value.
class value_type_error : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

namespace detail {

/// Maps a user type onto its variant alternative.
template <typename T>
struct value_codec {
  static_assert(std::is_arithmetic_v<T> || std::is_enum_v<T>,
                "tuning parameters must have a fundamental or enum type");

  static tp_value encode(T v) {
    if constexpr (std::is_same_v<T, bool>) {
      return tp_value(v);
    } else if constexpr (std::is_enum_v<T>) {
      return tp_value(static_cast<std::int64_t>(
          static_cast<std::underlying_type_t<T>>(v)));
    } else if constexpr (std::is_floating_point_v<T>) {
      return tp_value(static_cast<double>(v));
    } else if constexpr (std::is_signed_v<T>) {
      return tp_value(static_cast<std::int64_t>(v));
    } else {
      return tp_value(static_cast<std::uint64_t>(v));
    }
  }

  static T decode(const tp_value& v);
};

}  // namespace detail

/// Converts a value to its storage form.
template <typename T>
tp_value to_tp_value(T v) {
  return detail::value_codec<T>::encode(v);
}

/// Extracts a value of type T; performs safe numeric conversions between the
/// integral alternatives and throws value_type_error on lossy mismatches
/// (e.g. reading a double as size_t when it has a fractional part).
template <typename T>
T from_tp_value(const tp_value& v) {
  return detail::value_codec<T>::decode(v);
}

/// Renders a value the way the OpenCL preprocessor would need it
/// (true/false for bool, full precision for floating point).
[[nodiscard]] std::string to_string(const tp_value& v);

/// Scalarizes a value for numeric search techniques. bool -> 0/1.
[[nodiscard]] double to_double(const tp_value& v);

/// Exact equality of storage alternatives and payloads.
[[nodiscard]] bool value_equals(const tp_value& a, const tp_value& b) noexcept;

namespace detail {

template <typename T>
T value_codec<T>::decode(const tp_value& v) {
  if constexpr (std::is_same_v<T, bool>) {
    if (const bool* b = std::get_if<bool>(&v)) {
      return *b;
    }
    throw value_type_error("tp_value: stored value is not a bool");
  } else if constexpr (std::is_enum_v<T>) {
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      return static_cast<T>(static_cast<std::underlying_type_t<T>>(*i));
    }
    throw value_type_error("tp_value: stored value is not an enum");
  } else if constexpr (std::is_floating_point_v<T>) {
    if (const auto* d = std::get_if<double>(&v)) {
      return static_cast<T>(*d);
    }
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      return static_cast<T>(*i);
    }
    if (const auto* u = std::get_if<std::uint64_t>(&v)) {
      return static_cast<T>(*u);
    }
    throw value_type_error("tp_value: stored value is not numeric");
  } else {
    // Integral target: allow conversion between the integral alternatives as
    // long as the payload is representable.
    if (const auto* i = std::get_if<std::int64_t>(&v)) {
      return static_cast<T>(*i);
    }
    if (const auto* u = std::get_if<std::uint64_t>(&v)) {
      return static_cast<T>(*u);
    }
    if (const bool* b = std::get_if<bool>(&v)) {
      return static_cast<T>(*b ? 1 : 0);
    }
    throw value_type_error("tp_value: stored value is not integral");
  }
}

}  // namespace detail

}  // namespace atf
