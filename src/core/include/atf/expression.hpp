// Lazy arithmetic expressions over tuning parameters.
//
// The paper's Listing 2 writes the local-size constraint as
// `atf::divides(N / WPT)` and the OpenCL global size as an "arithmetic
// expression containing tuning parameters" (Section III). Both require that
// `N / WPT` is *not* evaluated at construction time but every time the
// expression is consulted — with WPT's then-current value. This header
// provides small expression templates: any combination of tp<T> handles,
// expr<T> nodes and arithmetic literals composed with + - * / % min max
// yields an expr<R> that evaluates on demand.
//
// Thread-safety: expressions capture tp *handles*, and tp::eval() reads the
// slot of the calling thread's evaluation context (see tp.hpp). An expr is
// therefore safe to evaluate concurrently from generation chunks running
// under different scoped_eval_context leases — each evaluation sees the
// prefix its own thread is expanding, with no changes needed here.
#pragma once

#include <algorithm>
#include <functional>
#include <type_traits>

#include "atf/tp.hpp"

namespace atf {

/// A lazily evaluated value of type T.
template <typename T>
class expr {
public:
  using value_type = T;

  /// Wraps a constant.
  explicit expr(T constant) : eval_([constant] { return constant; }) {}

  /// Wraps an arbitrary nullary callable.
  template <typename F>
    requires std::is_invocable_r_v<T, F>
  explicit expr(F fn) : eval_(std::move(fn)) {}

  [[nodiscard]] T eval() const { return eval_(); }

private:
  std::function<T()> eval_;
};

namespace detail {

template <typename E>
struct is_lazy : std::false_type {};
template <typename T>
struct is_lazy<tp<T>> : std::true_type {};
template <typename T>
struct is_lazy<expr<T>> : std::true_type {};

template <typename E>
inline constexpr bool is_lazy_v = is_lazy<std::decay_t<E>>::value;

/// The value type an operand contributes to an expression.
template <typename E, typename = void>
struct operand_type {
  using type = std::decay_t<E>;
};
template <typename E>
struct operand_type<E, std::enable_if_t<is_lazy_v<E>>> {
  using type = typename std::decay_t<E>::value_type;
};
template <typename E>
using operand_type_t = typename operand_type<E>::type;

/// Evaluates an operand: lazy operands via eval(), literals as themselves.
template <typename E>
auto operand_eval(const E& e) {
  if constexpr (is_lazy_v<E>) {
    return e.eval();
  } else {
    return e;
  }
}

/// True when at least one side is lazy, so the operator templates below do
/// not hijack plain arithmetic.
template <typename A, typename B>
inline constexpr bool any_lazy_v = is_lazy_v<A> || is_lazy_v<B>;

template <typename A, typename B>
using binary_result_t =
    std::common_type_t<operand_type_t<A>, operand_type_t<B>>;

}  // namespace detail

#define ATF_DEFINE_EXPR_BINARY_OP(op)                                      \
  template <typename A, typename B>                                        \
    requires detail::any_lazy_v<A, B>                                      \
  auto operator op(const A& a, const B& b) {                               \
    using R = detail::binary_result_t<A, B>;                               \
    return expr<R>([a, b] {                                                \
      return static_cast<R>(detail::operand_eval(a) op                     \
                            detail::operand_eval(b));                      \
    });                                                                    \
  }

ATF_DEFINE_EXPR_BINARY_OP(+)
ATF_DEFINE_EXPR_BINARY_OP(-)
ATF_DEFINE_EXPR_BINARY_OP(*)
ATF_DEFINE_EXPR_BINARY_OP(/)
ATF_DEFINE_EXPR_BINARY_OP(%)

#undef ATF_DEFINE_EXPR_BINARY_OP

/// Lazy max, used e.g. in CLBlast-style global sizes.
template <typename A, typename B>
  requires detail::any_lazy_v<A, B>
auto max(const A& a, const B& b) {
  using R = detail::binary_result_t<A, B>;
  return expr<R>([a, b] {
    return std::max<R>(static_cast<R>(detail::operand_eval(a)),
                       static_cast<R>(detail::operand_eval(b)));
  });
}

template <typename A, typename B>
  requires detail::any_lazy_v<A, B>
auto min(const A& a, const B& b) {
  using R = detail::binary_result_t<A, B>;
  return expr<R>([a, b] {
    return std::min<R>(static_cast<R>(detail::operand_eval(a)),
                       static_cast<R>(detail::operand_eval(b)));
  });
}

/// Lazy ceil-div and round-up — the arithmetic CLBlast applies to adapt the
/// global size to a multiple of the local size (Sections III and VI-A).
template <typename A, typename B>
  requires detail::any_lazy_v<A, B>
auto ceil_div(const A& a, const B& b) {
  using R = detail::binary_result_t<A, B>;
  return expr<R>([a, b] {
    const R x = static_cast<R>(detail::operand_eval(a));
    const R y = static_cast<R>(detail::operand_eval(b));
    return static_cast<R>((x + y - 1) / y);
  });
}

template <typename A, typename B>
  requires detail::any_lazy_v<A, B>
auto round_up(const A& a, const B& b) {
  using R = detail::binary_result_t<A, B>;
  return expr<R>([a, b] {
    const R x = static_cast<R>(detail::operand_eval(a));
    const R y = static_cast<R>(detail::operand_eval(b));
    return static_cast<R>((x + y - 1) / y * y);
  });
}

/// Wraps any operand (tp, expr or literal) into an expr of its value type.
template <typename E>
auto make_expr(const E& e) {
  using R = detail::operand_type_t<E>;
  if constexpr (detail::is_lazy_v<E>) {
    return expr<R>([e] { return e.eval(); });
  } else {
    return expr<R>(e);
  }
}

}  // namespace atf
