// Exhaustive search (paper, Section IV-A): iterates straightforwardly over
// the search space and therefore finds the provably best configuration. It
// is the tuner's default technique. finalize and report_cost are no-ops;
// get_next_config returns each configuration in turn (wrapping around if the
// abort condition allows more evaluations than the space holds). Every
// proposal is independent of every cost, so the whole sweep is a natural
// batch: propose_batch hands out the next `max_configs` indices at once.
#pragma once

#include "atf/search_technique.hpp"

namespace atf {

class exhaustive final : public search_technique {
public:
  [[nodiscard]] const char* name() const override { return "exhaustive"; }

  void initialize(const search_space& space) override {
    search_technique::initialize(space);
    next_ = 0;
  }

  [[nodiscard]] configuration get_next_config() override {
    const std::uint64_t index = next_ % space().size();
    ++next_;
    return space().config_at(index);
  }

  void report_cost(double /*cost*/) override {}

  [[nodiscard]] std::vector<configuration> propose_batch(
      std::size_t max_configs) override {
    std::vector<configuration> batch;
    batch.reserve(max_configs);
    for (std::size_t i = 0; i < max_configs; ++i) {
      batch.push_back(get_next_config());
    }
    return batch;
  }

private:
  std::uint64_t next_ = 0;
};

}  // namespace atf
