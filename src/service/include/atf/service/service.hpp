// tuning_service — the daemon's engine, socket-free and fully testable
// in-process (DESIGN.md §13).
//
// State model. All answers come from an immutable *snapshot*: a map from
// service key to that key's result_store (rebuilt from its crash-safe
// journal) plus the precomputed best record. The snapshot lives behind
// std::atomic<std::shared_ptr>, so the request hot path — parse, snapshot
// load, map lookup, serialize — never touches a mutex: a `get` that hits
// is answered entirely from the snapshot while the background refiner
// builds the next one. Mutations (refine, merge, compact, load) serialize
// on a writer mutex and publish by swapping the pointer.
//
// Miss path. A `get` for an unknown (or not-yet-measured) key is enqueued
// on a bounded dedup queue — the blasmini::dispatcher refinement pattern —
// and answered immediately with a miss. The background refiner thread
// drains the queue in batches: for each key it calls the pluggable
// refine_fn, which appends measurements to the key's journal (typically by
// running a journaled, warm-started tune), then the service re-reads the
// journal and publishes a new snapshot. When the queue is full, new misses
// are *counted* (dropped_refinements, surfaced in stats so operators can
// size the queue) instead of vanishing silently.
//
// Durability. Every key's state is exactly its journal: restart = re-scan
// the journal directory, so a SIGKILLed daemon warm-starts bit-identically
// (the torn tail a kill can leave is dropped by the tolerant reader).
// Journal file names are the lossless service_key::file_stem() encoding —
// no sidecar index to keep consistent. compact_all() rewrites
// superseded-heavy journals in place (atomic rename); merge_journal()
// folds a foreign daemon's journal into a key with content-hash dedup and
// the result_store::supersedes total order, appending only winners.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "atf/service/protocol.hpp"
#include "atf/session/journal.hpp"
#include "atf/session/result_store.hpp"

namespace atf::service {

struct service_options {
  /// Directory of per-key journals ("<file_stem>.jsonl"). Must exist.
  std::string journal_dir;
  /// Refinement-queue bound; misses beyond it are counted as dropped.
  std::size_t max_pending = 64;
  /// Keys drained per refiner wakeup.
  std::size_t refine_batch = 4;
  /// Durability of refinement appends made by the service itself (merge).
  session::fsync_policy fsync = session::fsync_policy::flush;
};

/// Produces new measurements for `key` by appending to the crash-safe
/// journal at `journal_path` (typically a journaled tune warm-started from
/// the existing records). Returns true when the journal may have changed.
/// Runs on the background refiner thread, never on a request thread.
using refine_fn =
    std::function<bool(const service_key& key, const std::string& journal_path)>;

/// Optional gate: a non-empty return marks `key` permanently unrefinable
/// (wrong kernel, foreign device, unparsable size) — the miss reply says so
/// and nothing is enqueued.
using validate_fn = std::function<std::string(const service_key& key)>;

struct service_stats {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t dropped_refinements = 0;
  std::uint64_t unrefinable = 0;
  std::uint64_t malformed = 0;
  std::uint64_t refines = 0;         ///< refine_fn invocations that returned true
  std::uint64_t failed_refines = 0;  ///< refine_fn false or threw
  std::uint64_t keys = 0;            ///< keys in the current snapshot
  std::uint64_t records = 0;         ///< records across all key stores
  std::uint64_t snapshot_version = 0;
  std::uint64_t pending = 0;         ///< queue depth right now
};

class tuning_service {
public:
  /// One key's immutable published state.
  struct key_state {
    service_key key;
    std::string journal_path;
    session::result_store store;
    std::optional<session::tuning_record> best;  ///< store.best()
  };

  struct snapshot {
    /// key.to_string() -> state; shared_ptr values so publishing a new
    /// snapshot copies pointers, not stores.
    std::map<std::string, std::shared_ptr<const key_state>> keys;
    std::uint64_t version = 0;
  };

  tuning_service(service_options opts, refine_fn refine,
                 validate_fn validate = {});
  ~tuning_service();

  tuning_service(const tuning_service&) = delete;
  tuning_service& operator=(const tuning_service&) = delete;

  /// Scans journal_dir and publishes the initial snapshot. Unreadable or
  /// foreign files are skipped; returns the number of keys loaded.
  std::size_t load();

  /// Handles one request line, returns one reply line (no newline). Thread
  /// safe; the hit path is lock-free (snapshot load + counters only).
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Starts the background refiner thread (idempotent).
  void start();

  /// Stops the refiner: the in-flight refine completes (its journal append
  /// is never torn), queued keys are discarded — they are only hints and
  /// will re-enqueue on their next miss. Idempotent; called by ~.
  void stop();

  /// Synchronously drains up to `max_keys` queued refinements on the
  /// caller's thread — deterministic alternative to start() for tests and
  /// tools. Must not race a running refiner thread.
  std::size_t refine_pending(std::size_t max_keys);

  /// Folds a foreign journal file into `key`: winners under the
  /// result_store::supersedes total order are appended to the key's own
  /// journal and published. Creates the key when new.
  session::result_store::merge_stats merge_journal(
      const service_key& key, const std::string& foreign_journal);

  /// Compacts every key journal (journal_writer::compact); returns the
  /// number of journals rewritten. Snapshot answers are unchanged by
  /// construction — compaction keeps exactly the records the store indexes.
  std::size_t compact_all();

  [[nodiscard]] service_stats stats() const;
  [[nodiscard]] std::shared_ptr<const snapshot> current_snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::string journal_path(const service_key& key) const;
  [[nodiscard]] const service_options& options() const noexcept {
    return opts_;
  }

private:
  [[nodiscard]] std::string handle_get(const service_key& key);
  /// Returns {enqueued, dropped}.
  std::pair<bool, bool> enqueue(const service_key& key);
  /// Pops one key; nullopt when empty.
  std::optional<service_key> pop();
  /// Runs refine_fn for one key and publishes its new state.
  void refine_one(const service_key& key);
  /// Re-reads one key's journal and publishes a snapshot containing it.
  void publish_key(const service_key& key);
  void refiner_loop();

  service_options opts_;
  refine_fn refine_;
  validate_fn validate_;

  std::atomic<std::shared_ptr<const snapshot>> snapshot_;
  mutable std::mutex writer_mutex_;  ///< serializes snapshot mutations

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<service_key> queue_;
  std::set<service_key> queued_;  ///< dedup view of queue_
  bool stopping_ = false;

  std::thread refiner_;
  bool refiner_running_ = false;

  // Counters on the request path are atomics: requests arrive from many
  // connection threads while the refiner publishes snapshots.
  std::atomic<std::uint64_t> requests_{0}, hits_{0}, misses_{0},
      enqueued_{0}, dropped_{0}, unrefinable_{0}, malformed_{0},
      refines_{0}, failed_refines_{0};
};

}  // namespace atf::service
