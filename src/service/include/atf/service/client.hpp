// The client half of the atf_served line protocol: connect to the daemon's
// Unix socket, send one JSON request line, read one JSON reply line.
// Used by `atf_tune --serve`, the end-to-end tests and the CI warm-start
// job; a tuned library would embed exactly this class next to its compute
// call sites.
#pragma once

#include <string>

#include "atf/service/protocol.hpp"

namespace atf::service {

class service_client {
public:
  /// Connects immediately; throws service_error when the daemon is not
  /// listening (or the platform has no Unix sockets).
  explicit service_client(const std::string& socket_path);
  ~service_client();

  service_client(const service_client&) = delete;
  service_client& operator=(const service_client&) = delete;

  /// Sends one raw request line and returns the raw reply line (both
  /// without trailing newline). Throws service_error on a dropped
  /// connection. The building block the typed calls below wrap.
  std::string round_trip(const std::string& request_line);

  /// Best configuration for a key; reply.raw carries the exact bytes.
  get_reply get(const service_key& key);

  stats_reply stats();

  /// True when the daemon answers the ping.
  bool ping();

private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the previous reply's newline
};

}  // namespace atf::service
