// The atf_served line protocol (DESIGN.md §13): one JSON object per line
// in each direction over a Unix domain socket, reusing the session
// subsystem's canonical JSON writer so replies are byte-deterministic —
// the warm-start CI job compares raw reply bytes across a kill/restart.
//
// Requests:
//   {"op":"get","kernel":"xgemm","device":"K20m","size":"64x64x64"}
//   {"op":"stats"}
//   {"op":"ping"}
//
// Replies (always one line, always with "ok"):
//   {"ok":true,"op":"get","key":"xgemm/K20m/64x64x64","hit":true,
//    "hash":"<16 hex>","scalar":…,"config":{"WGD":"8",…},"configs":N}
//   {"ok":true,"op":"get","key":"…","hit":false,"enqueued":true,
//    "dropped":false,"unrefinable":false}
//   {"ok":true,"op":"stats","stats":{"requests":…,…}}
//   {"ok":false,"error":"…"}
//
// Configuration values travel as *strings* (the tuning_record textual
// forms), so u64/double parameters round-trip exactly — same reasoning as
// the journal format.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "atf/session/json.hpp"

namespace atf::service {

class service_error : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// What a client asks about: a tuned kernel on a device profile at one
/// problem size. All three fields are free-form strings to the service
/// core; only the refine backend interprets them.
struct service_key {
  std::string kernel;
  std::string device;
  std::string size;

  /// Human/protocol form: "kernel/device/size".
  [[nodiscard]] std::string to_string() const;

  /// Lossless, filesystem-safe encoding — the journal file is named
  /// "<file_stem()>.jsonl". Fields are percent-encoded (only
  /// [A-Za-z0-9._-] pass through) and joined with '+', so the stem parses
  /// back to the exact key: no sidecar index file is needed to rebuild the
  /// key → journal mapping on warm start.
  [[nodiscard]] std::string file_stem() const;
  [[nodiscard]] static std::optional<service_key> from_file_stem(
      const std::string& stem);

  friend bool operator==(const service_key& a, const service_key& b) {
    return a.kernel == b.kernel && a.device == b.device && a.size == b.size;
  }
  friend bool operator<(const service_key& a, const service_key& b) {
    if (a.kernel != b.kernel) return a.kernel < b.kernel;
    if (a.device != b.device) return a.device < b.device;
    return a.size < b.size;
  }
};

struct request {
  enum class op { get, stats, ping };
  op operation = op::ping;
  service_key key;  ///< meaningful for `get`
};

/// Parses one request line. On malformed input returns std::nullopt and
/// fills `error` with a one-line reason (the server echoes it back).
[[nodiscard]] std::optional<request> parse_request(const std::string& line,
                                                   std::string& error);

/// Serializes a request to its wire line (without trailing newline).
[[nodiscard]] std::string serialize_request(const request& r);

/// Client-side decoded `get` reply.
struct get_reply {
  bool ok = false;
  std::string error;        ///< set when !ok
  std::string key;
  bool hit = false;
  // Hit payload:
  std::string hash;         ///< configuration hash, 16 hex digits
  double scalar = 0.0;      ///< best scalar cost
  std::vector<std::pair<std::string, std::string>> config;  ///< declaration order
  /// Distinct configurations backing this key (store size). Deliberately
  /// NOT the raw journal record count: compaction drops superseded
  /// duplicates, and this field must stay bit-identical across it.
  std::uint64_t configs = 0;
  // Miss payload:
  bool enqueued = false;    ///< refinement queued for this key
  bool dropped = false;     ///< queue full: the miss was counted, not queued
  bool unrefinable = false; ///< backend will never tune this key
  std::string raw;          ///< the exact reply line (bit-identity checks)
};

[[nodiscard]] get_reply parse_get_reply(const std::string& line);

/// Client-side decoded `stats` reply: counter name -> value.
struct stats_reply {
  bool ok = false;
  std::string error;
  std::map<std::string, std::uint64_t> counters;
};

[[nodiscard]] stats_reply parse_stats_reply(const std::string& line);

}  // namespace atf::service
