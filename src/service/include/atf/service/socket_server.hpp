// A minimal Unix-domain-socket line server: newline-delimited requests in,
// newline-delimited replies out, one handler call per line. Transport
// only — all protocol semantics live in tuning_service::handle_line, which
// is what the handler normally is.
//
// Threading: one accept thread plus one thread per connection (the service
// answers from an immutable snapshot, so connection threads scale without
// contention). stop() shuts both directions of every live connection down,
// so blocked reads return and threads join promptly — the SIGTERM-drain
// path: in-flight requests finish, half-written replies do not happen
// (replies are written whole per line).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "atf/service/protocol.hpp"

namespace atf::service {

class socket_server {
public:
  using handler = std::function<std::string(const std::string& line)>;

  /// Does not bind yet; start() does.
  socket_server(std::string socket_path, handler handle);
  ~socket_server();

  socket_server(const socket_server&) = delete;
  socket_server& operator=(const socket_server&) = delete;

  /// Binds (unlinking a stale socket file first), listens and spawns the
  /// accept thread. Throws service_error on failure or on platforms
  /// without Unix domain sockets.
  void start();

  /// Stops accepting, shuts down live connections, joins every thread and
  /// unlinks the socket file. Idempotent; called by the destructor.
  void stop();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }

private:
  struct connection;

  void accept_loop();
  void serve_connection(connection* conn);

  std::string path_;
  handler handle_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool running_ = false;

  std::mutex connections_mutex_;
  std::list<std::unique_ptr<connection>> connections_;
  std::atomic<std::uint64_t> accepted_{0};
};

}  // namespace atf::service
