#include "atf/service/service.hpp"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "atf/common/logging.hpp"
#include "atf/session/tuning_record.hpp"

namespace atf::service {

namespace {

namespace json = atf::session::json;

json::value error_reply(const std::string& message) {
  json::value out{json::object{}};
  out.set("ok", false);
  out.set("error", message);
  return out;
}

/// Fixed-width hex rendering of a configuration hash (matches the journal
/// record format).
std::string hash_hex(std::uint64_t hash) {
  char text[32];
  std::snprintf(text, sizeof(text), "%016llx",
                static_cast<unsigned long long>(hash));
  return text;
}

}  // namespace

tuning_service::tuning_service(service_options opts, refine_fn refine,
                               validate_fn validate)
    : opts_(std::move(opts)),
      refine_(std::move(refine)),
      validate_(std::move(validate)) {
  if (opts_.journal_dir.empty()) {
    throw service_error("tuning_service: journal_dir must be set");
  }
  snapshot_.store(std::make_shared<const snapshot>());
}

tuning_service::~tuning_service() { stop(); }

std::string tuning_service::journal_path(const service_key& key) const {
  return opts_.journal_dir + "/" + key.file_stem() + ".jsonl";
}

std::size_t tuning_service::load() {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  auto next = std::make_shared<snapshot>();
  next->version = snapshot_.load()->version + 1;

  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(opts_.journal_dir, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".jsonl") {
      continue;
    }
    const std::string stem = entry.path().stem().string();
    const auto key = service_key::from_file_stem(stem);
    if (!key.has_value()) {
      common::log_warn("service: skipping journal with foreign name '",
                       entry.path().string(), "'");
      continue;
    }
    auto state = std::make_shared<key_state>();
    state->key = *key;
    state->journal_path = entry.path().string();
    state->store = session::result_store::from_report(
        session::read_journal(state->journal_path));
    state->best = state->store.best();
    next->keys.emplace(key->to_string(), std::move(state));
  }
  if (ec) {
    throw service_error("tuning_service: cannot scan journal directory '" +
                        opts_.journal_dir + "': " + ec.message());
  }
  const std::size_t loaded = next->keys.size();
  snapshot_.store(std::shared_ptr<const snapshot>(std::move(next)),
                  std::memory_order_release);
  return loaded;
}

std::string tuning_service::handle_line(const std::string& line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::string error;
  const auto parsed = parse_request(line, error);
  if (!parsed.has_value()) {
    malformed_.fetch_add(1, std::memory_order_relaxed);
    return json::serialize(error_reply(error));
  }
  switch (parsed->operation) {
    case request::op::ping: {
      json::value out{json::object{}};
      out.set("ok", true);
      out.set("op", "ping");
      return json::serialize(out);
    }
    case request::op::stats: {
      const service_stats s = stats();
      json::value counters{json::object{}};
      counters.set("requests", std::uint64_t{s.requests});
      counters.set("hits", std::uint64_t{s.hits});
      counters.set("misses", std::uint64_t{s.misses});
      counters.set("enqueued", std::uint64_t{s.enqueued});
      counters.set("dropped_refinements",
                   std::uint64_t{s.dropped_refinements});
      counters.set("unrefinable", std::uint64_t{s.unrefinable});
      counters.set("malformed", std::uint64_t{s.malformed});
      counters.set("refines", std::uint64_t{s.refines});
      counters.set("failed_refines", std::uint64_t{s.failed_refines});
      counters.set("keys", std::uint64_t{s.keys});
      counters.set("records", std::uint64_t{s.records});
      counters.set("snapshot_version", std::uint64_t{s.snapshot_version});
      counters.set("pending", std::uint64_t{s.pending});
      json::value out{json::object{}};
      out.set("ok", true);
      out.set("op", "stats");
      out.set("stats", std::move(counters));
      return json::serialize(out);
    }
    case request::op::get:
      return handle_get(parsed->key);
  }
  return json::serialize(error_reply("unreachable"));
}

std::string tuning_service::handle_get(const service_key& key) {
  json::value out{json::object{}};
  out.set("ok", true);
  out.set("op", "get");
  out.set("key", key.to_string());

  // The hot path: one atomic snapshot load, one map lookup — no mutex.
  const std::shared_ptr<const snapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  const auto it = snap->keys.find(key.to_string());
  if (it != snap->keys.end() && it->second->best.has_value()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    const session::tuning_record& best = *it->second->best;
    out.set("hit", true);
    out.set("hash", hash_hex(best.config_hash));
    out.set("scalar", best.scalar);
    json::value config{json::object{}};
    for (const auto& [name, value] : best.values) {
      config.set(name, atf::to_string(value));
    }
    out.set("config", std::move(config));
    // Distinct measured configurations — invariant under journal
    // compaction, so kill/compact/restart replies stay byte-identical.
    out.set("configs", std::uint64_t{it->second->store.size()});
    return json::serialize(out);
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  out.set("hit", false);
  if (validate_) {
    const std::string reason = validate_(key);
    if (!reason.empty()) {
      unrefinable_.fetch_add(1, std::memory_order_relaxed);
      out.set("enqueued", false);
      out.set("dropped", false);
      out.set("unrefinable", true);
      out.set("reason", reason);
      return json::serialize(out);
    }
  }
  const auto [enqueued, dropped] = enqueue(key);
  out.set("enqueued", enqueued);
  out.set("dropped", dropped);
  out.set("unrefinable", false);
  return json::serialize(out);
}

std::pair<bool, bool> tuning_service::enqueue(const service_key& key) {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (queued_.count(key) != 0) {
    return {false, false};  // already pending: a repeat miss is not a drop
  }
  if (queue_.size() >= opts_.max_pending) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return {false, true};
  }
  queue_.push_back(key);
  queued_.insert(key);
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  queue_cv_.notify_one();
  return {true, false};
}

std::optional<service_key> tuning_service::pop() {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (queue_.empty()) {
    return std::nullopt;
  }
  service_key key = std::move(queue_.front());
  queue_.pop_front();
  queued_.erase(key);
  return key;
}

void tuning_service::publish_key(const service_key& key) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  auto state = std::make_shared<key_state>();
  state->key = key;
  state->journal_path = journal_path(key);
  state->store = session::result_store::from_report(
      session::read_journal(state->journal_path));
  state->best = state->store.best();

  const std::shared_ptr<const snapshot> current = snapshot_.load();
  auto next = std::make_shared<snapshot>(*current);
  next->version = current->version + 1;
  next->keys[key.to_string()] = std::move(state);
  snapshot_.store(std::shared_ptr<const snapshot>(std::move(next)),
                  std::memory_order_release);
}

void tuning_service::refine_one(const service_key& key) {
  bool changed = false;
  try {
    changed = refine_(key, journal_path(key));
  } catch (const std::exception& error) {
    common::log_warn("service: refinement of '", key.to_string(),
                     "' failed — ", error.what());
  }
  if (changed) {
    refines_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_refines_.fetch_add(1, std::memory_order_relaxed);
  }
  // Publish even after a failure: the tune may have journaled a partial
  // prefix before dying, and those measurements are already paid for.
  publish_key(key);
}

void tuning_service::refiner_loop() {
  for (;;) {
    std::vector<service_key> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) {
        return;  // queued keys are hints; they re-enqueue on the next miss
      }
      while (batch.size() < opts_.refine_batch && !queue_.empty()) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        queued_.erase(batch.back());
      }
    }
    for (const service_key& key : batch) {
      refine_one(key);
    }
  }
}

void tuning_service::start() {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  if (refiner_running_) {
    return;
  }
  stopping_ = false;
  refiner_ = std::thread([this] { refiner_loop(); });
  refiner_running_ = true;
}

void tuning_service::stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!refiner_running_) {
      return;
    }
    stopping_ = true;
    queue_cv_.notify_all();
  }
  refiner_.join();
  std::lock_guard<std::mutex> lock(queue_mutex_);
  refiner_running_ = false;
}

std::size_t tuning_service::refine_pending(std::size_t max_keys) {
  std::size_t refined = 0;
  while (refined < max_keys) {
    const auto key = pop();
    if (!key.has_value()) {
      break;
    }
    refine_one(*key);
    ++refined;
  }
  return refined;
}

session::result_store::merge_stats tuning_service::merge_journal(
    const service_key& key, const std::string& foreign_journal) {
  const session::journal_read_report foreign =
      session::read_journal(foreign_journal);

  // Rebuild the key's current store, append only the winners under the
  // supersedes total order to our own journal, then publish. The append
  // lock also excludes a concurrent refinement of the same key.
  session::result_store store = session::result_store::from_report(
      session::read_journal(journal_path(key)));
  session::result_store::merge_stats stats;
  {
    session::journal_writer writer(journal_path(key), opts_.fsync);
    for (const session::tuning_record& record : foreign.records) {
      const session::tuning_record* current = store.find(record.config_hash);
      if (current == nullptr) {
        ++stats.added;
      } else if (session::result_store::supersedes(record, *current)) {
        ++stats.superseded;
      } else {
        ++stats.ignored;
        continue;
      }
      writer.append(record);
      store.insert(record);
    }
  }
  publish_key(key);
  return stats;
}

std::size_t tuning_service::compact_all() {
  const std::shared_ptr<const snapshot> snap = snapshot_.load();
  std::size_t compacted = 0;
  for (const auto& [name, state] : snap->keys) {
    try {
      session::journal_writer writer(state->journal_path);
      writer.compact();
      ++compacted;
    } catch (const session::journal_locked_error&) {
      continue;  // being refined right now; it can compact next time
    } catch (const session::journal_error& error) {
      common::log_warn("service: compaction of '", state->journal_path,
                       "' failed — ", error.what());
      continue;
    }
    publish_key(state->key);
  }
  return compacted;
}

service_stats tuning_service::stats() const {
  service_stats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.enqueued = enqueued_.load(std::memory_order_relaxed);
  s.dropped_refinements = dropped_.load(std::memory_order_relaxed);
  s.unrefinable = unrefinable_.load(std::memory_order_relaxed);
  s.malformed = malformed_.load(std::memory_order_relaxed);
  s.refines = refines_.load(std::memory_order_relaxed);
  s.failed_refines = failed_refines_.load(std::memory_order_relaxed);
  const std::shared_ptr<const snapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  s.keys = snap->keys.size();
  for (const auto& [name, state] : snap->keys) {
    s.records += state->store.records().size();
  }
  s.snapshot_version = snap->version;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    s.pending = queue_.size();
  }
  return s;
}

}  // namespace atf::service
