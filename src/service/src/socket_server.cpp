#include "atf/service/socket_server.hpp"

#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define ATF_SERVICE_HAVE_UNIX_SOCKETS 1
#endif

namespace atf::service {

struct socket_server::connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> done{false};
};

socket_server::socket_server(std::string socket_path, handler handle)
    : path_(std::move(socket_path)), handle_(std::move(handle)) {}

socket_server::~socket_server() { stop(); }

#if ATF_SERVICE_HAVE_UNIX_SOCKETS

namespace {

/// write() the whole buffer, retrying short writes; false on error.
bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void socket_server::start() {
  if (running_) {
    return;
  }
  if (path_.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw service_error("socket_server: path too long for a Unix socket: '" +
                        path_ + "'");
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw service_error(std::string("socket_server: socket() failed: ") +
                        std::strerror(errno));
  }
  ::unlink(path_.c_str());  // a stale socket file from a killed daemon
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int saved_errno = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw service_error("socket_server: cannot listen on '" + path_ +
                        "': " + std::strerror(saved_errno));
  }
  stopping_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
  running_ = true;
}

void socket_server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // listener closed by stop()
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(connections_mutex_);
    // Reap finished connections so a long-lived daemon does not accumulate
    // joinable threads.
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load()) {
        (*it)->thread.join();
        ::close((*it)->fd);
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
    auto conn = std::make_unique<connection>();
    conn->fd = fd;
    connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { serve_connection(raw); });
    connections_.push_back(std::move(conn));
  }
}

void socket_server::serve_connection(connection* conn) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      break;  // EOF or connection shut down by stop()
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) {
        break;
      }
      const std::string reply =
          handle_(buffer.substr(start, newline - start)) + "\n";
      start = newline + 1;
      if (!write_all(conn->fd, reply.data(), reply.size())) {
        buffer.clear();
        start = 0;
        break;
      }
    }
    buffer.erase(0, start);
  }
  // The fd is closed by the reaper (or stop()), not here: closing it now
  // would let the kernel reuse the number while stop() may still be about
  // to shutdown() it.
  conn->done.store(true);
}

void socket_server::stop() {
  if (!running_) {
    return;
  }
  stopping_.store(true);
  // Closing the listener makes accept() fail and the accept loop return.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  accept_thread_.join();
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) {
      // Wakes a blocked read; the serve loop finishes the reply it is
      // writing (whole lines only) and exits.
      ::shutdown(conn->fd, SHUT_RDWR);
    }
    for (auto& conn : connections_) {
      conn->thread.join();
      ::close(conn->fd);
    }
    connections_.clear();
  }
  ::unlink(path_.c_str());
  running_ = false;
}

#else  // !ATF_SERVICE_HAVE_UNIX_SOCKETS

void socket_server::start() {
  throw service_error(
      "socket_server: Unix domain sockets are unavailable on this platform");
}
void socket_server::accept_loop() {}
void socket_server::serve_connection(connection*) {}
void socket_server::stop() {}

#endif

}  // namespace atf::service
