#include "atf/service/protocol.hpp"

#include <cstdio>

namespace atf::service {

namespace {

namespace json = atf::session::json;

bool stem_safe(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

void encode_field(const std::string& raw, std::string& out) {
  for (const char c : raw) {
    if (stem_safe(c)) {
      out += c;
    } else {
      char hex[4];
      std::snprintf(hex, sizeof(hex), "%%%02x",
                    static_cast<unsigned char>(c));
      out += hex;
    }
  }
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::optional<std::string> decode_field(const std::string& encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    const char c = encoded[i];
    if (c == '%') {
      if (i + 2 >= encoded.size()) {
        return std::nullopt;
      }
      const int hi = hex_nibble(encoded[i + 1]);
      const int lo = hex_nibble(encoded[i + 2]);
      if (hi < 0 || lo < 0) {
        return std::nullopt;
      }
      out += static_cast<char>((hi << 4) | lo);
      i += 2;
    } else if (stem_safe(c)) {
      out += c;
    } else {
      return std::nullopt;  // '+' or other raw separator inside a field
    }
  }
  return out;
}

const json::value* string_field(const json::value& v, const char* name) {
  const json::value* field = v.find(name);
  if (field == nullptr || !field->is_string()) {
    return nullptr;
  }
  return field;
}

bool bool_field(const json::value& v, const char* name) {
  const json::value* field = v.find(name);
  return field != nullptr && field->is_bool() && field->as_bool();
}

}  // namespace

std::string service_key::to_string() const {
  return kernel + "/" + device + "/" + size;
}

std::string service_key::file_stem() const {
  std::string out;
  out.reserve(kernel.size() + device.size() + size.size() + 2);
  encode_field(kernel, out);
  out += '+';
  encode_field(device, out);
  out += '+';
  encode_field(size, out);
  return out;
}

std::optional<service_key> service_key::from_file_stem(
    const std::string& stem) {
  const std::size_t first = stem.find('+');
  if (first == std::string::npos) {
    return std::nullopt;
  }
  const std::size_t second = stem.find('+', first + 1);
  if (second == std::string::npos ||
      stem.find('+', second + 1) != std::string::npos) {
    return std::nullopt;
  }
  const auto kernel = decode_field(stem.substr(0, first));
  const auto device = decode_field(stem.substr(first + 1, second - first - 1));
  const auto size = decode_field(stem.substr(second + 1));
  if (!kernel || !device || !size) {
    return std::nullopt;
  }
  return service_key{*kernel, *device, *size};
}

std::optional<request> parse_request(const std::string& line,
                                     std::string& error) {
  json::value parsed;
  try {
    parsed = json::parse(line);
  } catch (const json::parse_error& e) {
    error = std::string("malformed request: ") + e.what();
    return std::nullopt;
  }
  const json::value* op = string_field(parsed, "op");
  if (op == nullptr) {
    error = "request is missing the string field 'op'";
    return std::nullopt;
  }
  request r;
  if (op->as_string() == "ping") {
    r.operation = request::op::ping;
    return r;
  }
  if (op->as_string() == "stats") {
    r.operation = request::op::stats;
    return r;
  }
  if (op->as_string() != "get") {
    error = "unknown op '" + op->as_string() + "'";
    return std::nullopt;
  }
  r.operation = request::op::get;
  const json::value* kernel = string_field(parsed, "kernel");
  const json::value* device = string_field(parsed, "device");
  const json::value* size = string_field(parsed, "size");
  if (kernel == nullptr || device == nullptr || size == nullptr) {
    error = "get needs string fields 'kernel', 'device' and 'size'";
    return std::nullopt;
  }
  r.key = {kernel->as_string(), device->as_string(), size->as_string()};
  if (r.key.kernel.empty() || r.key.device.empty() || r.key.size.empty()) {
    error = "get fields must be non-empty";
    return std::nullopt;
  }
  return r;
}

std::string serialize_request(const request& r) {
  json::value out{json::object{}};
  switch (r.operation) {
    case request::op::ping:
      out.set("op", "ping");
      break;
    case request::op::stats:
      out.set("op", "stats");
      break;
    case request::op::get:
      out.set("op", "get");
      out.set("kernel", r.key.kernel);
      out.set("device", r.key.device);
      out.set("size", r.key.size);
      break;
  }
  return json::serialize(out);
}

get_reply parse_get_reply(const std::string& line) {
  get_reply reply;
  reply.raw = line;
  json::value parsed;
  try {
    parsed = json::parse(line);
  } catch (const json::parse_error& e) {
    reply.error = std::string("malformed reply: ") + e.what();
    return reply;
  }
  const json::value* ok = parsed.find("ok");
  if (ok == nullptr || !ok->is_bool()) {
    reply.error = "reply is missing 'ok'";
    return reply;
  }
  if (!ok->as_bool()) {
    const json::value* error = string_field(parsed, "error");
    reply.error = error != nullptr ? error->as_string() : "unknown error";
    return reply;
  }
  reply.ok = true;
  if (const json::value* key = string_field(parsed, "key")) {
    reply.key = key->as_string();
  }
  reply.hit = bool_field(parsed, "hit");
  reply.enqueued = bool_field(parsed, "enqueued");
  reply.dropped = bool_field(parsed, "dropped");
  reply.unrefinable = bool_field(parsed, "unrefinable");
  if (!reply.hit) {
    return reply;
  }
  if (const json::value* hash = string_field(parsed, "hash")) {
    reply.hash = hash->as_string();
  }
  if (const json::value* scalar = parsed.find("scalar");
      scalar != nullptr && scalar->is_number()) {
    reply.scalar = scalar->as_double();
  }
  if (const json::value* configs = parsed.find("configs");
      configs != nullptr && configs->is_number()) {
    reply.configs = configs->as_uint64();
  }
  if (const json::value* config = parsed.find("config");
      config != nullptr && config->is_object()) {
    for (const auto& [name, value] : config->as_object()) {
      if (value.is_string()) {
        reply.config.emplace_back(name, value.as_string());
      }
    }
  }
  return reply;
}

stats_reply parse_stats_reply(const std::string& line) {
  stats_reply reply;
  json::value parsed;
  try {
    parsed = json::parse(line);
  } catch (const json::parse_error& e) {
    reply.error = std::string("malformed reply: ") + e.what();
    return reply;
  }
  const json::value* ok = parsed.find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
    const json::value* error = string_field(parsed, "error");
    reply.error = error != nullptr ? error->as_string() : "unknown error";
    return reply;
  }
  const json::value* stats = parsed.find("stats");
  if (stats == nullptr || !stats->is_object()) {
    reply.error = "reply is missing 'stats'";
    return reply;
  }
  reply.ok = true;
  for (const auto& [name, value] : stats->as_object()) {
    if (value.is_number()) {
      reply.counters[name] = value.as_uint64();
    }
  }
  return reply;
}

}  // namespace atf::service
