#include "atf/service/client.hpp"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define ATF_SERVICE_HAVE_UNIX_SOCKETS 1
#endif

namespace atf::service {

#if ATF_SERVICE_HAVE_UNIX_SOCKETS

service_client::service_client(const std::string& socket_path) {
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw service_error("service_client: path too long for a Unix socket: '" +
                        socket_path + "'");
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw service_error(std::string("service_client: socket() failed: ") +
                        std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved_errno = errno;
    ::close(fd_);
    fd_ = -1;
    throw service_error("service_client: cannot connect to '" + socket_path +
                        "': " + std::strerror(saved_errno));
  }
}

service_client::~service_client() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

std::string service_client::round_trip(const std::string& request_line) {
  const std::string framed = request_line + "\n";
  std::size_t written = 0;
  while (written < framed.size()) {
    const ssize_t n =
        ::write(fd_, framed.data() + written, framed.size() - written);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      throw service_error("service_client: write failed: " +
                          std::string(std::strerror(errno)));
    }
    written += static_cast<std::size_t>(n);
  }

  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      const std::string reply = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return reply;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      throw service_error("service_client: connection closed by the daemon");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

#else  // !ATF_SERVICE_HAVE_UNIX_SOCKETS

service_client::service_client(const std::string&) {
  throw service_error(
      "service_client: Unix domain sockets are unavailable on this platform");
}
service_client::~service_client() = default;
std::string service_client::round_trip(const std::string&) {
  throw service_error("service_client: unavailable");
}

#endif

get_reply service_client::get(const service_key& key) {
  request r;
  r.operation = request::op::get;
  r.key = key;
  return parse_get_reply(round_trip(serialize_request(r)));
}

stats_reply service_client::stats() {
  request r;
  r.operation = request::op::stats;
  return parse_stats_reply(round_trip(serialize_request(r)));
}

bool service_client::ping() {
  request r;
  r.operation = request::op::ping;
  const std::string reply = round_trip(serialize_request(r));
  return reply.find("\"ok\":true") != std::string::npos;
}

}  // namespace atf::service
