#include "atf/session/tuning_record.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace atf::session {

namespace {

// tp_value alternatives serialize as {"t":"b|i|u|d","v":"<text>"}. The
// value is a *string* on purpose: int64/uint64 round-trip exactly without
// relying on the JSON number path, and doubles reuse atf::to_string's
// %.17g rendering (bit-exact round trip).
constexpr const char* type_tag(const tp_value& v) {
  switch (v.index()) {
    case 0: return "b";
    case 1: return "i";
    case 2: return "u";
    default: return "d";
  }
}

std::optional<tp_value> decode_value(const json::value& v) {
  const json::value* tag = v.find("t");
  const json::value* payload = v.find("v");
  if (tag == nullptr || payload == nullptr || !tag->is_string() ||
      !payload->is_string()) {
    return std::nullopt;
  }
  const std::string& text = payload->as_string();
  errno = 0;
  char* end = nullptr;
  if (tag->as_string() == "b") {
    if (text == "true") {
      return tp_value(true);
    }
    if (text == "false") {
      return tp_value(false);
    }
    return std::nullopt;
  }
  if (tag->as_string() == "i") {
    const long long parsed = std::strtoll(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size() || text.empty()) {
      return std::nullopt;
    }
    return tp_value(static_cast<std::int64_t>(parsed));
  }
  if (tag->as_string() == "u") {
    const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size() || text.empty()) {
      return std::nullopt;
    }
    return tp_value(static_cast<std::uint64_t>(parsed));
  }
  if (tag->as_string() == "d") {
    const double parsed = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size() || text.empty()) {
      return std::nullopt;
    }
    return tp_value(parsed);
  }
  return std::nullopt;
}

}  // namespace

configuration tuning_record::to_configuration() const {
  configuration config;
  for (const auto& [name, value] : values) {
    config.add(name, value);
  }
  return config;
}

tuning_record tuning_record::from_configuration(const configuration& config) {
  tuning_record record;
  record.values = config.entries();
  record.config_hash = config.hash();
  record.space_index = config.space_index();
  return record;
}

json::value to_json(const tuning_record& record) {
  json::value out{json::object{}};
  out.set("type", "record");
  out.set("run", record.run_id);
  out.set("seq", std::uint64_t{record.sequence});
  out.set("ts_ms", std::int64_t{record.timestamp_ms});
  // The hash serializes as fixed-width hex: immune to JSON-number integer
  // precision and trivially greppable.
  char hash_text[32];
  std::snprintf(hash_text, sizeof(hash_text), "%016llx",
                static_cast<unsigned long long>(record.config_hash));
  out.set("hash", std::string(hash_text));
  if (record.space_index.has_value()) {
    out.set("index", std::uint64_t{*record.space_index});
  }
  if (!record.technique.empty()) {
    out.set("tech", record.technique);
  }
  json::value config{json::object{}};
  for (const auto& [name, value] : record.values) {
    json::value encoded{json::object{}};
    encoded.set("t", type_tag(value));
    encoded.set("v", atf::to_string(value));
    config.set(name, std::move(encoded));
  }
  out.set("config", std::move(config));
  out.set("valid", record.valid);
  if (record.valid) {
    out.set("scalar", record.scalar);
    out.set("cost", record.cost);
  } else if (!record.failure.empty()) {
    out.set("failure", record.failure);
  }
  return out;
}

std::optional<tuning_record> record_from_json(const json::value& v) {
  const json::value* type = v.find("type");
  if (type == nullptr || !type->is_string() || type->as_string() != "record") {
    return std::nullopt;
  }
  const json::value* hash = v.find("hash");
  const json::value* config = v.find("config");
  const json::value* valid = v.find("valid");
  if (hash == nullptr || !hash->is_string() || config == nullptr ||
      !config->is_object() || valid == nullptr || !valid->is_bool()) {
    return std::nullopt;
  }

  tuning_record record;
  errno = 0;
  char* end = nullptr;
  const std::string& hash_text = hash->as_string();
  record.config_hash = std::strtoull(hash_text.c_str(), &end, 16);
  if (hash_text.empty() || end != hash_text.c_str() + hash_text.size()) {
    return std::nullopt;
  }

  for (const auto& [name, encoded] : config->as_object()) {
    const std::optional<tp_value> value = decode_value(encoded);
    if (!value.has_value()) {
      return std::nullopt;
    }
    record.values.emplace_back(name, *value);
  }

  record.valid = valid->as_bool();
  if (record.valid) {
    const json::value* scalar = v.find("scalar");
    if (scalar == nullptr || !scalar->is_number()) {
      return std::nullopt;
    }
    record.scalar = scalar->as_double();
    if (const json::value* cost = v.find("cost")) {
      record.cost = *cost;
    }
  } else if (const json::value* failure = v.find("failure")) {
    if (failure->is_string()) {
      record.failure = failure->as_string();
    }
  }

  if (const json::value* run = v.find("run"); run != nullptr &&
                                              run->is_string()) {
    record.run_id = run->as_string();
  }
  if (const json::value* seq = v.find("seq"); seq != nullptr &&
                                              seq->is_number()) {
    record.sequence = seq->as_uint64();
  }
  if (const json::value* ts = v.find("ts_ms"); ts != nullptr &&
                                               ts->is_number()) {
    record.timestamp_ms = ts->as_int64();
  }
  if (const json::value* index = v.find("index"); index != nullptr &&
                                                  index->is_number()) {
    record.space_index = index->as_uint64();
  }
  if (const json::value* tech = v.find("tech"); tech != nullptr &&
                                                tech->is_string()) {
    record.technique = tech->as_string();
  }
  return record;
}

}  // namespace atf::session
