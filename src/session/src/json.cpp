#include "atf/session/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace atf::session::json {

double value::as_double() const {
  if (const auto* i = std::get_if<std::int64_t>(&storage_)) {
    return static_cast<double>(*i);
  }
  if (const auto* u = std::get_if<std::uint64_t>(&storage_)) {
    return static_cast<double>(*u);
  }
  return std::get<double>(storage_);
}

std::int64_t value::as_int64() const {
  if (const auto* u = std::get_if<std::uint64_t>(&storage_)) {
    return static_cast<std::int64_t>(*u);
  }
  return std::get<std::int64_t>(storage_);
}

std::uint64_t value::as_uint64() const {
  if (const auto* i = std::get_if<std::int64_t>(&storage_)) {
    return static_cast<std::uint64_t>(*i);
  }
  return std::get<std::uint64_t>(storage_);
}

const value* value::find(std::string_view key) const noexcept {
  const auto* fields = std::get_if<object>(&storage_);
  if (fields == nullptr) {
    return nullptr;
  }
  for (const auto& [name, field] : *fields) {
    if (name == key) {
      return &field;
    }
  }
  return nullptr;
}

void value::set(std::string key, value v) {
  if (!is_object()) {
    storage_ = object{};
  }
  std::get<object>(storage_).emplace_back(std::move(key), std::move(v));
}

namespace {

void escape_string(std::string_view text, std::string& out) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void serialize_to(const value& v, std::string& out) {
  std::visit(
      [&out](const auto& x) {
        using X = std::decay_t<decltype(x)>;
        if constexpr (std::is_same_v<X, null_t>) {
          out += "null";
        } else if constexpr (std::is_same_v<X, bool>) {
          out += x ? "true" : "false";
        } else if constexpr (std::is_same_v<X, std::int64_t> ||
                             std::is_same_v<X, std::uint64_t>) {
          out += std::to_string(x);
        } else if constexpr (std::is_same_v<X, double>) {
          if (std::isnan(x)) {
            out += "NaN";
          } else if (std::isinf(x)) {
            out += x > 0 ? "Infinity" : "-Infinity";
          } else {
            char buffer[64];
            std::snprintf(buffer, sizeof(buffer), "%.17g", x);
            out += buffer;
          }
        } else if constexpr (std::is_same_v<X, std::string>) {
          escape_string(x, out);
        } else if constexpr (std::is_same_v<X, array>) {
          out += '[';
          for (std::size_t i = 0; i < x.size(); ++i) {
            if (i != 0) {
              out += ',';
            }
            serialize_to(x[i], out);
          }
          out += ']';
        } else {  // object
          out += '{';
          for (std::size_t i = 0; i < x.size(); ++i) {
            if (i != 0) {
              out += ',';
            }
            escape_string(x[i].first, out);
            out += ':';
            serialize_to(x[i].second, out);
          }
          out += '}';
        }
      },
      v.raw());
}

std::string serialize(const value& v) {
  std::string out;
  serialize_to(v, out);
  return out;
}

namespace {

class parser {
public:
  explicit parser(std::string_view text) : text_(text) {}

  value parse_document() {
    value v = parse_value();
    skip_whitespace();
    if (at_ < text_.size()) {
      fail("trailing characters after JSON document");
    }
    return v;
  }

private:
  [[noreturn]] void fail(const std::string& why) const {
    throw parse_error("json: " + why + " at offset " + std::to_string(at_));
  }

  void skip_whitespace() {
    while (at_ < text_.size() &&
           (text_[at_] == ' ' || text_[at_] == '\t' || text_[at_] == '\n' ||
            text_[at_] == '\r')) {
      ++at_;
    }
  }

  char peek() {
    if (at_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[at_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++at_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(at_, literal.size()) == literal) {
      at_ += literal.size();
      return true;
    }
    return false;
  }

  value parse_value() {
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return value(parse_string());
      case 't':
        if (consume_literal("true")) {
          return value(true);
        }
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          return value(false);
        }
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) {
          return value(nullptr);
        }
        fail("invalid literal");
      case 'N':
        if (consume_literal("NaN")) {
          return value(std::numeric_limits<double>::quiet_NaN());
        }
        fail("invalid literal");
      case 'I':
        if (consume_literal("Infinity")) {
          return value(std::numeric_limits<double>::infinity());
        }
        fail("invalid literal");
      default: return parse_number();
    }
  }

  value parse_object() {
    expect('{');
    object fields;
    skip_whitespace();
    if (peek() == '}') {
      ++at_;
      return value(std::move(fields));
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      fields.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++at_;
        continue;
      }
      if (c == '}') {
        ++at_;
        return value(std::move(fields));
      }
      fail("expected ',' or '}'");
    }
  }

  value parse_array() {
    expect('[');
    array items;
    skip_whitespace();
    if (peek() == ']') {
      ++at_;
      return value(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++at_;
        continue;
      }
      if (c == ']') {
        ++at_;
        return value(std::move(items));
      }
      fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (at_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[at_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char e = text_[at_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (at_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[at_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // The journal only ever escapes control characters; encode the
          // code point as UTF-8 for completeness.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  value parse_number() {
    const std::size_t start = at_;
    if (peek() == '-') {
      ++at_;
      if (at_ < text_.size() && text_[at_] == 'I') {
        if (consume_literal("Infinity")) {
          return value(-std::numeric_limits<double>::infinity());
        }
        fail("invalid literal");
      }
    }
    bool is_integer = true;
    while (at_ < text_.size()) {
      const char c = text_[at_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++at_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // '.'/exponent syntax — strtod validates the full token below.
        is_integer = false;
        ++at_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, at_ - start));
    if (token.empty() || token == "-") {
      fail("invalid number");
    }
    if (is_integer) {
      errno = 0;
      if (token[0] == '-') {
        const long long parsed = std::strtoll(token.c_str(), nullptr, 10);
        if (errno != ERANGE) {
          return value(static_cast<std::int64_t>(parsed));
        }
      } else {
        const unsigned long long parsed =
            std::strtoull(token.c_str(), nullptr, 10);
        if (errno != ERANGE) {
          if (parsed <=
              static_cast<unsigned long long>(
                  std::numeric_limits<std::int64_t>::max())) {
            return value(static_cast<std::int64_t>(parsed));
          }
          return value(static_cast<std::uint64_t>(parsed));
        }
      }
      // Out-of-range integers fall through to the double path.
    }
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("invalid number");
    }
    return value(parsed);
  }

  std::string_view text_;
  std::size_t at_ = 0;
};

}  // namespace

value parse(std::string_view text) {
  return parser(text).parse_document();
}

}  // namespace atf::session::json
