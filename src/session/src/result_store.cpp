#include "atf/session/result_store.hpp"

#include <algorithm>

namespace atf::session {

result_store result_store::from_report(const journal_read_report& report) {
  result_store store;
  store.records_.reserve(report.records.size());
  for (const tuning_record& record : report.records) {
    store.insert(record);
  }
  return store;
}

void result_store::insert(tuning_record record) {
  if (record.valid) {
    ++valid_;
  } else {
    ++invalid_;
  }
  latest_[record.config_hash] = records_.size();
  records_.push_back(std::move(record));
}

const tuning_record* result_store::find(
    std::uint64_t config_hash) const noexcept {
  const auto it = latest_.find(config_hash);
  if (it == latest_.end()) {
    return nullptr;
  }
  return &records_[it->second];
}

std::vector<tuning_record> result_store::latest_records() const {
  std::vector<tuning_record> out;
  out.reserve(latest_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const auto it = latest_.find(records_[i].config_hash);
    if (it != latest_.end() && it->second == i) {
      out.push_back(records_[i]);
    }
  }
  return out;
}

std::optional<tuning_record> result_store::best() const {
  std::vector<tuning_record> top = top_k(1);
  if (top.empty()) {
    return std::nullopt;
  }
  return std::move(top.front());
}

std::vector<tuning_record> result_store::top_k(std::size_t k) const {
  std::vector<const tuning_record*> valid;
  valid.reserve(latest_.size());
  for (const auto& [hash, at] : latest_) {
    if (records_[at].valid) {
      valid.push_back(&records_[at]);
    }
  }
  const std::size_t count = std::min(k, valid.size());
  std::partial_sort(valid.begin(), valid.begin() + count, valid.end(),
                    [](const tuning_record* a, const tuning_record* b) {
                      if (a->scalar != b->scalar) {
                        return a->scalar < b->scalar;
                      }
                      // Stable tie-break so top_k is deterministic across
                      // unordered_map iteration orders.
                      return a->config_hash < b->config_hash;
                    });
  std::vector<tuning_record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(*valid[i]);
  }
  return out;
}

std::map<std::string, result_store::technique_stats>
result_store::per_technique() const {
  std::map<std::string, technique_stats> stats;
  for (const tuning_record& record : records_) {
    technique_stats& entry = stats[record.technique];
    ++entry.measured;
    if (!record.valid) {
      ++entry.failed;
    } else if (!entry.has_best || record.scalar < entry.best_scalar) {
      entry.best_scalar = record.scalar;
      entry.has_best = true;
    }
  }
  return stats;
}

std::vector<std::string> result_store::run_ids() const {
  std::vector<std::string> ids;
  for (const tuning_record& record : records_) {
    if (std::find(ids.begin(), ids.end(), record.run_id) == ids.end()) {
      ids.push_back(record.run_id);
    }
  }
  return ids;
}

}  // namespace atf::session
