#include "atf/session/result_store.hpp"

#include <algorithm>
#include <cmath>

namespace atf::session {

result_store result_store::from_report(const journal_read_report& report) {
  result_store store;
  store.records_.reserve(report.records.size());
  for (const tuning_record& record : report.records) {
    store.insert(record);
  }
  return store;
}

void result_store::insert(tuning_record record) {
  if (record.valid) {
    ++valid_;
  } else {
    ++invalid_;
  }
  latest_[record.config_hash] = records_.size();
  records_.push_back(std::move(record));
}

bool result_store::supersedes(const tuning_record& incoming,
                              const tuning_record& current) {
  if (incoming.valid != current.valid) {
    return incoming.valid;
  }
  if (incoming.timestamp_ms != current.timestamp_ms) {
    return incoming.timestamp_ms > current.timestamp_ms;
  }
  if (incoming.run_id != current.run_id) {
    return incoming.run_id > current.run_id;
  }
  if (incoming.sequence != current.sequence) {
    return incoming.sequence > current.sequence;
  }
  // Lower cost wins; NaN loses to any real scalar (plain `<` would make
  // neither record supersede the other, which breaks order-independence).
  const bool incoming_nan = std::isnan(incoming.scalar);
  const bool current_nan = std::isnan(current.scalar);
  if (incoming_nan != current_nan) {
    return current_nan;
  }
  if (!incoming_nan && incoming.scalar != current.scalar) {
    return incoming.scalar < current.scalar;
  }
  // Final arbiter: the serialized record bytes. Distinct records always
  // order strictly; byte-identical records never supersede (a no-op swap).
  return json::serialize(to_json(incoming)) >
         json::serialize(to_json(current));
}

result_store::merge_stats result_store::merge(
    const journal_read_report& report) {
  merge_stats stats;
  for (const tuning_record& record : report.records) {
    const tuning_record* current = find(record.config_hash);
    if (current == nullptr) {
      insert(record);
      ++stats.added;
    } else if (supersedes(record, *current)) {
      insert(record);
      ++stats.superseded;
    } else {
      ++stats.ignored;
    }
  }
  return stats;
}

const tuning_record* result_store::find(
    std::uint64_t config_hash) const noexcept {
  const auto it = latest_.find(config_hash);
  if (it == latest_.end()) {
    return nullptr;
  }
  return &records_[it->second];
}

std::vector<tuning_record> result_store::latest_records() const {
  std::vector<tuning_record> out;
  out.reserve(latest_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const auto it = latest_.find(records_[i].config_hash);
    if (it != latest_.end() && it->second == i) {
      out.push_back(records_[i]);
    }
  }
  return out;
}

std::optional<tuning_record> result_store::best() const {
  std::vector<tuning_record> top = top_k(1);
  if (top.empty()) {
    return std::nullopt;
  }
  return std::move(top.front());
}

std::vector<tuning_record> result_store::top_k(std::size_t k) const {
  std::vector<const tuning_record*> valid;
  valid.reserve(latest_.size());
  for (const auto& [hash, at] : latest_) {
    if (records_[at].valid) {
      valid.push_back(&records_[at]);
    }
  }
  const std::size_t count = std::min(k, valid.size());
  std::partial_sort(valid.begin(), valid.begin() + count, valid.end(),
                    [](const tuning_record* a, const tuning_record* b) {
                      if (a->scalar != b->scalar) {
                        return a->scalar < b->scalar;
                      }
                      // Stable tie-break so top_k is deterministic across
                      // unordered_map iteration orders.
                      return a->config_hash < b->config_hash;
                    });
  std::vector<tuning_record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(*valid[i]);
  }
  return out;
}

std::map<std::string, result_store::technique_stats>
result_store::per_technique() const {
  std::map<std::string, technique_stats> stats;
  for (const tuning_record& record : records_) {
    technique_stats& entry = stats[record.technique];
    ++entry.measured;
    if (!record.valid) {
      ++entry.failed;
    } else if (!entry.has_best || record.scalar < entry.best_scalar) {
      entry.best_scalar = record.scalar;
      entry.has_best = true;
    }
  }
  return stats;
}

std::vector<std::string> result_store::run_ids() const {
  std::vector<std::string> ids;
  for (const tuning_record& record : records_) {
    if (std::find(ids.begin(), ids.end(), record.run_id) == ids.end()) {
      ids.push_back(record.run_id);
    }
  }
  return ids;
}

}  // namespace atf::session
