#include "atf/session/session.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "atf/common/logging.hpp"

namespace atf::session {

namespace {

/// Next run number: one past the highest "run-N" id seen in the journal
/// (foreign id formats count as 0, so a merged or hand-edited journal still
/// yields a fresh, unique-enough id).
std::string next_run_id(const result_store& store) {
  std::uint64_t highest = 0;
  for (const std::string& id : store.run_ids()) {
    if (id.rfind("run-", 0) == 0) {
      const std::uint64_t n = std::strtoull(id.c_str() + 4, nullptr, 10);
      highest = std::max(highest, n);
    }
  }
  return "run-" + std::to_string(highest + 1);
}

}  // namespace

std::shared_ptr<tuning_session> tuning_session::open(const std::string& path,
                                                     const options& opts) {
  auto session = std::shared_ptr<tuning_session>(new tuning_session());
  session->path_ = path;
  session->report_ = read_journal(path);
  session->store_ = result_store::from_report(session->report_);
  session->run_id_ = next_run_id(session->store_);

  if (session->report_.version_mismatch) {
    session->degraded_reason_ =
        "journal format version " + std::to_string(session->report_.version) +
        " is newer than this build supports (" +
        std::to_string(journal_format_version) + ")";
  } else if (!opts.read_only) {
    try {
      session->writer_ = std::make_unique<journal_writer>(path, opts.fsync);
    } catch (const journal_error& error) {
      session->degraded_reason_ = error.what();
    }
  }

  if (!session->degraded_reason_.empty()) {
    common::log_warn("session: continuing without persistence — ",
                     session->degraded_reason_);
  }
  if (session->report_.corrupt_lines > 0 || session->report_.truncated_tail) {
    common::log_warn(
        "session: journal '", path, "' recovered with ",
        session->report_.corrupt_lines, " corrupt line(s)",
        session->report_.truncated_tail ? " and a truncated tail" : "",
        "; ", session->store_.size(), " configuration(s) survive");
  }
  return session;
}

void tuning_session::append(tuning_record record) {
  record.run_id = run_id_;
  record.sequence = ++appended_;
  record.timestamp_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  if (writer_ != nullptr) {
    try {
      writer_->append(record);
    } catch (const journal_error& error) {
      // Disk-full and friends mid-run: drop to in-memory mode, keep tuning.
      writer_.reset();
      degraded_reason_ = error.what();
      common::log_warn("session: journal append failed, continuing without "
                       "persistence — ",
                       degraded_reason_);
    }
  }
  store_.insert(std::move(record));
}

}  // namespace atf::session
