#include "atf/session/journal.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

// fsync and flock availability are *separate* capabilities: fsync guards
// the full_sync durability promise, flock guards against concurrent
// writers. Conflating them would silently degrade full_sync to flush on a
// flock-less build (a real bug this layout fixes), so each gets its own
// feature check.
#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define ATF_SESSION_HAVE_FSYNC 1
#if __has_include(<sys/file.h>)
#include <sys/file.h>
#define ATF_SESSION_HAVE_FLOCK 1
#endif
#endif

#include "atf/common/hash.hpp"

namespace atf::session {

namespace {

constexpr std::string_view crc_suffix_marker = ",\"crc\":\"";

json::value make_header() {
  json::value header{json::object{}};
  header.set("type", "header");
  header.set("magic", "atf-journal");
  header.set("version", std::uint64_t{journal_format_version});
  return header;
}

/// Splits `line` into the guarded payload (the original object with the crc
/// field removed, byte-exact) and the claimed CRC; false when the line does
/// not end in a crc field.
bool split_guard(std::string_view line, std::string& payload,
                 std::uint32_t& claimed) {
  // The crc field is always last: …,"crc":"xxxxxxxx"}
  if (line.size() < crc_suffix_marker.size() + 10 || line.back() != '}') {
    return false;
  }
  const std::size_t marker = line.rfind(crc_suffix_marker);
  if (marker == std::string_view::npos) {
    return false;
  }
  const std::string_view hex = line.substr(marker + crc_suffix_marker.size());
  if (hex.size() != 10 || hex[8] != '"' || hex[9] != '}') {
    return false;
  }
  std::uint32_t value = 0;
  for (int i = 0; i < 8; ++i) {
    const char c = hex[i];
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  claimed = value;
  payload.assign(line.substr(0, marker));
  payload += '}';
  return true;
}

/// Best-effort fsync of the directory holding `path`, so an atomic rename
/// inside it survives power loss. No-op where fsync is unavailable.
void sync_parent_directory(const std::string& path) {
#if ATF_SESSION_HAVE_FSYNC
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

bool fsync_supported() noexcept {
#if ATF_SESSION_HAVE_FSYNC
  return true;
#else
  return false;
#endif
}

bool flock_supported() noexcept {
#if ATF_SESSION_HAVE_FLOCK
  return true;
#else
  return false;
#endif
}

std::string guard_line(const json::value& object) {
  std::string payload = json::serialize(object);
  const std::uint32_t crc = common::crc32(payload);
  char guard[16];
  std::snprintf(guard, sizeof(guard), "%08x", crc);
  // Splice `,"crc":"…"` in front of the payload's closing brace.
  payload.pop_back();
  payload += crc_suffix_marker;
  payload += guard;
  payload += "\"}";
  return payload;
}

journal_writer::journal_writer(const std::string& path, fsync_policy policy)
    : path_(path), policy_(policy) {
  // "a+" creates the file when missing and forces appends regardless of any
  // racing writer's offset.
  FILE* file = std::fopen(path.c_str(), "a+");
  if (file == nullptr) {
    throw journal_error("journal: cannot open '" + path +
                        "' for appending: " + std::strerror(errno));
  }
#if ATF_SESSION_HAVE_FLOCK
  if (flock(fileno(file), LOCK_EX | LOCK_NB) != 0) {
    const int lock_errno = errno;
    std::fclose(file);
    if (lock_errno == EWOULDBLOCK || lock_errno == EAGAIN) {
      throw journal_locked_error("journal: '" + path +
                                 "' is locked by another writer");
    }
    throw journal_error("journal: cannot lock '" + path +
                        "': " + std::strerror(lock_errno));
  }
#endif
  file_ = file;
  // A crash mid-compaction may leave a stale temp file behind; its rename
  // never happened, so it is dead weight — discard it.
  std::remove((path + ".ctmp").c_str());

  // Existing content: honour a newer-version header instead of appending
  // records a future reader would misinterpret among its own.
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  if (size > 0) {
    std::fseek(file, 0, SEEK_SET);
    std::string first_line;
    int c;
    while ((c = std::fgetc(file)) != EOF && c != '\n') {
      first_line += static_cast<char>(c);
    }
    std::fseek(file, 0, SEEK_END);
    std::string payload;
    std::uint32_t claimed = 0;
    if (split_guard(first_line, payload, claimed) &&
        common::crc32(payload) == claimed) {
      try {
        const json::value header = json::parse(payload);
        const json::value* type = header.find("type");
        const json::value* version = header.find("version");
        if (type != nullptr && type->is_string() &&
            type->as_string() == "header" && version != nullptr &&
            version->is_number() &&
            version->as_uint64() > journal_format_version) {
          std::fclose(file);
          file_ = nullptr;
          throw journal_version_error(
              "journal: '" + path + "' uses format version " +
              std::to_string(version->as_uint64()) +
              ", newer than this build's version " +
              std::to_string(journal_format_version));
        }
      } catch (const json::parse_error&) {
        // Unreadable header: records are still CRC-guarded individually,
        // so appending stays safe; the reader flags the header separately.
      }
    }
  } else {
    write_line(guard_line(make_header()));
  }
}

journal_writer::~journal_writer() {
  if (file_ != nullptr) {
    FILE* file = static_cast<FILE*>(file_);
    std::fflush(file);
    std::fclose(file);  // releases the flock
  }
}

void journal_writer::append(const tuning_record& record) {
  write_line(guard_line(to_json(record)));
}

void journal_writer::write_line(const std::string& guarded_line) {
  FILE* file = static_cast<FILE*>(file_);
  if (std::fwrite(guarded_line.data(), 1, guarded_line.size(), file) !=
          guarded_line.size() ||
      std::fputc('\n', file) == EOF) {
    throw journal_error("journal: write to '" + path_ +
                        "' failed: " + std::strerror(errno));
  }
  if (policy_ != fsync_policy::none) {
    flush();
  }
}

void journal_writer::flush() {
  FILE* file = static_cast<FILE*>(file_);
  if (std::fflush(file) != 0) {
    throw journal_error("journal: flush of '" + path_ +
                        "' failed: " + std::strerror(errno));
  }
#if ATF_SESSION_HAVE_FSYNC
  if (policy_ == fsync_policy::full_sync) {
    ::fsync(fileno(file));
  }
#endif
}

compact_stats journal_writer::compact(const compact_hooks& hooks) {
  FILE* old_file = static_cast<FILE*>(file_);
  if (std::fflush(old_file) != 0) {
    throw journal_error("journal: flush of '" + path_ +
                        "' before compaction failed: " + std::strerror(errno));
  }

  // Re-read our own file tolerantly; corrupt lines and the torn tail of a
  // previous crash are dropped by compaction along with superseded records.
  const journal_read_report report = read_journal(path_);

  // Latest record per configuration hash, emitted in the journal order of
  // each configuration's latest appearance (the result_store index view).
  std::vector<std::size_t> keep;
  {
    std::unordered_map<std::uint64_t, std::size_t> latest;
    for (std::size_t i = 0; i < report.records.size(); ++i) {
      latest[report.records[i].config_hash] = i;
    }
    for (std::size_t i = 0; i < report.records.size(); ++i) {
      if (latest[report.records[i].config_hash] == i) {
        keep.push_back(i);
      }
    }
  }

  compact_stats stats;
  stats.records_before = report.records.size();
  std::fseek(old_file, 0, SEEK_END);
  stats.bytes_before = static_cast<std::size_t>(std::ftell(old_file));

  const std::string temp = path_ + ".ctmp";
  std::remove(temp.c_str());
  FILE* out = std::fopen(temp.c_str(), "w");
  if (out == nullptr) {
    throw journal_error("journal: cannot open compaction temp '" + temp +
                        "': " + std::strerror(errno));
  }
  const auto fail = [&](const char* what) -> journal_error {
    const int saved_errno = errno;
    std::fclose(out);
    std::remove(temp.c_str());
    return journal_error("journal: compaction " + std::string(what) + " '" +
                         temp + "' failed: " + std::strerror(saved_errno));
  };
#if ATF_SESSION_HAVE_FLOCK
  // Lock the temp file *before* it becomes visible at path_: a concurrent
  // opener racing the rename sees either the old inode (whose lock we
  // still hold via old_file) or the new one (already locked here).
  if (flock(fileno(out), LOCK_EX | LOCK_NB) != 0) {
    throw fail("lock of");
  }
#endif

  const auto write_to = [&](const std::string& guarded_line) {
    if (std::fwrite(guarded_line.data(), 1, guarded_line.size(), out) !=
            guarded_line.size() ||
        std::fputc('\n', out) == EOF) {
      throw fail("write to");
    }
  };
  write_to(guard_line(make_header()));
  std::size_t written = 0;
  for (const std::size_t at : keep) {
    write_to(guard_line(to_json(report.records[at])));
    ++written;
    if (hooks.after_record) {
      hooks.after_record(written);
    }
  }
  if (std::fflush(out) != 0) {
    throw fail("flush of");
  }
#if ATF_SESSION_HAVE_FSYNC
  ::fsync(fileno(out));
#endif
  stats.records_after = written;
  stats.bytes_after = static_cast<std::size_t>(std::ftell(out));

  if (hooks.before_rename) {
    hooks.before_rename();
  }
  if (std::rename(temp.c_str(), path_.c_str()) != 0) {
    throw fail("rename of");
  }
  sync_parent_directory(path_);
  // The old fd now refers to the unlinked pre-compaction inode; the temp fd
  // becomes the live journal and future appends continue at its tail.
  std::fclose(old_file);
  file_ = out;
  return stats;
}

journal_read_report read_journal(const std::string& path) {
  journal_read_report report;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return report;  // missing journal: a fresh session
  }

  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    // getline strips '\n'; a final line without one is the torn-tail case —
    // detectable because eof fires with a non-empty buffer.
    const bool has_newline = !in.eof();
    ++report.total_lines;
    if (line.empty()) {
      continue;
    }

    std::string payload;
    std::uint32_t claimed = 0;
    const bool guarded = split_guard(line, payload, claimed) &&
                         common::crc32(payload) == claimed;
    if (!guarded) {
      if (!has_newline) {
        report.truncated_tail = true;  // torn mid-append, expected after a kill
      } else {
        ++report.corrupt_lines;
      }
      continue;
    }

    json::value parsed;
    try {
      parsed = json::parse(payload);
    } catch (const json::parse_error&) {
      ++report.corrupt_lines;
      continue;
    }

    const json::value* type = parsed.find("type");
    if (first && type != nullptr && type->is_string() &&
        type->as_string() == "header") {
      first = false;
      const json::value* version = parsed.find("version");
      if (version != nullptr && version->is_number()) {
        report.version = static_cast<std::uint32_t>(version->as_uint64());
        report.header_ok = true;
        if (report.version > journal_format_version) {
          // A newer format may have changed record semantics; refuse to
          // guess and let the caller degrade gracefully.
          report.version_mismatch = true;
          return report;
        }
      }
      continue;
    }
    first = false;

    std::optional<tuning_record> record = record_from_json(parsed);
    if (!record.has_value()) {
      ++report.corrupt_lines;
      continue;
    }
    report.records.push_back(std::move(*record));
  }
  return report;
}

}  // namespace atf::session
