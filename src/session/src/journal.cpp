#include "atf/session/journal.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/file.h>
#include <unistd.h>
#define ATF_SESSION_HAVE_FLOCK 1
#endif

#include "atf/common/hash.hpp"

namespace atf::session {

namespace {

constexpr std::string_view crc_suffix_marker = ",\"crc\":\"";

json::value make_header() {
  json::value header{json::object{}};
  header.set("type", "header");
  header.set("magic", "atf-journal");
  header.set("version", std::uint64_t{journal_format_version});
  return header;
}

/// Splits `line` into the guarded payload (the original object with the crc
/// field removed, byte-exact) and the claimed CRC; false when the line does
/// not end in a crc field.
bool split_guard(std::string_view line, std::string& payload,
                 std::uint32_t& claimed) {
  // The crc field is always last: …,"crc":"xxxxxxxx"}
  if (line.size() < crc_suffix_marker.size() + 10 || line.back() != '}') {
    return false;
  }
  const std::size_t marker = line.rfind(crc_suffix_marker);
  if (marker == std::string_view::npos) {
    return false;
  }
  const std::string_view hex = line.substr(marker + crc_suffix_marker.size());
  if (hex.size() != 10 || hex[8] != '"' || hex[9] != '}') {
    return false;
  }
  std::uint32_t value = 0;
  for (int i = 0; i < 8; ++i) {
    const char c = hex[i];
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  claimed = value;
  payload.assign(line.substr(0, marker));
  payload += '}';
  return true;
}

}  // namespace

std::string guard_line(const json::value& object) {
  std::string payload = json::serialize(object);
  const std::uint32_t crc = common::crc32(payload);
  char guard[16];
  std::snprintf(guard, sizeof(guard), "%08x", crc);
  // Splice `,"crc":"…"` in front of the payload's closing brace.
  payload.pop_back();
  payload += crc_suffix_marker;
  payload += guard;
  payload += "\"}";
  return payload;
}

journal_writer::journal_writer(const std::string& path, fsync_policy policy)
    : path_(path), policy_(policy) {
  // "a+" creates the file when missing and forces appends regardless of any
  // racing writer's offset.
  FILE* file = std::fopen(path.c_str(), "a+");
  if (file == nullptr) {
    throw journal_error("journal: cannot open '" + path +
                        "' for appending: " + std::strerror(errno));
  }
#if ATF_SESSION_HAVE_FLOCK
  if (flock(fileno(file), LOCK_EX | LOCK_NB) != 0) {
    const int lock_errno = errno;
    std::fclose(file);
    if (lock_errno == EWOULDBLOCK || lock_errno == EAGAIN) {
      throw journal_locked_error("journal: '" + path +
                                 "' is locked by another writer");
    }
    throw journal_error("journal: cannot lock '" + path +
                        "': " + std::strerror(lock_errno));
  }
#endif
  file_ = file;

  // Existing content: honour a newer-version header instead of appending
  // records a future reader would misinterpret among its own.
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  if (size > 0) {
    std::fseek(file, 0, SEEK_SET);
    std::string first_line;
    int c;
    while ((c = std::fgetc(file)) != EOF && c != '\n') {
      first_line += static_cast<char>(c);
    }
    std::fseek(file, 0, SEEK_END);
    std::string payload;
    std::uint32_t claimed = 0;
    if (split_guard(first_line, payload, claimed) &&
        common::crc32(payload) == claimed) {
      try {
        const json::value header = json::parse(payload);
        const json::value* type = header.find("type");
        const json::value* version = header.find("version");
        if (type != nullptr && type->is_string() &&
            type->as_string() == "header" && version != nullptr &&
            version->is_number() &&
            version->as_uint64() > journal_format_version) {
          std::fclose(file);
          file_ = nullptr;
          throw journal_version_error(
              "journal: '" + path + "' uses format version " +
              std::to_string(version->as_uint64()) +
              ", newer than this build's version " +
              std::to_string(journal_format_version));
        }
      } catch (const json::parse_error&) {
        // Unreadable header: records are still CRC-guarded individually,
        // so appending stays safe; the reader flags the header separately.
      }
    }
  } else {
    write_line(guard_line(make_header()));
  }
}

journal_writer::~journal_writer() {
  if (file_ != nullptr) {
    FILE* file = static_cast<FILE*>(file_);
    std::fflush(file);
    std::fclose(file);  // releases the flock
  }
}

void journal_writer::append(const tuning_record& record) {
  write_line(guard_line(to_json(record)));
}

void journal_writer::write_line(const std::string& guarded_line) {
  FILE* file = static_cast<FILE*>(file_);
  if (std::fwrite(guarded_line.data(), 1, guarded_line.size(), file) !=
          guarded_line.size() ||
      std::fputc('\n', file) == EOF) {
    throw journal_error("journal: write to '" + path_ +
                        "' failed: " + std::strerror(errno));
  }
  if (policy_ != fsync_policy::none) {
    flush();
  }
}

void journal_writer::flush() {
  FILE* file = static_cast<FILE*>(file_);
  if (std::fflush(file) != 0) {
    throw journal_error("journal: flush of '" + path_ +
                        "' failed: " + std::strerror(errno));
  }
#if ATF_SESSION_HAVE_FLOCK
  if (policy_ == fsync_policy::full_sync) {
    ::fsync(fileno(file));
  }
#endif
}

journal_read_report read_journal(const std::string& path) {
  journal_read_report report;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return report;  // missing journal: a fresh session
  }

  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    // getline strips '\n'; a final line without one is the torn-tail case —
    // detectable because eof fires with a non-empty buffer.
    const bool has_newline = !in.eof();
    ++report.total_lines;
    if (line.empty()) {
      continue;
    }

    std::string payload;
    std::uint32_t claimed = 0;
    const bool guarded = split_guard(line, payload, claimed) &&
                         common::crc32(payload) == claimed;
    if (!guarded) {
      if (!has_newline) {
        report.truncated_tail = true;  // torn mid-append, expected after a kill
      } else {
        ++report.corrupt_lines;
      }
      continue;
    }

    json::value parsed;
    try {
      parsed = json::parse(payload);
    } catch (const json::parse_error&) {
      ++report.corrupt_lines;
      continue;
    }

    const json::value* type = parsed.find("type");
    if (first && type != nullptr && type->is_string() &&
        type->as_string() == "header") {
      first = false;
      const json::value* version = parsed.find("version");
      if (version != nullptr && version->is_number()) {
        report.version = static_cast<std::uint32_t>(version->as_uint64());
        report.header_ok = true;
        if (report.version > journal_format_version) {
          // A newer format may have changed record semantics; refuse to
          // guess and let the caller degrade gracefully.
          report.version_mismatch = true;
          return report;
        }
      }
      continue;
    }
    first = false;

    std::optional<tuning_record> record = record_from_json(parsed);
    if (!record.has_value()) {
      ++report.corrupt_lines;
      continue;
    }
    report.records.push_back(std::move(*record));
  }
  return report;
}

}  // namespace atf::session
