// Round-trip codec between cost values and journal JSON. The journal must
// store the *full* cost — not just its scalarization — so a resumed run can
// replay a record into the engine's typed cache and best-tracker: cost_pair
// keeps its tie-breaking secondary objective, and the technique receives a
// bit-identical scalar (cost_traits::scalar over the decoded value), which
// is what keeps a fixed-seed resumed proposal stream on the baseline path.
//
// Specialize atf::session::cost_codec for user-defined cost types to make
// them session-persistable; encode must be the exact inverse of decode.
// Cost types without a codec can still be tuned — the engine detects the
// absence at compile time and runs the session in non-persistent mode with
// a warning instead of failing the build or the run.
#pragma once

#include <optional>
#include <type_traits>
#include <utility>

#include "atf/cost.hpp"
#include "atf/session/json.hpp"

namespace atf::session {

template <typename CostT, typename Enable = void>
struct cost_codec;  // undefined primary: detected via has_cost_codec

template <typename CostT>
struct cost_codec<CostT, std::enable_if_t<std::is_arithmetic_v<CostT>>> {
  static json::value encode(const CostT& cost) {
    if constexpr (std::is_same_v<CostT, bool>) {
      return json::value(bool{cost});
    } else if constexpr (std::is_floating_point_v<CostT>) {
      return json::value(static_cast<double>(cost));
    } else if constexpr (std::is_signed_v<CostT>) {
      return json::value(static_cast<std::int64_t>(cost));
    } else {
      return json::value(static_cast<std::uint64_t>(cost));
    }
  }

  static std::optional<CostT> decode(const json::value& v) {
    if constexpr (std::is_same_v<CostT, bool>) {
      if (v.is_bool()) {
        return v.as_bool();
      }
      return std::nullopt;
    } else {
      if (!v.is_number()) {
        return std::nullopt;
      }
      if constexpr (std::is_floating_point_v<CostT>) {
        return static_cast<CostT>(v.as_double());
      } else if constexpr (std::is_signed_v<CostT>) {
        return static_cast<CostT>(v.as_int64());
      } else {
        return static_cast<CostT>(v.as_uint64());
      }
    }
  }
};

template <>
struct cost_codec<cost_pair> {
  static json::value encode(const cost_pair& cost) {
    return json::value(json::array{json::value(cost.primary),
                                   json::value(cost.secondary)});
  }

  static std::optional<cost_pair> decode(const json::value& v) {
    if (!v.is_array() || v.as_array().size() != 2 ||
        !v.as_array()[0].is_number() || !v.as_array()[1].is_number()) {
      return std::nullopt;
    }
    return cost_pair{v.as_array()[0].as_double(), v.as_array()[1].as_double()};
  }
};

template <typename A, typename B>
struct cost_codec<std::pair<A, B>,
                  std::enable_if_t<std::is_arithmetic_v<A> &&
                                   std::is_arithmetic_v<B>>> {
  static json::value encode(const std::pair<A, B>& cost) {
    return json::value(json::array{cost_codec<A>::encode(cost.first),
                                   cost_codec<B>::encode(cost.second)});
  }

  static std::optional<std::pair<A, B>> decode(const json::value& v) {
    if (!v.is_array() || v.as_array().size() != 2) {
      return std::nullopt;
    }
    const std::optional<A> a = cost_codec<A>::decode(v.as_array()[0]);
    const std::optional<B> b = cost_codec<B>::decode(v.as_array()[1]);
    if (!a.has_value() || !b.has_value()) {
      return std::nullopt;
    }
    return std::pair<A, B>{*a, *b};
  }
};

/// True when CostT can round-trip through the journal.
template <typename CostT>
concept has_cost_codec = requires(const CostT& cost, const json::value& v) {
  { cost_codec<CostT>::encode(cost) } -> std::convertible_to<json::value>;
  { cost_codec<CostT>::decode(v) } -> std::convertible_to<std::optional<CostT>>;
};

}  // namespace atf::session
