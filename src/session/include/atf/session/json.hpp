// A minimal, dependency-free JSON value with a strict writer and a tolerant
// reader — just enough for the session journal's line format. Deliberately
// small rather than general:
//
//   * objects preserve insertion order (vector of pairs), because the
//     journal's CRC guard is computed over the serialized byte string and
//     canonical field order is what makes that reproducible;
//   * integers keep their signedness (int64 vs uint64 alternatives) so
//     tuning-parameter values round-trip exactly, including u64 values
//     above 2^53 that a double-only JSON library would corrupt;
//   * doubles serialize with 17 significant digits and parse back
//     bit-identically — warm-start resume feeds replayed costs to the
//     search technique, so any rounding would fork the proposal stream;
//   * the reader additionally accepts Infinity/-Infinity/NaN tokens (we
//     write penalty costs as explicit fields instead, but a journal edited
//     or produced by other tooling should not abort a resume).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace atf::session::json {

class value;

using array = std::vector<value>;
/// Insertion-ordered object representation; lookups are linear, which is
/// fine for journal records (tens of fields).
using object = std::vector<std::pair<std::string, value>>;

struct null_t {
  friend bool operator==(null_t, null_t) noexcept { return true; }
};

class value {
public:
  using storage = std::variant<null_t, bool, std::int64_t, std::uint64_t,
                               double, std::string, array, object>;

  value() : storage_(null_t{}) {}
  value(std::nullptr_t) : storage_(null_t{}) {}  // NOLINT(google-explicit-constructor)
  value(bool b) : storage_(b) {}                 // NOLINT(google-explicit-constructor)
  value(std::int64_t i) : storage_(i) {}         // NOLINT(google-explicit-constructor)
  value(std::uint64_t u) : storage_(u) {}        // NOLINT(google-explicit-constructor)
  value(int i) : storage_(std::int64_t{i}) {}    // NOLINT(google-explicit-constructor)
  value(double d) : storage_(d) {}               // NOLINT(google-explicit-constructor)
  value(std::string s) : storage_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  value(const char* s) : storage_(std::string(s)) {}  // NOLINT(google-explicit-constructor)
  value(array a) : storage_(std::move(a)) {}     // NOLINT(google-explicit-constructor)
  value(object o) : storage_(std::move(o)) {}    // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_null() const noexcept {
    return std::holds_alternative<null_t>(storage_);
  }
  [[nodiscard]] bool is_bool() const noexcept {
    return std::holds_alternative<bool>(storage_);
  }
  [[nodiscard]] bool is_string() const noexcept {
    return std::holds_alternative<std::string>(storage_);
  }
  [[nodiscard]] bool is_array() const noexcept {
    return std::holds_alternative<array>(storage_);
  }
  [[nodiscard]] bool is_object() const noexcept {
    return std::holds_alternative<object>(storage_);
  }
  [[nodiscard]] bool is_number() const noexcept {
    return std::holds_alternative<std::int64_t>(storage_) ||
           std::holds_alternative<std::uint64_t>(storage_) ||
           std::holds_alternative<double>(storage_);
  }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(storage_); }
  [[nodiscard]] const std::string& as_string() const {
    return std::get<std::string>(storage_);
  }
  [[nodiscard]] const array& as_array() const {
    return std::get<array>(storage_);
  }
  [[nodiscard]] const object& as_object() const {
    return std::get<object>(storage_);
  }

  /// Numeric views with the usual widening; throw std::bad_variant_access
  /// on non-numbers (callers treat that as a corrupt record).
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] std::uint64_t as_uint64() const;

  [[nodiscard]] const storage& raw() const noexcept { return storage_; }

  /// Object field lookup; nullptr when absent or when this is not an object.
  [[nodiscard]] const value* find(std::string_view key) const noexcept;

  /// Appends a field (objects only; no duplicate check — the writer owns
  /// canonical field order).
  void set(std::string key, value v);

  friend bool operator==(const value& a, const value& b) {
    return a.storage_ == b.storage_;
  }

private:
  storage storage_;
};

/// Serializes compactly (no whitespace). Non-finite doubles emit as
/// Infinity/-Infinity/NaN tokens, which parse() accepts back.
[[nodiscard]] std::string serialize(const value& v);
void serialize_to(const value& v, std::string& out);

class parse_error : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Parses one complete JSON document; trailing garbage is an error (a
/// journal line must be exactly one object). Throws parse_error.
[[nodiscard]] value parse(std::string_view text);

}  // namespace atf::session::json
