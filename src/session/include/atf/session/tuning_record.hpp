// One measured (configuration, cost) observation, the unit of persistence.
//
// A record carries everything a later run needs to reuse the measurement
// without re-running the cost function: the configuration's values by
// parameter name (type-tagged so tp_value round-trips exactly), its stable
// content hash (the store's index key), validity, the scalarized cost plus
// the full encoded cost value (so multi-objective costs such as cost_pair
// survive the round trip), and provenance — which run measured it, with
// which search technique, when, and at which per-run sequence number.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "atf/configuration.hpp"
#include "atf/session/json.hpp"
#include "atf/value.hpp"

namespace atf::session {

struct tuning_record {
  /// configuration::hash() of `values` — the cross-run identity.
  std::uint64_t config_hash = 0;

  /// (name, value) pairs in the configuration's declaration order.
  std::vector<std::pair<std::string, tp_value>> values;

  /// Flat index within the search space of the measuring run, if known.
  /// Informational only — a resumed run matches by hash, never by index,
  /// because the space layout may legitimately differ across versions.
  std::optional<std::uint64_t> space_index;

  bool valid = true;            ///< false: the cost function failed
  double scalar = 0.0;          ///< scalarized cost (meaningful when valid)
  json::value cost;             ///< full encoded cost; null when invalid
  std::string failure;          ///< failure message for invalid records

  std::string technique;        ///< proposing search technique, if known
  std::string run_id;           ///< which run measured this record
  std::uint64_t sequence = 0;   ///< per-run evaluation number (1-based)
  std::int64_t timestamp_ms = 0;  ///< unix epoch milliseconds

  /// Rebuilds an atf::configuration from the stored values (without a
  /// space index — the record's index belongs to a possibly different
  /// space layout).
  [[nodiscard]] configuration to_configuration() const;

  /// Builds a record skeleton from a configuration: values, hash, index.
  [[nodiscard]] static tuning_record from_configuration(
      const configuration& config);
};

/// Serializes a record to its journal JSON object (without the CRC field —
/// the journal writer owns the integrity guard).
[[nodiscard]] json::value to_json(const tuning_record& record);

/// Decodes a journal JSON object; std::nullopt when the object is not a
/// well-formed record (missing fields, malformed value tags) — the reader
/// treats that as a corrupt line and skips it.
[[nodiscard]] std::optional<tuning_record> record_from_json(
    const json::value& v);

}  // namespace atf::session
