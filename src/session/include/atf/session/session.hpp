// The session handle: one journal file, loaded once, appended for the rest
// of the run. `tuning_session::open` never throws for the degradations the
// robustness contract covers — a locked journal (another tuner is writing),
// a newer-format journal, or an unwritable path all yield a *degraded*
// session: the store still warm-starts the run when readable, appends
// become in-memory only, and `degraded_reason()` says why. Crashing a
// tuning run over its telemetry would invert the subsystem's whole point.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "atf/session/journal.hpp"
#include "atf/session/result_store.hpp"
#include "atf/session/tuning_record.hpp"

namespace atf::session {

struct options {
  fsync_policy fsync = fsync_policy::flush;
  /// Load the store but never append — for inspection tooling and for
  /// processes that only want the warm start.
  bool read_only = false;
};

class tuning_session {
public:
  /// Opens (or creates) the journal at `path`: reads every surviving
  /// record into the result store, assigns this run the next run id
  /// ("run-N"), and takes the append lock unless read_only. Throws only
  /// journal_error on hard I/O faults while *reading*; append-side
  /// problems degrade instead (see class comment).
  static std::shared_ptr<tuning_session> open(const std::string& path,
                                              const options& opts = {});

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const result_store& store() const noexcept { return store_; }
  [[nodiscard]] const journal_read_report& load_report() const noexcept {
    return report_;
  }

  /// "run-N": N-1 runs wrote to this journal before.
  [[nodiscard]] const std::string& run_id() const noexcept { return run_id_; }

  /// False when appends cannot reach the journal (degraded mode).
  [[nodiscard]] bool persistent() const noexcept { return writer_ != nullptr; }
  [[nodiscard]] const std::string& degraded_reason() const noexcept {
    return degraded_reason_;
  }

  /// Stamps run id / sequence / timestamp onto the record, appends it to
  /// the journal (when persistent) and folds it into the in-memory store.
  void append(tuning_record record);

  /// Records appended through this session (this run).
  [[nodiscard]] std::uint64_t appended() const noexcept { return appended_; }

private:
  tuning_session() = default;

  std::string path_;
  std::string run_id_;
  result_store store_;
  journal_read_report report_;
  std::unique_ptr<journal_writer> writer_;
  std::string degraded_reason_;
  std::uint64_t appended_ = 0;
};

}  // namespace atf::session
