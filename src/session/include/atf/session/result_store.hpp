// An in-memory index over journal records: every record ever read or
// appended, in journal order, plus an O(1) configuration-hash index to the
// *latest* record per configuration — the lookup the evaluation engine hits
// once per proposal on a warm-started run. Query helpers (best, top-k,
// counts, per-technique and per-run stats) serve reporting and the
// resumable-tuning example.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "atf/session/journal.hpp"
#include "atf/session/tuning_record.hpp"

namespace atf::session {

class result_store {
public:
  result_store() = default;

  /// Builds a store from a journal read report (replay order preserved).
  static result_store from_report(const journal_read_report& report);

  /// Appends a record; a repeated configuration hash keeps both records but
  /// re-points the index at the newer one (a later measurement supersedes —
  /// the journal itself stays append-only).
  void insert(tuning_record record);

  /// Latest record for a configuration hash; nullptr when never measured.
  [[nodiscard]] const tuning_record* find(
      std::uint64_t config_hash) const noexcept;

  struct merge_stats {
    std::size_t added = 0;       ///< configurations this store had never seen
    std::size_t superseded = 0;  ///< incoming record replaced the indexed one
    std::size_t ignored = 0;     ///< indexed record won the tie-break
  };

  /// Folds another journal's records into this store — the multi-writer
  /// exchange primitive: a fleet of daemons ships journals around and each
  /// merges what it receives. Per configuration hash the winner is decided
  /// by supersedes(), a *total order on record content*, so the merged
  /// index is identical no matter in which order (or grouping) the same
  /// set of journals is merged. Losing records are not inserted.
  merge_stats merge(const journal_read_report& report);

  /// True when `incoming` should replace `current` under the merge order:
  /// valid beats invalid, then newer timestamp, then (run_id, sequence),
  /// then lower scalar (NaN loses), with the serialized record bytes as the
  /// final arbiter — any two *distinct* records are strictly ordered.
  [[nodiscard]] static bool supersedes(const tuning_record& incoming,
                                       const tuning_record& current);

  [[nodiscard]] bool contains(std::uint64_t config_hash) const noexcept {
    return find(config_hash) != nullptr;
  }

  /// Distinct measured configurations.
  [[nodiscard]] std::size_t size() const noexcept { return latest_.size(); }
  [[nodiscard]] bool empty() const noexcept { return latest_.empty(); }

  /// All records in journal order, including superseded duplicates.
  [[nodiscard]] const std::vector<tuning_record>& records() const noexcept {
    return records_;
  }

  /// The latest record of every distinct configuration, in journal order of
  /// each configuration's *latest* measurement — the training-set view:
  /// superseded duplicates are dropped, order stays deterministic.
  [[nodiscard]] std::vector<tuning_record> latest_records() const;

  [[nodiscard]] std::uint64_t valid_count() const noexcept { return valid_; }
  [[nodiscard]] std::uint64_t invalid_count() const noexcept {
    return invalid_;
  }

  /// Lowest-scalar valid record (latest per configuration); empty when no
  /// valid measurement exists.
  [[nodiscard]] std::optional<tuning_record> best() const;

  /// The k lowest-scalar valid records (latest per configuration),
  /// ascending by scalar; fewer when the store is smaller.
  [[nodiscard]] std::vector<tuning_record> top_k(std::size_t k) const;

  struct technique_stats {
    std::uint64_t measured = 0;
    std::uint64_t failed = 0;
    double best_scalar = 0.0;  ///< meaningful when measured > failed
    bool has_best = false;
  };

  /// Per-technique measurement statistics over all records (records with no
  /// technique tag group under "").
  [[nodiscard]] std::map<std::string, technique_stats> per_technique() const;

  /// Distinct run ids in first-seen order.
  [[nodiscard]] std::vector<std::string> run_ids() const;

private:
  std::vector<tuning_record> records_;
  std::unordered_map<std::uint64_t, std::size_t> latest_;  ///< hash -> records_ index
  std::uint64_t valid_ = 0;
  std::uint64_t invalid_ = 0;
};

}  // namespace atf::session
