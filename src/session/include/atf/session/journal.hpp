// The append-only tuning journal: one JSONL file per session.
//
// Format (DESIGN.md §9):
//   line 1    {"type":"header","magic":"atf-journal","version":1,"crc":"…"}
//   line 2..  {"type":"record", … ,"crc":"c4f9aa12"}
//
// Every line carries a CRC-32 guard over its own bytes: the writer
// serializes the object without the crc field, computes the CRC over that
// byte string, and splices `,"crc":"%08x"` in front of the closing brace.
// The reader verifies at the byte level (reconstructing the guarded prefix
// from the raw line), so verification never depends on re-serialization.
//
// Robustness contract — a journal must never abort a tuning run:
//   * a missing or empty file reads as zero records;
//   * a torn tail (the writer was SIGKILLed mid-append) is dropped and
//     flagged, earlier records survive;
//   * a CRC-mismatched or unparsable line mid-file is skipped and counted;
//   * a header from a *newer* format version yields zero records plus a
//     version_mismatch flag — the caller degrades to non-persistent mode
//     rather than misinterpreting an unknown format;
//   * concurrent appends are rejected up front: the writer takes an
//     exclusive advisory lock (flock) on the journal fd and throws
//     journal_locked_error when another process (or another writer in this
//     process) already holds it.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "atf/session/tuning_record.hpp"

namespace atf::session {

class journal_error : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Another writer holds the journal's append lock.
class journal_locked_error : public journal_error {
public:
  using journal_error::journal_error;
};

/// The journal was written by a newer format version than this build
/// understands; appending to it could corrupt it.
class journal_version_error : public journal_error {
public:
  using journal_error::journal_error;
};

/// Durability of each appended record. `flush` pushes the line into the
/// kernel per append (survives SIGKILL of the writer — the kill-and-resume
/// guarantee); `full_sync` additionally fsyncs (survives power loss);
/// `none` leaves records in the stdio buffer until flush()/close (fastest,
/// loses the tail on a crash).
enum class fsync_policy { none, flush, full_sync };

/// Whether this build can honour `full_sync` (an fsync syscall exists).
/// Deliberately independent of the flock-based append lock: a platform may
/// support one without the other, and `full_sync` must never silently
/// degrade to `flush` just because advisory locking is unavailable.
[[nodiscard]] bool fsync_supported() noexcept;

/// Whether this build rejects concurrent writers via flock.
[[nodiscard]] bool flock_supported() noexcept;

inline constexpr std::uint32_t journal_format_version = 1;

/// The outcome of journal_writer::compact().
struct compact_stats {
  std::size_t records_before = 0;  ///< records in the journal pre-compaction
  std::size_t records_after = 0;   ///< surviving latest-per-configuration records
  std::size_t bytes_before = 0;
  std::size_t bytes_after = 0;
};

/// Test-only fault-injection points for the compaction crash-safety suite.
struct compact_hooks {
  /// Called after each record line reaches the temp file (1-based count).
  std::function<void(std::size_t)> after_record;
  /// Called after the temp file is fsynced, immediately before the rename.
  std::function<void()> before_rename;
};

class journal_writer {
public:
  /// Opens `path` for appending (creating it, with a header line, when new
  /// or empty) and takes the exclusive append lock. Throws
  /// journal_locked_error when the lock is held elsewhere,
  /// journal_version_error when the existing header announces a newer
  /// format, journal_error on I/O failure.
  explicit journal_writer(const std::string& path,
                          fsync_policy policy = fsync_policy::flush);
  ~journal_writer();

  journal_writer(const journal_writer&) = delete;
  journal_writer& operator=(const journal_writer&) = delete;

  /// Appends one CRC-guarded record line and applies the fsync policy.
  void append(const tuning_record& record);

  /// Flushes stdio buffers into the kernel (and fsyncs under full_sync).
  void flush();

  /// Rewrites the journal keeping only the *latest* record per
  /// configuration hash (the record result_store would index), dropping
  /// superseded duplicates and corrupt lines. Crash-safe: the survivors are
  /// written to a sibling temp file (fsynced where supported) which then
  /// atomically renames over the journal — a crash at any point leaves
  /// either the old or the new journal fully readable, never a torn mix.
  /// The writer keeps its append lock across the swap (the temp file is
  /// locked *before* it becomes visible) and continues appending to the
  /// compacted journal afterwards. `hooks` is fault injection for tests.
  compact_stats compact(const compact_hooks& hooks = {});

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
  void write_line(const std::string& guarded_line);

  std::string path_;
  fsync_policy policy_;
  void* file_ = nullptr;  ///< FILE*, type-erased to keep <cstdio> out of the header
};

/// The outcome of reading a journal — records plus the degradation
/// diagnostics a resuming session reports to the user.
struct journal_read_report {
  std::vector<tuning_record> records;  ///< journal order (replay order)
  std::uint32_t version = 0;           ///< header version, 0 when absent
  bool header_ok = false;
  bool version_mismatch = false;  ///< newer format: records intentionally empty
  std::size_t corrupt_lines = 0;  ///< CRC-mismatched or unparsable mid-file lines
  bool truncated_tail = false;    ///< torn final line was dropped
  std::size_t total_lines = 0;    ///< physical lines seen (incl. header)
};

/// Reads a journal tolerantly (see the robustness contract above). A
/// missing file yields an empty report; no lock is taken — the format is
/// append-only, so a concurrent writer at worst produces a torn tail,
/// which reading tolerates anyway.
[[nodiscard]] journal_read_report read_journal(const std::string& path);

/// Builds the CRC-guarded journal line (without trailing newline) for a
/// serialized JSON object. Exposed for tests that forge corrupt journals.
[[nodiscard]] std::string guard_line(const json::value& object);

}  // namespace atf::session
