#include "atf/common/csv_writer.hpp"

#include <stdexcept>

#include "atf/common/string_utils.hpp"

namespace atf::common {

csv_writer::csv_writer(const std::string& path,
                       const std::vector<std::string>& header)
    : stream_(path), columns_(header.size()) {
  if (!stream_) {
    throw std::runtime_error("csv_writer: cannot open '" + path + "'");
  }
  write_row(header);
}

std::string csv_writer::escape(const std::string& field) {
  // \r must trigger quoting too: a bare CR (or the CR of an embedded CRLF)
  // splits the row for any reader that treats CR as a line break.
  if (field.find_first_of(",\"\n\r") == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

void csv_writer::write_row(const std::vector<std::string>& fields) {
  if (columns_ != 0 && fields.size() != columns_) {
    throw std::runtime_error("csv_writer: row has " +
                             std::to_string(fields.size()) + " fields, expected " +
                             std::to_string(columns_));
  }
  std::vector<std::string> escaped;
  escaped.reserve(fields.size());
  for (const auto& field : fields) {
    escaped.push_back(escape(field));
  }
  stream_ << join(escaped, ",") << '\n';
}

void csv_writer::flush() { stream_.flush(); }

}  // namespace atf::common
