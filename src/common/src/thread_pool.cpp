#include "atf/common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace atf::common {

std::size_t thread_pool::resolve_num_threads(std::size_t num_threads) noexcept {
  if (num_threads == 0) {
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return num_threads;
}

thread_pool::thread_pool(std::size_t num_threads) {
  num_threads = resolve_num_threads(num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  stop();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void thread_pool::stop() noexcept {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
}

void thread_pool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void thread_pool::parallel_for(std::size_t count,
                               const std::function<void(std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), count);
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t i = 0; i + 1 < helpers; ++i) {
    futures.push_back(submit(drain));
  }
  drain();  // the calling thread participates
  for (auto& future : futures) {
    future.wait();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

std::vector<std::size_t> partition_evenly(std::size_t count,
                                          std::size_t parts) {
  parts = std::max<std::size_t>(1, std::min(parts, count));
  if (count == 0) {
    return {0};
  }
  std::vector<std::size_t> boundaries;
  boundaries.reserve(parts + 1);
  const std::size_t base = count / parts;
  const std::size_t remainder = count % parts;
  std::size_t at = 0;
  boundaries.push_back(at);
  for (std::size_t p = 0; p < parts; ++p) {
    at += base + (p < remainder ? 1 : 0);
    boundaries.push_back(at);
  }
  return boundaries;
}

}  // namespace atf::common
