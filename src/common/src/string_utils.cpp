#include "atf/common/string_utils.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace atf::common {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      fields.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += items[i];
  }
  return out;
}

std::string replace_identifier(std::string_view text, std::string_view name,
                               std::string_view value) {
  std::string out;
  out.reserve(text.size());
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t hit = text.find(name, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      break;
    }
    const bool left_ok = hit == 0 || !is_ident_char(text[hit - 1]);
    const std::size_t after = hit + name.size();
    const bool right_ok = after >= text.size() || !is_ident_char(text[after]);
    out.append(text.substr(pos, hit - pos));
    if (left_ok && right_ok) {
      out.append(value);
    } else {
      out.append(text.substr(hit, name.size()));
    }
    pos = after;
  }
  return out;
}

std::string format_sig(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", digits, value);
  return buffer;
}

std::string format_duration_ns(double nanoseconds) {
  const char* unit = "ns";
  double scaled = nanoseconds;
  if (scaled >= 1e9) {
    scaled /= 1e9;
    unit = "s";
  } else if (scaled >= 1e6) {
    scaled /= 1e6;
    unit = "ms";
  } else if (scaled >= 1e3) {
    scaled /= 1e3;
    unit = "us";
  }
  return format_sig(scaled, 4) + " " + unit;
}

std::string format_count(double count) {
  if (count < 1e5) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.0f", count);
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2e", count);
  return buffer;
}

}  // namespace atf::common
