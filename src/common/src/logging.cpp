#include "atf/common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace atf::common {

namespace {
std::atomic<int> g_level{static_cast<int>(log_level::off)};
std::mutex g_mutex;

const char* level_name(log_level level) {
  switch (level) {
    case log_level::error:
      return "ERROR";
    case log_level::warn:
      return "WARN";
    case log_level::info:
      return "INFO";
    case log_level::debug:
      return "DEBUG";
    default:
      return "OFF";
  }
}
}  // namespace

void set_log_level(log_level level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

log_level get_log_level() noexcept {
  return static_cast<log_level>(g_level.load(std::memory_order_relaxed));
}

void log_message(log_level level, const std::string& message) {
  if (static_cast<int>(level) > g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[atf:%s] %s\n", level_name(level), message.c_str());
}

}  // namespace atf::common
