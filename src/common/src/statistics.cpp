#include "atf/common/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace atf::common {

void running_stats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double running_stats::variance() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double running_stats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    // NaN, not 0: a silent 0.0 reads like a real measurement in a bench
    // table; NaN poisons downstream arithmetic and is visibly wrong.
    return std::numeric_limits<double>::quiet_NaN();
  }
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (const double v : values) {
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mad(const std::vector<double>& values) {
  if (values.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const double med = percentile(values, 50.0);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (const double v : values) {
    deviations.push_back(std::abs(v - med));
  }
  return 1.4826 * percentile(std::move(deviations), 50.0);
}

}  // namespace atf::common
