#include "atf/common/hash.hpp"

#include <array>

namespace atf::common {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[n] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> crc32_table = make_crc32_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = crc32_table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::uint32_t crc32(std::string_view text) noexcept {
  return crc32(text.data(), text.size());
}

}  // namespace atf::common
