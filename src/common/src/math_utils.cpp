#include "atf/common/math_utils.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace atf::common {

std::uint64_t gcd(std::uint64_t a, std::uint64_t b) noexcept {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::uint64_t lcm(std::uint64_t a, std::uint64_t b) noexcept {
  if (a == 0 || b == 0) {
    return 0;
  }
  return a / gcd(a, b) * b;
}

std::vector<std::uint64_t> divisors_of(std::uint64_t n) {
  std::vector<std::uint64_t> low;
  std::vector<std::uint64_t> high;
  for (std::uint64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      low.push_back(d);
      if (d != n / d) {
        high.push_back(n / d);
      }
    }
  }
  low.insert(low.end(), high.rbegin(), high.rend());
  return low;
}

std::uint64_t count_divisors(std::uint64_t n) {
  std::uint64_t count = 0;
  for (std::uint64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      count += (d == n / d) ? 1 : 2;
    }
  }
  return count;
}

std::uint64_t saturating_mul(std::uint64_t a, std::uint64_t b) noexcept {
  if (a == 0 || b == 0) {
    return 0;
  }
  if (a > std::numeric_limits<std::uint64_t>::max() / b) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

double log10_product(const std::vector<std::uint64_t>& factors) {
  double sum = 0.0;
  for (const std::uint64_t f : factors) {
    sum += std::log10(static_cast<double>(std::max<std::uint64_t>(f, 1)));
  }
  return sum;
}

}  // namespace atf::common
