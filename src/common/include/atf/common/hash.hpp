// Stable, dependency-free hashing primitives for the persistence layer:
// FNV-1a for 64-bit content hashes (configuration identity across runs and
// processes) and CRC-32 (IEEE) for per-line integrity guards in the tuning
// journal. Both are fully specified algorithms, so the values written by one
// build of the library are reproducible by every other build — a hard
// requirement for warm-start resume, which matches configurations measured
// by an earlier (possibly crashed) process against fresh proposals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace atf::common {

inline constexpr std::uint64_t fnv1a_offset_basis = 14695981039346656037ull;
inline constexpr std::uint64_t fnv1a_prime = 1099511628211ull;

/// Folds `size` bytes into a running FNV-1a state. Start from
/// fnv1a_offset_basis and chain calls to hash heterogeneous fields.
[[nodiscard]] constexpr std::uint64_t fnv1a(const void* data, std::size_t size,
                                            std::uint64_t state =
                                                fnv1a_offset_basis) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state ^= std::uint64_t{bytes[i]};
    state *= fnv1a_prime;
  }
  return state;
}

[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view text,
                                            std::uint64_t state =
                                                fnv1a_offset_basis) noexcept {
  for (const char c : text) {
    state ^= std::uint64_t{static_cast<unsigned char>(c)};
    state *= fnv1a_prime;
  }
  return state;
}

/// Folds an integral value into the state as 8 little-endian bytes, so the
/// hash does not depend on the host's endianness or integer widths.
[[nodiscard]] constexpr std::uint64_t fnv1a_u64(std::uint64_t value,
                                                std::uint64_t state) noexcept {
  for (int shift = 0; shift < 64; shift += 8) {
    state ^= (value >> shift) & 0xffu;
    state *= fnv1a_prime;
  }
  return state;
}

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xffffffff) over a byte range —
/// the guard appended to every journal line so a torn or bit-rotted record is
/// detected and skipped instead of poisoning a resumed run.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size) noexcept;

[[nodiscard]] std::uint32_t crc32(std::string_view text) noexcept;

}  // namespace atf::common
