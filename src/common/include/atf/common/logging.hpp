// Lightweight leveled logging. Off by default so library users see nothing
// unless they opt in; the tuner raises the level to `info` when verbose
// tuning is requested.
#pragma once

#include <sstream>
#include <string>

namespace atf::common {

enum class log_level { off = 0, error = 1, warn = 2, info = 3, debug = 4 };

/// Process-wide log threshold (atomic underneath).
void set_log_level(log_level level) noexcept;
[[nodiscard]] log_level get_log_level() noexcept;

/// Emits `message` to stderr if `level` is enabled. Thread-safe (one write).
void log_message(log_level level, const std::string& message);

namespace detail {
template <typename... Args>
void log_fmt(log_level level, const Args&... args) {
  if (static_cast<int>(level) > static_cast<int>(get_log_level())) {
    return;
  }
  std::ostringstream stream;
  (stream << ... << args);
  log_message(level, stream.str());
}
}  // namespace detail

template <typename... Args>
void log_error(const Args&... args) {
  detail::log_fmt(log_level::error, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log_fmt(log_level::warn, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log_fmt(log_level::info, args...);
}
template <typename... Args>
void log_debug(const Args&... args) {
  detail::log_fmt(log_level::debug, args...);
}

}  // namespace atf::common
