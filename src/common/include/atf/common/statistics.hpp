// Online and batch descriptive statistics, used by the tuning log, the
// benchmark harnesses, and the AUC-bandit meta-technique.
#pragma once

#include <cstddef>
#include <vector>

namespace atf::common {

/// Welford's online algorithm for mean/variance; numerically stable.
class running_stats {
public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation; `p` in [0,100]. The input vector is
/// copied and sorted. Returns NaN for an empty input — there is no
/// measurement, and 0.0 would masquerade as one.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// Geometric mean; values must be positive. Returns 0 for an empty input.
[[nodiscard]] double geometric_mean(const std::vector<double>& values);

/// Median absolute deviation (scaled by 1.4826 for normal consistency).
/// Returns NaN for an empty input, like percentile.
[[nodiscard]] double mad(const std::vector<double>& values);

}  // namespace atf::common
