// String helpers for define-injection (the simulator's analogue of the OpenCL
// preprocessor), log formatting, and the program cost function.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace atf::common {

/// Splits on a single-character delimiter; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delim);

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string trim(std::string_view text);

/// Joins items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

/// Replaces every occurrence of a whole-word identifier `name` in `text`
/// with `value`. "Whole word" means the match is not adjacent to an
/// identifier character ([A-Za-z0-9_]). This mirrors how an auto-tuner
/// substitutes tuning-parameter names in kernel source via the preprocessor.
[[nodiscard]] std::string replace_identifier(std::string_view text,
                                             std::string_view name,
                                             std::string_view value);

/// Formats a double with `digits` significant digits (for report tables).
[[nodiscard]] std::string format_sig(double value, int digits = 3);

/// Human-readable duration, e.g. "1.24 ms", "3.5 s".
[[nodiscard]] std::string format_duration_ns(double nanoseconds);

/// Human-readable count with engineering suffix, e.g. "1.2e7".
[[nodiscard]] std::string format_count(double count);

}  // namespace atf::common
