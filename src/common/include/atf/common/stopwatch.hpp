// Small wall-clock stopwatch used by abort conditions, the tuning log, and
// the benchmark harnesses.
#pragma once

#include <chrono>

namespace atf::common {

class stopwatch {
public:
  using clock = std::chrono::steady_clock;

  stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] std::chrono::nanoseconds elapsed() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_);
  }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

private:
  clock::time_point start_;
};

}  // namespace atf::common
