// Fixed-size thread pool built on the Standard C++ Threading Library.
//
// ATF uses it for parallel search-space generation — one task per dependent
// parameter group (Section V of the paper) and, nested below that, one task
// per root-range chunk within a group — and the OpenCL simulator uses it to
// execute work-groups concurrently.
//
// parallel_for is re-entrant: the calling thread always participates in the
// iteration drain, so a task running on a pool worker may itself call
// parallel_for on the same pool without deadlocking (nested calls degrade to
// the caller draining its own iterations when every worker is busy).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace atf::common {

class thread_pool {
public:
  /// Creates a pool with `num_threads` workers; 0 means hardware concurrency.
  explicit thread_pool(std::size_t num_threads = 0);

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Joins all workers; pending tasks are drained first.
  ~thread_pool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task and returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using result_t = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<result_t()>>(std::forward<F>(fn));
    std::future<result_t> future = task->get_future();
    {
      std::lock_guard lock(mutex_);
      tasks_.emplace([task]() mutable { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, count) across the pool and blocks until all
  /// iterations finish. Exceptions from iterations are rethrown (first one).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Worker count the pool would use for `num_threads` (0 resolves to
  /// hardware concurrency) — lets callers size chunk counts before or
  /// without constructing a pool.
  [[nodiscard]] static std::size_t resolve_num_threads(
      std::size_t num_threads) noexcept;

private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Splits [0, count) into `parts` contiguous, maximally even spans and
/// returns the parts+1 boundaries (boundaries[p] .. boundaries[p+1] is span
/// p; the first count % parts spans are one element longer). parts is
/// clamped to count, so no span is empty; count == 0 yields {0}.
[[nodiscard]] std::vector<std::size_t> partition_evenly(std::size_t count,
                                                        std::size_t parts);

}  // namespace atf::common
