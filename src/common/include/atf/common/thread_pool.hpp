// Fixed-size thread pool built on the Standard C++ Threading Library.
//
// ATF uses it for parallel search-space generation (one task per dependent
// parameter group, Section V of the paper) and the OpenCL simulator uses it to
// execute work-groups concurrently.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace atf::common {

class thread_pool {
public:
  /// Creates a pool with `num_threads` workers; 0 means hardware concurrency.
  explicit thread_pool(std::size_t num_threads = 0);

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Joins all workers; pending tasks are drained first.
  ~thread_pool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task and returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using result_t = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<result_t()>>(std::forward<F>(fn));
    std::future<result_t> future = task->get_future();
    {
      std::lock_guard lock(mutex_);
      tasks_.emplace([task]() mutable { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, count) across the pool and blocks until all
  /// iterations finish. Exceptions from iterations are rethrown (first one).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace atf::common
