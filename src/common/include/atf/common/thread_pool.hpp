// Fixed-size thread pool built on the Standard C++ Threading Library.
//
// ATF uses it for parallel search-space generation — one task per dependent
// parameter group (Section V of the paper) and, nested below that, one task
// per root-range chunk within a group — and the OpenCL simulator uses it to
// execute work-groups concurrently.
//
// parallel_for is re-entrant: the calling thread always participates in the
// iteration drain, so a task running on a pool worker may itself call
// parallel_for on the same pool without deadlocking (nested calls degrade to
// the caller draining its own iterations when every worker is busy).
//
// work_queue is the dynamic counterpart of a fixed pre-partition: consumers
// *pull* items one at a time and a running handler may push follow-up items,
// so producers of uneven work (the adaptive chunk scheduler of intra-group
// generation) re-split hot items while the drain is underway.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <queue>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace atf::common {

class thread_pool {
public:
  /// Creates a pool with `num_threads` workers; 0 means hardware concurrency.
  explicit thread_pool(std::size_t num_threads = 0);

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Joins all workers; pending tasks are drained first.
  ~thread_pool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Begins shutdown: subsequent submit() calls are rejected with
  /// std::runtime_error while tasks already queued still drain. Idempotent;
  /// the destructor calls it before joining. Without the rejection, a task
  /// enqueued while the destructor drains races the join and can be dropped
  /// silently, leaving its future a broken promise.
  void stop() noexcept;

  /// Enqueues a task and returns a future for its result. Throws
  /// std::runtime_error if the pool is stopping (see stop()).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using result_t = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<result_t()>>(std::forward<F>(fn));
    std::future<result_t> future = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("thread_pool: submit on a stopping pool");
      }
      tasks_.emplace([task]() mutable { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for i in [0, count) across the pool and blocks until all
  /// iterations finish. Exceptions from iterations are rethrown (first one).
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Worker count the pool would use for `num_threads` (0 resolves to
  /// hardware concurrency) — lets callers size chunk counts before or
  /// without constructing a pool.
  [[nodiscard]] static std::size_t resolve_num_threads(
      std::size_t num_threads) noexcept;

private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Dynamic work queue: the pull-based counterpart of handing each worker a
/// fixed pre-partition. Consumers take items one at a time, and a handler
/// running under drain() may push follow-up items — the re-split halves of a
/// chunk that turned out hot — so load balance adapts to skew no static
/// split can anticipate.
///
/// drain() runs handlers on every pool worker *and* the calling thread (so
/// it is safe to call from inside a task of the same pool, like
/// parallel_for) and returns once the queue is empty and no handler is in
/// flight. One drain at a time per queue; push() is safe from any thread
/// while a drain is running.
template <typename Item>
class work_queue {
public:
  work_queue() = default;
  work_queue(const work_queue&) = delete;
  work_queue& operator=(const work_queue&) = delete;

  /// Enqueues an item; safe from any thread, including from inside a
  /// handler running under drain().
  void push(Item item) {
    {
      std::lock_guard lock(mutex_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Items currently queued (a snapshot — concurrent consumers may take
  /// them right after).
  [[nodiscard]] std::size_t pending() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  /// Consumers currently blocked waiting for an item — the starvation
  /// signal adaptive re-split policies key on: non-zero means an item
  /// pushed now is picked up by an idle thread immediately.
  [[nodiscard]] std::size_t starving() const noexcept {
    return starving_.load(std::memory_order_relaxed);
  }

  /// Drains the queue with `fn`; the first handler exception is rethrown
  /// after the drain completes (remaining items are still handled).
  void drain(thread_pool& pool, const std::function<void(Item)>& fn) {
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto consume = [&] {
      for (;;) {
        std::optional<Item> item;
        {
          std::unique_lock lock(mutex_);
          if (items_.empty() && active_ != 0) {
            starving_.fetch_add(1, std::memory_order_relaxed);
            cv_.wait(lock,
                     [this] { return !items_.empty() || active_ == 0; });
            starving_.fetch_sub(1, std::memory_order_relaxed);
          }
          if (items_.empty()) {
            return;  // active_ == 0: nothing queued, nothing in flight
          }
          item.emplace(std::move(items_.front()));
          items_.pop_front();
          ++active_;
        }
        try {
          fn(std::move(*item));
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) {
            first_error = std::current_exception();
          }
        }
        {
          std::lock_guard lock(mutex_);
          --active_;
          if (active_ == 0 && items_.empty()) {
            cv_.notify_all();  // release consumers parked in the wait above
          }
        }
      }
    };

    std::vector<std::future<void>> helpers;
    helpers.reserve(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      helpers.push_back(pool.submit(consume));
    }
    consume();  // the calling thread participates
    for (auto& helper : helpers) {
      helper.wait();
    }
    if (first_error) {
      std::rethrow_exception(first_error);
    }
  }

private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Item> items_;
  std::size_t active_ = 0;  ///< handlers currently running
  std::atomic<std::size_t> starving_{0};
};

/// Splits [0, count) into `parts` contiguous, maximally even spans and
/// returns the parts+1 boundaries (boundaries[p] .. boundaries[p+1] is span
/// p; the first count % parts spans are one element longer). parts is
/// clamped to count, so no span is empty; count == 0 yields {0}.
[[nodiscard]] std::vector<std::size_t> partition_evenly(std::size_t count,
                                                        std::size_t parts);

}  // namespace atf::common
