// Minimal RFC-4180-style CSV writer. The tuner appends one row per evaluated
// configuration so tuning runs can be analysed offline.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace atf::common {

class csv_writer {
public:
  csv_writer() = default;

  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  csv_writer(const std::string& path, const std::vector<std::string>& header);

  [[nodiscard]] bool is_open() const noexcept { return stream_.is_open(); }

  /// Writes one row; fields are quoted when they contain , " CR or LF.
  void write_row(const std::vector<std::string>& fields);

  void flush();

private:
  static std::string escape(const std::string& field);

  std::ofstream stream_;
  std::size_t columns_ = 0;
};

}  // namespace atf::common
