// Integer helpers shared by the search-space machinery, the OpenCL simulator
// and the kernel performance models.
#pragma once

#include <cstdint>
#include <vector>

namespace atf::common {

/// Ceiling division for non-negative integers; divisor must be > 0.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Rounds `a` up to the next multiple of `b` (b > 0). This is the operation
/// CLBlast applies to the global size so that any local size is admissible —
/// the capability CLTune cannot express (paper, Sections III and VI-A).
[[nodiscard]] constexpr std::uint64_t round_up(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return ceil_div(a, b) * b;
}

[[nodiscard]] constexpr bool is_power_of_two(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Greatest common divisor (both arguments may be zero).
[[nodiscard]] std::uint64_t gcd(std::uint64_t a, std::uint64_t b) noexcept;

/// Least common multiple; returns 0 if either argument is 0.
[[nodiscard]] std::uint64_t lcm(std::uint64_t a, std::uint64_t b) noexcept;

/// All positive divisors of n in ascending order (n >= 1).
[[nodiscard]] std::vector<std::uint64_t> divisors_of(std::uint64_t n);

/// Number of positive divisors of n (n >= 1).
[[nodiscard]] std::uint64_t count_divisors(std::uint64_t n);

/// Saturating multiply: returns UINT64_MAX on overflow. Used when counting
/// the cardinality of *unconstrained* search spaces, which overflow 64 bits
/// for the paper's 2^10 x 2^10 GEMM (more than 10^19 configurations).
[[nodiscard]] std::uint64_t saturating_mul(std::uint64_t a,
                                           std::uint64_t b) noexcept;

/// log10 of a product given as factors, exact even when the product overflows.
[[nodiscard]] double log10_product(const std::vector<std::uint64_t>& factors);

}  // namespace atf::common
