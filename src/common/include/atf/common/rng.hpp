// Deterministic, fast pseudo-random number generation for the tuner and the
// simulator. We use xoshiro256** (Blackman & Vigna) instead of std::mt19937
// because search techniques draw a very large number of small integers and the
// tuner must be reproducible across platforms: libstdc++/libc++ distributions
// are not guaranteed to produce identical streams, our own helpers are.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace atf::common {

/// xoshiro256** 1.0 — public-domain algorithm, re-implemented here.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class xoshiro256 {
public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from a single seed value using
  /// splitmix64, as recommended by the xoshiro authors.
  explicit xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction
  /// with rejection to avoid modulo bias. A zero bound is treated as 2^64 —
  /// the full 64-bit range — which is what between(lo, hi) produces when the
  /// inclusive span hi - lo + 1 wraps to 0 (e.g. the whole int64 range); the
  /// reduction below would otherwise compute `(0 - bound) % bound`, a modulo
  /// by zero.
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) {
      return (*this)();
    }
    // Fast path covers every bound we use in practice; the rejection loop
    // guarantees exact uniformity.
    for (;;) {
      const std::uint64_t x = (*this)();
      const unsigned __int128 m =
          static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(bound);
      const std::uint64_t low = static_cast<std::uint64_t>(m);
      if (low >= bound || low >= (0 - bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in the inclusive range [lo, hi]. Both the span and the
  /// offset addition are computed in std::uint64_t: for wide ranges
  /// lo + draw overflows std::int64_t (undefined behaviour the optimizer
  /// exploits — comparisons against the result get constant-folded), while
  /// unsigned wrap-around followed by the C++20 modular narrowing conversion
  /// is exact.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace atf::common
