// Fixed-width bit-packed integer vector.
//
// The packed space-storage backend stores the search-space tree's CSR node
// arrays through this container: every element is written with exactly
// bit_width(max element) bits, so a column whose largest entry fits in 9
// bits costs 9 bits per node instead of the 32 or 64 of its std::vector
// spelling. Reads are O(1) — at most two word fetches, no branches beyond
// the straddle check — which keeps random access through the tree at the
// same asymptotic cost as the dense backend.
//
// A column of all-equal zeros (e.g. the child_begin array of a leaf level)
// packs to width 0 and stores no words at all.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace atf::common {

class packed_u64_vector {
public:
  packed_u64_vector() = default;

  /// Packs `values` with the minimal uniform width (bit_width of the
  /// maximum element). Accepts any unsigned-convertible element type.
  template <typename T>
  [[nodiscard]] static packed_u64_vector pack(const std::vector<T>& values) {
    std::uint64_t max_value = 0;
    for (const T& v : values) {
      const auto u = static_cast<std::uint64_t>(v);
      if (u > max_value) {
        max_value = u;
      }
    }
    packed_u64_vector out;
    out.size_ = values.size();
    out.width_ = static_cast<std::uint32_t>(std::bit_width(max_value));
    if (out.width_ == 0) {
      return out;  // all zeros: no storage
    }
    out.mask_ = out.width_ == 64 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << out.width_) - 1;
    out.words_.assign((out.size_ * out.width_ + 63) / 64, 0);
    for (std::size_t i = 0; i < values.size(); ++i) {
      out.set(i, static_cast<std::uint64_t>(values[i]));
    }
    return out;
  }

  [[nodiscard]] std::uint64_t operator[](std::size_t i) const noexcept {
    if (width_ == 0) {
      return 0;
    }
    const std::size_t bit = i * width_;
    const std::size_t word = bit >> 6;
    const std::size_t offset = bit & 63;
    std::uint64_t value = words_[word] >> offset;
    if (offset + width_ > 64) {
      value |= words_[word + 1] << (64 - offset);
    }
    return value & mask_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Bits per element (0 when every element is zero).
  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }

  /// Heap bytes held by the packed words.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return words_.capacity() * sizeof(std::uint64_t);
  }

private:
  void set(std::size_t i, std::uint64_t value) noexcept {
    const std::size_t bit = i * width_;
    const std::size_t word = bit >> 6;
    const std::size_t offset = bit & 63;
    words_[word] |= (value & mask_) << offset;
    if (offset + width_ > 64) {
      words_[word + 1] |= (value & mask_) >> (64 - offset);
    }
  }

  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
  std::uint32_t width_ = 0;
  std::uint64_t mask_ = 0;
};

}  // namespace atf::common
