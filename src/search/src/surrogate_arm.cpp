#include "atf/search/surrogate_arm.hpp"

#include <algorithm>
#include <cmath>

namespace atf::search {

void surrogate_arm::initialize(const numeric_domain& domain,
                               std::uint64_t seed) {
  domain_ = &domain;
  rng_ = common::xoshiro256(seed);
  trainer_.reset(seed);
  measured_.clear();
  pending_.clear();
}

feature_vector surrogate_arm::encode(const point& p) const {
  feature_vector out;
  out.reserve(2 * p.size());
  for (const std::uint64_t v : p) {
    const double d = static_cast<double>(v);
    out.push_back(d);
    out.push_back(std::asinh(d));
  }
  return out;
}

std::uint64_t surrogate_arm::key_of(const point& p) noexcept {
  // FNV-1a over the coordinates — used to avoid duplicate points within
  // one proposal batch and to deprioritize already-measured points, so a
  // content key is enough.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint64_t v : p) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffull;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

point surrogate_arm::propose_one(
    std::unordered_set<std::uint64_t>& batch_keys) {
  const bool explore =
      !trainer_.ready() || rng_.uniform() < opts_.exploration;
  if (explore) {
    point p = domain_->random_point(rng_);
    batch_keys.insert(key_of(p));
    return p;
  }
  // Rank a fresh random pool in three preference tiers: the best-scored
  // point never measured before (a flat model score must not pin the arm
  // to one point forever — the exploitation budget has to keep probing new
  // points), then the best not already in this batch, then the overall
  // best.
  point best;
  point best_in_batch;
  point best_fresh;
  double best_score = 0.0;
  double best_in_batch_score = 0.0;
  double best_fresh_score = 0.0;
  bool have_best = false;
  bool have_in_batch = false;
  bool have_fresh = false;
  for (std::size_t draw = 0; draw < opts_.candidate_pool; ++draw) {
    point p = domain_->random_point(rng_);
    const double score = trainer_.score(encode(p));
    const std::uint64_t key = key_of(p);
    if (!have_best || score < best_score) {
      best = p;
      best_score = score;
      have_best = true;
    }
    if (batch_keys.count(key) != 0) {
      continue;
    }
    if (!have_in_batch || score < best_in_batch_score) {
      best_in_batch = p;
      best_in_batch_score = score;
      have_in_batch = true;
    }
    if ((!have_fresh || score < best_fresh_score) &&
        measured_.count(key) == 0) {
      best_fresh = std::move(p);
      best_fresh_score = score;
      have_fresh = true;
    }
  }
  point chosen = have_fresh ? std::move(best_fresh)
                 : have_in_batch ? std::move(best_in_batch)
                                 : std::move(best);
  batch_keys.insert(key_of(chosen));
  return chosen;
}

point surrogate_arm::next_point() {
  const std::vector<point> batch = propose_points(1);
  return batch.front();
}

void surrogate_arm::report(double cost) {
  std::vector<double> costs{cost};
  report_points(costs);
}

std::vector<point> surrogate_arm::propose_points(std::size_t max_points) {
  const std::size_t slots =
      std::clamp<std::size_t>(max_points, 1, opts_.batch_cap);
  std::vector<point> batch;
  batch.reserve(slots);
  std::unordered_set<std::uint64_t> batch_keys;
  for (std::size_t s = 0; s < slots; ++s) {
    batch.push_back(propose_one(batch_keys));
  }
  pending_ = batch;
  return batch;
}

void surrogate_arm::report_points(const std::vector<double>& costs) {
  const std::size_t reported = std::min(costs.size(), pending_.size());
  for (std::size_t i = 0; i < reported; ++i) {
    const double cost = costs[i];
    trainer_.add(encode(pending_[i]), cost, !std::isfinite(cost));
    measured_.insert(key_of(pending_[i]));
  }
  pending_.clear();
}

}  // namespace atf::search
