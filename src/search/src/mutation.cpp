#include "atf/search/mutation.hpp"

#include <cmath>

namespace atf::search {

void mutation::initialize(const numeric_domain& domain, std::uint64_t seed) {
  domain_ = &domain;
  rng_ = common::xoshiro256(seed);
  have_best_ = false;
}

point mutation::mutate(const point& base) {
  point mutant = base;
  const std::size_t axis = rng_.below(domain_->dimensions());
  const std::uint64_t size = domain_->axis_size(axis);
  if (size == 1) {
    return mutant;
  }
  if (rng_.uniform() < 0.5) {
    // Resample the axis uniformly (jump move).
    std::uint64_t fresh = rng_.below(size - 1);
    if (fresh >= mutant[axis]) {
      ++fresh;
    }
    mutant[axis] = fresh;
  } else {
    // Geometric nudge (local move): delta k with probability ~ 2^-k.
    std::uint64_t delta = 1;
    while (rng_.uniform() < 0.5 && delta < size) {
      delta *= 2;
    }
    if (rng_.uniform() < 0.5) {
      mutant[axis] = mutant[axis] >= delta ? mutant[axis] - delta : 0;
    } else {
      mutant[axis] = std::min<std::uint64_t>(mutant[axis] + delta, size - 1);
    }
  }
  return mutant;
}

point mutation::next_point() {
  if (!have_best_ || rng_.uniform() < restart_probability_) {
    proposed_ = domain_->random_point(rng_);
  } else {
    proposed_ = mutate(best_);
  }
  return proposed_;
}

void mutation::report(double cost) {
  // Invalid evaluations (NaN, the fault policy's +infinity penalty, or a
  // -infinity underflow) must never become the anchor the next mutants are
  // bred from — and must not clear an anchor already held.
  if (!std::isfinite(cost)) {
    return;
  }
  if (!have_best_ || cost < best_cost_) {
    best_ = proposed_;
    best_cost_ = cost;
    have_best_ = true;
  }
}

}  // namespace atf::search
