#include "atf/search/torczon.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace atf::search {

void torczon::initialize(const numeric_domain& domain, std::uint64_t seed) {
  domain_ = &domain;
  rng_ = common::xoshiro256(seed);
  random_simplex();
}

void torczon::random_simplex() {
  const std::size_t k = domain_->dimensions();
  verts_.assign(k + 1, std::vector<double>(k));
  costs_.assign(k + 1, std::numeric_limits<double>::infinity());
  for (auto& vertex : verts_) {
    for (std::size_t i = 0; i < k; ++i) {
      vertex[i] =
          rng_.uniform() * static_cast<double>(domain_->axis_size(i) - 1);
    }
  }
  stage_ = stage::init;
  pending_ = 0;
}

bool torczon::degenerate() const {
  const point ref = domain_->clamp(verts_.front());
  for (std::size_t v = 1; v < verts_.size(); ++v) {
    if (domain_->clamp(verts_[v]) != ref) {
      return false;
    }
  }
  return true;
}

std::vector<double> torczon::transform(const std::vector<double>& v,
                                       double factor) const {
  // best + factor * (v - best); factor -1 reflects, -expansion expands,
  // +contraction contracts.
  const auto& best = verts_.front();
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = best[i] + factor * (v[i] - best[i]);
  }
  return out;
}

void torczon::begin_round() {
  // Move the best vertex to the front.
  std::size_t best = 0;
  for (std::size_t v = 1; v < verts_.size(); ++v) {
    if (costs_[v] < costs_[best]) {
      best = v;
    }
  }
  std::swap(verts_[0], verts_[best]);
  std::swap(costs_[0], costs_[best]);

  if (degenerate()) {
    random_simplex();
    return;
  }

  trial_.assign(verts_.size() - 1, {});
  trial_costs_.assign(verts_.size() - 1,
                      std::numeric_limits<double>::infinity());
  for (std::size_t v = 1; v < verts_.size(); ++v) {
    trial_[v - 1] = transform(verts_[v], -1.0);
  }
  stage_ = stage::reflect;
  pending_ = 0;
}

point torczon::next_point() {
  if (stage_ == stage::init) {
    return domain_->clamp(verts_[pending_]);
  }
  return domain_->clamp(trial_[pending_]);
}

void torczon::report(double cost) {
  // Cap non-finite costs at +infinity before they reach the simplex: NaN
  // poisons the min_element comparisons and best-vertex selection, and a
  // -infinity vertex would anchor every later reflection on an invalid
  // point.
  if (!std::isfinite(cost)) {
    cost = std::numeric_limits<double>::infinity();
  }
  switch (stage_) {
    case stage::init:
      costs_[pending_] = cost;
      if (++pending_ == verts_.size()) {
        begin_round();
      }
      break;

    case stage::reflect: {
      trial_costs_[pending_] = cost;
      if (++pending_ < trial_.size()) {
        break;
      }
      const double best_trial =
          *std::min_element(trial_costs_.begin(), trial_costs_.end());
      if (best_trial < costs_.front()) {
        // The reflection succeeded; remember it and try expanding further.
        reflected_ = trial_;
        reflected_costs_ = trial_costs_;
        for (std::size_t v = 1; v < verts_.size(); ++v) {
          trial_[v - 1] = transform(verts_[v], -expansion_);
        }
        trial_costs_.assign(trial_.size(),
                            std::numeric_limits<double>::infinity());
        stage_ = stage::expand;
        pending_ = 0;
      } else {
        for (std::size_t v = 1; v < verts_.size(); ++v) {
          trial_[v - 1] = transform(verts_[v], contraction_);
        }
        trial_costs_.assign(trial_.size(),
                            std::numeric_limits<double>::infinity());
        stage_ = stage::contract;
        pending_ = 0;
      }
      break;
    }

    case stage::expand: {
      trial_costs_[pending_] = cost;
      if (++pending_ < trial_.size()) {
        break;
      }
      const double best_expanded =
          *std::min_element(trial_costs_.begin(), trial_costs_.end());
      const double best_reflected =
          *std::min_element(reflected_costs_.begin(), reflected_costs_.end());
      const auto& chosen = best_expanded < best_reflected ? trial_ : reflected_;
      const auto& chosen_costs =
          best_expanded < best_reflected ? trial_costs_ : reflected_costs_;
      for (std::size_t v = 1; v < verts_.size(); ++v) {
        verts_[v] = chosen[v - 1];
        costs_[v] = chosen_costs[v - 1];
      }
      begin_round();
      break;
    }

    case stage::contract:
      trial_costs_[pending_] = cost;
      if (++pending_ < trial_.size()) {
        break;
      }
      for (std::size_t v = 1; v < verts_.size(); ++v) {
        verts_[v] = trial_[v - 1];
        costs_[v] = trial_costs_[v - 1];
      }
      begin_round();
      break;
  }
}

}  // namespace atf::search
