#include "atf/search/surrogate_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace atf::search {

namespace {

/// Sum and sum-of-squares accumulator for O(1) SSE of a sample range.
struct moments {
  double sum = 0.0;
  double sum_sq = 0.0;
  std::size_t n = 0;

  void add(double y) {
    sum += y;
    sum_sq += y * y;
    ++n;
  }
  void remove(double y) {
    sum -= y;
    sum_sq -= y * y;
    --n;
  }
  [[nodiscard]] double sse() const {
    if (n == 0) {
      return 0.0;
    }
    // Guard the subtraction against tiny negative rounding residue.
    return std::max(0.0, sum_sq - sum * sum / static_cast<double>(n));
  }
  [[nodiscard]] double mean() const {
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  }
};

}  // namespace

void surrogate_model::fit(const std::vector<feature_vector>& features,
                          const std::vector<double>& targets,
                          std::uint64_t seed) {
  if (features.empty() || features.size() != targets.size()) {
    throw std::invalid_argument(
        "surrogate_model::fit: features/targets must be parallel and "
        "non-empty");
  }
  forest_.clear();
  forest_.reserve(opts_.trees);
  common::xoshiro256 rng(seed);
  const std::size_t n = features.size();
  std::vector<std::size_t> bootstrap(n);
  for (std::size_t t = 0; t < opts_.trees; ++t) {
    for (auto& idx : bootstrap) {
      idx = rng.below(n);
    }
    tree built;
    std::vector<std::size_t> samples = bootstrap;
    build_node(built, features, targets, samples, 0, samples.size(), 0, rng);
    forest_.push_back(std::move(built));
  }
}

std::int32_t surrogate_model::build_node(
    tree& t, const std::vector<feature_vector>& features,
    const std::vector<double>& targets, std::vector<std::size_t>& samples,
    std::size_t lo, std::size_t hi, std::size_t depth,
    common::xoshiro256& rng) const {
  const std::size_t count = hi - lo;
  moments all;
  for (std::size_t i = lo; i < hi; ++i) {
    all.add(targets[samples[i]]);
  }

  const auto make_leaf = [&]() -> std::int32_t {
    node leaf;
    leaf.value = all.mean();
    t.push_back(leaf);
    return static_cast<std::int32_t>(t.size() - 1);
  };

  if (depth >= opts_.max_depth || count < 2 * opts_.min_leaf ||
      all.sse() == 0.0) {
    return make_leaf();
  }

  // Try a deterministic random subset of features (partial Fisher-Yates
  // over the feature indices), keeping the best (feature, threshold) by
  // SSE reduction; ties break toward the first candidate tried, which is
  // itself seed-determined.
  const std::size_t width = features[samples[lo]].size();
  std::vector<std::size_t> feature_order(width);
  std::iota(feature_order.begin(), feature_order.end(), 0);
  const std::size_t tries = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(opts_.feature_fraction * static_cast<double>(width))));
  for (std::size_t i = 0; i < tries && i + 1 < width; ++i) {
    const std::size_t j = i + rng.below(width - i);
    std::swap(feature_order[i], feature_order[j]);
  }

  double best_sse = std::numeric_limits<double>::infinity();
  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  std::vector<std::size_t> sorted(samples.begin() + static_cast<std::ptrdiff_t>(lo),
                                  samples.begin() + static_cast<std::ptrdiff_t>(hi));
  for (std::size_t f = 0; f < tries; ++f) {
    const std::size_t feature = feature_order[f];
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](std::size_t a, std::size_t b) {
                       return features[a][feature] < features[b][feature];
                     });
    moments left;
    moments right = all;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      const double y = targets[sorted[i]];
      left.add(y);
      right.remove(y);
      const double here = features[sorted[i]][feature];
      const double next = features[sorted[i + 1]][feature];
      if (here == next) {
        continue;  // no threshold separates equal values
      }
      if (left.n < opts_.min_leaf || right.n < opts_.min_leaf) {
        continue;
      }
      const double split_sse = left.sse() + right.sse();
      if (split_sse < best_sse) {
        best_sse = split_sse;
        best_feature = feature;
        best_threshold = here + (next - here) / 2.0;
      }
    }
  }

  if (!std::isfinite(best_sse) || best_sse >= all.sse()) {
    return make_leaf();
  }

  // Partition [lo, hi) of `samples` by the chosen split, preserving
  // relative order (stable) so the recursion is deterministic.
  std::vector<std::size_t> left_part;
  std::vector<std::size_t> right_part;
  left_part.reserve(count);
  right_part.reserve(count);
  for (std::size_t i = lo; i < hi; ++i) {
    if (features[samples[i]][best_feature] <= best_threshold) {
      left_part.push_back(samples[i]);
    } else {
      right_part.push_back(samples[i]);
    }
  }
  std::copy(left_part.begin(), left_part.end(),
            samples.begin() + static_cast<std::ptrdiff_t>(lo));
  std::copy(right_part.begin(), right_part.end(),
            samples.begin() + static_cast<std::ptrdiff_t>(lo) +
                static_cast<std::ptrdiff_t>(left_part.size()));
  const std::size_t mid = lo + left_part.size();

  const std::int32_t self = static_cast<std::int32_t>(t.size());
  t.emplace_back();
  t[self].feature = static_cast<std::int32_t>(best_feature);
  t[self].threshold = best_threshold;
  const std::int32_t left_child =
      build_node(t, features, targets, samples, lo, mid, depth + 1, rng);
  const std::int32_t right_child =
      build_node(t, features, targets, samples, mid, hi, depth + 1, rng);
  t[self].left = left_child;
  t[self].right = right_child;
  return self;
}

surrogate_prediction surrogate_model::predict(const feature_vector& x) const {
  surrogate_prediction out;
  if (forest_.empty()) {
    return out;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const tree& t : forest_) {
    // The root is always node 0: build_node pushes it before recursing.
    std::int32_t at = 0;
    while (t[static_cast<std::size_t>(at)].feature >= 0) {
      const node& n = t[static_cast<std::size_t>(at)];
      at = x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                 : n.right;
    }
    const double y = t[static_cast<std::size_t>(at)].value;
    sum += y;
    sum_sq += y * y;
  }
  const double count = static_cast<double>(forest_.size());
  out.mean = sum / count;
  out.stddev = std::sqrt(std::max(0.0, sum_sq / count - out.mean * out.mean));
  return out;
}

surrogate_trainer::surrogate_trainer(options opts, std::uint64_t seed)
    : opts_(opts),
      cost_model_(opts.model),
      invalid_model_(opts.model) {
  reset(seed);
}

void surrogate_trainer::reset(std::uint64_t seed) {
  seed_ = seed;
  features_.clear();
  targets_.clear();
  invalid_.clear();
  valid_ = 0;
  new_since_fit_ = 0;
  refits_ = 0;
  cost_model_.reset();
  invalid_model_.reset();
  have_invalid_model_ = false;
}

void surrogate_trainer::add(feature_vector features, double cost,
                            bool invalid) {
  if (features_.size() >= opts_.max_train) {
    // Drop the oldest sample; the window keeps the newest observations.
    if (invalid_.front() == 0) {
      --valid_;
    }
    features_.erase(features_.begin());
    targets_.erase(targets_.begin());
    invalid_.erase(invalid_.begin());
  }
  features_.push_back(std::move(features));
  targets_.push_back(invalid ? 0.0 : std::asinh(cost));
  invalid_.push_back(invalid ? 1 : 0);
  if (!invalid) {
    ++valid_;
  }
  ++new_since_fit_;

  const bool due = cost_model_.trained()
                       ? new_since_fit_ >= opts_.refit_interval
                       : valid_ >= opts_.min_train;
  if (due) {
    refit();
  }
}

void surrogate_trainer::refit() {
  new_since_fit_ = 0;
  ++refits_;
  // Distinct deterministic seed per refit (and per head).
  const std::uint64_t fit_seed =
      seed_ + 0x9e3779b97f4a7c15ull * (refits_ + 1);

  std::vector<feature_vector> x_valid;
  std::vector<double> y_valid;
  x_valid.reserve(valid_);
  y_valid.reserve(valid_);
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (invalid_[i] == 0) {
      x_valid.push_back(features_[i]);
      y_valid.push_back(targets_[i]);
    }
  }
  if (!x_valid.empty()) {
    cost_model_.fit(x_valid, y_valid, fit_seed);
  }

  // The classifier head only exists once a failure was observed: an
  // all-valid history predicts P(invalid) = 0 without a model.
  if (valid_ < features_.size()) {
    std::vector<double> labels(invalid_.size());
    for (std::size_t i = 0; i < invalid_.size(); ++i) {
      labels[i] = invalid_[i] != 0 ? 1.0 : 0.0;
    }
    invalid_model_.fit(features_, labels, fit_seed ^ 0xa5a5a5a5a5a5a5a5ull);
    have_invalid_model_ = true;
  }
}

double surrogate_trainer::score(const feature_vector& x) const {
  const surrogate_prediction p = cost_model_.predict(x);
  double s = p.mean - opts_.kappa * p.stddev;
  if (have_invalid_model_) {
    const double raw = invalid_model_.predict(x).mean;
    s += opts_.invalid_weight * std::clamp(raw, 0.0, 1.0);
  }
  return s;
}

}  // namespace atf::search
