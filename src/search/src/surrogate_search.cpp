#include "atf/search/surrogate_search.hpp"

#include <algorithm>
#include <cmath>

#include "atf/session/result_store.hpp"

namespace atf::search {

feature_encoder::feature_encoder(std::vector<std::string> parameter_names)
    : names_(std::move(parameter_names)) {}

std::optional<feature_vector> feature_encoder::encode(
    const configuration& config) const {
  feature_vector out;
  out.reserve(width());
  for (const std::string& name : names_) {
    if (!config.contains(name)) {
      return std::nullopt;
    }
    const double v = to_double(config.value_of(name));
    out.push_back(v);
    out.push_back(std::asinh(v));
  }
  return out;
}

surrogate_search::surrogate_search(std::uint64_t seed)
    : surrogate_search(options{}, seed) {}

surrogate_search::surrogate_search(options opts, std::uint64_t seed)
    : opts_(opts), seed_(seed), trainer_(opts.trainer, seed) {}

void surrogate_search::initialize(const search_space& space) {
  search_technique::initialize(space);
  rng_ = common::xoshiro256(seed_);
  encoder_ = feature_encoder(space.parameter_names());
  trainer_.reset(seed_);
  measured_.clear();
  pending_.clear();
}

void surrogate_search::warm_start(const session::result_store& store) {
  for (const session::tuning_record& record : store.latest_records()) {
    const configuration config = record.to_configuration();
    const std::optional<feature_vector> features = encoder_.encode(config);
    if (!features.has_value()) {
      continue;  // a record from a differently shaped space
    }
    const bool invalid =
        !record.valid || !std::isfinite(record.scalar) ||
        record.scalar >= opts_.invalid_cost_threshold;
    trainer_.add(*features, record.scalar, invalid);
    measured_.insert(record.config_hash);
  }
}

configuration surrogate_search::get_next_config() {
  const std::vector<configuration> batch = propose_batch(1);
  return batch.front();
}

void surrogate_search::report_cost(double cost) {
  const std::vector<configuration> batch = std::move(pending_);
  pending_.clear();
  report_batch(batch, {cost});
}

configuration surrogate_search::random_fresh(
    std::unordered_set<std::uint64_t>& batch_hashes) {
  // Bounded rejection sampling against everything already measured (or
  // already in this batch); small or exhausted spaces fall back to a plain
  // random draw so the technique never stalls.
  for (int attempt = 0; attempt < 16; ++attempt) {
    configuration config = space().config_at(space().random_index(rng_));
    const std::uint64_t hash = config.hash();
    if (measured_.count(hash) == 0 && batch_hashes.insert(hash).second) {
      return config;
    }
  }
  configuration config = space().config_at(space().random_index(rng_));
  batch_hashes.insert(config.hash());
  return config;
}

std::vector<configuration> surrogate_search::propose_batch(
    std::size_t max_configs) {
  const std::size_t slots = std::max<std::size_t>(1, max_configs);
  std::vector<configuration> batch;
  batch.reserve(slots);
  std::unordered_set<std::uint64_t> batch_hashes;

  if (!trainer_.ready()) {
    // Warm-up: uniform random exploration until the model has enough
    // valid samples.
    for (std::size_t s = 0; s < slots; ++s) {
      batch.push_back(random_fresh(batch_hashes));
    }
    pending_ = batch;
    return batch;
  }

  // Candidate pool: fresh random configurations scored by the model. Ties
  // break toward the earlier draw, which is itself seed-determined.
  struct candidate {
    configuration config;
    std::uint64_t hash = 0;
    double score = 0.0;
    std::size_t order = 0;
  };
  std::vector<candidate> pool;
  pool.reserve(opts_.candidate_pool);
  std::unordered_set<std::uint64_t> pool_hashes;
  for (std::size_t draw = 0; draw < opts_.candidate_pool; ++draw) {
    configuration config = space().config_at(space().random_index(rng_));
    const std::uint64_t hash = config.hash();
    if (measured_.count(hash) != 0 || !pool_hashes.insert(hash).second) {
      continue;
    }
    const std::optional<feature_vector> features = encoder_.encode(config);
    if (!features.has_value()) {
      continue;
    }
    candidate c;
    c.config = std::move(config);
    c.hash = hash;
    c.score = trainer_.score(*features);
    c.order = pool.size();
    pool.push_back(std::move(c));
  }
  std::stable_sort(pool.begin(), pool.end(),
                   [](const candidate& a, const candidate& b) {
                     if (a.score != b.score) {
                       return a.score < b.score;
                     }
                     return a.order < b.order;
                   });

  std::size_t next_candidate = 0;
  for (std::size_t s = 0; s < slots; ++s) {
    const bool explore = rng_.uniform() < opts_.exploration;
    if (!explore && next_candidate < pool.size()) {
      candidate& c = pool[next_candidate++];
      batch_hashes.insert(c.hash);
      batch.push_back(std::move(c.config));
    } else {
      batch.push_back(random_fresh(batch_hashes));
    }
  }
  pending_ = batch;
  return batch;
}

void surrogate_search::report_batch(const std::vector<configuration>& configs,
                                    const std::vector<double>& costs) {
  const std::size_t reported = std::min(configs.size(), costs.size());
  for (std::size_t i = 0; i < reported; ++i) {
    const std::optional<feature_vector> features =
        encoder_.encode(configs[i]);
    if (!features.has_value()) {
      continue;
    }
    const double cost = costs[i];
    const bool invalid =
        !std::isfinite(cost) || cost >= opts_.invalid_cost_threshold;
    trainer_.add(*features, cost, invalid);
    measured_.insert(configs[i].hash());
  }
  pending_.clear();
}

}  // namespace atf::search
