#include "atf/search/simulated_annealing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace atf::search {

simulated_annealing::simulated_annealing(double temperature,
                                         std::uint64_t seed)
    : simulated_annealing(options{.temperature = temperature}, seed) {}

simulated_annealing::simulated_annealing(options opts, std::uint64_t seed)
    : opts_(opts), rng_(seed), seed_(seed) {}

void simulated_annealing::initialize(const search_space& space) {
  search_technique::initialize(space);
  rng_ = common::xoshiro256(seed_);
  current_ = space.random_index(rng_);
  proposed_ = current_;
  have_current_ = false;
  have_best_ = false;
  stall_ = 0;
  temperature_now_ = opts_.temperature;
}

configuration simulated_annealing::get_next_config() {
  if (!have_current_) {
    proposed_ = current_;
  } else {
    proposed_ = space().random_neighbor(current_, rng_);
  }
  return space().config_at(proposed_);
}

void simulated_annealing::report_cost(double cost) {
  // Track the global best and the stall counter that triggers teleports.
  if (std::isfinite(cost) && (!have_best_ || cost < best_cost_)) {
    best_cost_ = cost;
    best_index_ = proposed_;
    have_best_ = true;
    stall_ = 0;
  } else {
    ++stall_;
  }

  // Geometric cooling with a floor.
  temperature_now_ = std::max(temperature_now_ * opts_.cooling,
                              opts_.temperature *
                                  opts_.min_temperature_fraction);

  if (!have_current_) {
    // First evaluation establishes the walk's starting point. A failed
    // start (infinite cost) keeps have_current_ false, so the walk restarts
    // from a fresh random configuration on the next call.
    current_ = proposed_;
    current_cost_ = cost;
    if (std::isfinite(cost)) {
      have_current_ = true;
    } else {
      current_ = space().random_index(rng_);
    }
    return;
  }

  bool accept;
  if (!std::isfinite(cost)) {
    accept = false;  // failed neighbor: never move there
  } else if (cost <= current_cost_) {
    accept = true;
  } else {
    const double delta_percent =
        (cost - current_cost_) / current_cost_ * 100.0;
    accept = rng_.uniform() < std::exp(-delta_percent / temperature_now_);
  }
  if (accept) {
    current_ = proposed_;
    current_cost_ = cost;
  }

  // Teleport a stalled walk back to the best configuration seen.
  if (have_best_ && stall_ >= opts_.stall_limit) {
    current_ = best_index_;
    current_cost_ = best_cost_;
    stall_ = 0;
  }
}

}  // namespace atf::search
