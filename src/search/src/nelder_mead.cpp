#include "atf/search/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace atf::search {

void nelder_mead::initialize(const numeric_domain& domain,
                             std::uint64_t seed) {
  domain_ = &domain;
  rng_ = common::xoshiro256(seed);
  random_simplex();
}

void nelder_mead::random_simplex() {
  const std::size_t k = domain_->dimensions();
  verts_.assign(k + 1, std::vector<double>(k));
  costs_.assign(k + 1, std::numeric_limits<double>::infinity());
  for (auto& vertex : verts_) {
    for (std::size_t i = 0; i < k; ++i) {
      vertex[i] =
          rng_.uniform() * static_cast<double>(domain_->axis_size(i) - 1);
    }
  }
  stage_ = stage::init;
  pending_ = 0;
}

void nelder_mead::sort_vertices() {
  std::vector<std::size_t> order(verts_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return costs_[a] < costs_[b];
  });
  std::vector<std::vector<double>> verts;
  std::vector<double> costs;
  verts.reserve(order.size());
  costs.reserve(order.size());
  for (const auto i : order) {
    verts.push_back(std::move(verts_[i]));
    costs.push_back(costs_[i]);
  }
  verts_ = std::move(verts);
  costs_ = std::move(costs);
}

void nelder_mead::compute_centroid() {
  const std::size_t k = domain_->dimensions();
  centroid_.assign(k, 0.0);
  // Centroid of all vertices except the worst (the last after sorting).
  for (std::size_t v = 0; v + 1 < verts_.size(); ++v) {
    for (std::size_t i = 0; i < k; ++i) {
      centroid_[i] += verts_[v][i];
    }
  }
  for (auto& c : centroid_) {
    c /= static_cast<double>(verts_.size() - 1);
  }
}

bool nelder_mead::degenerate() const {
  const point ref = domain_->clamp(verts_.front());
  for (std::size_t v = 1; v < verts_.size(); ++v) {
    if (domain_->clamp(verts_[v]) != ref) {
      return false;
    }
  }
  return true;
}

void nelder_mead::begin_reflect() {
  sort_vertices();
  if (degenerate()) {
    random_simplex();
    return;
  }
  compute_centroid();
  const std::size_t k = domain_->dimensions();
  const auto& worst = verts_.back();
  xr_.assign(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    xr_[i] = centroid_[i] + alpha_ * (centroid_[i] - worst[i]);
  }
  stage_ = stage::reflect;
}

point nelder_mead::next_point() {
  switch (stage_) {
    case stage::init:
    case stage::shrink:
      return domain_->clamp(verts_[pending_]);
    case stage::reflect:
      return domain_->clamp(xr_);
    case stage::expand:
      return domain_->clamp(xe_);
    case stage::contract:
      return domain_->clamp(xc_);
  }
  return domain_->clamp(verts_.front());
}

void nelder_mead::report(double cost) {
  // Cap non-finite costs at +infinity before they reach the simplex: a NaN
  // in costs_ breaks sort_vertices' strict-weak ordering (UB), and a
  // -infinity vertex would anchor the simplex on an invalid point.
  if (!std::isfinite(cost)) {
    cost = std::numeric_limits<double>::infinity();
  }
  const std::size_t k = domain_->dimensions();
  switch (stage_) {
    case stage::init:
      costs_[pending_] = cost;
      if (++pending_ == verts_.size()) {
        begin_reflect();
      }
      break;

    case stage::reflect:
      fr_ = cost;
      if (cost < costs_.front()) {
        // Best so far: try to expand further along the same direction.
        xe_.assign(k, 0.0);
        for (std::size_t i = 0; i < k; ++i) {
          xe_[i] = centroid_[i] + gamma_ * (xr_[i] - centroid_[i]);
        }
        stage_ = stage::expand;
      } else if (cost < costs_[costs_.size() - 2]) {
        // Better than the second-worst: accept the reflection.
        verts_.back() = xr_;
        costs_.back() = cost;
        begin_reflect();
      } else {
        // Contract toward the better of (worst, reflected).
        const auto& target = cost < costs_.back() ? xr_ : verts_.back();
        xc_.assign(k, 0.0);
        for (std::size_t i = 0; i < k; ++i) {
          xc_[i] = centroid_[i] + rho_ * (target[i] - centroid_[i]);
        }
        stage_ = stage::contract;
      }
      break;

    case stage::expand:
      if (cost < fr_) {
        verts_.back() = xe_;
        costs_.back() = cost;
      } else {
        verts_.back() = xr_;
        costs_.back() = fr_;
      }
      begin_reflect();
      break;

    case stage::contract:
      if (cost < std::min(fr_, costs_.back())) {
        verts_.back() = xc_;
        costs_.back() = cost;
        begin_reflect();
      } else {
        // Shrink every vertex toward the best and re-evaluate them.
        for (std::size_t v = 1; v < verts_.size(); ++v) {
          for (std::size_t i = 0; i < k; ++i) {
            verts_[v][i] =
                verts_[0][i] + sigma_ * (verts_[v][i] - verts_[0][i]);
          }
          costs_[v] = std::numeric_limits<double>::infinity();
        }
        stage_ = stage::shrink;
        pending_ = 1;
      }
      break;

    case stage::shrink:
      costs_[pending_] = cost;
      if (++pending_ == verts_.size()) {
        begin_reflect();
      }
      break;
  }
}

}  // namespace atf::search
