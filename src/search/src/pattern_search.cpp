#include "atf/search/pattern_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace atf::search {

void pattern_search::initialize(const numeric_domain& domain,
                                std::uint64_t seed) {
  domain_ = &domain;
  rng_ = common::xoshiro256(seed);
  restart();
}

void pattern_search::restart() {
  center_ = domain_->random_point(rng_);
  have_center_ = false;
  awaiting_center_ = true;
  steps_.assign(domain_->dimensions(), 0);
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    steps_[i] = std::max<std::uint64_t>(1, domain_->axis_size(i) / 8);
  }
  axis_ = 0;
  direction_ = +1;
  sweep_improved_ = false;
}

point pattern_search::make_probe() const {
  point probe = center_;
  const auto limit = domain_->axis_size(axis_) - 1;
  if (direction_ > 0) {
    probe[axis_] = std::min<std::uint64_t>(probe[axis_] + steps_[axis_], limit);
  } else {
    probe[axis_] =
        probe[axis_] >= steps_[axis_] ? probe[axis_] - steps_[axis_] : 0;
  }
  return probe;
}

point pattern_search::next_point() {
  if (awaiting_center_) {
    return center_;
  }
  return make_probe();
}

void pattern_search::advance_probe() {
  if (direction_ > 0) {
    direction_ = -1;
    return;
  }
  direction_ = +1;
  ++axis_;
  if (axis_ < domain_->dimensions()) {
    return;
  }
  // Finished a full sweep over all axes.
  axis_ = 0;
  if (sweep_improved_) {
    sweep_improved_ = false;
    return;
  }
  // No improvement: halve every step; restart once all steps were at 1.
  bool all_at_one = true;
  for (auto& step : steps_) {
    if (step > 1) {
      step /= 2;
      all_at_one = false;
    }
  }
  if (all_at_one) {
    restart();
  }
}

void pattern_search::report(double cost) {
  // Cap non-finite costs at +infinity: a NaN center cost would reject every
  // finite probe (all comparisons false), and a -infinity probe would pin
  // the center on an invalid point forever.
  if (!std::isfinite(cost)) {
    cost = std::numeric_limits<double>::infinity();
  }
  if (awaiting_center_) {
    center_cost_ = cost;
    have_center_ = true;
    awaiting_center_ = false;
    return;
  }
  const point probe = make_probe();
  if (have_center_ && cost < center_cost_) {
    center_ = probe;
    center_cost_ = cost;
    sweep_improved_ = true;
  }
  advance_probe();
}

}  // namespace atf::search
