#include "atf/search/auc_bandit.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace atf::search {

auc_bandit::auc_bandit(std::size_t arms, std::size_t window,
                       double exploration)
    : arms_(arms), window_(window), exploration_(exploration),
      total_uses_(arms, 0) {
  if (arms == 0) {
    throw std::invalid_argument("auc_bandit: at least one arm required");
  }
}

double auc_bandit::auc(std::size_t arm) const {
  // Walk the window collecting this arm's bits in order; weight the i-th
  // use (1-based) by i, normalize by n(n+1)/2.
  std::uint64_t weighted = 0;
  std::uint64_t n = 0;
  for (const auto& e : history_) {
    if (e.arm != arm) {
      continue;
    }
    ++n;
    if (e.success) {
      weighted += n;
    }
  }
  if (n == 0) {
    return 0.0;
  }
  return static_cast<double>(weighted) /
         (static_cast<double>(n) * static_cast<double>(n + 1) / 2.0);
}

std::uint64_t auc_bandit::uses(std::size_t arm) const {
  std::uint64_t n = 0;
  for (const auto& e : history_) {
    n += (e.arm == arm);
  }
  return n;
}

std::uint64_t auc_bandit::lifetime_uses(std::size_t arm) const {
  if (arm >= arms_) {
    throw std::out_of_range("auc_bandit: arm out of range");
  }
  return total_uses_[arm];
}

std::size_t auc_bandit::select() const {
  return select_among(std::vector<bool>(arms_, true));
}

std::size_t auc_bandit::select_among(const std::vector<bool>& eligible) const {
  if (eligible.size() != arms_) {
    throw std::invalid_argument(
        "auc_bandit: eligibility mask size does not match arm count");
  }
  // Any arm never used inside the window gets priority (infinite bonus).
  const double total = static_cast<double>(history_.size());
  std::size_t best_arm = arms_;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t arm = 0; arm < arms_; ++arm) {
    if (!eligible[arm]) {
      continue;
    }
    const auto n = uses(arm);
    double score;
    if (n == 0) {
      score = std::numeric_limits<double>::infinity();
    } else {
      score = auc(arm) + exploration_ * std::sqrt(2.0 * std::log(total) /
                                                  static_cast<double>(n));
    }
    if (best_arm == arms_ || score > best_score) {
      best_score = score;
      best_arm = arm;
    }
  }
  if (best_arm == arms_) {
    throw std::invalid_argument("auc_bandit: no eligible arm");
  }
  return best_arm;
}

void auc_bandit::record(std::size_t arm, bool new_global_best) {
  if (arm >= arms_) {
    throw std::out_of_range("auc_bandit: arm out of range");
  }
  history_.push_back({arm, new_global_best});
  ++total_uses_[arm];
  if (history_.size() > window_) {
    history_.pop_front();
  }
}

}  // namespace atf::search
