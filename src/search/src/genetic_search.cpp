#include "atf/search/genetic_search.hpp"

namespace atf::search {

genetic_search::genetic_search(std::uint64_t seed) : seed_(seed) {}

genetic_search::genetic_search(genetic::options opts, std::uint64_t seed)
    : engine_(opts), seed_(seed) {}

void genetic_search::initialize(const search_space& space) {
  search_technique::initialize(space);
  // One axis: the configuration index TP in [0, S). The engine stores a
  // pointer to the domain, so it lives here as a member.
  domain_ = numeric_domain({space.size()});
  engine_.initialize(domain_, seed_);
}

configuration genetic_search::get_next_config() {
  const point p = engine_.next_point();
  return space().config_at(p[0]);
}

void genetic_search::report_cost(double cost) { engine_.report(cost); }

std::vector<configuration> genetic_search::propose_batch(
    std::size_t max_configs) {
  const std::vector<point> points = engine_.propose_points(max_configs);
  std::vector<configuration> batch;
  batch.reserve(points.size());
  for (const point& p : points) {
    batch.push_back(space().config_at(p[0]));
  }
  return batch;
}

void genetic_search::report_batch(const std::vector<configuration>& configs,
                                  const std::vector<double>& costs) {
  (void)configs;
  engine_.report_points(costs);
}

}  // namespace atf::search
