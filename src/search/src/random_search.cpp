#include "atf/search/random_search.hpp"

namespace atf::search {

random_search::random_search(std::uint64_t seed) : rng_(seed), seed_(seed) {}

void random_search::initialize(const search_space& space) {
  search_technique::initialize(space);
  rng_ = common::xoshiro256(seed_);
}

configuration random_search::get_next_config() {
  return space().config_at(space().random_index(rng_));
}

void random_search::report_cost(double /*cost*/) {}

std::vector<configuration> random_search::propose_batch(
    std::size_t max_configs) {
  std::vector<configuration> batch;
  batch.reserve(max_configs);
  for (std::size_t i = 0; i < max_configs; ++i) {
    batch.push_back(get_next_config());
  }
  return batch;
}

}  // namespace atf::search
