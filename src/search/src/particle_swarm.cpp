#include "atf/search/particle_swarm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace atf::search {

void particle_swarm::initialize(const numeric_domain& domain,
                                std::uint64_t seed) {
  domain_ = &domain;
  rng_ = common::xoshiro256(seed);
  const std::size_t k = domain.dimensions();
  position_.assign(opts_.particles, std::vector<double>(k));
  velocity_.assign(opts_.particles, std::vector<double>(k, 0.0));
  personal_best_ = position_;
  personal_best_cost_.assign(opts_.particles,
                             std::numeric_limits<double>::infinity());
  for (auto& particle : position_) {
    for (std::size_t axis = 0; axis < k; ++axis) {
      particle[axis] =
          rng_.uniform() * static_cast<double>(domain.axis_size(axis) - 1);
    }
  }
  global_best_.assign(k, 0.0);
  has_global_best_ = false;
  cursor_ = 0;
}

point particle_swarm::next_point() {
  return domain_->clamp(position_[cursor_]);
}

void particle_swarm::advance(std::size_t i) {
  const std::size_t k = domain_->dimensions();
  for (std::size_t axis = 0; axis < k; ++axis) {
    const double r1 = rng_.uniform();
    const double r2 = rng_.uniform();
    double v = opts_.inertia * velocity_[i][axis] +
               opts_.cognitive * r1 *
                   (personal_best_[i][axis] - position_[i][axis]);
    if (has_global_best_) {
      v += opts_.social * r2 * (global_best_[axis] - position_[i][axis]);
    }
    // Velocity clamp: a quarter of the axis keeps particles in play.
    const double limit =
        std::max(1.0, static_cast<double>(domain_->axis_size(axis)) / 4.0);
    v = std::clamp(v, -limit, limit);
    velocity_[i][axis] = v;
    position_[i][axis] += v;
    // Reflective bounds.
    const double hi = static_cast<double>(domain_->axis_size(axis) - 1);
    if (position_[i][axis] < 0.0) {
      position_[i][axis] = -position_[i][axis];
      velocity_[i][axis] = -velocity_[i][axis];
    }
    if (position_[i][axis] > hi) {
      position_[i][axis] = 2.0 * hi - position_[i][axis];
      velocity_[i][axis] = -velocity_[i][axis];
    }
    position_[i][axis] = std::clamp(position_[i][axis], 0.0, hi);
  }
}

void particle_swarm::report(double cost) {
  const std::size_t i = cursor_;
  // A non-finite cost (NaN, the +infinity penalty, a -infinity underflow)
  // must not become a personal best: particles would be attracted toward
  // invalid regions forever. The update below then ignores it — personal
  // bests start at +infinity, so invalid points simply never anchor.
  if (cost < personal_best_cost_[i] && std::isfinite(cost)) {
    personal_best_cost_[i] = cost;
    personal_best_[i] = position_[i];
  }
  if (std::isfinite(cost) && (!has_global_best_ || cost < global_best_cost_)) {
    global_best_cost_ = cost;
    global_best_ = position_[i];
    has_global_best_ = true;
  }
  advance(i);
  cursor_ = (cursor_ + 1) % opts_.particles;
}

}  // namespace atf::search
