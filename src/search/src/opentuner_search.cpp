#include "atf/search/opentuner_search.hpp"

namespace atf::search {

opentuner_search::opentuner_search(std::uint64_t seed) : seed_(seed) {}

void opentuner_search::initialize(const search_space& space) {
  search_technique::initialize(space);
  // One axis: the configuration index TP in [0, S).
  engine_.initialize(numeric_domain({space.size()}), seed_);
}

configuration opentuner_search::get_next_config() {
  const point p = engine_.next_point();
  return space().config_at(p[0]);
}

void opentuner_search::report_cost(double cost) { engine_.report(cost); }

std::vector<configuration> opentuner_search::propose_batch(
    std::size_t max_configs) {
  const std::vector<point> points = engine_.propose_batch(max_configs);
  std::vector<configuration> batch;
  batch.reserve(points.size());
  for (const point& p : points) {
    batch.push_back(space().config_at(p[0]));
  }
  return batch;
}

void opentuner_search::report_batch(
    const std::vector<configuration>& configs,
    const std::vector<double>& costs) {
  (void)configs;
  engine_.report_batch(costs);
}

}  // namespace atf::search
