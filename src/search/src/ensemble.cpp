#include "atf/search/ensemble.hpp"

#include <cmath>
#include <stdexcept>

#include "atf/search/genetic.hpp"
#include "atf/search/mutation.hpp"
#include "atf/search/nelder_mead.hpp"
#include "atf/search/particle_swarm.hpp"
#include "atf/search/pattern_search.hpp"
#include "atf/search/random_technique.hpp"
#include "atf/search/torczon.hpp"

namespace atf::search {

ensemble::ensemble() {
  pool_.push_back(std::make_unique<nelder_mead>());
  pool_.push_back(std::make_unique<torczon>());
  pool_.push_back(std::make_unique<pattern_search>());
  pool_.push_back(std::make_unique<mutation>());
  pool_.push_back(std::make_unique<genetic>());
  pool_.push_back(std::make_unique<particle_swarm>());
  pool_.push_back(std::make_unique<random_technique>());
}

ensemble::ensemble(std::vector<std::unique_ptr<domain_technique>> pool)
    : pool_(std::move(pool)) {
  if (pool_.empty()) {
    throw std::invalid_argument("ensemble: empty technique pool");
  }
}

void ensemble::initialize(const numeric_domain& domain, std::uint64_t seed) {
  domain_ = domain;
  bandit_ = std::make_unique<auc_bandit>(pool_.size());
  uses_.assign(pool_.size(), 0);
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    // Distinct deterministic stream per member.
    pool_[i]->initialize(domain_, seed * 0x9e3779b97f4a7c15ull + i + 1);
  }
  has_best_ = false;
  best_cost_ = 0.0;
}

point ensemble::next_point() {
  active_ = bandit_->select();
  ++uses_[active_];
  last_point_ = pool_[active_]->next_point();
  return last_point_;
}

void ensemble::report(double cost) {
  pool_[active_]->report(cost);
  const bool improved =
      std::isfinite(cost) && (!has_best_ || cost < best_cost_);
  if (improved) {
    best_cost_ = cost;
    best_ = last_point_;
    has_best_ = true;
  }
  bandit_->record(active_, improved);
}

std::vector<std::uint64_t> ensemble::technique_uses() const { return uses_; }

}  // namespace atf::search
