#include "atf/search/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "atf/search/genetic.hpp"
#include "atf/search/mutation.hpp"
#include "atf/search/nelder_mead.hpp"
#include "atf/search/particle_swarm.hpp"
#include "atf/search/pattern_search.hpp"
#include "atf/search/random_technique.hpp"
#include "atf/search/surrogate_arm.hpp"
#include "atf/search/torczon.hpp"

namespace atf::search {

ensemble::ensemble() {
  pool_.push_back(std::make_unique<nelder_mead>());
  pool_.push_back(std::make_unique<torczon>());
  pool_.push_back(std::make_unique<pattern_search>());
  pool_.push_back(std::make_unique<mutation>());
  pool_.push_back(std::make_unique<genetic>());
  pool_.push_back(std::make_unique<particle_swarm>());
  pool_.push_back(std::make_unique<random_technique>());
  pool_.push_back(std::make_unique<surrogate_arm>());
}

ensemble::ensemble(std::vector<std::unique_ptr<domain_technique>> pool)
    : pool_(std::move(pool)) {
  if (pool_.empty()) {
    throw std::invalid_argument("ensemble: empty technique pool");
  }
}

void ensemble::initialize(const numeric_domain& domain, std::uint64_t seed) {
  domain_ = domain;
  bandit_ = std::make_unique<auc_bandit>(pool_.size());
  uses_.assign(pool_.size(), 0);
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    // Distinct deterministic stream per member.
    pool_[i]->initialize(domain_, seed * 0x9e3779b97f4a7c15ull + i + 1);
  }
  batch_members_.clear();
  batch_points_.clear();
  has_best_ = false;
  best_cost_ = 0.0;
}

point ensemble::next_point() {
  // The sequential protocol is the batch protocol at width 1 — one code
  // path, so batched exploration at concurrency 1 cannot drift from
  // sequential exploration.
  const std::vector<point> batch = propose_batch(1);
  if (batch.empty()) {
    throw std::logic_error("ensemble: pool member proposed no point");
  }
  return batch.front();
}

void ensemble::report(double cost) { report_batch({cost}); }

std::vector<point> ensemble::propose_batch(std::size_t max_points) {
  batch_members_.clear();
  batch_points_.clear();
  if (max_points == 0) {
    return {};
  }

  // Phase 1 — assign slots to members, bandit-guided. The first picks
  // prefer members that do not hold a slot yet (a mixed batch, one slot
  // per member); once every member holds one, the remaining slots repeat
  // the top-scoring members that still have capacity.
  std::vector<std::size_t> requested(pool_.size(), 0);
  std::vector<std::size_t> slots;
  slots.reserve(max_points);
  while (slots.size() < max_points) {
    std::vector<bool> eligible(pool_.size(), false);
    std::vector<bool> fresh(pool_.size(), false);
    bool any_eligible = false;
    bool any_fresh = false;
    for (std::size_t m = 0; m < pool_.size(); ++m) {
      eligible[m] = requested[m] < pool_[m]->max_batch();
      any_eligible = any_eligible || eligible[m];
      fresh[m] = eligible[m] && requested[m] == 0;
      any_fresh = any_fresh || fresh[m];
    }
    if (!any_eligible) {
      break;  // the pool's combined capacity is exhausted
    }
    const std::size_t m = bandit_->select_among(any_fresh ? fresh : eligible);
    ++requested[m];
    slots.push_back(m);
  }

  // Phase 2 — fetch each member's points with a single propose_points call
  // (a technique mid-sequence hands its points out in order; one-point
  // calls would not compose for generation-cursor techniques), then
  // interleave them back into slot order. A member that returns fewer
  // points than requested forfeits its surplus slots.
  std::vector<std::vector<point>> member_points(pool_.size());
  std::vector<std::size_t> next_of(pool_.size(), 0);
  for (std::size_t m = 0; m < pool_.size(); ++m) {
    if (requested[m] > 0) {
      member_points[m] = pool_[m]->propose_points(requested[m]);
    }
  }
  for (const std::size_t m : slots) {
    if (next_of[m] >= member_points[m].size()) {
      continue;
    }
    batch_members_.push_back(m);
    batch_points_.push_back(std::move(member_points[m][next_of[m]]));
    ++next_of[m];
    ++uses_[m];
  }
  return batch_points_;
}

void ensemble::report_batch(const std::vector<double>& costs) {
  // Walk the committed prefix in proposal order: track the global best and
  // credit the bandit slot by slot, collecting each member's costs in its
  // own proposal order.
  const std::size_t reported = std::min(costs.size(), batch_members_.size());
  std::vector<std::vector<double>> per_member(pool_.size());
  for (std::size_t i = 0; i < reported; ++i) {
    const std::size_t m = batch_members_[i];
    const double cost = costs[i];
    const bool improved =
        std::isfinite(cost) && (!has_best_ || cost < best_cost_);
    if (improved) {
      best_cost_ = cost;
      best_ = batch_points_[i];
      has_best_ = true;
    }
    per_member[m].push_back(cost);
    bandit_->record(m, improved);
  }
  for (std::size_t m = 0; m < pool_.size(); ++m) {
    if (!per_member[m].empty()) {
      pool_[m]->report_points(per_member[m]);
    }
  }
  // Unreported surplus points (abort mid-batch) are forgotten.
  batch_members_.clear();
  batch_points_.clear();
}

std::vector<std::uint64_t> ensemble::technique_uses() const { return uses_; }

}  // namespace atf::search
