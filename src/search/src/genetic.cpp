#include "atf/search/genetic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace atf::search {

void genetic::initialize(const numeric_domain& domain, std::uint64_t seed) {
  domain_ = &domain;
  rng_ = common::xoshiro256(seed);
  population_.clear();
  population_.reserve(opts_.population);
  for (std::size_t i = 0; i < opts_.population; ++i) {
    population_.push_back(domain_->random_point(rng_));
  }
  fitness_.assign(opts_.population,
                  std::numeric_limits<double>::infinity());
  cursor_ = 0;
}

point genetic::next_point() { return population_[cursor_]; }

std::vector<point> genetic::propose_points(std::size_t max_points) {
  const std::size_t count =
      std::min(max_points, population_.size() - cursor_);
  std::vector<point> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch.push_back(population_[cursor_ + i]);
  }
  return batch;
}

void genetic::report(double cost) {
  // Cap non-finite costs at +infinity: NaN fitness would make the ranking
  // comparator non-strict-weak (UB in stable_sort), and -infinity would
  // crown an invalid individual as a permanent elite.
  fitness_[cursor_] = std::isfinite(cost)
                          ? cost
                          : std::numeric_limits<double>::infinity();
  if (++cursor_ == population_.size()) {
    breed_next_generation();
    cursor_ = 0;
  }
}

std::size_t genetic::tournament_select() {
  std::size_t best = rng_.below(population_.size());
  for (std::size_t i = 1; i < opts_.tournament; ++i) {
    const std::size_t challenger = rng_.below(population_.size());
    if (fitness_[challenger] < fitness_[best]) {
      best = challenger;
    }
  }
  return best;
}

void genetic::mutate(point& individual) {
  for (std::size_t axis = 0; axis < domain_->dimensions(); ++axis) {
    if (rng_.uniform() >= opts_.mutation_rate) {
      continue;
    }
    const std::uint64_t size = domain_->axis_size(axis);
    if (size == 1) {
      continue;
    }
    // Geometric step, like the mutation technique's local move.
    std::uint64_t delta = 1;
    while (rng_.uniform() < 0.5 && delta < size) {
      delta *= 2;
    }
    if (rng_.uniform() < 0.5) {
      individual[axis] =
          individual[axis] >= delta ? individual[axis] - delta : 0;
    } else {
      individual[axis] =
          std::min<std::uint64_t>(individual[axis] + delta, size - 1);
    }
  }
}

void genetic::breed_next_generation() {
  // Rank by fitness; keep the elites verbatim.
  std::vector<std::size_t> order(population_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return fitness_[a] < fitness_[b];
  });

  std::vector<point> next;
  next.reserve(population_.size());
  for (std::size_t e = 0; e < std::min(opts_.elites, order.size()); ++e) {
    next.push_back(population_[order[e]]);
  }
  while (next.size() < population_.size()) {
    const point& a = population_[tournament_select()];
    const point& b = population_[tournament_select()];
    point child = a;
    if (rng_.uniform() < opts_.crossover_rate) {
      for (std::size_t axis = 0; axis < child.size(); ++axis) {
        if (rng_.uniform() < 0.5) {
          child[axis] = b[axis];
        }
      }
    }
    mutate(child);
    next.push_back(std::move(child));
  }
  population_ = std::move(next);
  fitness_.assign(population_.size(),
                  std::numeric_limits<double>::infinity());
}

}  // namespace atf::search
