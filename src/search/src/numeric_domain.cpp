#include "atf/search/numeric_domain.hpp"

#include <cmath>
#include <stdexcept>

#include "atf/common/math_utils.hpp"

namespace atf::search {

numeric_domain::numeric_domain(std::vector<std::uint64_t> axis_sizes)
    : axis_sizes_(std::move(axis_sizes)) {
  if (axis_sizes_.empty()) {
    throw std::invalid_argument("numeric_domain: no axes");
  }
  size_ = 1;
  for (const auto s : axis_sizes_) {
    if (s == 0) {
      throw std::invalid_argument("numeric_domain: axis of size 0");
    }
    size_ = common::saturating_mul(size_, s);
  }
}

point numeric_domain::random_point(common::xoshiro256& rng) const {
  point p(axis_sizes_.size());
  for (std::size_t i = 0; i < axis_sizes_.size(); ++i) {
    p[i] = rng.below(axis_sizes_[i]);
  }
  return p;
}

std::uint64_t numeric_domain::clamp_axis(std::size_t axis,
                                         double value) const {
  const double rounded = std::nearbyint(value);
  if (rounded <= 0.0) {
    return 0;
  }
  const auto limit = axis_sizes_[axis] - 1;
  if (rounded >= static_cast<double>(limit)) {
    return limit;
  }
  return static_cast<std::uint64_t>(rounded);
}

point numeric_domain::clamp(const std::vector<double>& coords) const {
  point p(axis_sizes_.size());
  for (std::size_t i = 0; i < axis_sizes_.size(); ++i) {
    p[i] = clamp_axis(i, coords[i]);
  }
  return p;
}

}  // namespace atf::search
