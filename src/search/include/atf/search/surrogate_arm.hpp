// The surrogate as an ensemble bandit arm (DESIGN.md §10).
//
// Same model, smaller budget: the arm scores a modest random candidate pool
// per proposal with a lighter forest (the ensemble calls its members every
// step, so per-proposal cost must stay small), encodes domain points
// directly — two features per axis, the raw index and its asinh — and
// exposes an explicit bounded max_batch(): the candidates of one batch are
// ranked by one model snapshot, so they are mutually independent, but
// letting a single arm flood an arbitrarily wide batch would starve the
// bandit's exploration of the other members.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "atf/common/rng.hpp"
#include "atf/search/domain_technique.hpp"
#include "atf/search/surrogate_model.hpp"

namespace atf::search {

class surrogate_arm final : public domain_technique {
public:
  struct options {
    std::size_t candidate_pool = 64;  ///< random candidates ranked per slot
    double exploration = 0.15;        ///< ε-fraction of pure-random slots
    std::size_t batch_cap = 8;        ///< explicit max_batch()
    surrogate_trainer::options trainer;

    options() {
      // Arm-sized defaults: cheaper forest, earlier readiness, shorter
      // window than the standalone technique.
      trainer.min_train = 12;
      trainer.refit_interval = 12;
      trainer.max_train = 512;
      trainer.model.trees = 12;
      trainer.model.max_depth = 5;
    }
  };

  surrogate_arm() : surrogate_arm(options{}) {}
  explicit surrogate_arm(options opts) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "surrogate"; }

  void initialize(const numeric_domain& domain, std::uint64_t seed) override;

  [[nodiscard]] point next_point() override;
  void report(double cost) override;

  [[nodiscard]] std::size_t max_batch() const override {
    return opts_.batch_cap;
  }
  [[nodiscard]] std::vector<point> propose_points(
      std::size_t max_points) override;
  void report_points(const std::vector<double>& costs) override;

  [[nodiscard]] bool model_ready() const noexcept { return trainer_.ready(); }

private:
  [[nodiscard]] feature_vector encode(const point& p) const;
  [[nodiscard]] point propose_one(
      std::unordered_set<std::uint64_t>& batch_keys);
  [[nodiscard]] static std::uint64_t key_of(const point& p) noexcept;

  options opts_;
  const numeric_domain* domain_ = nullptr;
  common::xoshiro256 rng_{0};
  surrogate_trainer trainer_;
  /// Keys of every point already reported — exploitation prefers
  /// candidates outside this set so the arm keeps probing new points even
  /// when the model's score surface is flat.
  std::unordered_set<std::uint64_t> measured_;
  std::vector<point> pending_;  ///< points proposed, awaiting their costs
};

}  // namespace atf::search
