// Inversion-of-control interface for numeric search techniques.
//
// The ensemble (and through it ATF's OpenTuner-style technique and the
// OpenTuner baseline) drives techniques in propose/report steps: the driver
// asks for the next point to evaluate, measures it, and reports the cost
// back. Techniques that are naturally batch-oriented (simplex methods) are
// implemented as explicit state machines over this interface.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atf/search/numeric_domain.hpp"

namespace atf::search {

class domain_technique {
public:
  virtual ~domain_technique() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once with the domain to search and a deterministic seed.
  virtual void initialize(const numeric_domain& domain, std::uint64_t seed) = 0;

  /// The next point to evaluate.
  [[nodiscard]] virtual point next_point() = 0;

  /// The cost of the point last returned by next_point. Failed evaluations
  /// are reported as +infinity.
  virtual void report(double cost) = 0;

  /// The widest batch this technique can propose *right now* — how many
  /// mutually independent points it could hand out before seeing any cost.
  /// The default of 1 keeps techniques whose next proposal depends on the
  /// last reported cost (the simplex state machines, annealing-style
  /// climbers) strictly sequential; batch-capable techniques override it
  /// (random: unbounded; genetic: the unevaluated tail of the current
  /// generation). The ensemble's batch filler never assigns a technique
  /// more slots than this. Must be at least 1.
  [[nodiscard]] virtual std::size_t max_batch() const { return 1; }

  /// Batch extension mirroring search_technique's: up to max_points points
  /// whose costs can be measured independently before any is reported. The
  /// default shims keep every existing technique working unchanged (a batch
  /// of one); techniques with a natural batch — genetic's generation —
  /// override both natively. Callers must not request more than
  /// max_batch() points.
  [[nodiscard]] virtual std::vector<point> propose_points(
      std::size_t max_points) {
    (void)max_points;
    std::vector<point> batch;
    batch.push_back(next_point());
    return batch;
  }

  /// Reports the costs of the points from the last propose_points call, in
  /// proposal order. costs.size() may be smaller than the proposed batch
  /// when the driver aborted mid-batch; unreported points are forgotten.
  virtual void report_points(const std::vector<double>& costs) {
    for (const double cost : costs) {
      report(cost);
    }
  }
};

}  // namespace atf::search
