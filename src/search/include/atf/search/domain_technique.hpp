// Inversion-of-control interface for numeric search techniques.
//
// The ensemble (and through it ATF's OpenTuner-style technique and the
// OpenTuner baseline) drives techniques in propose/report steps: the driver
// asks for the next point to evaluate, measures it, and reports the cost
// back. Techniques that are naturally batch-oriented (simplex methods) are
// implemented as explicit state machines over this interface.
#pragma once

#include <cstdint>
#include <string>

#include "atf/search/numeric_domain.hpp"

namespace atf::search {

class domain_technique {
public:
  virtual ~domain_technique() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once with the domain to search and a deterministic seed.
  virtual void initialize(const numeric_domain& domain, std::uint64_t seed) = 0;

  /// The next point to evaluate.
  [[nodiscard]] virtual point next_point() = 0;

  /// The cost of the point last returned by next_point. Failed evaluations
  /// are reported as +infinity.
  virtual void report(double cost) = 0;
};

}  // namespace atf::search
