// The genetic algorithm as a standalone ATF search technique.
//
// Like opentuner_search, the adapter exposes ATF's constrained space to the
// numeric technique as a single integer axis in [0, S) — every index is a
// valid configuration by construction. Where opentuner_search wraps the
// whole AUC-bandit ensemble, this adapter drives the genetic engine alone,
// and forwards the batch protocol natively: one generation's individuals
// are independent, so the evaluation engine can measure a whole generation
// (or a pool-sized slice of it) concurrently.
#pragma once

#include <cstdint>
#include <vector>

#include "atf/search/genetic.hpp"
#include "atf/search/numeric_domain.hpp"
#include "atf/search_technique.hpp"

namespace atf::search {

class genetic_search final : public atf::search_technique {
public:
  explicit genetic_search(std::uint64_t seed = 0x5eed);
  genetic_search(genetic::options opts, std::uint64_t seed = 0x5eed);

  [[nodiscard]] const char* name() const override { return "genetic_search"; }

  void initialize(const search_space& space) override;
  [[nodiscard]] configuration get_next_config() override;
  void report_cost(double cost) override;

  /// Forwards to genetic::propose_points — the unevaluated slice of the
  /// current generation, clamped to max_configs.
  [[nodiscard]] std::vector<configuration> propose_batch(
      std::size_t max_configs) override;
  void report_batch(const std::vector<configuration>& configs,
                    const std::vector<double>& costs) override;

private:
  genetic engine_;
  numeric_domain domain_;  ///< genetic keeps a pointer into this
  std::uint64_t seed_;
};

}  // namespace atf::search
