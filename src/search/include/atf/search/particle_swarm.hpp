// Particle-swarm optimization over the integer domain (another member of
// OpenTuner's technique family). Particles carry continuous positions and
// velocities; proposals are clamped onto the grid. Standard PSO update:
//
//   v <- w*v + c1*r1*(pbest - x) + c2*r2*(gbest - x)
//   x <- x + v
#pragma once

#include <cstdint>
#include <vector>

#include "atf/common/rng.hpp"
#include "atf/search/domain_technique.hpp"

namespace atf::search {

class particle_swarm final : public domain_technique {
public:
  struct options {
    std::size_t particles = 16;
    double inertia = 0.7;
    double cognitive = 1.4;  ///< pull toward the particle's own best
    double social = 1.4;     ///< pull toward the swarm's best
  };

  particle_swarm() = default;
  explicit particle_swarm(options opts) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "pso"; }

  void initialize(const numeric_domain& domain, std::uint64_t seed) override;
  [[nodiscard]] point next_point() override;
  void report(double cost) override;

  /// Inherently sequential as implemented: report() advances the proposed
  /// particle using the *current* global best, so the next proposal depends
  /// on the last reported cost. Pinned explicitly so the ensemble's batch
  /// capacity accounting cannot change underneath us if the base-class
  /// default ever does.
  [[nodiscard]] std::size_t max_batch() const override { return 1; }

private:
  void advance(std::size_t i);

  options opts_;
  const numeric_domain* domain_ = nullptr;
  common::xoshiro256 rng_{0};
  std::vector<std::vector<double>> position_;
  std::vector<std::vector<double>> velocity_;
  std::vector<std::vector<double>> personal_best_;
  std::vector<double> personal_best_cost_;
  std::vector<double> global_best_;
  double global_best_cost_ = 0.0;
  bool has_global_best_ = false;
  std::size_t cursor_ = 0;
};

}  // namespace atf::search
