// Greedy mutation (an evolutionary hill climber), ensemble pool member.
//
// Keeps the best point seen and proposes mutants: one random axis is either
// resampled uniformly or nudged by a geometrically distributed offset. A
// small restart probability keeps the technique from stalling on plateaus.
#pragma once

#include <cstdint>

#include "atf/common/rng.hpp"
#include "atf/search/domain_technique.hpp"

namespace atf::search {

class mutation final : public domain_technique {
public:
  explicit mutation(double restart_probability = 0.02)
      : restart_probability_(restart_probability) {}

  [[nodiscard]] std::string name() const override { return "mutation"; }

  void initialize(const numeric_domain& domain, std::uint64_t seed) override;
  [[nodiscard]] point next_point() override;
  void report(double cost) override;

  /// Inherently sequential: every mutant is bred from the best point as of
  /// the last report, so the technique never takes more than one slot of an
  /// ensemble batch. Pinned explicitly (like the simplex methods) so the
  /// capacity accounting cannot regress if the base-class default changes.
  [[nodiscard]] std::size_t max_batch() const override { return 1; }

  /// Anchor state, observable for the invalid-cost contract tests: the
  /// anchor only ever holds a finitely-costed point.
  [[nodiscard]] bool has_best() const noexcept { return have_best_; }
  [[nodiscard]] double best_cost() const noexcept { return best_cost_; }

private:
  [[nodiscard]] point mutate(const point& base);

  const numeric_domain* domain_ = nullptr;
  common::xoshiro256 rng_{0};
  double restart_probability_;
  point best_;
  double best_cost_ = 0.0;
  bool have_best_ = false;
  point proposed_;
};

}  // namespace atf::search
