// Coordinate pattern search (a hill climber with step halving), one of the
// technique pool members of the OpenTuner-style ensemble.
//
// From a random center the technique probes +step and -step along each axis
// in turn; an improving probe becomes the new center. When a full sweep over
// all axes yields no improvement the steps are halved; once every step has
// collapsed to 1 and a sweep still fails, the search restarts from a fresh
// random center (keeping the global best in the ensemble's hands).
#pragma once

#include <cstdint>
#include <vector>

#include "atf/common/rng.hpp"
#include "atf/search/domain_technique.hpp"

namespace atf::search {

class pattern_search final : public domain_technique {
public:
  [[nodiscard]] std::string name() const override { return "pattern"; }

  void initialize(const numeric_domain& domain, std::uint64_t seed) override;
  [[nodiscard]] point next_point() override;
  void report(double cost) override;

  /// Inherently sequential: every probe depends on the cost of the
  /// previous one (center promotion, step halving), so the technique never
  /// takes more than one slot of an ensemble batch.
  [[nodiscard]] std::size_t max_batch() const override { return 1; }

private:
  void restart();
  void advance_probe();
  [[nodiscard]] point make_probe() const;

  const numeric_domain* domain_ = nullptr;
  common::xoshiro256 rng_;
  point center_;
  double center_cost_ = 0.0;
  bool have_center_ = false;
  std::vector<std::uint64_t> steps_;
  std::size_t axis_ = 0;
  int direction_ = +1;  ///< probing center + direction * step on axis_
  bool sweep_improved_ = false;
  bool awaiting_center_ = true;  ///< next report is for the center itself
};

}  // namespace atf::search
