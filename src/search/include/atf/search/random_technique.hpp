// Uniform random sampling over the domain — the ensemble's exploration
// baseline (OpenTuner keeps a pure-random technique in every pool).
#pragma once

#include "atf/common/rng.hpp"
#include "atf/search/domain_technique.hpp"

namespace atf::search {

class random_technique final : public domain_technique {
public:
  [[nodiscard]] std::string name() const override { return "random"; }

  void initialize(const numeric_domain& domain, std::uint64_t seed) override {
    domain_ = &domain;
    rng_ = common::xoshiro256(seed);
  }

  [[nodiscard]] point next_point() override {
    return domain_->random_point(rng_);
  }

  void report(double /*cost*/) override {}

private:
  const numeric_domain* domain_ = nullptr;
  common::xoshiro256 rng_{0};
};

}  // namespace atf::search
