// Uniform random sampling over the domain — the ensemble's exploration
// baseline (OpenTuner keeps a pure-random technique in every pool).
#pragma once

#include <limits>

#include "atf/common/rng.hpp"
#include "atf/search/domain_technique.hpp"

namespace atf::search {

class random_technique final : public domain_technique {
public:
  [[nodiscard]] std::string name() const override { return "random"; }

  void initialize(const numeric_domain& domain, std::uint64_t seed) override {
    domain_ = &domain;
    rng_ = common::xoshiro256(seed);
  }

  [[nodiscard]] point next_point() override {
    return domain_->random_point(rng_);
  }

  void report(double /*cost*/) override {}

  /// Draws are independent, so any batch width is fine; the stream of
  /// proposals is the same regardless of how it is sliced into batches.
  [[nodiscard]] std::size_t max_batch() const override {
    return std::numeric_limits<std::size_t>::max();
  }

  [[nodiscard]] std::vector<point> propose_points(
      std::size_t max_points) override {
    std::vector<point> batch;
    batch.reserve(max_points);
    for (std::size_t i = 0; i < max_points; ++i) {
      batch.push_back(domain_->random_point(rng_));
    }
    return batch;
  }

private:
  const numeric_domain* domain_ = nullptr;
  common::xoshiro256 rng_{0};
};

}  // namespace atf::search
