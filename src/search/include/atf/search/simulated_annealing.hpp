// Simulated annealing over the constrained search space (paper, Section
// IV-B). get_next_config returns a random neighbor c' of the current
// configuration c; after its cost t' is reported, c' replaces c with
// probability
//
//   P(t, t', T) = exp( -(t' - t) / T )    if t' >= t, and 1 otherwise.
//
// The paper reports T = 4 as suitable for OpenCL/CUDA tuning. Raw costs can
// be in arbitrary units (nanoseconds, joules, ...), so like CLTune we
// normalize the difference to *percent of the current cost* before applying
// the temperature; with T = 4 a configuration 1% worse is accepted with
// probability ~0.78 and one 20% worse with ~0.007, independent of the cost
// unit. Two standard practical refinements are applied on top of the paper's
// description: the temperature cools geometrically as evaluations accrue,
// and a walk that has not improved the global best for `stall_limit`
// evaluations teleports back to the best configuration seen.
#pragma once

#include <cstdint>

#include "atf/common/rng.hpp"
#include "atf/search_technique.hpp"

namespace atf::search {

class simulated_annealing final : public atf::search_technique {
public:
  struct options {
    double temperature = 4.0;    ///< the paper's T
    double cooling = 0.995;      ///< per-evaluation temperature factor
    double min_temperature_fraction = 0.02;  ///< floor: T * fraction
    std::uint64_t stall_limit = 50;  ///< evaluations without a new global best
  };

  explicit simulated_annealing(double temperature = 4.0,
                               std::uint64_t seed = 0x5eed);
  simulated_annealing(options opts, std::uint64_t seed);

  [[nodiscard]] const char* name() const override {
    return "simulated_annealing";
  }

  void initialize(const search_space& space) override;
  [[nodiscard]] configuration get_next_config() override;
  void report_cost(double cost) override;

  /// Inherently sequential: each proposal is a neighbor of the walk's
  /// current configuration, which moves (or not) only when the previous
  /// cost is reported. Pinned to a batch of one explicitly — independent of
  /// the base-class shim — so batched evaluation can never hand the walk
  /// two unreported neighbors.
  [[nodiscard]] std::vector<configuration> propose_batch(
      std::size_t max_configs) override {
    (void)max_configs;
    std::vector<configuration> batch;
    batch.push_back(get_next_config());
    return batch;
  }

  /// Sequential counterpart of the pin above: forwards the (at most one)
  /// cost to report_cost.
  void report_batch(const std::vector<configuration>& configs,
                    const std::vector<double>& costs) override {
    (void)configs;
    for (const double cost : costs) {
      report_cost(cost);
    }
  }

  [[nodiscard]] std::uint64_t current_index() const noexcept {
    return current_;
  }

private:
  options opts_;
  common::xoshiro256 rng_;
  std::uint64_t seed_;
  std::uint64_t current_ = 0;
  std::uint64_t proposed_ = 0;
  double current_cost_ = 0.0;
  bool have_current_ = false;
  double temperature_now_ = 4.0;
  std::uint64_t best_index_ = 0;
  double best_cost_ = 0.0;
  bool have_best_ = false;
  std::uint64_t stall_ = 0;
};

}  // namespace atf::search
