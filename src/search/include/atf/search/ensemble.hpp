// The OpenTuner-style ensemble: an AUC bandit selecting per step among a
// pool of numeric techniques (Nelder-Mead, Torczon, pattern search, greedy
// mutation, random). This engine backs both ATF's "OpenTuner search"
// technique (over the 1-D constrained-space index domain, Section IV-C) and
// the OpenTuner baseline tuner (over the unconstrained per-parameter
// domain, Section VI).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "atf/search/auc_bandit.hpp"
#include "atf/search/domain_technique.hpp"
#include "atf/search/numeric_domain.hpp"

namespace atf::search {

class ensemble {
public:
  /// Builds the default OpenTuner-like pool. `seed` derives each member's
  /// RNG stream deterministically.
  ensemble();

  /// Builds a custom pool (must not be empty).
  explicit ensemble(std::vector<std::unique_ptr<domain_technique>> pool);

  void initialize(const numeric_domain& domain, std::uint64_t seed);

  /// Asks the bandit-selected technique for its next point.
  [[nodiscard]] point next_point();

  /// Reports the cost of the last proposed point to its technique and
  /// updates the bandit (success = new global best).
  void report(double cost);

  [[nodiscard]] double best_cost() const noexcept { return best_cost_; }
  [[nodiscard]] const point& best_point() const noexcept { return best_; }
  [[nodiscard]] bool has_best() const noexcept { return has_best_; }

  /// Lifetime use counts per pool member (diagnostics/tests).
  [[nodiscard]] std::vector<std::uint64_t> technique_uses() const;

  [[nodiscard]] std::size_t pool_size() const noexcept {
    return pool_.size();
  }
  [[nodiscard]] std::string technique_name(std::size_t i) const {
    return pool_[i]->name();
  }

private:
  std::vector<std::unique_ptr<domain_technique>> pool_;
  std::unique_ptr<auc_bandit> bandit_;
  std::vector<std::uint64_t> uses_;
  numeric_domain domain_;
  std::size_t active_ = 0;
  point last_point_;
  point best_;
  double best_cost_ = 0.0;
  bool has_best_ = false;
};

}  // namespace atf::search
