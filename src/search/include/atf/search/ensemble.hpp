// The OpenTuner-style ensemble: an AUC bandit selecting per step among a
// pool of numeric techniques (Nelder-Mead, Torczon, pattern search, greedy
// mutation, random). This engine backs both ATF's "OpenTuner search"
// technique (over the 1-D constrained-space index domain, Section IV-C) and
// the OpenTuner baseline tuner (over the unconstrained per-parameter
// domain, Section VI).
//
// Batch extension. A batch of size k is filled by asking the bandit for up
// to k member techniques: the first picks prefer *distinct* members (one
// slot per member, the ROADMAP's mixed-batch shape), and once every member
// holds a slot the remaining slots fall back to repeated top-AUC picks
// among the members that can still take one (max_batch() capacity —
// simplex state machines declare 1 and never receive a second slot;
// random is unbounded; genetic caps at its generation tail). Every slot is
// tagged with its proposing member, so report_batch can credit AUC history
// per member in proposal order. At batch size 1 the fill degenerates to
// exactly the sequential bandit pick — next_point()/report() are routed
// through the same code path, which makes batched exploration at
// concurrency 1 bit-identical to sequential exploration by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "atf/search/auc_bandit.hpp"
#include "atf/search/domain_technique.hpp"
#include "atf/search/numeric_domain.hpp"

namespace atf::search {

class ensemble {
public:
  /// Builds the default OpenTuner-like pool. `seed` derives each member's
  /// RNG stream deterministically.
  ensemble();

  /// Builds a custom pool (must not be empty).
  explicit ensemble(std::vector<std::unique_ptr<domain_technique>> pool);

  void initialize(const numeric_domain& domain, std::uint64_t seed);

  /// Asks the bandit-selected technique for its next point. Equivalent to
  /// propose_batch(1) — implemented as exactly that.
  [[nodiscard]] point next_point();

  /// Reports the cost of the last proposed point to its technique and
  /// updates the bandit (success = new global best).
  void report(double cost);

  /// Fills a mixed batch of up to `max_points` points as described above.
  /// Returns at least one point (and possibly fewer than max_points when
  /// the pool's combined capacity is smaller). Every call discards the
  /// unreported remainder of the previous batch.
  [[nodiscard]] std::vector<point> propose_batch(std::size_t max_points);

  /// Reports the costs of the last proposed batch in proposal order:
  /// costs[i] belongs to the batch's i-th point. costs.size() may be
  /// smaller than the batch when the driver aborted mid-batch; the surplus
  /// points are forgotten (their members are never credited). Each member
  /// receives its own costs in its own proposal order via report_points,
  /// and the bandit is credited slot by slot.
  void report_batch(const std::vector<double>& costs);

  /// The members backing each point of the last proposed batch, in
  /// proposal order (diagnostics/tests).
  [[nodiscard]] const std::vector<std::size_t>& batch_members() const noexcept {
    return batch_members_;
  }

  [[nodiscard]] double best_cost() const noexcept { return best_cost_; }
  [[nodiscard]] const point& best_point() const noexcept { return best_; }
  [[nodiscard]] bool has_best() const noexcept { return has_best_; }

  /// Lifetime use counts per pool member (diagnostics/tests).
  [[nodiscard]] std::vector<std::uint64_t> technique_uses() const;

  /// The bandit's current state (diagnostics/tests). Valid only after
  /// initialize().
  [[nodiscard]] const auc_bandit& bandit() const { return *bandit_; }

  [[nodiscard]] std::size_t pool_size() const noexcept {
    return pool_.size();
  }
  [[nodiscard]] std::string technique_name(std::size_t i) const {
    return pool_[i]->name();
  }

private:
  std::vector<std::unique_ptr<domain_technique>> pool_;
  std::unique_ptr<auc_bandit> bandit_;
  std::vector<std::uint64_t> uses_;
  numeric_domain domain_;
  std::vector<std::size_t> batch_members_;  ///< proposing member per slot
  std::vector<point> batch_points_;         ///< proposed point per slot
  point best_;
  double best_cost_ = 0.0;
  bool has_best_ = false;
};

}  // namespace atf::search
