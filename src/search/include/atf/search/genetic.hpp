// Generational genetic algorithm over the integer domain (OpenTuner's pool
// includes evolutionary techniques; this one uses tournament selection,
// uniform crossover and per-axis geometric mutation).
//
// Implemented as a state machine over the propose/report protocol: the
// technique emits the individuals of the current generation one by one;
// once all are scored it breeds the next generation.
#pragma once

#include <cstdint>
#include <vector>

#include "atf/common/rng.hpp"
#include "atf/search/domain_technique.hpp"

namespace atf::search {

class genetic final : public domain_technique {
public:
  struct options {
    std::size_t population = 24;
    double crossover_rate = 0.8;
    double mutation_rate = 0.25;   ///< per-axis probability
    std::size_t tournament = 3;
    std::size_t elites = 2;        ///< best individuals copied unchanged
  };

  genetic() = default;
  explicit genetic(options opts) : opts_(opts) {}

  [[nodiscard]] std::string name() const override { return "genetic"; }

  void initialize(const numeric_domain& domain, std::uint64_t seed) override;
  [[nodiscard]] point next_point() override;
  void report(double cost) override;

  /// Native batch: the unevaluated tail of the current generation, clamped
  /// to max_points. Individuals of one generation are independent by
  /// construction, so they can be measured concurrently; a batch never
  /// crosses a generation boundary — breeding needs the full fitness
  /// vector, and the per-cost report() keeps advancing the cursor.
  [[nodiscard]] std::vector<point> propose_points(
      std::size_t max_points) override;

  /// Exactly the unevaluated tail of the current generation (always ≥ 1 —
  /// the cursor wraps when a generation completes).
  [[nodiscard]] std::size_t max_batch() const override {
    return population_.empty() ? 1 : population_.size() - cursor_;
  }

private:
  void breed_next_generation();
  [[nodiscard]] std::size_t tournament_select();
  void mutate(point& individual);

  options opts_;
  const numeric_domain* domain_ = nullptr;
  common::xoshiro256 rng_{0};
  std::vector<point> population_;
  std::vector<double> fitness_;
  std::size_t cursor_ = 0;  ///< next individual awaiting evaluation
};

}  // namespace atf::search
