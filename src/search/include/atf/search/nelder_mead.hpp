// Nelder-Mead downhill simplex over the integer domain (ensemble member;
// the paper names "many variants of Nelder-Mead search" among OpenTuner's
// techniques).
//
// The simplex lives in continuous coordinates; every proposal is clamped and
// rounded onto the domain before evaluation, and the measured cost is
// attributed to the continuous vertex — the standard treatment for integer
// parameter spaces. Implemented as a state machine over the propose/report
// protocol (reflect -> expand | contract -> shrink), with a random restart
// whenever the simplex collapses to a single grid point.
#pragma once

#include <cstdint>
#include <vector>

#include "atf/common/rng.hpp"
#include "atf/search/domain_technique.hpp"

namespace atf::search {

class nelder_mead final : public domain_technique {
public:
  /// Standard coefficients: reflection, expansion, contraction, shrink.
  explicit nelder_mead(double alpha = 1.0, double gamma = 2.0,
                       double rho = 0.5, double sigma = 0.5)
      : alpha_(alpha), gamma_(gamma), rho_(rho), sigma_(sigma) {}

  [[nodiscard]] std::string name() const override { return "nelder-mead"; }

  void initialize(const numeric_domain& domain, std::uint64_t seed) override;
  [[nodiscard]] point next_point() override;
  void report(double cost) override;

  /// Inherently sequential: the state machine decides reflect vs expand vs
  /// contract from each reported cost, so the simplex never hands out more
  /// than one slot of an ensemble batch.
  [[nodiscard]] std::size_t max_batch() const override { return 1; }

private:
  enum class stage { init, reflect, expand, contract, shrink };

  void random_simplex();
  void sort_vertices();
  void compute_centroid();
  void begin_reflect();
  [[nodiscard]] bool degenerate() const;

  const numeric_domain* domain_ = nullptr;
  common::xoshiro256 rng_{0};
  double alpha_, gamma_, rho_, sigma_;

  std::vector<std::vector<double>> verts_;
  std::vector<double> costs_;
  std::vector<double> centroid_;
  std::vector<double> xr_, xe_, xc_;
  double fr_ = 0.0;
  stage stage_ = stage::init;
  std::size_t pending_ = 0;  ///< cursor for init/shrink batches
};

}  // namespace atf::search
