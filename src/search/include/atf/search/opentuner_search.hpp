// ATF's third pre-implemented technique: the OpenTuner search engine
// (paper, Section IV-C).
//
// The original embeds OpenTuner's Python implementation and exposes ATF's
// constrained space to it as a single integer parameter TP in [1, S] — an
// index into the space; by construction every index is a *valid*
// configuration, which is exactly why the ensemble works here while plain
// OpenTuner cannot tune constrained kernels. We reproduce the architecture
// natively: the same AUC-bandit ensemble explores the 1-D index domain.
#pragma once

#include <cstdint>
#include <vector>

#include "atf/search/ensemble.hpp"
#include "atf/search_technique.hpp"

namespace atf::search {

class opentuner_search final : public atf::search_technique {
public:
  explicit opentuner_search(std::uint64_t seed = 0x5eed);

  [[nodiscard]] const char* name() const override {
    return "opentuner_search";
  }

  void initialize(const search_space& space) override;
  [[nodiscard]] configuration get_next_config() override;
  void report_cost(double cost) override;

  /// Native batch: the ensemble fills a mixed batch — the bandit picks up
  /// to max_configs member techniques (distinct first, then repeated
  /// top-AUC picks up to each member's max_batch() capacity), so batched
  /// evaluation amortizes measurement latency across the pool. At
  /// max_configs == 1 this is exactly the sequential bandit step.
  [[nodiscard]] std::vector<configuration> propose_batch(
      std::size_t max_configs) override;

  /// Forwards the committed costs to the ensemble, which credits AUC
  /// history per proposing member in proposal order.
  void report_batch(const std::vector<configuration>& configs,
                    const std::vector<double>& costs) override;

  [[nodiscard]] const ensemble& engine() const noexcept { return engine_; }

private:
  ensemble engine_;
  std::uint64_t seed_;
};

}  // namespace atf::search
