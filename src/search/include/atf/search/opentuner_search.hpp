// ATF's third pre-implemented technique: the OpenTuner search engine
// (paper, Section IV-C).
//
// The original embeds OpenTuner's Python implementation and exposes ATF's
// constrained space to it as a single integer parameter TP in [1, S] — an
// index into the space; by construction every index is a *valid*
// configuration, which is exactly why the ensemble works here while plain
// OpenTuner cannot tune constrained kernels. We reproduce the architecture
// natively: the same AUC-bandit ensemble explores the 1-D index domain.
#pragma once

#include <cstdint>

#include "atf/search/ensemble.hpp"
#include "atf/search_technique.hpp"

namespace atf::search {

class opentuner_search final : public atf::search_technique {
public:
  explicit opentuner_search(std::uint64_t seed = 0x5eed);

  void initialize(const search_space& space) override;
  [[nodiscard]] configuration get_next_config() override;
  void report_cost(double cost) override;

  [[nodiscard]] const ensemble& engine() const noexcept { return engine_; }

private:
  ensemble engine_;
  std::uint64_t seed_;
};

}  // namespace atf::search
