// The surrogate regressor behind surrogate-guided search: a deterministic
// random-forest model fit on measured (feature-vector → cost) pairs, plus
// the bookkeeping that turns a stream of reported costs into training sets
// (DESIGN.md §10).
//
// A forest — rather than gradient boosting — because the acquisition score
// needs an uncertainty estimate: trees grown on independent bootstrap
// resamples disagree where the landscape is unsampled, so the cross-tree
// standard deviation is a usable confidence proxy (Falch & Elster's
// ML-based auto-tuning uses the same replace-measurements-with-a-regressor
// idea; the forest variant keeps everything pure C++ and bit-deterministic).
//
// Invalid-cost contract. Failed evaluations arrive as the fault policy's
// penalty scalar — +infinity by default. Feeding those into the regression
// would poison every split around a failure region, so the trainer routes
// them into a *separate classifier head*: a second forest fit on 0/1
// invalid labels whose prediction (an invalidity probability) is added to
// the acquisition score as a penalty. Valid costs are compressed through
// asinh before fitting — monotone, defined for every finite double, and it
// tames the orders-of-magnitude spread of kernel runtimes.
#pragma once

#include <cstdint>
#include <vector>

#include "atf/common/rng.hpp"

namespace atf::search {

/// A fixed-width feature vector (see feature_encoder in
/// surrogate_search.hpp and surrogate_arm's per-axis encoding).
using feature_vector = std::vector<double>;

/// A forest prediction: the mean over per-tree outputs and their
/// population standard deviation (the uncertainty proxy).
struct surrogate_prediction {
  double mean = 0.0;
  double stddev = 0.0;
};

/// A deterministic random-forest regressor. Fitting twice on the same
/// (features, targets, seed) produces bit-identical predictions: all
/// randomness flows from one xoshiro256 stream, ties in split selection
/// break toward the lower feature index / threshold, and training order is
/// the caller's sample order.
class surrogate_model {
public:
  struct options {
    std::size_t trees = 24;
    std::size_t max_depth = 6;
    std::size_t min_leaf = 2;        ///< minimum samples per leaf
    double feature_fraction = 0.7;   ///< features tried per split
  };

  surrogate_model() = default;
  explicit surrogate_model(options opts) : opts_(opts) {}

  /// Fits the forest. features and targets must be parallel and non-empty,
  /// every feature vector of the same width, every value finite.
  void fit(const std::vector<feature_vector>& features,
           const std::vector<double>& targets, std::uint64_t seed);

  /// Discards a previous fit.
  void reset() { forest_.clear(); }

  [[nodiscard]] bool trained() const noexcept { return !forest_.empty(); }

  /// Mean/stddev over the per-tree predictions; trained() must hold.
  [[nodiscard]] surrogate_prediction predict(const feature_vector& x) const;

  [[nodiscard]] const options& opts() const noexcept { return opts_; }

private:
  /// One node of one tree, stored flat. Leaves have feature == -1.
  struct node {
    std::int32_t feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;  ///< leaf prediction (mean of its samples)
  };
  using tree = std::vector<node>;

  std::int32_t build_node(tree& t, const std::vector<feature_vector>& features,
                          const std::vector<double>& targets,
                          std::vector<std::size_t>& samples, std::size_t lo,
                          std::size_t hi, std::size_t depth,
                          common::xoshiro256& rng) const;

  options opts_;
  std::vector<tree> forest_;
};

/// Shared training-set management for the surrogate techniques: keeps a
/// bounded window of samples, refits the cost model (valid samples only)
/// and the invalid classifier head (all samples) at deterministic points,
/// and folds both into one acquisition score.
class surrogate_trainer {
public:
  struct options {
    std::size_t min_train = 16;       ///< valid samples before the model is used
    std::size_t refit_interval = 16;  ///< new samples between refits
    std::size_t max_train = 2048;     ///< newest samples kept
    double kappa = 1.0;               ///< LCB weight on the cross-tree stddev
    double invalid_weight = 4.0;      ///< acquisition penalty per unit P(invalid)
    surrogate_model::options model;
  };

  surrogate_trainer() : surrogate_trainer(options{}, 0) {}
  surrogate_trainer(options opts, std::uint64_t seed);

  /// Resets samples and models; the RNG restarts from `seed`.
  void reset(std::uint64_t seed);

  /// Adds one observation. Invalid observations (the caller decides — the
  /// techniques pass non-finite or penalty-threshold costs) never reach the
  /// regression targets; they only train the classifier head. Triggers a
  /// refit once enough new samples accumulated.
  void add(feature_vector features, double cost, bool invalid);

  /// True once the cost model is fit — i.e. at least min_train valid
  /// samples were seen.
  [[nodiscard]] bool ready() const noexcept { return cost_model_.trained(); }

  /// Acquisition score, lower is better: LCB of the transformed cost
  /// (mean − kappa·stddev) plus invalid_weight · P(invalid). Requires
  /// ready().
  [[nodiscard]] double score(const feature_vector& x) const;

  [[nodiscard]] std::size_t samples() const noexcept {
    return features_.size();
  }
  [[nodiscard]] std::size_t valid_samples() const noexcept { return valid_; }
  [[nodiscard]] std::size_t invalid_samples() const noexcept {
    return features_.size() - valid_;
  }
  [[nodiscard]] std::uint64_t refits() const noexcept { return refits_; }

  [[nodiscard]] const options& opts() const noexcept { return opts_; }

private:
  void refit();

  options opts_;
  std::uint64_t seed_ = 0;
  std::vector<feature_vector> features_;  ///< newest max_train samples
  std::vector<double> targets_;           ///< asinh(cost); 0 for invalid
  std::vector<char> invalid_;             ///< per-sample invalid label
  std::size_t valid_ = 0;
  std::size_t new_since_fit_ = 0;
  std::uint64_t refits_ = 0;
  surrogate_model cost_model_;
  surrogate_model invalid_model_;
  bool have_invalid_model_ = false;
};

}  // namespace atf::search
