// Surrogate-model-guided search over the constrained space (DESIGN.md §10).
//
// The batched propose/report protocol is exactly the interface an
// acquisition ranker wants: propose wide, filter by a cheap model, measure
// few. Each batch is filled from a pool of random candidate configurations
// ranked by the surrogate's acquisition score (LCB of the predicted cost
// plus an invalidity penalty), with an ε-fraction of slots kept for pure
// random exploration; already-measured configurations are filtered out of
// the candidate pool, so the measurement budget is spent on new points.
//
// Under tuner::session(path) the technique warm-starts from the replayed
// result store: every surviving journal record becomes a training sample
// (invalid records feed the classifier head), so a resumed or merged
// session shapes the acquisition landscape before the first proposal.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "atf/common/rng.hpp"
#include "atf/search/surrogate_model.hpp"
#include "atf/search_technique.hpp"

namespace atf::search {

/// Maps a configuration onto a fixed-width feature vector: two features
/// per tuning parameter, the raw scalarized value and its asinh — the
/// compressed copy makes power-of-two parameter axes (the common case)
/// split evenly in tree depth. Parameter order is the space's declaration
/// order, so the same configuration always encodes identically.
class feature_encoder {
public:
  feature_encoder() = default;
  explicit feature_encoder(std::vector<std::string> parameter_names);

  [[nodiscard]] std::size_t width() const noexcept {
    return 2 * names_.size();
  }
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }

  /// Encodes by parameter *name*; std::nullopt when the configuration is
  /// missing one of the encoder's parameters (e.g. a journal record from a
  /// differently shaped space).
  [[nodiscard]] std::optional<feature_vector> encode(
      const configuration& config) const;

private:
  std::vector<std::string> names_;
};

class surrogate_search final : public atf::search_technique {
public:
  struct options {
    /// Random candidate configurations ranked per batch.
    std::size_t candidate_pool = 256;
    /// ε-fraction of batch slots proposed uniformly at random (per-slot
    /// Bernoulli draw, so the fraction holds at every batch width).
    double exploration = 0.15;
    /// Finite penalty detection: reported costs at or above this value are
    /// treated as invalid, like non-finite costs (set it to the fault
    /// policy's penalty when using a finite one).
    double invalid_cost_threshold =
        std::numeric_limits<double>::infinity();
    surrogate_trainer::options trainer;
  };

  explicit surrogate_search(std::uint64_t seed = 0x5eed);
  surrogate_search(options opts, std::uint64_t seed);

  [[nodiscard]] const char* name() const override {
    return "surrogate_search";
  }

  void initialize(const search_space& space) override;

  /// Feeds every replayed store record into the model (valid records as
  /// regression samples, invalid ones into the classifier head) and marks
  /// their configurations as already measured. Records whose parameters do
  /// not cover this space's are skipped.
  void warm_start(const session::result_store& store) override;

  /// Sequential protocol, routed through the batch protocol at width 1 —
  /// one code path, so batched-at-1 is bit-identical by construction.
  [[nodiscard]] configuration get_next_config() override;
  void report_cost(double cost) override;

  [[nodiscard]] std::vector<configuration> propose_batch(
      std::size_t max_configs) override;
  void report_batch(const std::vector<configuration>& configs,
                    const std::vector<double>& costs) override;

  /// Diagnostics (tests, benches).
  [[nodiscard]] bool model_ready() const noexcept { return trainer_.ready(); }
  [[nodiscard]] std::size_t training_samples() const noexcept {
    return trainer_.samples();
  }
  [[nodiscard]] std::size_t invalid_training_samples() const noexcept {
    return trainer_.invalid_samples();
  }
  [[nodiscard]] std::uint64_t refits() const noexcept {
    return trainer_.refits();
  }

private:
  [[nodiscard]] configuration random_fresh(
      std::unordered_set<std::uint64_t>& batch_hashes);

  options opts_;
  std::uint64_t seed_;
  common::xoshiro256 rng_{0};
  feature_encoder encoder_;
  surrogate_trainer trainer_;
  /// Content hashes of every configuration already measured (reported or
  /// warm-started) — candidates hitting this set are filtered out.
  std::unordered_set<std::uint64_t> measured_;
  std::vector<configuration> pending_;  ///< last proposed batch (sequential shim)
};

}  // namespace atf::search
