// Torczon multi-directional search (ensemble member; the paper lists
// "Torczon hillclimbers" among OpenTuner's techniques).
//
// Unlike Nelder-Mead, every trial step moves the *whole* simplex: all
// non-best vertices are reflected through the best vertex; if the best trial
// improves on the incumbent the expanded simplex is also tried, otherwise
// the simplex contracts toward the best vertex. Batches are sequenced
// through the propose/report protocol.
#pragma once

#include <cstdint>
#include <vector>

#include "atf/common/rng.hpp"
#include "atf/search/domain_technique.hpp"

namespace atf::search {

class torczon final : public domain_technique {
public:
  explicit torczon(double expansion = 2.0, double contraction = 0.5)
      : expansion_(expansion), contraction_(contraction) {}

  [[nodiscard]] std::string name() const override { return "torczon"; }

  void initialize(const numeric_domain& domain, std::uint64_t seed) override;
  [[nodiscard]] point next_point() override;
  void report(double cost) override;

  /// Inherently sequential: whether the simplex expands or contracts is
  /// decided from each trial's reported cost, so the technique never takes
  /// more than one slot of an ensemble batch.
  [[nodiscard]] std::size_t max_batch() const override { return 1; }

private:
  enum class stage { init, reflect, expand, contract };

  void random_simplex();
  void begin_round();
  [[nodiscard]] bool degenerate() const;
  [[nodiscard]] std::vector<double> transform(const std::vector<double>& v,
                                              double factor) const;

  const numeric_domain* domain_ = nullptr;
  common::xoshiro256 rng_{0};
  double expansion_, contraction_;

  std::vector<std::vector<double>> verts_;  ///< verts_[0] is the best vertex
  std::vector<double> costs_;
  std::vector<std::vector<double>> trial_;
  std::vector<double> trial_costs_;
  std::vector<std::vector<double>> reflected_;
  std::vector<double> reflected_costs_;
  stage stage_ = stage::init;
  std::size_t pending_ = 0;
};

}  // namespace atf::search
