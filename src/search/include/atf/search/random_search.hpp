// Uniform random search over the constrained space — a simple baseline
// technique and a building block for tests.
#pragma once

#include <cstdint>

#include "atf/common/rng.hpp"
#include "atf/search_technique.hpp"

namespace atf::search {

class random_search final : public atf::search_technique {
public:
  explicit random_search(std::uint64_t seed = 0x5eed);

  void initialize(const search_space& space) override;
  [[nodiscard]] configuration get_next_config() override;
  void report_cost(double cost) override;

private:
  common::xoshiro256 rng_;
  std::uint64_t seed_;
};

}  // namespace atf::search
