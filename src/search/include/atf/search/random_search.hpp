// Uniform random search over the constrained space — a simple baseline
// technique and a building block for tests.
#pragma once

#include <cstdint>
#include <vector>

#include "atf/common/rng.hpp"
#include "atf/search_technique.hpp"

namespace atf::search {

class random_search final : public atf::search_technique {
public:
  explicit random_search(std::uint64_t seed = 0x5eed);

  [[nodiscard]] const char* name() const override { return "random_search"; }

  void initialize(const search_space& space) override;
  [[nodiscard]] configuration get_next_config() override;
  void report_cost(double cost) override;

  /// Native batch proposal: random draws are independent, so a batch is
  /// simply the next max_configs draws of the same RNG stream — the
  /// proposal sequence is identical for every batch width.
  [[nodiscard]] std::vector<configuration> propose_batch(
      std::size_t max_configs) override;

private:
  common::xoshiro256 rng_;
  std::uint64_t seed_;
};

}  // namespace atf::search
