// A rectangular integer domain for numeric search techniques.
//
// Two very different spaces are searched through this one abstraction:
//   * ATF's OpenTuner-style technique explores the *constrained* search
//     space through a single axis — the flat configuration index TP in
//     [0, S) (paper, Section IV-C);
//   * the OpenTuner baseline explores the *unconstrained* Cartesian space
//     with one axis per tuning parameter (paper, Section VI).
// A point is one integer per axis.
#pragma once

#include <cstdint>
#include <vector>

#include "atf/common/rng.hpp"

namespace atf::search {

using point = std::vector<std::uint64_t>;

class numeric_domain {
public:
  numeric_domain() = default;
  explicit numeric_domain(std::vector<std::uint64_t> axis_sizes);

  [[nodiscard]] std::size_t dimensions() const noexcept {
    return axis_sizes_.size();
  }
  [[nodiscard]] std::uint64_t axis_size(std::size_t axis) const {
    return axis_sizes_[axis];
  }
  /// Product of axis sizes, saturated at 2^64-1 (unconstrained GEMM spaces
  /// exceed 64 bits; exact counts are not needed by the techniques).
  [[nodiscard]] std::uint64_t size_saturated() const noexcept {
    return size_;
  }

  [[nodiscard]] point random_point(common::xoshiro256& rng) const;

  /// Clamps a real-valued coordinate vector onto the nearest domain point
  /// (used by simplex techniques that work in continuous space).
  [[nodiscard]] point clamp(const std::vector<double>& coords) const;

  /// Clamps a single coordinate onto [0, axis_size).
  [[nodiscard]] std::uint64_t clamp_axis(std::size_t axis, double value) const;

private:
  std::vector<std::uint64_t> axis_sizes_;
  std::uint64_t size_ = 0;
};

}  // namespace atf::search
