// Sliding-window AUC bandit — OpenTuner's meta-technique for selecting
// which search technique runs next (Ansel et al., PACT 2014).
//
// For every technique the bandit keeps the recent history of "did this use
// produce a new global best?" bits inside a sliding window. The technique's
// exploitation credit is the area under that bit curve (late successes
// weigh more), and an upper-confidence exploration bonus keeps rarely used
// techniques alive:
//
//   score(t) = AUC(t) + C * sqrt(2 * ln(uses_total) / uses(t))
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace atf::search {

class auc_bandit {
public:
  /// `arms`: number of techniques; `window`: history length;
  /// `exploration`: the C constant (OpenTuner default 0.05).
  auc_bandit(std::size_t arms, std::size_t window = 500,
             double exploration = 0.05);

  /// The arm with the highest score; ties break toward the lowest index.
  [[nodiscard]] std::size_t select() const;

  /// The highest-scoring arm among those with eligible[arm] == true — how
  /// the batch-aware ensemble re-asks the bandit once a member has already
  /// filled its share of the batch. eligible.size() must equal the arm
  /// count and at least one arm must be eligible.
  [[nodiscard]] std::size_t select_among(
      const std::vector<bool>& eligible) const;

  /// Records the outcome of one use of `arm`.
  void record(std::size_t arm, bool new_global_best);

  [[nodiscard]] double auc(std::size_t arm) const;
  /// Uses of `arm` inside the sliding window (what the score is based on).
  [[nodiscard]] std::uint64_t uses(std::size_t arm) const;
  /// Uses of `arm` over the bandit's whole lifetime (never evicted).
  [[nodiscard]] std::uint64_t lifetime_uses(std::size_t arm) const;
  [[nodiscard]] std::size_t arms() const noexcept { return arms_; }

private:
  struct entry {
    std::size_t arm;
    bool success;
  };

  std::size_t arms_;
  std::size_t window_;
  double exploration_;
  std::deque<entry> history_;
  std::vector<std::uint64_t> total_uses_;  ///< lifetime uses per arm
};

}  // namespace atf::search
