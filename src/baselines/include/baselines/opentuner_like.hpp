// An OpenTuner-like auto-tuner (Ansel et al., PACT 2014) — the paper's
// second comparison target.
//
// OpenTuner has no mechanism for parameter interdependencies: the user
// declares independent parameter ranges and the ensemble (AUC bandit over
// Nelder-Mead, Torczon hill climbers, mutation, random) explores the full
// Cartesian space. Following the paper's methodology (Section VI, after
// Bruel et al. [3]), configurations violating the kernel's constraints are
// assigned a penalty cost by the user's cost function. For spaces where
// valid configurations are a ~1e-7 fraction, the search never finds one in
// 10,000 evaluations — the effect Figure 2 quantifies.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "atf/search/ensemble.hpp"

namespace baselines::opentuner {

/// One evaluated configuration: parameter name -> value.
using configuration = std::map<std::string, std::uint64_t>;

struct result {
  configuration best;           ///< valid only if found_valid
  double best_cost = 0.0;
  bool found_valid = false;     ///< any non-penalty configuration seen?
  std::uint64_t evaluations = 0;
  std::uint64_t valid_evaluations = 0;
};

class tuner {
public:
  /// Declares an integer parameter with an explicit value list.
  void add_parameter(const std::string& name,
                     std::vector<std::uint64_t> values);

  /// Declares an integer parameter ranging over {1..top}.
  void add_parameter_range(const std::string& name, std::uint64_t top);

  /// Size of the (unconstrained) Cartesian space, saturated at 2^64-1.
  [[nodiscard]] std::uint64_t space_size() const;

  /// Runs `evaluations` steps of the ensemble. `cost` returns the
  /// configuration's cost, or `penalty` for invalid configurations;
  /// `penalty` marks the evaluation as invalid in the result statistics.
  /// `batch` > 1 drives the ensemble through its mixed-batch protocol —
  /// the bandit proposes up to `batch` configurations from distinct member
  /// techniques before seeing any of their costs (batch == 1 is the
  /// sequential protocol and proposes the identical stream).
  result run(std::uint64_t evaluations, double penalty,
             const std::function<double(const configuration&)>& cost,
             std::uint64_t seed = 0x07, std::size_t batch = 1);

private:
  std::vector<std::string> names_;
  std::vector<std::vector<std::uint64_t>> values_;
};

}  // namespace baselines::opentuner
