// A CLTune-like auto-tuner (Nugteren & Codreanu, MCSoC 2015) — the paper's
// primary comparison target, re-implemented with the same API surface
// (Listing 3) and, crucially, the same search-space construction strategy:
//
//   CLTune enumerates the FULL Cartesian product of all parameter value
//   lists and only then filters it with the user's boolean constraint
//   functions. ATF instead filters while iterating constrained ranges.
//
// That difference is the paper's Section VI-A headline: for the unrestricted
// XgemmDirect space, CLTune's generation was aborted after three hours while
// ATF generated its space in under a second. To keep benches terminating,
// generation honours an optional budget (wall-clock seconds and candidate
// count); exceeding it throws generation_aborted, and the enumeration rate
// measured so far allows extrapolating the full generation time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "atf/common/rng.hpp"
#include "ocls/ocls.hpp"

namespace baselines::cltune {

/// Thrown when generation exceeds the configured budget (stands in for the
/// paper's "we aborted after 3 hours").
class generation_aborted : public std::runtime_error {
public:
  generation_aborted(std::string message, std::uint64_t enumerated,
                     double seconds)
      : std::runtime_error(std::move(message)), enumerated_(enumerated),
        seconds_(seconds) {}

  [[nodiscard]] std::uint64_t enumerated() const noexcept {
    return enumerated_;
  }
  [[nodiscard]] double seconds() const noexcept { return seconds_; }

private:
  std::uint64_t enumerated_;
  double seconds_;
};

/// Thrown by Tune() when the filtered search space is empty — the situation
/// CLBlast's restricted WGD ranges produce for the paper's deep-learning
/// matrix sizes.
class empty_space : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

struct generation_report {
  std::uint64_t candidates_enumerated = 0;  ///< full-product tuples visited
  std::uint64_t valid = 0;                  ///< tuples surviving the filters
  double seconds = 0.0;
  bool completed = false;
};

class tuner {
public:
  /// `fraction`: share of the (valid) space the annealing search explores,
  /// as in CLTune's UseAnnealing/Tuner API.
  explicit tuner(ocls::device dev);

  /// Registers the kernel with its base global/local size (the sizes are
  /// later modified via DivGlobalSize / MulLocalSize — CLTune cannot express
  /// arbitrary arithmetic, which is the paper's Section III point).
  std::size_t AddKernel(ocls::kernel kernel,
                        std::vector<std::size_t> global_base,
                        std::vector<std::size_t> local_base);

  void AddParameter(std::size_t id, const std::string& name,
                    std::vector<std::size_t> values);

  /// `constraint` receives the values of `names` in order.
  void AddConstraint(
      std::size_t id,
      std::function<bool(std::vector<std::size_t>)> constraint,
      std::vector<std::string> names);

  /// Divides the base global size (per dimension) by the named parameters.
  void DivGlobalSize(std::size_t id, std::vector<std::string> names);
  /// Multiplies the base global size by the named parameters.
  void MulGlobalSize(std::size_t id, std::vector<std::string> names);
  /// Multiplies the base local size by the named parameters.
  void MulLocalSize(std::size_t id, std::vector<std::string> names);

  void AddArgumentScalar(double value);
  void AddArgumentBuffer(std::size_t element_count);
  void AddDefine(const std::string& name, std::uint64_t value);

  /// Selects annealing over the valid space: explore fraction*S configs at
  /// temperature T (CLTune's UseAnnealing signature).
  void UseAnnealing(double fraction, double temperature);
  /// Exhaustive exploration (CLTune's default full search).
  void UseFullSearch();

  /// Caps generation cost; 0 disables the respective cap.
  void SetGenerationBudget(double seconds, std::uint64_t max_candidates);

  void SetSeed(std::uint64_t seed);

  /// Generates the space (full product + filter), then explores it and
  /// remembers the best configuration. Throws generation_aborted or
  /// empty_space.
  void Tune();

  [[nodiscard]] std::map<std::string, std::size_t> GetBestResult() const;
  [[nodiscard]] double GetBestCost() const noexcept { return best_cost_; }
  [[nodiscard]] const generation_report& GetGenerationReport() const noexcept {
    return report_;
  }
  /// Size of the unfiltered Cartesian product (saturated at 2^64-1).
  [[nodiscard]] std::uint64_t ProductSize() const noexcept;

private:
  struct constraint_def {
    std::function<bool(std::vector<std::size_t>)> fn;
    std::vector<std::size_t> param_indices;
  };

  [[nodiscard]] double evaluate(const std::vector<std::size_t>& values);
  [[nodiscard]] ocls::nd_range geometry(
      const std::vector<std::size_t>& values) const;
  void generate();

  ocls::device device_;
  ocls::kernel kernel_;
  std::vector<std::size_t> global_base_;
  std::vector<std::size_t> local_base_;
  std::vector<std::string> param_names_;
  std::vector<std::vector<std::size_t>> param_values_;
  std::vector<constraint_def> constraints_;
  std::vector<std::size_t> div_global_;  ///< parameter indices
  std::vector<std::size_t> mul_global_;
  std::vector<std::size_t> mul_local_;
  ocls::kernel_args args_;
  ocls::define_map defines_;

  bool use_annealing_ = false;
  double annealing_fraction_ = 1.0;
  double annealing_temperature_ = 4.0;
  double budget_seconds_ = 0.0;
  std::uint64_t budget_candidates_ = 0;
  std::uint64_t seed_ = 0xc17;

  std::vector<std::vector<std::size_t>> valid_;  ///< filtered space
  generation_report report_;
  std::vector<std::size_t> best_values_;
  double best_cost_ = 0.0;
  bool has_best_ = false;
  bool kernel_added_ = false;
};

}  // namespace baselines::cltune
