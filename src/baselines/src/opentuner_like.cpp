#include "baselines/opentuner_like.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "atf/common/math_utils.hpp"

namespace baselines::opentuner {

void tuner::add_parameter(const std::string& name,
                          std::vector<std::uint64_t> values) {
  if (values.empty()) {
    throw std::invalid_argument("opentuner: empty value list for '" + name +
                                "'");
  }
  names_.push_back(name);
  values_.push_back(std::move(values));
}

void tuner::add_parameter_range(const std::string& name, std::uint64_t top) {
  std::vector<std::uint64_t> values;
  values.reserve(top);
  for (std::uint64_t v = 1; v <= top; ++v) {
    values.push_back(v);
  }
  add_parameter(name, std::move(values));
}

std::uint64_t tuner::space_size() const {
  std::uint64_t product = values_.empty() ? 0 : 1;
  for (const auto& values : values_) {
    product = atf::common::saturating_mul(product, values.size());
  }
  return product;
}

result tuner::run(std::uint64_t evaluations, double penalty,
                  const std::function<double(const configuration&)>& cost,
                  std::uint64_t seed, std::size_t batch) {
  if (values_.empty()) {
    throw std::logic_error("opentuner: no parameters declared");
  }
  if (batch == 0) {
    throw std::invalid_argument("opentuner: batch must be at least 1");
  }

  std::vector<std::uint64_t> axes;
  axes.reserve(values_.size());
  for (const auto& values : values_) {
    axes.push_back(values.size());
  }
  atf::search::ensemble engine;
  engine.initialize(atf::search::numeric_domain(std::move(axes)), seed);

  result out;
  while (out.evaluations < evaluations) {
    const std::size_t width = static_cast<std::size_t>(
        std::min<std::uint64_t>(batch, evaluations - out.evaluations));
    const std::vector<atf::search::point> points =
        engine.propose_batch(width);
    if (points.empty()) {
      break;
    }
    std::vector<double> costs;
    costs.reserve(points.size());
    for (const atf::search::point& p : points) {
      configuration config;
      for (std::size_t i = 0; i < names_.size(); ++i) {
        config[names_[i]] = values_[i][p[i]];
      }
      const double c = cost(config);
      costs.push_back(c);
      ++out.evaluations;
      const bool is_valid = c < penalty;
      if (is_valid) {
        ++out.valid_evaluations;
      }
      if (is_valid && (!out.found_valid || c < out.best_cost)) {
        out.best_cost = c;
        out.best = config;
        out.found_valid = true;
      }
    }
    engine.report_batch(costs);
  }
  return out;
}

}  // namespace baselines::opentuner
