#include "baselines/cltune_like.hpp"

#include <algorithm>
#include <cmath>

#include "atf/common/math_utils.hpp"
#include "atf/common/stopwatch.hpp"

namespace baselines::cltune {

tuner::tuner(ocls::device dev) : device_(std::move(dev)) {}

std::size_t tuner::AddKernel(ocls::kernel kernel,
                             std::vector<std::size_t> global_base,
                             std::vector<std::size_t> local_base) {
  kernel_ = std::move(kernel);
  global_base_ = std::move(global_base);
  local_base_ = std::move(local_base);
  kernel_added_ = true;
  return 0;
}

void tuner::AddParameter(std::size_t /*id*/, const std::string& name,
                         std::vector<std::size_t> values) {
  param_names_.push_back(name);
  param_values_.push_back(std::move(values));
}

void tuner::AddConstraint(
    std::size_t /*id*/,
    std::function<bool(std::vector<std::size_t>)> constraint,
    std::vector<std::string> names) {
  constraint_def def;
  def.fn = std::move(constraint);
  for (const auto& name : names) {
    const auto it =
        std::find(param_names_.begin(), param_names_.end(), name);
    if (it == param_names_.end()) {
      throw std::invalid_argument("cltune: unknown parameter '" + name + "'");
    }
    def.param_indices.push_back(
        static_cast<std::size_t>(it - param_names_.begin()));
  }
  constraints_.push_back(std::move(def));
}

namespace {
std::size_t index_of(const std::vector<std::string>& names,
                     const std::string& name) {
  const auto it = std::find(names.begin(), names.end(), name);
  if (it == names.end()) {
    throw std::invalid_argument("cltune: unknown parameter '" + name + "'");
  }
  return static_cast<std::size_t>(it - names.begin());
}
}  // namespace

void tuner::DivGlobalSize(std::size_t /*id*/, std::vector<std::string> names) {
  for (const auto& name : names) {
    div_global_.push_back(index_of(param_names_, name));
  }
}

void tuner::MulGlobalSize(std::size_t /*id*/, std::vector<std::string> names) {
  for (const auto& name : names) {
    mul_global_.push_back(index_of(param_names_, name));
  }
}

void tuner::MulLocalSize(std::size_t /*id*/, std::vector<std::string> names) {
  for (const auto& name : names) {
    mul_local_.push_back(index_of(param_names_, name));
  }
}

void tuner::AddArgumentScalar(double value) { args_.emplace_back(value); }

void tuner::AddArgumentBuffer(std::size_t element_count) {
  args_.emplace_back(std::make_shared<ocls::buffer<float>>(element_count));
}

void tuner::AddDefine(const std::string& name, std::uint64_t value) {
  defines_.set(name, value);
}

void tuner::UseAnnealing(double fraction, double temperature) {
  use_annealing_ = true;
  annealing_fraction_ = fraction;
  annealing_temperature_ = temperature;
}

void tuner::UseFullSearch() { use_annealing_ = false; }

void tuner::SetGenerationBudget(double seconds,
                                std::uint64_t max_candidates) {
  budget_seconds_ = seconds;
  budget_candidates_ = max_candidates;
}

void tuner::SetSeed(std::uint64_t seed) { seed_ = seed; }

std::uint64_t tuner::ProductSize() const noexcept {
  std::uint64_t product = param_values_.empty() ? 0 : 1;
  for (const auto& values : param_values_) {
    product = atf::common::saturating_mul(product, values.size());
  }
  return product;
}

ocls::nd_range tuner::geometry(const std::vector<std::size_t>& values) const {
  ocls::nd_range range;
  range.dims = static_cast<unsigned>(global_base_.size());
  for (std::size_t d = 0; d < global_base_.size() && d < 3; ++d) {
    range.global[d] = global_base_[d];
    range.local[d] = d < local_base_.size() ? local_base_[d] : 1;
  }
  // CLTune's size model: the base sizes modified by Div/Mul with parameter
  // values — round-robin over dimensions as CLTune applies one list entry
  // per dimension (our kernels only use dim-ordered lists).
  auto apply = [&](const std::vector<std::size_t>& indices, auto op) {
    for (std::size_t d = 0; d < indices.size() && d < 3; ++d) {
      op(d, values[indices[d]]);
    }
  };
  apply(div_global_, [&](std::size_t d, std::size_t v) {
    range.global[d] = v == 0 ? 0 : range.global[d] / v;
  });
  apply(mul_global_, [&](std::size_t d, std::size_t v) {
    range.global[d] *= v;
  });
  apply(mul_local_, [&](std::size_t d, std::size_t v) {
    range.local[d] *= v;
  });
  return range;
}

double tuner::evaluate(const std::vector<std::size_t>& values) {
  ocls::define_map defines = defines_;
  for (std::size_t i = 0; i < param_names_.size(); ++i) {
    defines.set(param_names_[i], static_cast<std::uint64_t>(values[i]));
  }
  auto context = std::make_shared<ocls::context>(device_);
  ocls::command_queue queue(context);
  try {
    return queue.launch(kernel_, geometry(values), args_, defines)
        .profile_ns();
  } catch (const ocls::error&) {
    return std::numeric_limits<double>::infinity();
  }
}

void tuner::generate() {
  // The CLTune strategy: odometer over the FULL Cartesian product; every
  // tuple is materialized and tested against all constraints. This is
  // deliberately the slow algorithm the paper measures.
  atf::common::stopwatch timer;
  report_ = {};
  valid_.clear();

  if (param_values_.empty()) {
    report_.completed = true;
    return;
  }
  for (const auto& values : param_values_) {
    if (values.empty()) {
      report_.completed = true;
      return;  // empty product
    }
  }

  std::vector<std::size_t> cursor(param_values_.size(), 0);
  std::vector<std::size_t> tuple(param_values_.size());
  std::vector<std::size_t> constraint_args;
  for (;;) {
    // Budget check (amortized).
    if ((report_.candidates_enumerated & 0xfff) == 0) {
      const double elapsed = timer.elapsed_seconds();
      if ((budget_seconds_ > 0.0 && elapsed > budget_seconds_) ||
          (budget_candidates_ > 0 &&
           report_.candidates_enumerated > budget_candidates_)) {
        report_.seconds = elapsed;
        throw generation_aborted(
            "cltune: search-space generation exceeded its budget",
            report_.candidates_enumerated, elapsed);
      }
    }

    for (std::size_t i = 0; i < cursor.size(); ++i) {
      tuple[i] = param_values_[i][cursor[i]];
    }
    ++report_.candidates_enumerated;

    bool ok = true;
    for (const auto& constraint : constraints_) {
      constraint_args.clear();
      for (const auto index : constraint.param_indices) {
        constraint_args.push_back(tuple[index]);
      }
      if (!constraint.fn(constraint_args)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      valid_.push_back(tuple);
    }

    // Odometer increment, last parameter fastest.
    std::size_t digit = cursor.size();
    while (digit-- > 0) {
      if (++cursor[digit] < param_values_[digit].size()) {
        break;
      }
      cursor[digit] = 0;
      if (digit == 0) {
        report_.valid = valid_.size();
        report_.seconds = timer.elapsed_seconds();
        report_.completed = true;
        return;
      }
    }
  }
}

void tuner::Tune() {
  if (!kernel_added_) {
    throw std::logic_error("cltune: AddKernel must be called before Tune");
  }
  generate();
  if (valid_.empty()) {
    throw empty_space("cltune: no configuration satisfies the constraints");
  }

  has_best_ = false;
  atf::common::xoshiro256 rng(seed_);

  if (!use_annealing_) {
    for (const auto& values : valid_) {
      const double cost = evaluate(values);
      if (std::isfinite(cost) && (!has_best_ || cost < best_cost_)) {
        best_cost_ = cost;
        best_values_ = values;
        has_best_ = true;
      }
    }
  } else {
    const auto budget = static_cast<std::uint64_t>(std::max(
        1.0, annealing_fraction_ * static_cast<double>(valid_.size())));
    std::uint64_t current = rng.below(valid_.size());
    double current_cost = evaluate(valid_[current]);
    if (std::isfinite(current_cost)) {
      best_cost_ = current_cost;
      best_values_ = valid_[current];
      has_best_ = true;
    }
    for (std::uint64_t step = 1; step < budget; ++step) {
      const std::uint64_t proposed = rng.below(valid_.size());
      const double cost = evaluate(valid_[proposed]);
      if (std::isfinite(cost) && (!has_best_ || cost < best_cost_)) {
        best_cost_ = cost;
        best_values_ = valid_[proposed];
        has_best_ = true;
      }
      bool accept;
      if (!std::isfinite(cost)) {
        accept = false;
      } else if (!std::isfinite(current_cost) || cost <= current_cost) {
        accept = true;
      } else {
        const double delta_percent =
            (cost - current_cost) / current_cost * 100.0;
        accept = rng.uniform() <
                 std::exp(-delta_percent / annealing_temperature_);
      }
      if (accept) {
        current = proposed;
        current_cost = cost;
      }
    }
  }

  if (!has_best_) {
    throw empty_space("cltune: every valid configuration failed to launch");
  }
}

std::map<std::string, std::size_t> tuner::GetBestResult() const {
  if (!has_best_) {
    throw std::logic_error("cltune: Tune() found no result");
  }
  std::map<std::string, std::size_t> result;
  for (std::size_t i = 0; i < param_names_.size(); ++i) {
    result[param_names_[i]] = best_values_[i];
  }
  return result;
}

}  // namespace baselines::cltune
