// A tunable CSR SpMV — the irregular workload family of the kernel suite
// (DESIGN.md §14): y = A * x for a sparse A in compressed-sparse-row form.
//
// The landscape is *structurally* unlike GEMM's: there are no tile-edge
// divides-chains at all. The knobs trade lane utilization against load
// balance on rows of varying length, and every constraint is an occupancy
// bound — against the device's SIMD width and work-group limit — rather
// than a divisibility web:
//
//   VW    threads cooperating on one row ("CSR-vector" width), in
//         {1,2,4,8,16,32}; VW <= device SIMD width, VW | WG
//   WG    work-group size, a power of two in {32..1024}, <= device limit
//   RPB   row-blocks each thread-row processes before the group exits,
//         in {1..8} (larger RPB amortizes scheduling and averages out
//         row-length variance, but shrinks the launch)
//   UNROLL  nnz-loop unrolling, in {1,2,4} (free knob)
//
// A work-group owns (WG / VW) * RPB consecutive rows. The synthetic matrix
// generator is deterministic and exposes an *irregularity factor*: row
// lengths spread around the mean by up to ±skew, which the cost model
// converts into divergence and imbalance penalties — the phenomena that
// make SpMV tuning genuinely different per device.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "atf/tp.hpp"
#include "ocls/device.hpp"
#include "ocls/kernel.hpp"
#include "ocls/ndrange.hpp"

namespace atf::kernels::spmv {

struct problem {
  std::size_t rows = 0;        ///< matrix rows (== columns; square)
  std::size_t nnz_mean = 8;    ///< average non-zeros per row
  double skew = 0.5;           ///< irregularity in [0,1): row length varies
                               ///< in [mean*(1-skew), mean*(1+skew)]
};

/// A deterministic synthetic CSR matrix (plus the dense x vector). Row
/// lengths follow a fixed hash of the row index, so every caller — cost
/// function, reference check, tests — sees the same matrix.
struct csr_matrix {
  std::vector<std::uint32_t> row_ptr;  ///< rows+1 entries
  std::vector<std::uint32_t> cols;     ///< nnz entries
  std::vector<float> vals;             ///< nnz entries
  std::vector<float> x;                ///< rows entries

  [[nodiscard]] std::size_t nnz() const { return cols.size(); }
};

[[nodiscard]] csr_matrix make_matrix(const problem& prob,
                                     std::uint64_t seed = 0x5ee);

/// The scalar reference y = A * x.
[[nodiscard]] std::vector<float> reference_spmv(const csr_matrix& m);

struct params {
  std::uint64_t vw = 4;
  std::uint64_t wg = 128;
  std::uint64_t rpb = 1;
  std::uint64_t unroll = 1;

  [[nodiscard]] static params from_defines(const ocls::define_map& defines);
  void to_defines(ocls::define_map& defines) const;
};

struct tuning_setup {
  atf::tp<std::uint64_t> vw, wg;      ///< occupancy-coupled pair
  atf::tp<std::uint64_t> rpb;        ///< singleton
  atf::tp<std::uint64_t> unroll;     ///< singleton

  [[nodiscard]] std::vector<atf::tp_group> groups() const {
    return {atf::G(vw, wg), atf::G(rpb), atf::G(unroll)};
  }
};

[[nodiscard]] tuning_setup make_tuning_parameters(
    const problem& prob, const ocls::device_profile& dev);

/// Rows a single work-group covers: (WG / VW) * RPB.
[[nodiscard]] std::size_t rows_per_group(const params& p);

/// Launch: 1D, ceil(rows / rows_per_group) groups of WG threads.
[[nodiscard]] ocls::nd_range launch_range(const problem& prob,
                                          const params& p);

/// Full validity predicate (brute-force oracle for the space tests).
[[nodiscard]] bool valid(const problem& prob, const params& p,
                         const ocls::device_profile& dev);

/// Kernel args: (ROWS scalar, row_ptr, cols, vals, x, y buffers).
[[nodiscard]] ocls::kernel make_kernel();

[[nodiscard]] ocls::define_map make_defines(const problem& prob,
                                            const params& p);

}  // namespace atf::kernels::spmv
