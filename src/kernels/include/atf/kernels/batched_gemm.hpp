// A tunable batched GEMM over many small matrices — the occupancy-bound
// workload family of the kernel suite (DESIGN.md §14):
//
//   C[b] = A[b] * B[b]   for b in 0..BATCH,  A: m x k, B: k x n, C: m x n
//
// Individual products are tiny (m, n, k of a few dozen), so no single batch
// can fill a device; the landscape is ruled by *packing* — how many batches
// share one work-group — and by per-work-group scheduling overhead, not by
// cache blocking. The knobs:
//
//   TM, TN    per-thread register tile; TM | m, TN | n. A thread computes a
//             TM x TN block of its batch's C, so one batch needs
//             (m/TM)*(n/TN) threads.
//   BPW      batches packed per work-group, in {1..16}; the *packing
//             constraint* (m/TM)*(n/TN)*BPW <= max work-group size ties it
//             to both tile knobs.
//   VECN     vector width along n, in {1,2,4,8}; VECN | TN
//   KU       k-loop unrolling, in {1..k}; KU | k
//   LMEM_AB  stage all BPW batches' A and B panels in local memory;
//            BPW * (m*k + k*n) floats must fit the device limit
//
// Launch: 1D, ceil(BATCH / BPW) groups of (m/TM)*(n/TN)*BPW threads. The
// constraint *shape* is a two-sided pincer — divisibility from the problem
// size below (TM | m, TN | n, VECN | TN, KU | k), capacity from the device
// above (packing, local memory) — distinct from both XgemmDirect's deep
// chain web and stencil2d's edge chains; the per-family tests pin it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "atf/tp.hpp"
#include "ocls/device.hpp"
#include "ocls/kernel.hpp"
#include "ocls/ndrange.hpp"

namespace atf::kernels::batched_gemm {

struct problem {
  std::size_t batch = 0;  ///< number of independent small GEMMs
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t k = 0;
};

struct params {
  std::uint64_t tm = 2;
  std::uint64_t tn = 2;
  std::uint64_t bpw = 1;
  std::uint64_t vecn = 1;
  std::uint64_t ku = 1;
  bool lmem_ab = false;

  [[nodiscard]] static params from_defines(const ocls::define_map& defines);
  void to_defines(ocls::define_map& defines) const;
};

struct tuning_setup {
  atf::tp<std::uint64_t> tm, tn, vecn;  ///< register-tile knobs
  atf::tp<std::uint64_t> bpw;          ///< packing knob (references tm, tn)
  atf::tp<bool> lmem_ab;               ///< staging knob (references bpw)
  atf::tp<std::uint64_t> ku;           ///< singleton

  [[nodiscard]] std::vector<atf::tp_group> groups() const {
    return {atf::G(tm, tn, vecn, bpw, lmem_ab), atf::G(ku)};
  }
};

[[nodiscard]] tuning_setup make_tuning_parameters(
    const problem& prob, const ocls::device_profile& dev);

/// Threads serving one batch: (m/TM) * (n/TN).
[[nodiscard]] std::size_t threads_per_batch(const problem& prob,
                                            const params& p);

/// Launch: 1D, ceil(batch / BPW) groups of threads_per_batch * BPW.
[[nodiscard]] ocls::nd_range launch_range(const problem& prob,
                                          const params& p);

/// Full validity predicate (brute-force oracle for the space tests).
[[nodiscard]] bool valid(const problem& prob, const params& p,
                         const ocls::device_profile& dev);

/// Kernel args: (BATCH, M, N, K scalars, A, B, C buffers); A/B/C are the
/// batches concatenated in row-major order.
[[nodiscard]] ocls::kernel make_kernel();

[[nodiscard]] ocls::define_map make_defines(const problem& prob,
                                            const params& p);

/// Deterministic operands with exactly-representable entries, so every
/// accumulation order produces bitwise-identical results.
[[nodiscard]] std::vector<float> make_a(const problem& prob);
[[nodiscard]] std::vector<float> make_b(const problem& prob);

/// The scalar reference C = A * B per batch.
[[nodiscard]] std::vector<float> reference_gemm(const problem& prob,
                                                const std::vector<float>& a,
                                                const std::vector<float>& b);

}  // namespace atf::kernels::batched_gemm
