// The kernel registry (DESIGN.md §14): every workload family the repository
// ships — the paper's saxpy and XgemmDirect, plus reduce, conv2d and the
// suite's stencil2d / spmv / batched_gemm — registered by name with
// everything a generic driver needs:
//
//   * a search-space builder (input size + device profile -> dependency
//     groups),
//   * a cost-function factory (analytic simulator launch; invalid launches
//     surface as atf::evaluation_error, i.e. failed evaluations),
//   * a reference check (functional execution of a configuration compared
//     against a scalar host reference), and
//   * the input-size descriptor (dimension names, default size).
//
// atf_tune --kernel <name>, bench/kernel_suite and atf_served all address
// families through this table instead of hard-coding one kernel each.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "atf/configuration.hpp"
#include "atf/search_technique.hpp"
#include "atf/tp.hpp"
#include "ocls/device.hpp"

namespace atf::kernels::registry {

/// A problem size as the positive extents of the family's dimensions, e.g.
/// {4096} for saxpy's N or {8, 16, 16, 16} for batched_gemm's BxMxNxK.
struct input_size {
  std::vector<std::uint64_t> dims;

  /// Parses "64x64x64"-style text ('x' or 'X' separated, all positive).
  /// Throws std::invalid_argument on malformed text.
  [[nodiscard]] static input_size parse(const std::string& text);

  [[nodiscard]] std::string to_string() const;  ///< "64x64x64"
};

/// One registered kernel family.
struct entry {
  std::string name;                ///< registry key ("stencil2d", ...)
  std::string description;         ///< one-line summary for listings
  std::string dim_names;           ///< "HxWxR" — what --size means here
  input_size default_size;         ///< used when the caller gives no size
  std::size_t knob_count = 0;      ///< number of tuning parameters
  std::string constraint_summary;  ///< human-readable constraint shape

  /// Builds the family's dependency groups for a concrete size and device.
  /// Throws std::invalid_argument for a size with the wrong number of
  /// dimensions or degenerate extents.
  std::function<std::vector<atf::tp_group>(const input_size&,
                                           const ocls::device_profile&)>
      make_groups;

  /// Builds the analytic cost function (modeled ns; model-only launches).
  std::function<std::function<double(const atf::configuration&)>(
      const input_size&, const ocls::device&)>
      make_cost;

  /// Executes the configuration functionally and compares against the
  /// family's scalar reference. Returns true when the results match.
  std::function<bool(const input_size&, const ocls::device&,
                     const atf::configuration&)>
      reference_check;
};

/// All registered families, in registration order (paper kernels first).
[[nodiscard]] const std::vector<entry>& all();

/// The entry for `name`, or nullptr if no family has that name.
[[nodiscard]] const entry* find(const std::string& name);

/// The registered names, in registration order.
[[nodiscard]] std::vector<std::string> names();

/// Builds a search technique from its CLI name (exhaustive | annealing |
/// opentuner | surrogate | random). Throws std::invalid_argument for
/// unknown names.
[[nodiscard]] std::unique_ptr<atf::search_technique> make_technique(
    const std::string& name, std::uint64_t seed);

/// How registry::tune drives the tuner.
struct tune_settings {
  std::string technique = "exhaustive";
  std::size_t evaluations = 0;  ///< 0 = sweep the whole space
  std::uint64_t seed = 0;
  std::string journal;          ///< non-empty: crash-safe session journal
};

struct tune_outcome {
  atf::configuration best;
  double best_ns = 0.0;
  std::uint64_t evaluations = 0;
  std::uint64_t failed_evaluations = 0;
  std::uint64_t space_size = 0;
};

/// Generates the family's space on `dev`, explores it with the configured
/// technique and returns the best configuration. Throws
/// atf::empty_search_space_error when no configuration is valid and
/// std::invalid_argument for bad sizes/techniques.
[[nodiscard]] tune_outcome tune(const entry& e, const input_size& size,
                                const ocls::device& dev,
                                const tune_settings& settings);

}  // namespace atf::kernels::registry
