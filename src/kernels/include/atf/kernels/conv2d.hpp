// A direct 2D convolution kernel (valid padding, single channel) — the
// second workload class the paper's Caffe motivation implies. Demonstrates
// ATF on a kernel whose parameters mix integers, a vector width and a
// boolean (local-memory staging), with two dependency groups.
//
//   out[y][x] = sum_{r,s} in[y+r][x+s] * flt[r][s]
//     in:  H x W,  flt: R x S,  out: (H-R+1) x (W-S+1)
//
// Tuning parameters and constraints:
//   TBX, TBY     work-group output tile, in {1..W_out} / {1..H_out}
//   LX,  LY      thread grid; LX | TBX, LY | TBY, LX*LY <= max work-group
//   VECX         vector width in x, in {1,2,4,8}; VECX | (TBX / LX)
//   UNROLL       filter-row unrolling, in {1..R}; UNROLL | R
//   USE_LMEM     stage the input tile in local memory; the staged tile
//                (TBX+S-1) x (TBY+R-1) floats must fit the device
//
// TBX/LX/VECX and TBY/LY form two *dependency groups* together with the
// shared parameters — we keep one group for correctness (UNROLL and
// USE_LMEM are independent singletons and make good extra groups, which the
// Section V parallel generation exploits).
#pragma once

#include <cstddef>
#include <vector>

#include "atf/tp.hpp"
#include "ocls/device.hpp"
#include "ocls/kernel.hpp"
#include "ocls/ndrange.hpp"

namespace atf::kernels::conv2d {

struct problem {
  std::size_t height = 0;          ///< input H
  std::size_t width = 0;           ///< input W
  std::size_t filter_height = 0;   ///< R
  std::size_t filter_width = 0;    ///< S

  [[nodiscard]] std::size_t out_height() const {
    return height - filter_height + 1;
  }
  [[nodiscard]] std::size_t out_width() const {
    return width - filter_width + 1;
  }
};

struct params {
  std::uint64_t tbx = 8;
  std::uint64_t tby = 8;
  std::uint64_t lx = 8;
  std::uint64_t ly = 8;
  std::uint64_t vecx = 1;
  std::uint64_t unroll = 1;
  bool use_lmem = true;

  [[nodiscard]] static params from_defines(const ocls::define_map& defines);
  void to_defines(ocls::define_map& defines) const;
};

struct tuning_setup {
  atf::tp<std::uint64_t> tbx, lx, vecx;  ///< x group
  atf::tp<std::uint64_t> tby, ly;        ///< y group
  atf::tp<std::uint64_t> unroll;         ///< singleton group
  atf::tp<bool> use_lmem;                ///< singleton group (lmem-guarded)

  /// The three dependency groups of Section V. USE_LMEM's local-memory
  /// bound references TBX/TBY, so it joins the x group's chain via a merged
  /// group layout: {TBX, LX, VECX, TBY, LY, USE_LMEM} + {UNROLL}.
  [[nodiscard]] std::vector<atf::tp_group> groups() const {
    return {atf::G(tbx, lx, vecx, tby, ly, use_lmem), atf::G(unroll)};
  }
};

[[nodiscard]] tuning_setup make_tuning_parameters(
    const problem& prob, std::size_t max_work_group_size = 1024,
    std::size_t local_mem_bytes = 48 * 1024);

/// Launch: ceil-rounded tile grid, LX x LY threads per group.
[[nodiscard]] ocls::nd_range launch_range(const problem& prob,
                                          const params& p);

/// Full validity predicate (for tests and penalty baselines).
[[nodiscard]] bool valid(const problem& prob, const params& p,
                         std::size_t max_work_group_size = 1024,
                         std::size_t local_mem_bytes = 48 * 1024);

/// Kernel args: (H, W, R, S scalars, in, flt, out buffers).
[[nodiscard]] ocls::kernel make_kernel();

[[nodiscard]] ocls::define_map make_defines(const problem& prob,
                                            const params& p);

}  // namespace atf::kernels::conv2d
