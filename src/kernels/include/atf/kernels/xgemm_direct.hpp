// CLBlast's XgemmDirect kernel (paper, Section VI): a tiled, vectorized GEMM
//
//   C[m x n] = A[m x k] * B[k x n]
//
// optimized for small matrices (up to 2^10 x 2^10) and used by Caffe. It has
// the paper's 10 tuning parameters:
//
//   WGD            tile size: each work-group computes a WGD x WGD tile of C
//   MDIMCD,NDIMCD  work-group thread grid (MDIMCD x NDIMCD threads)
//   MDIMAD,NDIMBD  thread re-grouping used to load the A / B tiles
//   KWID           k-loop unrolling factor
//   VWMD,VWND      vector widths in the M / N directions
//   PADA,PADB      local-memory padding toggles (bank-conflict avoidance)
//
// and the 17 interdependency constraints reconstructed from CLBlast:
//
//    1. KWID divides WGD
//    2. MDIMCD divides WGD                 3. NDIMCD divides WGD
//    4. MDIMAD divides WGD                 5. NDIMBD divides WGD
//    6. MDIMAD divides MDIMCD*NDIMCD       7. NDIMBD divides MDIMCD*NDIMCD
//    8. MDIMCD*VWMD divides WGD            9. NDIMCD*VWND divides WGD
//   10. MDIMAD*VWMD divides WGD           11. NDIMBD*VWND divides WGD
//   12. MDIMCD*NDIMCD <= max work-group size
//   13. 2*WGD^2 floats of __local memory fit the device (on WGD)
//   14. padded __local memory fits the device (on PADB)
//   15. VWMD in {1,2,4,8}                 16. VWND in {1,2,4,8}
//   17. [restricted mode only] WGD divides M and N of the result matrix —
//       required when the global size must be expressible in CLTune
//       (Div/MulGlobalSize); ATF's general mode instead rounds the global
//       size up to a multiple of the local size, exactly like CLBlast's
//       host code (paper, Section VI-A).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "atf/tp.hpp"
#include "ocls/device.hpp"
#include "ocls/kernel.hpp"
#include "ocls/ndrange.hpp"

namespace atf::kernels::xgemm {

/// Problem shape: C[m x n] = A[m x k] * B[k x n].
struct problem {
  std::size_t m = 0;
  std::size_t n = 0;
  std::size_t k = 0;
};

/// The paper's four Caffe input sizes (Section VI): "IS i: (m x k) and
/// (k x n)".
[[nodiscard]] problem caffe_input_size(int index);  // index in 1..4

/// One concrete configuration of the 10 parameters.
struct params {
  std::uint64_t wgd = 8;
  std::uint64_t mdimcd = 8;
  std::uint64_t ndimcd = 8;
  std::uint64_t mdimad = 8;
  std::uint64_t ndimbd = 8;
  std::uint64_t kwid = 1;
  std::uint64_t vwmd = 1;
  std::uint64_t vwnd = 1;
  bool pada = true;
  bool padb = true;

  /// The kernel's built-in defaults — "neither optimized for the target
  /// device nor for the input size; chosen to yield a good performance on
  /// average" (paper, Section VI-B: WGD=8, KWID=1, ...).
  [[nodiscard]] static params defaults() { return params{}; }

  [[nodiscard]] static params from_defines(const ocls::define_map& defines);
  void to_defines(ocls::define_map& defines) const;
  [[nodiscard]] std::string to_string() const;
};

/// How the launch geometry treats matrix extents that WGD does not divide.
enum class size_mode {
  /// CLTune-expressible: the global size is exactly (M/WGD)*MDIMCD x
  /// (N/WGD)*NDIMCD, so WGD must divide M and N (constraint 17).
  restricted,
  /// CLBlast's host code: ceil-rounded global size, any WGD admissible;
  /// the kernel guards out-of-range rows/columns.
  general,
};

/// Device limits consulted by constraints 12-14. Defaults to the K20m.
struct device_limits {
  std::size_t max_work_group_size = 1024;
  std::size_t local_mem_bytes = 48 * 1024;

  [[nodiscard]] static device_limits of(const ocls::device_profile& profile) {
    return {profile.max_work_group_size, profile.local_mem_bytes};
  }
};

/// The 10 tuning parameters wired with the constraints above. The tps share
/// state with the returned group so they can appear in launch-geometry
/// expressions. `range_limit` caps the upper end of the {1..N}-style integer
/// ranges (0 = the paper's max(M, N) behaviour).
struct tuning_setup {
  atf::tp<std::uint64_t> wgd, mdimcd, ndimcd, mdimad, ndimbd, kwid, vwmd,
      vwnd;
  atf::tp<bool> pada, padb;

  [[nodiscard]] atf::tp_group group() const {
    return atf::G(wgd, mdimcd, ndimcd, mdimad, ndimbd, kwid, vwmd, vwnd,
                  pada, padb);
  }
};

[[nodiscard]] tuning_setup make_tuning_parameters(
    const problem& prob, size_mode mode,
    const device_limits& limits = device_limits{},
    std::uint64_t range_limit = 0);

/// Per-parameter unconstrained range sizes (for the Section VI-A
/// unconstrained-space cardinalities, which overflow 64 bits).
[[nodiscard]] std::vector<std::uint64_t> unconstrained_range_sizes(
    const problem& prob, std::uint64_t range_limit = 0);

/// Launch geometry for a configuration.
[[nodiscard]] ocls::nd_range launch_range(const problem& prob,
                                          const params& p, size_mode mode);

/// Full validity check of a configuration — used by the OpenTuner baseline,
/// which searches the unconstrained space and penalizes invalid points
/// (paper, Section VI: "we report a penalty value in case of a
/// configuration for which XgemmDirect's constraints are not satisfied").
[[nodiscard]] bool valid(const problem& prob, const params& p, size_mode mode,
                         const device_limits& limits = device_limits{});

/// The simulated kernel. Functional body args: (M, N, K scalars, A, B, C
/// buffers); all 10 parameters plus M, N, K arrive via defines.
[[nodiscard]] ocls::kernel make_kernel();

/// Writes problem + configuration into a define map (what the cost function
/// does before "compiling").
[[nodiscard]] ocls::define_map make_defines(const problem& prob,
                                            const params& p);

[[nodiscard]] const char* source();

}  // namespace atf::kernels::xgemm
