// Scalar reference implementations used to verify the functional results of
// the simulated kernels (the analogue of ATF's optional OpenCL result
// checking).
#pragma once

#include <cstddef>
#include <span>

namespace atf::kernels::reference {

/// y[i] = a * x[i] + y[i] for all i.
void saxpy(float a, std::span<const float> x, std::span<float> y);

/// C[m x n] = A[m x k] * B[k x n], row-major, C overwritten.
void gemm(std::size_t m, std::size_t n, std::size_t k,
          std::span<const float> a, std::span<const float> b,
          std::span<float> c);

}  // namespace atf::kernels::reference
