// A tunable 2D star stencil (Jacobi sweep, radius R) — the bandwidth-bound
// workload family of the kernel suite (DESIGN.md §14). Stencils re-read
// every interior point 4R+1 times, so the landscape is dominated by how a
// configuration shapes *memory traffic*: halo-staged tiles trade local
// memory for global re-reads, vector width shapes coalescing, and the
// compute knobs barely matter — the exact opposite of XgemmDirect.
//
//   out[y][x] = W0 * in[y][x]
//             + WK * sum_{r=1..R} in[y±r][x] + in[y][x±r]   (interior)
//   out[y][x] = in[y][x]                                    (boundary ring)
//
// Tuning parameters and constraints (divides-chains on the tile edges):
//   TX, TY     work-group output tile, in {1..W-2R} / {1..H-2R}
//   LX, LY     thread grid; LX | TX, LY | TY, LX*LY <= max work-group
//   VEC        vector width in x, in {1,2,4,8}; VEC | (TX / LX)
//   UNROLL     radius-loop unrolling, in {1..R}; UNROLL | R
//   HALO_LMEM  stage the haloed input tile (TX+2R) x (TY+2R) floats in
//              local memory; must fit the device limit
//
// The x chain TX -> LX -> VEC and the y chain TY -> LY are tied together
// only by the work-group bound and the staged-tile bound, so the space has
// two shallow divides-chains instead of XgemmDirect's single deep web of
// 17 cross-parameter constraints — a structurally different space that the
// per-family constraint tests pin.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "atf/tp.hpp"
#include "ocls/device.hpp"
#include "ocls/kernel.hpp"
#include "ocls/ndrange.hpp"

namespace atf::kernels::stencil2d {

struct problem {
  std::size_t height = 0;  ///< grid H (including the boundary ring)
  std::size_t width = 0;   ///< grid W
  std::size_t radius = 1;  ///< star radius R

  /// Interior extent actually computed by the sweep.
  [[nodiscard]] std::size_t int_height() const {
    return height - 2 * radius;
  }
  [[nodiscard]] std::size_t int_width() const { return width - 2 * radius; }
};

struct params {
  std::uint64_t tx = 8;
  std::uint64_t ty = 8;
  std::uint64_t lx = 8;
  std::uint64_t ly = 8;
  std::uint64_t vec = 1;
  std::uint64_t unroll = 1;
  bool halo_lmem = true;

  [[nodiscard]] static params from_defines(const ocls::define_map& defines);
  void to_defines(ocls::define_map& defines) const;
};

struct tuning_setup {
  atf::tp<std::uint64_t> tx, lx, vec;  ///< x-edge divides-chain
  atf::tp<std::uint64_t> ty, ly;      ///< y-edge divides-chain
  atf::tp<std::uint64_t> unroll;      ///< singleton
  atf::tp<bool> halo_lmem;            ///< lmem-guarded, joins the merged group

  /// Two dependency groups: the tile/thread/staging web and the radius
  /// unroll singleton.
  [[nodiscard]] std::vector<atf::tp_group> groups() const {
    return {atf::G(tx, lx, vec, ty, ly, halo_lmem), atf::G(unroll)};
  }
};

[[nodiscard]] tuning_setup make_tuning_parameters(
    const problem& prob, std::size_t max_work_group_size = 1024,
    std::size_t local_mem_bytes = 48 * 1024);

/// Launch: ceil-rounded tile grid over the interior, LX x LY threads.
[[nodiscard]] ocls::nd_range launch_range(const problem& prob,
                                          const params& p);

/// Full validity predicate (brute-force oracle for the space tests).
[[nodiscard]] bool valid(const problem& prob, const params& p,
                         std::size_t max_work_group_size = 1024,
                         std::size_t local_mem_bytes = 48 * 1024);

/// Kernel args: (H, W, R scalars, in, out buffers).
[[nodiscard]] ocls::kernel make_kernel();

[[nodiscard]] ocls::define_map make_defines(const problem& prob,
                                            const params& p);

/// The fixed stencil weights (center, ring) the body and references use.
inline constexpr float center_weight = 0.5f;
inline constexpr float ring_weight = 0.125f;

/// Deterministic input grid with exactly-representable entries, so every
/// sweep order produces bitwise-identical sums.
[[nodiscard]] std::vector<float> make_input(const problem& prob);

/// The scalar reference sweep (interior stencil + boundary copy).
[[nodiscard]] std::vector<float> reference_stencil(const problem& prob,
                                                   const std::vector<float>& in);

}  // namespace atf::kernels::stencil2d
