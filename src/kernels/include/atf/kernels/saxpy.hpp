// The saxpy kernel of Listing 1 (simplified from CLBlast's Xaxpy).
//
//   y[i] = a * x[i] + y[i]
//
// Each work-item processes WPT elements with a global-size stride (the
// CLBlast access pattern, coalesced on GPUs). Tuning parameters:
//   * WPT (work-per-thread) — must divide the input size N;
//   * LS  (local size)      — must divide the global size N / WPT.
#pragma once

#include <cstddef>

#include "atf/tp.hpp"
#include "ocls/kernel.hpp"
#include "ocls/ndrange.hpp"

namespace atf::kernels::saxpy {

/// The tuning parameters of the ATF program in Listing 2, wired with the
/// paper's constraints. The returned tps share state with the group, so
/// they can be used in launch-geometry expressions.
struct tuning_setup {
  atf::tp<std::size_t> wpt;
  atf::tp<std::size_t> ls;

  [[nodiscard]] atf::tp_group group() const { return atf::G(wpt, ls); }
};

/// Builds WPT in [1, n] dividing n, and LS in [1, n] dividing n / WPT.
[[nodiscard]] tuning_setup make_tuning_parameters(std::size_t n);

/// Launch geometry: global size n / wpt, local size ls.
[[nodiscard]] ocls::nd_range launch_range(std::size_t n, std::size_t wpt,
                                          std::size_t ls);

/// The simulated kernel: functional body (args: N scalar, a scalar, x buffer,
/// y buffer; defines: WPT) plus the analytical performance model.
[[nodiscard]] ocls::kernel make_kernel();

/// OpenCL C source of Listing 1, carried for fidelity (the simulator's
/// cost function logs it; it is never parsed).
[[nodiscard]] const char* source();

}  // namespace atf::kernels::saxpy
