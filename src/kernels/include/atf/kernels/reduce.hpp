// A tunable sum reduction — the classic first workload of OpenCL tuning
// guides, exercising power-of-two constraints and grid-stride accumulation.
//
//   out[g] = sum of the elements work-group g accumulates;
//   the host (or a second launch) adds the per-group partials.
//
// Tuning parameters and constraints:
//   LS      work-group size, a power of two, <= the device limit
//           (powers of two because the in-group tree reduction halves LS)
//   WPT     elements each work-item accumulates before the tree phase,
//           in {1..N/LS} (grid-stride loop; tail guarded)
//   UNROLL  accumulation-loop unrolling in {1,2,4,8}; UNROLL | WPT
#pragma once

#include <cstddef>

#include "atf/tp.hpp"
#include "ocls/kernel.hpp"
#include "ocls/ndrange.hpp"

namespace atf::kernels::reduce {

struct params {
  std::uint64_t ls = 128;
  std::uint64_t wpt = 4;
  std::uint64_t unroll = 1;
};

struct tuning_setup {
  atf::tp<std::uint64_t> ls, wpt, unroll;

  [[nodiscard]] atf::tp_group group() const { return atf::G(ls, wpt, unroll); }
};

[[nodiscard]] tuning_setup make_tuning_parameters(
    std::size_t n, std::size_t max_work_group_size = 1024);

/// Number of work-groups a configuration launches.
[[nodiscard]] std::size_t num_groups(std::size_t n, const params& p);

[[nodiscard]] ocls::nd_range launch_range(std::size_t n, const params& p);

/// Kernel args: (N scalar, in buffer, partials buffer with >= num_groups
/// elements).
[[nodiscard]] ocls::kernel make_kernel();

}  // namespace atf::kernels::reduce
