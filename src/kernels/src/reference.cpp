#include "atf/kernels/reference.hpp"

#include <cassert>

namespace atf::kernels::reference {

void saxpy(float a, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = a * x[i] + y[i];
  }
}

void gemm(std::size_t m, std::size_t n, std::size_t k,
          std::span<const float> a, std::span<const float> b,
          std::span<float> c) {
  assert(a.size() >= m * k);
  assert(b.size() >= k * n);
  assert(c.size() >= m * n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        acc += a[i * k + p] * b[p * n + j];
      }
      c[i * n + j] = acc;
    }
  }
}

}  // namespace atf::kernels::reference
