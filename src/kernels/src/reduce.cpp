#include "atf/kernels/reduce.hpp"

#include <algorithm>
#include <cmath>

#include "atf/common/math_utils.hpp"
#include "atf/constraint.hpp"
#include "atf/range.hpp"
#include "ocls/buffer.hpp"
#include "ocls/error.hpp"

namespace atf::kernels::reduce {

tuning_setup make_tuning_parameters(std::size_t n,
                                    std::size_t max_work_group_size) {
  atf::tp<std::uint64_t> ls(
      "LS", atf::interval<std::uint64_t>(1, max_work_group_size),
      atf::power_of_two());
  atf::tp<std::uint64_t> wpt(
      "WPT", atf::interval<std::uint64_t>(1, std::max<std::size_t>(n, 1)),
      atf::less_equal(atf::expr<std::uint64_t>([ls, n] {
        return static_cast<std::uint64_t>(n) /
               std::max<std::uint64_t>(ls.eval(), 1);
      })));
  atf::tp<std::uint64_t> unroll("UNROLL", atf::set<std::uint64_t>({1, 2, 4, 8}),
                                atf::divides(wpt));
  return tuning_setup{std::move(ls), std::move(wpt), std::move(unroll)};
}

std::size_t num_groups(std::size_t n, const params& p) {
  return common::ceil_div(n, p.ls * p.wpt);
}

ocls::nd_range launch_range(std::size_t n, const params& p) {
  return ocls::nd_range::d1(num_groups(n, p) * p.ls, p.ls);
}

namespace {

void body(const ocls::nd_item& item, const ocls::kernel_args& args,
          const ocls::define_map& defines) {
  if (args.size() != 3) {
    throw ocls::invalid_kernel_args("reduce expects (N, in, partials)");
  }
  const auto n = args[0].scalar<std::size_t>();
  auto& in = args[1].buf<float>();
  auto& partials = args[2].buf<float>();
  const std::uint64_t wpt = defines.get_uint("WPT");

  // Work-items of a group execute sequentially in the simulator, so a
  // plain accumulation into the group's partial is race-free (real OpenCL
  // uses a local-memory tree; the arithmetic result is identical).
  const std::size_t group = item.group_id(0);
  if (item.local_id(0) == 0) {
    partials[group] = 0.0f;
  }
  const std::size_t base =
      group * item.local_size(0) * wpt + item.local_id(0);
  float acc = 0.0f;
  for (std::uint64_t i = 0; i < wpt; ++i) {
    const std::size_t index = base + i * item.local_size(0);
    if (index < n) {
      acc += in[index];
    }
  }
  partials[group] += acc;
}

std::size_t local_mem(const ocls::define_map& defines) {
  // The tree phase stages LS floats in local memory.
  return static_cast<std::size_t>(defines.get_uint("LS")) * sizeof(float);
}

ocls::perf_estimate model(const ocls::nd_range& range,
                          const ocls::device_profile& dev,
                          const ocls::define_map& defines) {
  const double n = static_cast<double>(defines.get_uint("N"));
  const double ls = static_cast<double>(defines.get_uint("LS"));
  const double wpt = static_cast<double>(defines.get_uint("WPT"));
  const double unroll = static_cast<double>(defines.get_uint("UNROLL"));
  const double groups = static_cast<double>(range.num_groups());
  const double cus = static_cast<double>(dev.compute_units);

  // Streaming the input dominates; the tree phase adds log2(LS) steps per
  // group that only the first warp executes.
  const double bytes = n * 4.0 + groups * 4.0;
  double bw = dev.peak_bytes_per_s();
  if (n * 4.0 < static_cast<double>(dev.llc_bytes)) {
    bw *= dev.cache_bw_multiplier;
  }
  double lane_eff = 1.0;
  if (dev.kind == ocls::device_kind::gpu) {
    const double simd = static_cast<double>(dev.simd_width);
    lane_eff = ls / (std::ceil(ls / simd) * simd);
  }
  const double coverage = std::min(1.0, groups / cus);
  const double unroll_eff = unroll / (unroll + 0.4);
  const double t_stream =
      bytes / (bw * lane_eff * std::max(coverage, 1e-3) * unroll_eff) * 1e9;

  const double tree_steps = std::log2(std::max(ls, 2.0));
  const double t_tree =
      std::ceil(groups / cus) * tree_steps * 4.0 / dev.clock_ghz;
  const double t_sched =
      std::ceil(groups / cus) * dev.workgroup_overhead_ns;

  (void)wpt;
  return {t_stream + t_tree + t_sched,
          std::clamp(0.3 + 0.5 * coverage, 0.05, 1.0)};
}

}  // namespace

ocls::kernel make_kernel() {
  ocls::kernel k("reduce_sum");
  k.set_body(body);
  k.set_perf_model(model);
  k.set_local_mem_model(local_mem);
  return k;
}

}  // namespace atf::kernels::reduce
