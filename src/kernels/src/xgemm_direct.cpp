#include "atf/kernels/xgemm_direct.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "atf/common/math_utils.hpp"
#include "atf/constraint.hpp"
#include "atf/range.hpp"
#include "ocls/buffer.hpp"
#include "ocls/error.hpp"

namespace atf::kernels::xgemm {

problem caffe_input_size(int index) {
  // "IS i: (m x k) and (k x n)" — the four Caffe shapes of Section VI.
  switch (index) {
    case 1:
      return {20, 576, 1};
    case 2:
      return {20, 576, 25};
    case 3:
      return {50, 64, 1};
    case 4:
      return {10, 500, 64};
    default:
      throw std::invalid_argument("caffe_input_size: index must be 1..4");
  }
}

params params::from_defines(const ocls::define_map& defines) {
  params p;
  p.wgd = defines.get_uint("WGD");
  p.mdimcd = defines.get_uint("MDIMCD");
  p.ndimcd = defines.get_uint("NDIMCD");
  p.mdimad = defines.get_uint("MDIMAD");
  p.ndimbd = defines.get_uint("NDIMBD");
  p.kwid = defines.get_uint("KWID");
  p.vwmd = defines.get_uint("VWMD");
  p.vwnd = defines.get_uint("VWND");
  p.pada = defines.get_bool("PADA");
  p.padb = defines.get_bool("PADB");
  return p;
}

void params::to_defines(ocls::define_map& defines) const {
  defines.set("WGD", wgd);
  defines.set("MDIMCD", mdimcd);
  defines.set("NDIMCD", ndimcd);
  defines.set("MDIMAD", mdimad);
  defines.set("NDIMBD", ndimbd);
  defines.set("KWID", kwid);
  defines.set("VWMD", vwmd);
  defines.set("VWND", vwnd);
  defines.set("PADA", pada);
  defines.set("PADB", padb);
}

std::string params::to_string() const {
  ocls::define_map defines;
  to_defines(defines);
  return defines.build_options();
}

namespace {

/// __local floats the kernel allocates: alm[WGD * (WGD + PADA)] and
/// blm[WGD * (WGD + PADB)].
std::size_t local_mem_bytes_for(std::uint64_t wgd, bool pada, bool padb) {
  return static_cast<std::size_t>(wgd * (wgd + (pada ? 1 : 0)) +
                                  wgd * (wgd + (padb ? 1 : 0))) *
         sizeof(float);
}

}  // namespace

tuning_setup make_tuning_parameters(const problem& prob, size_mode mode,
                                    const device_limits& limits,
                                    std::uint64_t range_limit) {
  const std::uint64_t m = prob.m;
  const std::uint64_t n = prob.n;
  std::uint64_t top = std::max<std::uint64_t>(
      {prob.m, prob.n, prob.k, std::uint64_t{1}});
  if (range_limit != 0) {
    top = std::min(top, range_limit);
  }

  const std::size_t lmem = limits.local_mem_bytes;
  const std::uint64_t max_wg = limits.max_work_group_size;

  // WGD in {1..N}. Constraint 13 (unpadded tiles must fit local memory)
  // is attached here so oversized tiles are pruned before their subtrees
  // are expanded; constraint 17 (restricted mode) also lives here.
  auto wgd_fits = atf::pred([lmem](std::uint64_t v) {
    return local_mem_bytes_for(v, false, false) <= lmem;
  });
  atf::tp<std::uint64_t> wgd =
      mode == size_mode::restricted
          ? atf::tp<std::uint64_t>("WGD", atf::interval<std::uint64_t>(1, top),
                                   wgd_fits && atf::divides(m) &&
                                       atf::divides(n))
          : atf::tp<std::uint64_t>("WGD", atf::interval<std::uint64_t>(1, top),
                                   wgd_fits);

  // Thread grid: MDIMCD | WGD (2), NDIMCD | WGD (3), product within the
  // device work-group limit (12).
  atf::tp<std::uint64_t> mdimcd("MDIMCD", atf::interval<std::uint64_t>(1, top),
                                atf::divides(wgd));
  atf::tp<std::uint64_t> ndimcd(
      "NDIMCD", atf::interval<std::uint64_t>(1, top),
      atf::divides(wgd) && atf::less_equal(atf::expr<std::uint64_t>(
                               [mdimcd, max_wg] {
                                 return max_wg / std::max<std::uint64_t>(
                                                     mdimcd.eval(), 1);
                               })));

  // Load grids: divide WGD (4, 5) and repartition the thread grid (6, 7).
  atf::tp<std::uint64_t> mdimad("MDIMAD", atf::interval<std::uint64_t>(1, top),
                                atf::divides(wgd) &&
                                    atf::divides(mdimcd * ndimcd));
  atf::tp<std::uint64_t> ndimbd("NDIMBD", atf::interval<std::uint64_t>(1, top),
                                atf::divides(wgd) &&
                                    atf::divides(mdimcd * ndimcd));

  // Loop unrolling: KWID | WGD (1).
  atf::tp<std::uint64_t> kwid("KWID", atf::interval<std::uint64_t>(1, top),
                              atf::divides(wgd));

  // Vector widths in {1,2,4,8} (15, 16) with the divisibility conditions
  // (8, 10) and (9, 11).
  atf::tp<std::uint64_t> vwmd(
      "VWMD", atf::set<std::uint64_t>({1, 2, 4, 8}),
      atf::divides(wgd / mdimcd) && atf::divides(wgd / mdimad));
  atf::tp<std::uint64_t> vwnd(
      "VWND", atf::set<std::uint64_t>({1, 2, 4, 8}),
      atf::divides(wgd / ndimcd) && atf::divides(wgd / ndimbd));

  // Padding toggles; PADB additionally guards the padded allocation (14).
  atf::tp<bool> pada("PADA", atf::set(false, true));
  atf::tp<bool> padb("PADB", atf::set(false, true),
                     atf::pred([wgd, pada, lmem](bool v) {
                       return local_mem_bytes_for(wgd.eval(), pada.eval(),
                                                  v) <= lmem;
                     }));

  return tuning_setup{std::move(wgd),  std::move(mdimcd), std::move(ndimcd),
                      std::move(mdimad), std::move(ndimbd), std::move(kwid),
                      std::move(vwmd), std::move(vwnd),   std::move(pada),
                      std::move(padb)};
}

std::vector<std::uint64_t> unconstrained_range_sizes(
    const problem& prob, std::uint64_t range_limit) {
  std::uint64_t top = std::max<std::uint64_t>(
      {prob.m, prob.n, prob.k, std::uint64_t{1}});
  if (range_limit != 0) {
    top = std::min(top, range_limit);
  }
  // Six {1..N} integers, two {1,2,4,8} vectors, two booleans.
  return {top, top, top, top, top, top, 4, 4, 2, 2};
}

ocls::nd_range launch_range(const problem& prob, const params& p,
                            size_mode mode) {
  std::size_t tiles_m;
  std::size_t tiles_n;
  if (mode == size_mode::restricted) {
    tiles_m = prob.m / p.wgd;
    tiles_n = prob.n / p.wgd;
  } else {
    // CLBlast's host code: global size rounded up so any WGD works.
    tiles_m = common::ceil_div(prob.m, p.wgd);
    tiles_n = common::ceil_div(prob.n, p.wgd);
  }
  return ocls::nd_range::d2(tiles_m * p.mdimcd, tiles_n * p.ndimcd, p.mdimcd,
                            p.ndimcd);
}

bool valid(const problem& prob, const params& p, size_mode mode,
           const device_limits& limits) {
  const auto is_vw = [](std::uint64_t v) {
    return v == 1 || v == 2 || v == 4 || v == 8;
  };
  if (p.wgd == 0 || p.mdimcd == 0 || p.ndimcd == 0 || p.mdimad == 0 ||
      p.ndimbd == 0 || p.kwid == 0) {
    return false;
  }
  if (!is_vw(p.vwmd) || !is_vw(p.vwnd)) {
    return false;  // (15, 16)
  }
  if (p.wgd % p.kwid != 0) return false;                       // (1)
  if (p.wgd % p.mdimcd != 0) return false;                     // (2)
  if (p.wgd % p.ndimcd != 0) return false;                     // (3)
  if (p.wgd % p.mdimad != 0) return false;                     // (4)
  if (p.wgd % p.ndimbd != 0) return false;                     // (5)
  if ((p.mdimcd * p.ndimcd) % p.mdimad != 0) return false;     // (6)
  if ((p.mdimcd * p.ndimcd) % p.ndimbd != 0) return false;     // (7)
  if (p.wgd % (p.mdimcd * p.vwmd) != 0) return false;          // (8)
  if (p.wgd % (p.ndimcd * p.vwnd) != 0) return false;          // (9)
  if (p.wgd % (p.mdimad * p.vwmd) != 0) return false;          // (10)
  if (p.wgd % (p.ndimbd * p.vwnd) != 0) return false;          // (11)
  if (p.mdimcd * p.ndimcd > limits.max_work_group_size) return false;  // (12)
  if (local_mem_bytes_for(p.wgd, p.pada, p.padb) >
      limits.local_mem_bytes) {
    return false;  // (13, 14)
  }
  if (mode == size_mode::restricted &&
      (prob.m % p.wgd != 0 || prob.n % p.wgd != 0)) {
    return false;  // (17)
  }
  return true;
}

const char* source() {
  return R"(// XgemmDirect (abridged): each work-group of MDIMCD x NDIMCD threads
// computes a WGD x WGD tile of C, staging A and B tiles in __local memory
// (padded by PADA/PADB), unrolling the k-loop by KWID and vectorizing loads
// by VWMD/VWND. See CLBlast's xgemm_direct_part[1-3].cl for the original.
__kernel void XgemmDirect(const int kSizeM, const int kSizeN,
                          const int kSizeK,
                          const __global float* agm,
                          const __global float* bgm,
                          __global float* cgm)
{ /* simulated functionally by ocls */ })";
}

namespace {

void body(const ocls::nd_item& item, const ocls::kernel_args& args,
          const ocls::define_map& defines) {
  if (args.size() != 6) {
    throw ocls::invalid_kernel_args("XgemmDirect expects (M, N, K, A, B, C)");
  }
  const auto m = args[0].scalar<std::size_t>();
  const auto n = args[1].scalar<std::size_t>();
  const auto k = args[2].scalar<std::size_t>();
  auto& a = args[3].buf<float>();
  auto& b = args[4].buf<float>();
  auto& c = args[5].buf<float>();

  const std::uint64_t wgd = defines.get_uint("WGD");
  const std::size_t mdimcd = item.local_size(0);
  const std::size_t ndimcd = item.local_size(1);

  // Thread (li, lj) of tile (gm, gn) computes the elements
  //   row = gm*WGD + li + a*MDIMCD,  col = gn*WGD + lj + b*NDIMCD
  // with the ceil-rounded global size, rows/cols beyond M/N are guarded —
  // exactly the "general" size mode of CLBlast's host code.
  const std::size_t li = item.local_id(0);
  const std::size_t lj = item.local_id(1);
  const std::size_t tile_row = item.group_id(0) * wgd;
  const std::size_t tile_col = item.group_id(1) * wgd;

  for (std::size_t i = tile_row + li; i < tile_row + wgd; i += mdimcd) {
    if (i >= m) {
      continue;
    }
    for (std::size_t j = tile_col + lj; j < tile_col + wgd; j += ndimcd) {
      if (j >= n) {
        continue;
      }
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        acc += a[i * k + p] * b[p * n + j];
      }
      c[i * n + j] = acc;
    }
  }
}

std::size_t local_mem(const ocls::define_map& defines) {
  return local_mem_bytes_for(defines.get_uint("WGD"),
                             defines.get_bool("PADA"),
                             defines.get_bool("PADB"));
}

/// Calibration constants of the analytical model. Values were fitted so
/// that the relative behaviour documented in the paper holds on the two
/// built-in device profiles (see EXPERIMENTS.md); they are ordinary code
/// constants, not tuning parameters.
struct model_constants {
  // GPU: threads needed resident per SM before latency is fully hidden.
  double gpu_latency_threads = 512.0;
  // GPU: fraction of peak at VW=1; each doubling of VWMD/VWND up to 4
  // recovers vec_step.
  double gpu_vec_base = 0.72;
  double gpu_vec_step = 0.07;
  // CPU: fraction of peak reachable without vectorization; VWMD drives the
  // rest (AVX lanes).
  double cpu_vec_base = 0.18;
  // Penalty per tile dimension that overhangs the matrix (ceil-rounded
  // global sizes leave partially valid tiles): warp divergence on the GPU,
  // masked/partial vector iterations on the CPU.
  double gpu_tail_penalty = 0.42;
  double cpu_tail_penalty = 0.25;
  // CPU: fixed per-work-item cost per staged k-chunk (the runtime's
  // work-item loop bookkeeping around each barrier region).
  double cpu_wi_chunk_ns = 2.5;
  // k-loop bookkeeping cost relative to one unrolled iteration.
  double gpu_loop_overhead = 0.35;
  double cpu_loop_overhead = 0.55;
  // Register pressure: per unroll step beyond 8 the compiler starts
  // spilling accumulators.
  double spill_per_kwid = 0.99;
  // Local-memory bank-conflict penalty on unpadded tiles (GPU only).
  double bank_conflict_penalty = 1.07;
  // Effective-bandwidth model: fraction recovered at contiguous run r
  // (elements): eff = min(1, coal_base + r / coal_run).
  double gpu_coal_base = 0.30;
  double gpu_coal_run = 24.0;
  double cpu_mem_eff = 0.85;
  // Thread-grid granularity: work-items per thread below which the GPU
  // pipeline starves (register-level ILP).
  double gpu_ilp_need = 2.0;
};

ocls::perf_estimate model(const ocls::nd_range& range,
                          const ocls::device_profile& dev,
                          const ocls::define_map& defines) {
  const model_constants c;

  const double m = static_cast<double>(defines.get_uint("M"));
  const double n = static_cast<double>(defines.get_uint("N"));
  const double k = static_cast<double>(defines.get_uint("K"));
  const params p = params::from_defines(defines);

  const double tiles_m =
      static_cast<double>(range.global[0] / range.local[0]);
  const double tiles_n =
      static_cast<double>(range.global[1] / range.local[1]);
  const double num_wgs = tiles_m * tiles_n;
  const double threads = static_cast<double>(p.mdimcd * p.ndimcd);
  const double wgd = static_cast<double>(p.wgd);
  const double cus = static_cast<double>(dev.compute_units);

  // --- Compute term -------------------------------------------------------
  // Every work-group computes a full WGD x WGD tile; the k-loop is staged
  // in chunks of WGD with zero-padded local tiles, so the effective depth
  // is k rounded UP to a multiple of WGD (XgemmDirect's GlobalToLocalDirect
  // loaders pad out-of-range elements with zeros). Rows/columns beyond M/N
  // are likewise wasted work. 2 flops per multiply-accumulate.
  const double k_chunks = std::ceil(k / wgd);
  const double k_pad = k_chunks * wgd;
  const double flops_per_wg = 2.0 * wgd * wgd * k_pad;

  double vec_eff;
  double unroll_eff;
  double lane_eff = 1.0;
  double latency_eff = 1.0;
  if (dev.kind == ocls::device_kind::gpu) {
    const double vec_doublings =
        std::log2(static_cast<double>(std::min<std::uint64_t>(p.vwmd, 4))) +
        std::log2(static_cast<double>(std::min<std::uint64_t>(p.vwnd, 4)));
    vec_eff = std::min(1.0, c.gpu_vec_base + c.gpu_vec_step * vec_doublings);
    unroll_eff = static_cast<double>(p.kwid) /
                 (static_cast<double>(p.kwid) + c.gpu_loop_overhead);
    if (p.kwid > 8) {
      unroll_eff *= std::pow(c.spill_per_kwid, double(p.kwid - 8));
    }
    // Partial warps waste SIMD lanes.
    const double simd = static_cast<double>(dev.simd_width);
    lane_eff = threads / (std::ceil(threads / simd) * simd);
    // Occupancy: concurrent work-groups per SM are limited by the thread
    // budget (2048), the block slots (16) and local memory.
    const double lmem =
        static_cast<double>(local_mem_bytes_for(p.wgd, p.pada, p.padb));
    const double conc =
        std::max(1.0, std::floor(std::min(
                          {2048.0 / threads, 16.0,
                           static_cast<double>(dev.local_mem_bytes) /
                               std::max(lmem, 1.0)})));
    const double wgs_per_cu = std::ceil(num_wgs / cus);
    const double resident = threads * std::min(conc, wgs_per_cu);
    latency_eff = std::min(1.0, resident / c.gpu_latency_threads);
    // Register-level ILP: threads computing very few C elements cannot
    // keep the FMA pipeline busy.
    const double elems_per_thread = wgd * wgd / threads;
    latency_eff *= elems_per_thread / (elems_per_thread + c.gpu_ilp_need);
  } else {
    // CPU: a work-group runs on one core; AVX lanes are claimed through
    // the M-direction vector width.
    vec_eff = c.cpu_vec_base +
              (1.0 - c.cpu_vec_base) *
                  static_cast<double>(std::min<std::uint64_t>(
                      p.vwmd, dev.simd_width)) /
                  static_cast<double>(dev.simd_width);
    unroll_eff = static_cast<double>(p.kwid) /
                 (static_cast<double>(p.kwid) + c.cpu_loop_overhead);
    if (p.kwid > 8) {
      unroll_eff *= std::pow(c.spill_per_kwid, double(p.kwid - 8));
    }
  }

  double bank_factor = 1.0;
  if (dev.kind == ocls::device_kind::gpu) {
    if (!p.pada) {
      bank_factor *= c.bank_conflict_penalty;
    }
    if (!p.padb) {
      bank_factor *= c.bank_conflict_penalty;
    }
    // Tiles overhanging the matrix edge leave warps partially predicated
    // off — divergence on every k iteration.
    if (tiles_m * wgd > m) {
      bank_factor *= 1.0 + c.gpu_tail_penalty;
    }
    if (tiles_n * wgd > n) {
      bank_factor *= 1.0 + c.gpu_tail_penalty;
    }
  } else {
    // CPU: overhanging tiles run masked/partial vector iterations.
    if (tiles_m * wgd > m) {
      bank_factor *= 1.0 + c.cpu_tail_penalty;
    }
    if (tiles_n * wgd > n) {
      bank_factor *= 1.0 + c.cpu_tail_penalty;
    }
  }

  const double per_cu_rate_flops_per_ns =
      dev.flops_per_cu_per_cycle * dev.clock_ghz * vec_eff * unroll_eff *
      lane_eff * latency_eff / bank_factor;
  const double wgs_per_cu = std::ceil(num_wgs / cus);
  double t_compute_ns =
      wgs_per_cu * flops_per_wg / per_cu_rate_flops_per_ns;
  if (dev.kind == ocls::device_kind::cpu) {
    // The CPU runtime executes a work-group as a loop over its work-items,
    // re-entered after every barrier (one barrier per staged k-chunk).
    t_compute_ns += wgs_per_cu * threads * k_chunks * c.cpu_wi_chunk_ns;
  }

  // --- Memory term --------------------------------------------------------
  // Each work-group streams its A panel (WGD x K) and B panel (K x WGD)
  // once and writes its C tile.
  const double bytes =
      (num_wgs * 2.0 * wgd * k + m * n) * sizeof(float);
  double mem_eff;
  if (dev.kind == ocls::device_kind::gpu) {
    // Coalescing: contiguous run length of the staging loads.
    const double run_a = static_cast<double>(p.mdimad * p.vwmd);
    const double run_b = static_cast<double>(p.ndimbd * p.vwnd);
    const double eff_a = std::min(1.0, c.gpu_coal_base + run_a / c.gpu_coal_run);
    const double eff_b = std::min(1.0, c.gpu_coal_base + run_b / c.gpu_coal_run);
    mem_eff = 0.5 * (eff_a + eff_b);
  } else {
    mem_eff = c.cpu_mem_eff;
  }
  // Deep-learning GEMMs are tiny; re-streamed panels hit the last-level
  // cache, multiplying the effective bandwidth.
  double bw = dev.peak_bytes_per_s();
  const double working_set = (m * k + k * n + m * n) * sizeof(float);
  if (working_set <= static_cast<double>(dev.llc_bytes)) {
    bw *= dev.cache_bw_multiplier;
  }
  const double t_mem_ns = bytes / (bw * mem_eff) * 1e9;

  // --- Scheduling ---------------------------------------------------------
  const double t_sched_ns = wgs_per_cu * dev.workgroup_overhead_ns;

  const double t_ns = std::max(t_compute_ns, t_mem_ns) + t_sched_ns;

  const double busy_cus = std::min(num_wgs, cus) / cus;
  const double utilization = std::clamp(
      busy_cus * (0.4 + 0.6 * std::min(1.0, t_compute_ns /
                                                std::max(t_ns, 1e-9))),
      0.05, 1.0);
  return {t_ns, utilization};
}

}  // namespace

ocls::define_map make_defines(const problem& prob, const params& p) {
  ocls::define_map defines;
  defines.set("M", static_cast<std::uint64_t>(prob.m));
  defines.set("N", static_cast<std::uint64_t>(prob.n));
  defines.set("K", static_cast<std::uint64_t>(prob.k));
  p.to_defines(defines);
  return defines;
}

ocls::kernel make_kernel() {
  ocls::kernel k("XgemmDirect");
  k.set_source(source());
  k.set_body(body);
  k.set_perf_model(model);
  k.set_local_mem_model(local_mem);
  return k;
}

}  // namespace atf::kernels::xgemm
