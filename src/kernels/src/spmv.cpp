#include "atf/kernels/spmv.hpp"

#include <algorithm>
#include <cmath>

#include "atf/common/math_utils.hpp"
#include "atf/constraint.hpp"
#include "atf/range.hpp"
#include "ocls/buffer.hpp"
#include "ocls/error.hpp"

namespace atf::kernels::spmv {

namespace {

/// splitmix64 — the row hash behind the deterministic generator.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Row lengths spread uniformly in [mean*(1-skew), mean*(1+skew)], driven
/// by a fixed hash of the row index.
std::size_t row_length(const problem& prob, std::uint64_t h) {
  const double u = static_cast<double>(h % 10'000) / 10'000.0;  // [0,1)
  const double len_d = static_cast<double>(prob.nnz_mean) *
                       (1.0 - prob.skew + 2.0 * prob.skew * u);
  const auto len = static_cast<std::size_t>(std::llround(len_d));
  return std::clamp<std::size_t>(len, 1, prob.rows);
}

std::uint64_t row_hash(std::uint64_t seed, std::size_t row) {
  return mix(seed ^ (row * 0x9e3779b97f4a7c15ULL + 1));
}

std::uint64_t total_nnz(const problem& prob, std::uint64_t seed) {
  std::uint64_t nnz = 0;
  for (std::size_t row = 0; row < prob.rows; ++row) {
    nnz += row_length(prob, row_hash(seed, row));
  }
  return nnz;
}

}  // namespace

csr_matrix make_matrix(const problem& prob, std::uint64_t seed) {
  csr_matrix m;
  m.row_ptr.reserve(prob.rows + 1);
  m.row_ptr.push_back(0);

  // Every value and x entry is a small multiple of a power of two, so the
  // row sums are exact in float no matter how lanes partition them — the
  // reference check is bitwise regardless of VW.
  for (std::size_t row = 0; row < prob.rows; ++row) {
    const std::uint64_t h = row_hash(seed, row);
    const std::size_t len = row_length(prob, h);

    const std::size_t start = h % prob.rows;
    const std::size_t stride = std::max<std::size_t>(1, prob.rows / len);
    for (std::size_t j = 0; j < len; ++j) {
      const std::size_t col = (start + j * stride) % prob.rows;
      const std::uint64_t hv = mix(h ^ (j + 0x632be59bd9b4e019ULL));
      m.cols.push_back(static_cast<std::uint32_t>(col));
      m.vals.push_back(static_cast<float>(static_cast<int>(hv % 7) - 3) *
                       0.25f);
    }
    m.row_ptr.push_back(static_cast<std::uint32_t>(m.cols.size()));
  }

  m.x.reserve(prob.rows);
  for (std::size_t i = 0; i < prob.rows; ++i) {
    m.x.push_back(static_cast<float>(static_cast<int>(i % 13) - 6) * 0.125f);
  }
  return m;
}

std::vector<float> reference_spmv(const csr_matrix& m) {
  const std::size_t rows = m.row_ptr.size() - 1;
  std::vector<float> y(rows, 0.0f);
  for (std::size_t row = 0; row < rows; ++row) {
    float acc = 0.0f;
    for (std::uint32_t j = m.row_ptr[row]; j < m.row_ptr[row + 1]; ++j) {
      acc += m.vals[j] * m.x[m.cols[j]];
    }
    y[row] = acc;
  }
  return y;
}

params params::from_defines(const ocls::define_map& defines) {
  params p;
  p.vw = defines.get_uint("VW");
  p.wg = defines.get_uint("WG");
  p.rpb = defines.get_uint("RPB");
  p.unroll = defines.get_uint("UNROLL");
  return p;
}

void params::to_defines(ocls::define_map& defines) const {
  defines.set("VW", vw);
  defines.set("WG", wg);
  defines.set("RPB", rpb);
  defines.set("UNROLL", unroll);
}

tuning_setup make_tuning_parameters(const problem& prob,
                                    const ocls::device_profile& dev) {
  (void)prob;  // the occupancy bounds come from the device, not the size
  const std::uint64_t simd = dev.simd_width;
  const std::uint64_t max_wg = dev.max_work_group_size;

  atf::tp<std::uint64_t> vw("VW",
                            atf::set<std::uint64_t>({1, 2, 4, 8, 16, 32}),
                            atf::less_equal(simd));
  atf::tp<std::uint64_t> wg(
      "WG", atf::set<std::uint64_t>({32, 64, 128, 256, 512, 1024}),
      atf::is_multiple_of(vw) && atf::less_equal(max_wg));
  atf::tp<std::uint64_t> rpb("RPB", atf::interval<std::uint64_t>(1, 8));
  atf::tp<std::uint64_t> unroll("UNROLL", atf::set<std::uint64_t>({1, 2, 4}));

  return tuning_setup{std::move(vw), std::move(wg), std::move(rpb),
                      std::move(unroll)};
}

std::size_t rows_per_group(const params& p) {
  return static_cast<std::size_t>(p.wg / p.vw) * p.rpb;
}

ocls::nd_range launch_range(const problem& prob, const params& p) {
  const std::size_t groups = common::ceil_div(prob.rows, rows_per_group(p));
  return ocls::nd_range::d1(groups * p.wg, p.wg);
}

bool valid(const problem& prob, const params& p,
           const ocls::device_profile& dev) {
  (void)prob;
  const auto in_set = [](std::uint64_t v,
                         std::initializer_list<std::uint64_t> s) {
    return std::find(s.begin(), s.end(), v) != s.end();
  };
  if (!in_set(p.vw, {1, 2, 4, 8, 16, 32})) return false;
  if (!in_set(p.wg, {32, 64, 128, 256, 512, 1024})) return false;
  if (!in_set(p.unroll, {1, 2, 4})) return false;
  if (p.rpb < 1 || p.rpb > 8) return false;
  if (p.vw > dev.simd_width) return false;
  if (p.wg > dev.max_work_group_size) return false;
  if (p.wg % p.vw != 0) return false;
  return true;
}

namespace {

void body(const ocls::nd_item& item, const ocls::kernel_args& args,
          const ocls::define_map& defines) {
  if (args.size() != 6) {
    throw ocls::invalid_kernel_args(
        "spmv expects (ROWS, row_ptr, cols, vals, x, y)");
  }
  const auto rows = args[0].scalar<std::size_t>();
  auto& row_ptr = args[1].buf<std::uint32_t>();
  auto& cols = args[2].buf<std::uint32_t>();
  auto& vals = args[3].buf<float>();
  auto& x = args[4].buf<float>();
  auto& y = args[5].buf<float>();

  const std::uint64_t vw = defines.get_uint("VW");
  const std::uint64_t rpb = defines.get_uint("RPB");
  const std::size_t lid = item.local_id(0);
  if (lid % vw != 0) return;  // lane 0 computes the whole team's reduction

  const std::size_t teams = item.local_size(0) / vw;
  const std::size_t team = lid / vw;
  const std::size_t first_row =
      (item.group_id(0) * teams + team) * rpb;

  for (std::uint64_t b = 0; b < rpb; ++b) {
    const std::size_t row = first_row + b;
    if (row >= rows) return;
    // The CSR-vector access pattern: lane l covers j = start+l, start+l+VW,
    // ...; partials are then reduced. The simulator runs it on lane 0, in
    // the same partial-then-reduce order.
    float acc = 0.0f;
    for (std::uint64_t lane = 0; lane < vw; ++lane) {
      float partial = 0.0f;
      for (std::uint32_t j = row_ptr[row] + lane; j < row_ptr[row + 1];
           j += static_cast<std::uint32_t>(vw)) {
        partial += vals[j] * x[cols[j]];
      }
      acc += partial;
    }
    y[row] = acc;
  }
}

std::size_t local_mem(const ocls::define_map& defines) {
  // Cross-lane reduction scratch: one float per work-item when VW > 1.
  if (defines.get_uint("VW") <= 1) return 0;
  return defines.get_uint("WG") * sizeof(float);
}

ocls::perf_estimate model(const ocls::nd_range& range,
                          const ocls::device_profile& dev,
                          const ocls::define_map& defines) {
  const double rows = static_cast<double>(defines.get_uint("ROWS"));
  const double nnz = static_cast<double>(defines.get_uint("NNZ"));
  const double skew = defines.get_double("SKEW");
  const params p = params::from_defines(defines);

  const double nnz_mean = nnz / rows;
  const double num_wgs =
      static_cast<double>(range.global[0] / range.local[0]);
  const double cus = static_cast<double>(dev.compute_units);
  const double wgs_per_cu = std::ceil(num_wgs / cus);

  // Lane utilization: a team of VW lanes strip-mines an average row of
  // nnz_mean entries; trailing-iteration waste grows with VW.
  const double vw_d = static_cast<double>(p.vw);
  const double lane_eff =
      nnz_mean / (std::ceil(nnz_mean / vw_d) * vw_d);

  // Imbalance: the group retires at its longest row chain. Each thread-row
  // averages RPB consecutive rows, so the spread shrinks like 1/sqrt(RPB).
  const double imbalance =
      1.0 + skew / std::sqrt(static_cast<double>(p.rpb));

  // Compute: 2 flops per non-zero, deflated by lane waste and loop
  // overhead (unrolling recovers a little of the latter).
  const double unroll_eff =
      static_cast<double>(p.unroll) / (static_cast<double>(p.unroll) + 0.15);
  double simd_eff = 1.0;
  if (dev.kind == ocls::device_kind::gpu) {
    const double threads = static_cast<double>(range.local[0]);
    const double simd = static_cast<double>(dev.simd_width);
    simd_eff = threads / (std::ceil(threads / simd) * simd);
  }
  const double flops_per_wg = 2.0 * nnz / num_wgs;
  const double rate = dev.flops_per_cu_per_cycle * dev.clock_ghz *
                      unroll_eff * simd_eff * std::max(lane_eff, 0.05);
  const double t_compute = wgs_per_cu * flops_per_wg / rate;

  // Traffic: vals + cols stream once (8 B/nnz), row_ptr and y stream once
  // (8 B/row); the x gather wastes most of each transaction unless the
  // vector is LLC-resident.
  const double x_bytes = rows * 4.0;
  const bool x_cached = x_bytes < static_cast<double>(dev.llc_bytes);
  const double gather_waste = x_cached ? 1.0 : 4.0;
  const double bytes =
      nnz * 8.0 + rows * 8.0 + nnz * 4.0 * gather_waste;
  double bw = dev.peak_bytes_per_s();
  if (x_cached) bw *= std::min(dev.cache_bw_multiplier, 1.5);
  const double t_mem = bytes / (bw * 0.85) * 1e9;
  const double t_sched =
      wgs_per_cu * dev.workgroup_overhead_ns + dev.launch_overhead_ns;

  const double t = (std::max(t_compute, t_mem) + t_sched) * imbalance;
  const double busy = std::min(num_wgs, cus) / cus;
  const double util =
      busy * std::max(lane_eff, 0.1) / imbalance;
  return {t, std::clamp(util, 0.05, 1.0)};
}

}  // namespace

ocls::define_map make_defines(const problem& prob, const params& p) {
  // The model needs the matrix's aggregate shape; re-derive the total from
  // the deterministic row lengths without materializing the matrix.
  ocls::define_map defines;
  defines.set("ROWS", static_cast<std::uint64_t>(prob.rows));
  defines.set("NNZ", total_nnz(prob, 0x5ee));
  defines.set("SKEW", prob.skew);
  p.to_defines(defines);
  return defines;
}

ocls::kernel make_kernel() {
  ocls::kernel k("spmv_csr_vector");
  k.set_body(body);
  k.set_perf_model(model);
  k.set_local_mem_model(local_mem);
  return k;
}

}  // namespace atf::kernels::spmv
