#include "atf/kernels/batched_gemm.hpp"

#include <algorithm>
#include <cmath>

#include "atf/common/math_utils.hpp"
#include "atf/constraint.hpp"
#include "atf/range.hpp"
#include "ocls/buffer.hpp"
#include "ocls/error.hpp"

namespace atf::kernels::batched_gemm {

params params::from_defines(const ocls::define_map& defines) {
  params p;
  p.tm = defines.get_uint("TM");
  p.tn = defines.get_uint("TN");
  p.bpw = defines.get_uint("BPW");
  p.vecn = defines.get_uint("VECN");
  p.ku = defines.get_uint("KU");
  p.lmem_ab = defines.get_bool("LMEM_AB");
  return p;
}

void params::to_defines(ocls::define_map& defines) const {
  defines.set("TM", tm);
  defines.set("TN", tn);
  defines.set("BPW", bpw);
  defines.set("VECN", vecn);
  defines.set("KU", ku);
  defines.set("LMEM_AB", lmem_ab);
}

namespace {

std::size_t staged_bytes(const problem& prob, std::uint64_t bpw) {
  return static_cast<std::size_t>(bpw) *
         (prob.m * prob.k + prob.k * prob.n) * sizeof(float);
}

}  // namespace

tuning_setup make_tuning_parameters(const problem& prob,
                                    const ocls::device_profile& dev) {
  const std::uint64_t m = prob.m;
  const std::uint64_t n = prob.n;
  const std::uint64_t k = prob.k;
  const std::uint64_t max_wg = dev.max_work_group_size;
  const std::size_t lmem = dev.local_mem_bytes;

  atf::tp<std::uint64_t> tm("TM", atf::interval<std::uint64_t>(1, m),
                            atf::divides(m));
  atf::tp<std::uint64_t> tn("TN", atf::interval<std::uint64_t>(1, n),
                            atf::divides(n));
  atf::tp<std::uint64_t> vecn("VECN", atf::set<std::uint64_t>({1, 2, 4, 8}),
                              atf::divides(tn));
  // The packing constraint: all BPW batches' threads must fit one
  // work-group, coupling BPW to both tile knobs.
  atf::tp<std::uint64_t> bpw(
      "BPW", atf::interval<std::uint64_t>(1, 16),
      atf::less_equal(atf::expr<std::uint64_t>([tm, tn, m, n, max_wg] {
        const std::uint64_t tpb = (m / tm.eval()) * (n / tn.eval());
        return max_wg / std::max<std::uint64_t>(tpb, 1);
      })));
  atf::tp<bool> lmem_ab(
      "LMEM_AB", atf::set(false, true),
      atf::pred([bpw, prob, lmem](bool v) {
        return !v || staged_bytes(prob, bpw.eval()) <= lmem;
      }));
  atf::tp<std::uint64_t> ku("KU", atf::interval<std::uint64_t>(1, k),
                            atf::divides(k));

  return tuning_setup{std::move(tm),  std::move(tn),      std::move(vecn),
                      std::move(bpw), std::move(lmem_ab), std::move(ku)};
}

std::size_t threads_per_batch(const problem& prob, const params& p) {
  return (prob.m / p.tm) * (prob.n / p.tn);
}

ocls::nd_range launch_range(const problem& prob, const params& p) {
  const std::size_t local = threads_per_batch(prob, p) * p.bpw;
  const std::size_t groups = common::ceil_div(prob.batch, p.bpw);
  return ocls::nd_range::d1(groups * local, local);
}

bool valid(const problem& prob, const params& p,
           const ocls::device_profile& dev) {
  const auto is_vec = [](std::uint64_t v) {
    return v == 1 || v == 2 || v == 4 || v == 8;
  };
  if (p.tm == 0 || p.tn == 0 || p.ku == 0 || p.bpw == 0) return false;
  if (p.tm > prob.m || prob.m % p.tm != 0) return false;
  if (p.tn > prob.n || prob.n % p.tn != 0) return false;
  if (!is_vec(p.vecn) || p.tn % p.vecn != 0) return false;
  if (p.bpw > 16) return false;
  if (threads_per_batch(prob, p) * p.bpw > dev.max_work_group_size) {
    return false;
  }
  if (p.lmem_ab && staged_bytes(prob, p.bpw) > dev.local_mem_bytes) {
    return false;
  }
  if (p.ku > prob.k || prob.k % p.ku != 0) return false;
  return true;
}

std::vector<float> make_a(const problem& prob) {
  std::vector<float> a(prob.batch * prob.m * prob.k);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(static_cast<int>((i * 7 + 3) % 9) - 4) * 0.25f;
  }
  return a;
}

std::vector<float> make_b(const problem& prob) {
  std::vector<float> b(prob.batch * prob.k * prob.n);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<float>(static_cast<int>((i * 5 + 1) % 11) - 5) * 0.125f;
  }
  return b;
}

std::vector<float> reference_gemm(const problem& prob,
                                  const std::vector<float>& a,
                                  const std::vector<float>& b) {
  std::vector<float> c(prob.batch * prob.m * prob.n, 0.0f);
  for (std::size_t bt = 0; bt < prob.batch; ++bt) {
    const float* pa = a.data() + bt * prob.m * prob.k;
    const float* pb = b.data() + bt * prob.k * prob.n;
    float* pc = c.data() + bt * prob.m * prob.n;
    for (std::size_t i = 0; i < prob.m; ++i) {
      for (std::size_t j = 0; j < prob.n; ++j) {
        float acc = 0.0f;
        for (std::size_t kk = 0; kk < prob.k; ++kk) {
          acc += pa[i * prob.k + kk] * pb[kk * prob.n + j];
        }
        pc[i * prob.n + j] = acc;
      }
    }
  }
  return c;
}

namespace {

void body(const ocls::nd_item& item, const ocls::kernel_args& args,
          const ocls::define_map& defines) {
  if (args.size() != 7) {
    throw ocls::invalid_kernel_args(
        "batched_gemm expects (BATCH, M, N, K, A, B, C)");
  }
  const auto batch = args[0].scalar<std::size_t>();
  const auto m = args[1].scalar<std::size_t>();
  const auto n = args[2].scalar<std::size_t>();
  const auto k = args[3].scalar<std::size_t>();
  auto& a = args[4].buf<float>();
  auto& b = args[5].buf<float>();
  auto& c = args[6].buf<float>();

  const std::uint64_t tm = defines.get_uint("TM");
  const std::uint64_t tn = defines.get_uint("TN");
  const std::uint64_t bpw = defines.get_uint("BPW");

  const std::size_t tpb = (m / tm) * (n / tn);
  const std::size_t lid = item.local_id(0);
  const std::size_t slot = lid / tpb;          // which packed batch
  const std::size_t t = lid % tpb;             // thread within the batch
  const std::size_t bt = item.group_id(0) * bpw + slot;
  if (bt >= batch) return;

  const std::size_t ti = t % (m / tm);
  const std::size_t tj = t / (m / tm);
  const std::size_t a0 = bt * m * k;
  const std::size_t b0 = bt * k * n;
  const std::size_t c0 = bt * m * n;

  for (std::uint64_t i = 0; i < tm; ++i) {
    const std::size_t row = ti * tm + i;
    for (std::uint64_t j = 0; j < tn; ++j) {
      const std::size_t col = tj * tn + j;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += a[a0 + row * k + kk] * b[b0 + kk * n + col];
      }
      c[c0 + row * n + col] = acc;
    }
  }
}

std::size_t local_mem(const ocls::define_map& defines) {
  if (!defines.get_bool("LMEM_AB")) return 0;
  const std::uint64_t m = defines.get_uint("M");
  const std::uint64_t n = defines.get_uint("N");
  const std::uint64_t k = defines.get_uint("K");
  const std::uint64_t bpw = defines.get_uint("BPW");
  return static_cast<std::size_t>(bpw * (m * k + k * n)) * sizeof(float);
}

ocls::perf_estimate model(const ocls::nd_range& range,
                          const ocls::device_profile& dev,
                          const ocls::define_map& defines) {
  const double batch = static_cast<double>(defines.get_uint("BATCH"));
  const double m = static_cast<double>(defines.get_uint("M"));
  const double n = static_cast<double>(defines.get_uint("N"));
  const double k = static_cast<double>(defines.get_uint("K"));
  const params p = params::from_defines(defines);

  const double num_wgs =
      static_cast<double>(range.global[0] / range.local[0]);
  const double threads = static_cast<double>(range.local[0]);
  const double cus = static_cast<double>(dev.compute_units);
  const double wgs_per_cu = std::ceil(num_wgs / cus);

  // Compute: 2*m*n*k flops per batch, BPW batches per work-group. Register
  // tiling amortizes the k-loop across TM*TN accumulators, but past ~32 the
  // tile spills; vector width along n recovers issue slots.
  const double tile = static_cast<double>(p.tm * p.tn);
  const double reg_eff = tile <= 32.0 ? 1.0 : std::pow(32.0 / tile, 0.5);
  const double tile_eff = tile / (tile + 2.0);  // loop overhead amortization
  const double vec_eff = 0.6 + 0.4 * std::min(1.0, static_cast<double>(p.vecn) / 4.0);
  const double ku_eff =
      static_cast<double>(p.ku) / (static_cast<double>(p.ku) + 0.3);
  double simd_eff = 1.0;
  if (dev.kind == ocls::device_kind::gpu) {
    const double simd = static_cast<double>(dev.simd_width);
    simd_eff = threads / (std::ceil(threads / simd) * simd);
  }
  const double flops_per_wg = 2.0 * static_cast<double>(p.bpw) * m * n * k;
  const double rate = dev.flops_per_cu_per_cycle * dev.clock_ghz * reg_eff *
                      tile_eff * vec_eff * ku_eff * simd_eff;
  const double t_compute = wgs_per_cu * flops_per_wg / rate;

  // Traffic: staged panels are read once per work-group; unstaged threads
  // re-read their A rows and B columns per register tile.
  const double panel = (m * k + k * n) * 4.0;
  const double reads_per_wg =
      p.lmem_ab ? static_cast<double>(p.bpw) * panel
                : static_cast<double>(p.bpw) *
                      (m * n * k * (1.0 / static_cast<double>(p.tn) +
                                    1.0 / static_cast<double>(p.tm))) *
                      4.0;
  const double bytes = num_wgs * reads_per_wg + batch * m * n * 4.0;
  double bw = dev.peak_bytes_per_s();
  const double working_set = batch * (m * k + k * n + m * n) * 4.0;
  if (working_set < static_cast<double>(dev.llc_bytes)) {
    bw *= dev.cache_bw_multiplier;
  }
  const double t_mem = bytes / (bw * 0.85) * 1e9;

  // Scheduling is the defining term: thousands of small work-groups mean
  // the per-work-group overhead — amortized only by packing — can rival
  // the arithmetic itself.
  const double t_sched =
      wgs_per_cu * dev.workgroup_overhead_ns + dev.launch_overhead_ns;

  const double t = std::max(t_compute, t_mem) + t_sched;
  const double busy = std::min(num_wgs, cus) / cus;
  const double util = busy * simd_eff * (t_compute / std::max(t, 1e-9));
  return {t, std::clamp(util, 0.05, 1.0)};
}

}  // namespace

ocls::define_map make_defines(const problem& prob, const params& p) {
  ocls::define_map defines;
  defines.set("BATCH", static_cast<std::uint64_t>(prob.batch));
  defines.set("M", static_cast<std::uint64_t>(prob.m));
  defines.set("N", static_cast<std::uint64_t>(prob.n));
  defines.set("K", static_cast<std::uint64_t>(prob.k));
  p.to_defines(defines);
  return defines;
}

ocls::kernel make_kernel() {
  ocls::kernel k("batched_gemm_packed");
  k.set_body(body);
  k.set_perf_model(model);
  k.set_local_mem_model(local_mem);
  return k;
}

}  // namespace atf::kernels::batched_gemm
