#include "atf/kernels/saxpy.hpp"

#include <algorithm>
#include <cmath>

#include "atf/constraint.hpp"
#include "atf/range.hpp"
#include "ocls/buffer.hpp"

namespace atf::kernels::saxpy {

tuning_setup make_tuning_parameters(std::size_t n) {
  atf::tp<std::size_t> wpt("WPT", atf::interval<std::size_t>(1, n),
                           atf::divides(n));
  atf::tp<std::size_t> ls("LS", atf::interval<std::size_t>(1, n),
                          atf::divides(n / wpt));
  return tuning_setup{std::move(wpt), std::move(ls)};
}

ocls::nd_range launch_range(std::size_t n, std::size_t wpt, std::size_t ls) {
  return ocls::nd_range::d1(n / wpt, ls);
}

const char* source() {
  return R"(__kernel void saxpy(const int N, const float a,
                    const __global float* x, __global float* y)
{
  for (int w = 0; w < WPT; ++w) {
    const int index = w * get_global_size(0) + get_global_id(0);
    y[index] += a * x[index];
  }
})";
}

namespace {

/// Functional body: the strided WPT loop from Listing 1.
void body(const ocls::nd_item& item, const ocls::kernel_args& args,
          const ocls::define_map& defines) {
  if (args.size() != 4) {
    throw ocls::invalid_kernel_args("saxpy expects (N, a, x, y)");
  }
  const auto n = args[0].scalar<std::size_t>();
  const auto a = args[1].scalar<float>();
  auto& x = args[2].buf<float>();
  auto& y = args[3].buf<float>();
  const std::uint64_t wpt = defines.get_uint("WPT");
  const std::size_t gsz = item.global_size(0);
  for (std::uint64_t w = 0; w < wpt; ++w) {
    const std::size_t index = w * gsz + item.global_id(0);
    if (index < n) {
      y[index] = a * x[index] + y[index];
    }
  }
}

/// Analytical model. saxpy is bandwidth-bound: 12 bytes and 2 flops per
/// element. The tuning landscape comes from the launch shape:
///   * lane efficiency — GPUs waste SIMD lanes when LS is not a multiple of
///     the warp width; CPUs are insensitive;
///   * parallel coverage — too few work-groups leave compute units idle;
///   * scheduling — every work-group costs workgroup_overhead_ns of its
///     compute unit's time, so tiny WPT (huge global size) with tiny LS
///     (many groups) drowns in overhead, especially on the CPU;
///   * strided-loop overhead per work-item iteration.
ocls::perf_estimate model(const ocls::nd_range& range,
                          const ocls::device_profile& dev,
                          const ocls::define_map& defines) {
  const double wpt = static_cast<double>(defines.get_uint("WPT"));
  const double global = static_cast<double>(range.global_total());
  const double local = static_cast<double>(range.local_total());
  const double groups = global / local;
  const double elements = global * wpt;

  // Streaming time at peak bandwidth.
  const double bytes = elements * 12.0;  // read x, read y, write y
  const double t_stream_ns = bytes / dev.peak_bytes_per_s() * 1e9;

  // Lane efficiency: partial SIMD groups waste lanes on the GPU.
  double lane_eff = 1.0;
  if (dev.kind == ocls::device_kind::gpu) {
    const double simd = static_cast<double>(dev.simd_width);
    lane_eff = local / (std::ceil(local / simd) * simd);
  }

  // Parallel coverage: fewer groups than compute units leaves CUs idle.
  const double cus = static_cast<double>(dev.compute_units);
  const double coverage = std::min(1.0, groups / cus);

  // Loop overhead: each work-item iterates WPT times; the iteration
  // bookkeeping costs a couple of cycles beyond the streaming accesses.
  const double iter_cycles = dev.kind == ocls::device_kind::cpu ? 2.0 : 4.0;
  const double t_loop_ns = elements * iter_cycles /
                           (cus * static_cast<double>(dev.simd_width) *
                            dev.clock_ghz);

  // Work-group scheduling, spread over the compute units.
  const double t_sched_ns = groups * dev.workgroup_overhead_ns / cus;

  const double t_ns =
      std::max(t_stream_ns, t_loop_ns) / (lane_eff * std::max(coverage, 1e-3)) +
      t_sched_ns;

  // Bandwidth-bound kernels run the memory system hot but the ALUs cool.
  const double utilization =
      0.35 + 0.45 * coverage * lane_eff;
  return {t_ns, utilization};
}

/// saxpy uses no __local memory.
std::size_t local_mem(const ocls::define_map&) { return 0; }

}  // namespace

ocls::kernel make_kernel() {
  ocls::kernel k("saxpy");
  k.set_source(source());
  k.set_body(body);
  k.set_perf_model(model);
  k.set_local_mem_model(local_mem);
  return k;
}

}  // namespace atf::kernels::saxpy
