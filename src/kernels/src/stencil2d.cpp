#include "atf/kernels/stencil2d.hpp"

#include <algorithm>
#include <cmath>

#include "atf/common/math_utils.hpp"
#include "atf/constraint.hpp"
#include "atf/range.hpp"
#include "ocls/buffer.hpp"
#include "ocls/error.hpp"

namespace atf::kernels::stencil2d {

params params::from_defines(const ocls::define_map& defines) {
  params p;
  p.tx = defines.get_uint("TX");
  p.ty = defines.get_uint("TY");
  p.lx = defines.get_uint("LX");
  p.ly = defines.get_uint("LY");
  p.vec = defines.get_uint("VEC");
  p.unroll = defines.get_uint("UNROLL");
  p.halo_lmem = defines.get_bool("HALO_LMEM");
  return p;
}

void params::to_defines(ocls::define_map& defines) const {
  defines.set("TX", tx);
  defines.set("TY", ty);
  defines.set("LX", lx);
  defines.set("LY", ly);
  defines.set("VEC", vec);
  defines.set("UNROLL", unroll);
  defines.set("HALO_LMEM", halo_lmem);
}

namespace {

std::size_t haloed_tile_bytes(std::uint64_t tx, std::uint64_t ty,
                              std::size_t radius) {
  return static_cast<std::size_t>((tx + 2 * radius) * (ty + 2 * radius)) *
         sizeof(float);
}

}  // namespace

tuning_setup make_tuning_parameters(const problem& prob,
                                    std::size_t max_work_group_size,
                                    std::size_t local_mem_bytes) {
  const std::uint64_t w_int = prob.int_width();
  const std::uint64_t h_int = prob.int_height();
  const std::uint64_t r = prob.radius;
  const std::size_t radius = prob.radius;

  atf::tp<std::uint64_t> tx("TX", atf::interval<std::uint64_t>(1, w_int));
  atf::tp<std::uint64_t> lx("LX", atf::interval<std::uint64_t>(1, w_int),
                            atf::divides(tx));
  atf::tp<std::uint64_t> vec("VEC", atf::set<std::uint64_t>({1, 2, 4, 8}),
                             atf::divides(tx / lx));
  atf::tp<std::uint64_t> ty("TY", atf::interval<std::uint64_t>(1, h_int));
  atf::tp<std::uint64_t> ly(
      "LY", atf::interval<std::uint64_t>(1, h_int),
      atf::divides(ty) &&
          atf::less_equal(atf::expr<std::uint64_t>([lx, max_work_group_size] {
            return max_work_group_size /
                   std::max<std::uint64_t>(lx.eval(), 1);
          })));
  atf::tp<std::uint64_t> unroll("UNROLL", atf::interval<std::uint64_t>(1, r),
                                atf::divides(r));
  atf::tp<bool> halo_lmem(
      "HALO_LMEM", atf::set(false, true),
      atf::pred([tx, ty, radius, local_mem_bytes](bool v) {
        return !v || haloed_tile_bytes(tx.eval(), ty.eval(), radius) <=
                         local_mem_bytes;
      }));

  return tuning_setup{std::move(tx), std::move(lx),     std::move(vec),
                      std::move(ty), std::move(ly),     std::move(unroll),
                      std::move(halo_lmem)};
}

ocls::nd_range launch_range(const problem& prob, const params& p) {
  const std::size_t tiles_x = common::ceil_div(prob.int_width(), p.tx);
  const std::size_t tiles_y = common::ceil_div(prob.int_height(), p.ty);
  return ocls::nd_range::d2(tiles_x * p.lx, tiles_y * p.ly, p.lx, p.ly);
}

bool valid(const problem& prob, const params& p,
           std::size_t max_work_group_size, std::size_t local_mem_bytes) {
  const auto is_vw = [](std::uint64_t v) {
    return v == 1 || v == 2 || v == 4 || v == 8;
  };
  if (p.tx == 0 || p.ty == 0 || p.lx == 0 || p.ly == 0 || p.unroll == 0) {
    return false;
  }
  if (p.tx > prob.int_width() || p.ty > prob.int_height()) return false;
  if (p.lx > prob.int_width() || p.ly > prob.int_height()) return false;
  if (!is_vw(p.vec)) return false;
  if (p.tx % p.lx != 0) return false;
  if (p.ty % p.ly != 0) return false;
  if ((p.tx / p.lx) % p.vec != 0) return false;
  if (p.unroll > prob.radius || prob.radius % p.unroll != 0) return false;
  if (p.lx * p.ly > max_work_group_size) return false;
  if (p.halo_lmem &&
      haloed_tile_bytes(p.tx, p.ty, prob.radius) > local_mem_bytes) {
    return false;
  }
  return true;
}

namespace {

void body(const ocls::nd_item& item, const ocls::kernel_args& args,
          const ocls::define_map& defines) {
  if (args.size() != 5) {
    throw ocls::invalid_kernel_args("stencil2d expects (H, W, R, in, out)");
  }
  const auto h = args[0].scalar<std::size_t>();
  const auto w = args[1].scalar<std::size_t>();
  const auto r = args[2].scalar<std::size_t>();
  auto& in = args[3].buf<float>();
  auto& out = args[4].buf<float>();

  const std::uint64_t tx = defines.get_uint("TX");
  const std::uint64_t ty = defines.get_uint("TY");
  const std::size_t lx = item.local_size(0);
  const std::size_t ly = item.local_size(1);
  const std::size_t w_int = w - 2 * r;
  const std::size_t h_int = h - 2 * r;

  // Thread (i, j) sweeps its tile with stride (LX, LY); tiles overhanging
  // the interior are guarded. Coordinates are interior-relative, shifted by
  // the radius on access.
  const std::size_t tile_x = item.group_id(0) * tx;
  const std::size_t tile_y = item.group_id(1) * ty;
  for (std::size_t y = tile_y + item.local_id(1); y < tile_y + ty; y += ly) {
    if (y >= h_int) continue;
    for (std::size_t x = tile_x + item.local_id(0); x < tile_x + tx;
         x += lx) {
      if (x >= w_int) continue;
      const std::size_t gy = y + r;
      const std::size_t gx = x + r;
      float acc = center_weight * in[gy * w + gx];
      for (std::size_t d = 1; d <= r; ++d) {
        acc += ring_weight * (in[(gy - d) * w + gx] + in[(gy + d) * w + gx] +
                              in[gy * w + (gx - d)] + in[gy * w + (gx + d)]);
      }
      out[gy * w + gx] = acc;
    }
  }

  // The boundary ring is copied once, by the first work-item (the real
  // kernel would use a separate trivially-parallel pass; modeling it inside
  // the sweep keeps the reference check to a single launch).
  if (item.global_id(0) == 0 && item.global_id(1) == 0) {
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        if (y < r || y >= h - r || x < r || x >= w - r) {
          out[y * w + x] = in[y * w + x];
        }
      }
    }
  }
}

std::size_t local_mem(const ocls::define_map& defines) {
  if (!defines.get_bool("HALO_LMEM")) {
    return 0;
  }
  const std::uint64_t tx = defines.get_uint("TX");
  const std::uint64_t ty = defines.get_uint("TY");
  const std::uint64_t r = defines.get_uint("R");
  return static_cast<std::size_t>((tx + 2 * r) * (ty + 2 * r)) *
         sizeof(float);
}

ocls::perf_estimate model(const ocls::nd_range& range,
                          const ocls::device_profile& dev,
                          const ocls::define_map& defines) {
  const double h = static_cast<double>(defines.get_uint("H"));
  const double w = static_cast<double>(defines.get_uint("W"));
  const double r = static_cast<double>(defines.get_uint("R"));
  const params p = params::from_defines(defines);

  const double h_int = h - 2.0 * r;
  const double w_int = w - 2.0 * r;
  const double tiles_x = static_cast<double>(range.global[0] / range.local[0]);
  const double tiles_y = static_cast<double>(range.global[1] / range.local[1]);
  const double num_wgs = tiles_x * tiles_y;
  const double threads = static_cast<double>(p.lx * p.ly);
  const double cus = static_cast<double>(dev.compute_units);

  // Arithmetic is a sideshow: (1 + 4R) MACs per point. Unrolling shaves
  // loop overhead only.
  const double flops_per_wg =
      2.0 * static_cast<double>(p.tx * p.ty) * (1.0 + 4.0 * r);
  const double unroll_eff =
      static_cast<double>(p.unroll) / (static_cast<double>(p.unroll) + 0.25);
  double lane_eff = 1.0;
  if (dev.kind == ocls::device_kind::gpu) {
    const double simd = static_cast<double>(dev.simd_width);
    lane_eff = threads / (std::ceil(threads / simd) * simd);
  }
  const double rate =
      dev.flops_per_cu_per_cycle * dev.clock_ghz * unroll_eff * lane_eff;
  const double wgs_per_cu = std::ceil(num_wgs / cus);
  const double t_compute = wgs_per_cu * flops_per_wg / rate;

  // The traffic term rules the landscape. An unstaged sweep re-reads every
  // input (4R+1) times; halo staging reads the (TX+2R)(TY+2R) tile once.
  const double reads_per_wg =
      p.halo_lmem
          ? (static_cast<double>(p.tx) + 2.0 * r) *
                (static_cast<double>(p.ty) + 2.0 * r)
          : static_cast<double>(p.tx * p.ty) * (1.0 + 4.0 * r);
  const double bytes = (num_wgs * reads_per_wg + h_int * w_int) * 4.0;

  // Coalescing: a row of LX*VEC consecutive floats approaches peak
  // bandwidth as it fills a 128-byte transaction (GPU); on CPUs wider
  // vector rows amortize the scalar-gather overhead the same way.
  const double row_floats = static_cast<double>(p.lx * p.vec);
  const double coalesce_eff =
      std::min(1.0, (0.35 + 0.65 * row_floats / 32.0));
  double bw = dev.peak_bytes_per_s() * std::min(1.0, coalesce_eff);
  if ((h * w * 2.0) * 4.0 < static_cast<double>(dev.llc_bytes)) {
    bw *= dev.cache_bw_multiplier;
  }
  const double t_mem = bytes / (bw * 0.85) * 1e9;
  const double t_sched = wgs_per_cu * dev.workgroup_overhead_ns;

  const double t = std::max(t_compute, t_mem) + t_sched;
  const double busy = std::min(num_wgs, cus) / cus;
  // Bandwidth-bound kernels keep the ALUs half-idle: utilization tracks
  // the compute/memory ratio, which drives the energy model.
  const double balance =
      t_mem > 0.0 ? std::clamp(t_compute / t_mem, 0.1, 1.0) : 1.0;
  return {t, std::clamp(busy * balance, 0.05, 1.0)};
}

}  // namespace

ocls::define_map make_defines(const problem& prob, const params& p) {
  ocls::define_map defines;
  defines.set("H", static_cast<std::uint64_t>(prob.height));
  defines.set("W", static_cast<std::uint64_t>(prob.width));
  defines.set("R", static_cast<std::uint64_t>(prob.radius));
  p.to_defines(defines);
  return defines;
}

std::vector<float> make_input(const problem& prob) {
  std::vector<float> in(prob.height * prob.width);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<float>(static_cast<int>((i * 3 + 1) % 9) - 4) * 0.125f;
  }
  return in;
}

std::vector<float> reference_stencil(const problem& prob,
                                     const std::vector<float>& in) {
  const std::size_t h = prob.height;
  const std::size_t w = prob.width;
  const std::size_t r = prob.radius;
  std::vector<float> out(in);
  for (std::size_t y = r; y < h - r; ++y) {
    for (std::size_t x = r; x < w - r; ++x) {
      float acc = center_weight * in[y * w + x];
      for (std::size_t d = 1; d <= r; ++d) {
        acc += ring_weight * (in[(y - d) * w + x] + in[(y + d) * w + x] +
                              in[y * w + (x - d)] + in[y * w + (x + d)]);
      }
      out[y * w + x] = acc;
    }
  }
  return out;
}

ocls::kernel make_kernel() {
  ocls::kernel k("stencil2d_star");
  k.set_body(body);
  k.set_perf_model(model);
  k.set_local_mem_model(local_mem);
  return k;
}

}  // namespace atf::kernels::stencil2d
