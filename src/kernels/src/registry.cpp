#include "atf/kernels/registry.hpp"

#include <cmath>
#include <cstddef>
#include <memory>
#include <numeric>
#include <span>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "atf/abort_condition.hpp"
#include "atf/cost.hpp"
#include "atf/exhaustive.hpp"
#include "atf/kernels/batched_gemm.hpp"
#include "atf/kernels/conv2d.hpp"
#include "atf/kernels/reduce.hpp"
#include "atf/kernels/reference.hpp"
#include "atf/kernels/saxpy.hpp"
#include "atf/kernels/spmv.hpp"
#include "atf/kernels/stencil2d.hpp"
#include "atf/kernels/xgemm_direct.hpp"
#include "atf/search/opentuner_search.hpp"
#include "atf/search/random_search.hpp"
#include "atf/search/simulated_annealing.hpp"
#include "atf/search/surrogate_search.hpp"
#include "atf/tuner.hpp"
#include "ocls/ocls.hpp"

namespace atf::kernels::registry {

input_size input_size::parse(const std::string& text) {
  input_size size;
  std::string normalized = text;
  for (char& ch : normalized) {
    if (ch == 'X') ch = 'x';  // tolerate "64X64"
  }
  // getline() swallows a trailing separator silently ("8x" -> one token);
  // reject it up front so malformed sizes never half-parse.
  if (!normalized.empty() && normalized.back() == 'x') {
    throw std::invalid_argument("trailing separator in input size '" + text +
                                "'");
  }
  std::string token;
  std::istringstream in(normalized);
  while (std::getline(in, token, 'x')) {
    std::size_t pos = 0;
    std::uint64_t v = 0;
    try {
      v = std::stoull(token, &pos);
    } catch (const std::exception&) {
      throw std::invalid_argument("invalid size component '" + token +
                                  "' in '" + text + "'");
    }
    if (pos != token.size() || v == 0) {
      throw std::invalid_argument("invalid size component '" + token +
                                  "' in '" + text + "'");
    }
    size.dims.push_back(v);
  }
  if (size.dims.empty()) {
    throw std::invalid_argument("empty input size '" + text + "'");
  }
  return size;
}

std::string input_size::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) out += 'x';
    out += std::to_string(dims[i]);
  }
  return out;
}

namespace {

void expect_dims(const std::string& kernel, const std::string& dim_names,
                 const input_size& size, std::size_t count) {
  if (size.dims.size() != count) {
    throw std::invalid_argument("kernel '" + kernel + "' expects a size of "
                                "the form " + dim_names + " (" +
                                std::to_string(count) + " dimensions), got '" +
                                size.to_string() + "'");
  }
}

/// Launches model-only (no args needed: the analytic models never touch
/// buffers); ocls launch failures become failed evaluations.
double model_launch(ocls::command_queue& queue, const ocls::kernel& k,
                    const ocls::nd_range& range,
                    const ocls::define_map& defines) {
  try {
    return queue.launch(k, range, {}, defines).profile_ns();
  } catch (const ocls::error& e) {
    throw atf::evaluation_error(e.what());
  }
}

bool matches(std::span<const float> got, std::span<const float> want,
             float tolerance = 1e-4f) {
  if (got.size() != want.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (std::abs(got[i] - want[i]) > tolerance) return false;
  }
  return true;
}

std::shared_ptr<ocls::context> functional_context(const ocls::device& dev) {
  auto ctx = std::make_shared<ocls::context>(dev);
  ctx->execute_functionally(true);
  return ctx;
}

// ---- per-family configuration decoding ------------------------------------

stencil2d::params stencil_params(const atf::configuration& c) {
  stencil2d::params p;
  p.tx = c["TX"];
  p.ty = c["TY"];
  p.lx = c["LX"];
  p.ly = c["LY"];
  p.vec = c["VEC"];
  p.unroll = c["UNROLL"];
  p.halo_lmem = c["HALO_LMEM"];
  return p;
}

spmv::params spmv_params(const atf::configuration& c) {
  spmv::params p;
  p.vw = c["VW"];
  p.wg = c["WG"];
  p.rpb = c["RPB"];
  p.unroll = c["UNROLL"];
  return p;
}

batched_gemm::params bgemm_params(const atf::configuration& c) {
  batched_gemm::params p;
  p.tm = c["TM"];
  p.tn = c["TN"];
  p.bpw = c["BPW"];
  p.vecn = c["VECN"];
  p.ku = c["KU"];
  p.lmem_ab = c["LMEM_AB"];
  return p;
}

conv2d::params conv_params(const atf::configuration& c) {
  conv2d::params p;
  p.tbx = c["TBX"];
  p.tby = c["TBY"];
  p.lx = c["LX"];
  p.ly = c["LY"];
  p.vecx = c["VECX"];
  p.unroll = c["UNROLL"];
  p.use_lmem = c["USE_LMEM"];
  return p;
}

xgemm::params xgemm_params(const atf::configuration& c) {
  xgemm::params p;
  p.wgd = c["WGD"];
  p.mdimcd = c["MDIMCD"];
  p.ndimcd = c["NDIMCD"];
  p.mdimad = c["MDIMAD"];
  p.ndimbd = c["NDIMBD"];
  p.kwid = c["KWID"];
  p.vwmd = c["VWMD"];
  p.vwnd = c["VWND"];
  p.pada = c["PADA"];
  p.padb = c["PADB"];
  return p;
}

// ---- family adapters -------------------------------------------------------

entry saxpy_entry() {
  entry e;
  e.name = "saxpy";
  e.description = "CLBlast-style saxpy (paper Listing 1)";
  e.dim_names = "N";
  e.default_size = {{65536}};
  e.knob_count = 2;
  e.constraint_summary = "WPT | N; LS | N/WPT (one divides-chain)";
  e.make_groups = [](const input_size& size,
                     const ocls::device_profile&) {
    expect_dims("saxpy", "N", size, 1);
    auto setup = saxpy::make_tuning_parameters(size.dims[0]);
    return std::vector<atf::tp_group>{setup.group()};
  };
  e.make_cost = [](const input_size& size, const ocls::device& dev) {
    expect_dims("saxpy", "N", size, 1);
    const std::size_t n = size.dims[0];
    auto queue = std::make_shared<ocls::command_queue>(
        std::make_shared<ocls::context>(dev));
    const ocls::kernel k = saxpy::make_kernel();
    return std::function<double(const atf::configuration&)>(
        [queue, k, n](const atf::configuration& c) {
          const std::size_t wpt = c["WPT"];
          const std::size_t ls = c["LS"];
          ocls::define_map defines;
          defines.set("N", static_cast<std::uint64_t>(n));
          defines.set("WPT", static_cast<std::uint64_t>(wpt));
          defines.set("LS", static_cast<std::uint64_t>(ls));
          return model_launch(*queue, k, saxpy::launch_range(n, wpt, ls),
                              defines);
        });
  };
  e.reference_check = [](const input_size& size, const ocls::device& dev,
                         const atf::configuration& c) {
    expect_dims("saxpy", "N", size, 1);
    const std::size_t n = size.dims[0];
    const float a = 0.5f;
    std::vector<float> x(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = static_cast<float>(static_cast<int>((i * 3) % 7) - 3) * 0.25f;
      y[i] = static_cast<float>(static_cast<int>((i * 5) % 9) - 4) * 0.125f;
    }
    std::vector<float> expected = y;
    reference::saxpy(a, x, expected);

    ocls::command_queue queue(functional_context(dev));
    auto xb = std::make_shared<ocls::buffer<float>>(x);
    auto yb = std::make_shared<ocls::buffer<float>>(y);
    const std::size_t wpt = c["WPT"];
    const std::size_t ls = c["LS"];
    ocls::define_map defines;
    defines.set("N", static_cast<std::uint64_t>(n));
    defines.set("WPT", static_cast<std::uint64_t>(wpt));
    defines.set("LS", static_cast<std::uint64_t>(ls));
    (void)queue.launch(saxpy::make_kernel(), saxpy::launch_range(n, wpt, ls),
                       {static_cast<double>(n), a, ocls::arg(xb),
                        ocls::arg(yb)},
                       defines);
    return matches(yb->host(), expected);
  };
  return e;
}

entry reduce_entry() {
  entry e;
  e.name = "reduce";
  e.description = "grid-stride sum reduction with tree phase";
  e.dim_names = "N";
  e.default_size = {{65536}};
  e.knob_count = 3;
  e.constraint_summary = "LS pow2 <= device limit; UNROLL | WPT";
  e.make_groups = [](const input_size& size,
                     const ocls::device_profile& dev) {
    expect_dims("reduce", "N", size, 1);
    auto setup =
        reduce::make_tuning_parameters(size.dims[0], dev.max_work_group_size);
    return std::vector<atf::tp_group>{setup.group()};
  };
  e.make_cost = [](const input_size& size, const ocls::device& dev) {
    expect_dims("reduce", "N", size, 1);
    const std::size_t n = size.dims[0];
    auto queue = std::make_shared<ocls::command_queue>(
        std::make_shared<ocls::context>(dev));
    const ocls::kernel k = reduce::make_kernel();
    return std::function<double(const atf::configuration&)>(
        [queue, k, n](const atf::configuration& c) {
          reduce::params p;
          p.ls = c["LS"];
          p.wpt = c["WPT"];
          p.unroll = c["UNROLL"];
          ocls::define_map defines;
          defines.set("N", static_cast<std::uint64_t>(n));
          defines.set("LS", p.ls);
          defines.set("WPT", p.wpt);
          defines.set("UNROLL", p.unroll);
          return model_launch(*queue, k, reduce::launch_range(n, p), defines);
        });
  };
  e.reference_check = [](const input_size& size, const ocls::device& dev,
                         const atf::configuration& c) {
    expect_dims("reduce", "N", size, 1);
    const std::size_t n = size.dims[0];
    std::vector<float> in(n);
    double want = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      in[i] = static_cast<float>(static_cast<int>((i * 7) % 5) - 2);
      want += in[i];
    }
    reduce::params p;
    p.ls = c["LS"];
    p.wpt = c["WPT"];
    p.unroll = c["UNROLL"];

    ocls::command_queue queue(functional_context(dev));
    auto inb = std::make_shared<ocls::buffer<float>>(in);
    auto partials =
        std::make_shared<ocls::buffer<float>>(reduce::num_groups(n, p));
    ocls::define_map defines;
    defines.set("N", static_cast<std::uint64_t>(n));
    defines.set("LS", p.ls);
    defines.set("WPT", p.wpt);
    defines.set("UNROLL", p.unroll);
    (void)queue.launch(reduce::make_kernel(), reduce::launch_range(n, p),
                       {static_cast<double>(n), ocls::arg(inb),
                        ocls::arg(partials)},
                       defines);
    double got = 0.0;
    for (const float v : partials->host()) got += v;
    return std::abs(got - want) <= 1e-3;
  };
  return e;
}

entry xgemm_entry() {
  entry e;
  e.name = "xgemm";
  e.description = "CLBlast XgemmDirect (paper Section VI)";
  e.dim_names = "MxNxK";
  e.default_size = {{64, 64, 64}};
  e.knob_count = 10;
  e.constraint_summary =
      "17-constraint divisibility web over WGD/MDIM*/NDIM*/VW*/KWID";
  e.make_groups = [](const input_size& size,
                     const ocls::device_profile& dev) {
    expect_dims("xgemm", "MxNxK", size, 3);
    const xgemm::problem prob{size.dims[0], size.dims[1], size.dims[2]};
    auto setup = xgemm::make_tuning_parameters(
        prob, xgemm::size_mode::general, xgemm::device_limits::of(dev));
    return std::vector<atf::tp_group>{setup.group()};
  };
  e.make_cost = [](const input_size& size, const ocls::device& dev) {
    expect_dims("xgemm", "MxNxK", size, 3);
    const xgemm::problem prob{size.dims[0], size.dims[1], size.dims[2]};
    auto queue = std::make_shared<ocls::command_queue>(
        std::make_shared<ocls::context>(dev));
    const ocls::kernel k = xgemm::make_kernel();
    return std::function<double(const atf::configuration&)>(
        [queue, k, prob](const atf::configuration& c) {
          const xgemm::params p = xgemm_params(c);
          return model_launch(
              *queue, k,
              xgemm::launch_range(prob, p, xgemm::size_mode::general),
              xgemm::make_defines(prob, p));
        });
  };
  e.reference_check = [](const input_size& size, const ocls::device& dev,
                         const atf::configuration& c) {
    expect_dims("xgemm", "MxNxK", size, 3);
    const xgemm::problem prob{size.dims[0], size.dims[1], size.dims[2]};
    std::vector<float> a(prob.m * prob.k), b(prob.k * prob.n);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<float>(static_cast<int>((i * 7 + 3) % 9) - 4) * 0.25f;
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] =
          static_cast<float>(static_cast<int>((i * 5 + 1) % 11) - 5) * 0.125f;
    }
    std::vector<float> expected(prob.m * prob.n, 0.0f);
    reference::gemm(prob.m, prob.n, prob.k, a, b, expected);

    ocls::command_queue queue(functional_context(dev));
    auto ab = std::make_shared<ocls::buffer<float>>(a);
    auto bb = std::make_shared<ocls::buffer<float>>(b);
    auto cb = std::make_shared<ocls::buffer<float>>(expected.size());
    const xgemm::params p = xgemm_params(c);
    (void)queue.launch(
        xgemm::make_kernel(),
        xgemm::launch_range(prob, p, xgemm::size_mode::general),
        {static_cast<double>(prob.m), static_cast<double>(prob.n),
         static_cast<double>(prob.k), ocls::arg(ab), ocls::arg(bb),
         ocls::arg(cb)},
        xgemm::make_defines(prob, p));
    return matches(cb->host(), expected, 1e-3f);
  };
  return e;
}

entry conv2d_entry() {
  entry e;
  e.name = "conv2d";
  e.description = "direct 2D convolution (valid padding)";
  e.dim_names = "HxWxRxS";
  e.default_size = {{64, 64, 5, 5}};
  e.knob_count = 7;
  e.constraint_summary =
      "LX | TBX, LY | TBY, VECX | TBX/LX; staged tile lmem bound";
  e.make_groups = [](const input_size& size,
                     const ocls::device_profile& dev) {
    expect_dims("conv2d", "HxWxRxS", size, 4);
    if (size.dims[2] > size.dims[0] || size.dims[3] > size.dims[1]) {
      throw std::invalid_argument(
          "conv2d: the filter must not exceed the input");
    }
    const conv2d::problem prob{size.dims[0], size.dims[1], size.dims[2],
                               size.dims[3]};
    auto setup = conv2d::make_tuning_parameters(prob, dev.max_work_group_size,
                                                dev.local_mem_bytes);
    return setup.groups();
  };
  e.make_cost = [](const input_size& size, const ocls::device& dev) {
    expect_dims("conv2d", "HxWxRxS", size, 4);
    const conv2d::problem prob{size.dims[0], size.dims[1], size.dims[2],
                               size.dims[3]};
    auto queue = std::make_shared<ocls::command_queue>(
        std::make_shared<ocls::context>(dev));
    const ocls::kernel k = conv2d::make_kernel();
    return std::function<double(const atf::configuration&)>(
        [queue, k, prob](const atf::configuration& c) {
          const conv2d::params p = conv_params(c);
          return model_launch(*queue, k, conv2d::launch_range(prob, p),
                              conv2d::make_defines(prob, p));
        });
  };
  e.reference_check = [](const input_size& size, const ocls::device& dev,
                         const atf::configuration& c) {
    expect_dims("conv2d", "HxWxRxS", size, 4);
    const conv2d::problem prob{size.dims[0], size.dims[1], size.dims[2],
                               size.dims[3]};
    std::vector<float> in(prob.height * prob.width);
    std::vector<float> flt(prob.filter_height * prob.filter_width);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<float>((i * 3) % 7) - 3.0f;
    }
    for (std::size_t i = 0; i < flt.size(); ++i) {
      flt[i] = static_cast<float>(i % 4) * 0.5f - 0.75f;
    }
    std::vector<float> expected(prob.out_height() * prob.out_width(), 0.0f);
    for (std::size_t y = 0; y < prob.out_height(); ++y) {
      for (std::size_t x = 0; x < prob.out_width(); ++x) {
        float acc = 0.0f;
        for (std::size_t r = 0; r < prob.filter_height; ++r) {
          for (std::size_t s = 0; s < prob.filter_width; ++s) {
            acc += in[(y + r) * prob.width + (x + s)] *
                   flt[r * prob.filter_width + s];
          }
        }
        expected[y * prob.out_width() + x] = acc;
      }
    }

    ocls::command_queue queue(functional_context(dev));
    auto inb = std::make_shared<ocls::buffer<float>>(in);
    auto fb = std::make_shared<ocls::buffer<float>>(flt);
    auto outb = std::make_shared<ocls::buffer<float>>(expected.size());
    const conv2d::params p = conv_params(c);
    (void)queue.launch(conv2d::make_kernel(), conv2d::launch_range(prob, p),
                       {static_cast<double>(prob.height),
                        static_cast<double>(prob.width),
                        static_cast<double>(prob.filter_height),
                        static_cast<double>(prob.filter_width),
                        ocls::arg(inb), ocls::arg(fb), ocls::arg(outb)},
                       conv2d::make_defines(prob, p));
    return matches(outb->host(), expected, 1e-3f);
  };
  return e;
}

entry stencil2d_entry() {
  entry e;
  e.name = "stencil2d";
  e.description = "2D star stencil, radius R (bandwidth-bound)";
  e.dim_names = "HxWxR";
  e.default_size = {{66, 66, 1}};
  e.knob_count = 7;
  e.constraint_summary =
      "LX | TX, VEC | TX/LX, LY | TY; haloed tile lmem bound";
  e.make_groups = [](const input_size& size,
                     const ocls::device_profile& dev) {
    expect_dims("stencil2d", "HxWxR", size, 3);
    if (size.dims[0] <= 2 * size.dims[2] || size.dims[1] <= 2 * size.dims[2]) {
      throw std::invalid_argument(
          "stencil2d: the grid must exceed twice the radius");
    }
    const stencil2d::problem prob{size.dims[0], size.dims[1], size.dims[2]};
    auto setup = stencil2d::make_tuning_parameters(
        prob, dev.max_work_group_size, dev.local_mem_bytes);
    return setup.groups();
  };
  e.make_cost = [](const input_size& size, const ocls::device& dev) {
    expect_dims("stencil2d", "HxWxR", size, 3);
    const stencil2d::problem prob{size.dims[0], size.dims[1], size.dims[2]};
    auto queue = std::make_shared<ocls::command_queue>(
        std::make_shared<ocls::context>(dev));
    const ocls::kernel k = stencil2d::make_kernel();
    return std::function<double(const atf::configuration&)>(
        [queue, k, prob](const atf::configuration& c) {
          const stencil2d::params p = stencil_params(c);
          return model_launch(*queue, k, stencil2d::launch_range(prob, p),
                              stencil2d::make_defines(prob, p));
        });
  };
  e.reference_check = [](const input_size& size, const ocls::device& dev,
                         const atf::configuration& c) {
    expect_dims("stencil2d", "HxWxR", size, 3);
    const stencil2d::problem prob{size.dims[0], size.dims[1], size.dims[2]};
    const std::vector<float> in = stencil2d::make_input(prob);
    const std::vector<float> expected = stencil2d::reference_stencil(prob, in);

    ocls::command_queue queue(functional_context(dev));
    auto inb = std::make_shared<ocls::buffer<float>>(in);
    auto outb = std::make_shared<ocls::buffer<float>>(in.size());
    const stencil2d::params p = stencil_params(c);
    (void)queue.launch(stencil2d::make_kernel(),
                       stencil2d::launch_range(prob, p),
                       {static_cast<double>(prob.height),
                        static_cast<double>(prob.width),
                        static_cast<double>(prob.radius), ocls::arg(inb),
                        ocls::arg(outb)},
                       stencil2d::make_defines(prob, p));
    return matches(outb->host(), expected, 1e-6f);
  };
  return e;
}

entry spmv_entry() {
  entry e;
  e.name = "spmv";
  e.description = "CSR SpMV on a skewed synthetic matrix (irregular)";
  e.dim_names = "ROWSxNNZ";
  e.default_size = {{2048, 16}};
  e.knob_count = 4;
  e.constraint_summary =
      "VW <= simd width, VW | WG, WG <= device limit (occupancy pincer)";
  e.make_groups = [](const input_size& size,
                     const ocls::device_profile& dev) {
    expect_dims("spmv", "ROWSxNNZ", size, 2);
    const spmv::problem prob{size.dims[0], size.dims[1], 0.5};
    auto setup = spmv::make_tuning_parameters(prob, dev);
    return setup.groups();
  };
  e.make_cost = [](const input_size& size, const ocls::device& dev) {
    expect_dims("spmv", "ROWSxNNZ", size, 2);
    const spmv::problem prob{size.dims[0], size.dims[1], 0.5};
    auto queue = std::make_shared<ocls::command_queue>(
        std::make_shared<ocls::context>(dev));
    const ocls::kernel k = spmv::make_kernel();
    // The aggregate matrix shape the model consumes is size-dependent only;
    // amortize it across evaluations.
    const ocls::define_map base = spmv::make_defines(prob, spmv::params{});
    return std::function<double(const atf::configuration&)>(
        [queue, k, prob, base](const atf::configuration& c) {
          const spmv::params p = spmv_params(c);
          ocls::define_map defines = base;
          p.to_defines(defines);
          return model_launch(*queue, k, spmv::launch_range(prob, p),
                              defines);
        });
  };
  e.reference_check = [](const input_size& size, const ocls::device& dev,
                         const atf::configuration& c) {
    expect_dims("spmv", "ROWSxNNZ", size, 2);
    const spmv::problem prob{size.dims[0], size.dims[1], 0.5};
    const spmv::csr_matrix m = spmv::make_matrix(prob);
    const std::vector<float> expected = spmv::reference_spmv(m);

    ocls::command_queue queue(functional_context(dev));
    auto rp = std::make_shared<ocls::buffer<std::uint32_t>>(m.row_ptr);
    auto cols = std::make_shared<ocls::buffer<std::uint32_t>>(m.cols);
    auto vals = std::make_shared<ocls::buffer<float>>(m.vals);
    auto xb = std::make_shared<ocls::buffer<float>>(m.x);
    auto yb = std::make_shared<ocls::buffer<float>>(prob.rows);
    const spmv::params p = spmv_params(c);
    (void)queue.launch(spmv::make_kernel(), spmv::launch_range(prob, p),
                       {static_cast<double>(prob.rows), ocls::arg(rp),
                        ocls::arg(cols), ocls::arg(vals), ocls::arg(xb),
                        ocls::arg(yb)},
                       spmv::make_defines(prob, p));
    return matches(yb->host(), expected, 1e-6f);
  };
  return e;
}

entry batched_gemm_entry() {
  entry e;
  e.name = "batched_gemm";
  e.description = "many small GEMMs packed into work-groups (occupancy)";
  e.dim_names = "BxMxNxK";
  e.default_size = {{256, 16, 16, 16}};
  e.knob_count = 6;
  e.constraint_summary =
      "TM | M, TN | N, VECN | TN, KU | K; (M/TM)(N/TN)*BPW <= WG limit";
  e.make_groups = [](const input_size& size,
                     const ocls::device_profile& dev) {
    expect_dims("batched_gemm", "BxMxNxK", size, 4);
    const batched_gemm::problem prob{size.dims[0], size.dims[1], size.dims[2],
                                     size.dims[3]};
    auto setup = batched_gemm::make_tuning_parameters(prob, dev);
    return setup.groups();
  };
  e.make_cost = [](const input_size& size, const ocls::device& dev) {
    expect_dims("batched_gemm", "BxMxNxK", size, 4);
    const batched_gemm::problem prob{size.dims[0], size.dims[1], size.dims[2],
                                     size.dims[3]};
    auto queue = std::make_shared<ocls::command_queue>(
        std::make_shared<ocls::context>(dev));
    const ocls::kernel k = batched_gemm::make_kernel();
    return std::function<double(const atf::configuration&)>(
        [queue, k, prob](const atf::configuration& c) {
          const batched_gemm::params p = bgemm_params(c);
          return model_launch(*queue, k, batched_gemm::launch_range(prob, p),
                              batched_gemm::make_defines(prob, p));
        });
  };
  e.reference_check = [](const input_size& size, const ocls::device& dev,
                         const atf::configuration& c) {
    expect_dims("batched_gemm", "BxMxNxK", size, 4);
    const batched_gemm::problem prob{size.dims[0], size.dims[1], size.dims[2],
                                     size.dims[3]};
    const std::vector<float> a = batched_gemm::make_a(prob);
    const std::vector<float> b = batched_gemm::make_b(prob);
    const std::vector<float> expected =
        batched_gemm::reference_gemm(prob, a, b);

    ocls::command_queue queue(functional_context(dev));
    auto ab = std::make_shared<ocls::buffer<float>>(a);
    auto bb = std::make_shared<ocls::buffer<float>>(b);
    auto cb = std::make_shared<ocls::buffer<float>>(expected.size());
    const batched_gemm::params p = bgemm_params(c);
    (void)queue.launch(batched_gemm::make_kernel(),
                       batched_gemm::launch_range(prob, p),
                       {static_cast<double>(prob.batch),
                        static_cast<double>(prob.m),
                        static_cast<double>(prob.n),
                        static_cast<double>(prob.k), ocls::arg(ab),
                        ocls::arg(bb), ocls::arg(cb)},
                       batched_gemm::make_defines(prob, p));
    return matches(cb->host(), expected, 1e-6f);
  };
  return e;
}

}  // namespace

const std::vector<entry>& all() {
  static const std::vector<entry> entries = [] {
    std::vector<entry> list;
    list.push_back(saxpy_entry());
    list.push_back(reduce_entry());
    list.push_back(xgemm_entry());
    list.push_back(conv2d_entry());
    list.push_back(stencil2d_entry());
    list.push_back(spmv_entry());
    list.push_back(batched_gemm_entry());
    return list;
  }();
  return entries;
}

const entry* find(const std::string& name) {
  for (const entry& e : all()) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<std::string> names() {
  std::vector<std::string> out;
  out.reserve(all().size());
  for (const entry& e : all()) out.push_back(e.name);
  return out;
}

std::unique_ptr<atf::search_technique> make_technique(const std::string& name,
                                                      std::uint64_t seed) {
  if (name == "exhaustive") return std::make_unique<atf::exhaustive>();
  if (name == "annealing") {
    return std::make_unique<atf::search::simulated_annealing>(4.0, seed);
  }
  if (name == "opentuner") {
    return std::make_unique<atf::search::opentuner_search>(seed);
  }
  if (name == "surrogate") {
    return std::make_unique<atf::search::surrogate_search>(seed);
  }
  if (name == "random") {
    return std::make_unique<atf::search::random_search>(seed);
  }
  throw std::invalid_argument(
      "unknown search technique '" + name +
      "' (expected exhaustive|annealing|opentuner|surrogate|random)");
}

tune_outcome tune(const entry& e, const input_size& size,
                  const ocls::device& dev, const tune_settings& settings) {
  atf::tuner t;
  t.tuning_parameters(e.make_groups(size, dev.profile()));
  t.search_technique(make_technique(settings.technique, settings.seed));
  if (settings.evaluations > 0) {
    t.abort_condition(atf::cond::evaluations(settings.evaluations));
  }
  t.cache_evaluations(true);
  if (!settings.journal.empty()) {
    t.session(settings.journal);
  }

  auto cost = e.make_cost(size, dev);
  auto result = t.tune(cost);

  tune_outcome out;
  out.evaluations = result.evaluations;
  out.failed_evaluations = result.failed_evaluations;
  out.space_size = result.search_space_size;
  if (result.has_best()) {
    out.best = result.best_configuration();
    out.best_ns = *result.best_cost;
  }
  return out;
}

}  // namespace atf::kernels::registry
