#include "atf/kernels/conv2d.hpp"

#include <algorithm>
#include <cmath>

#include "atf/common/math_utils.hpp"
#include "atf/constraint.hpp"
#include "atf/range.hpp"
#include "ocls/buffer.hpp"
#include "ocls/error.hpp"

namespace atf::kernels::conv2d {

params params::from_defines(const ocls::define_map& defines) {
  params p;
  p.tbx = defines.get_uint("TBX");
  p.tby = defines.get_uint("TBY");
  p.lx = defines.get_uint("LX");
  p.ly = defines.get_uint("LY");
  p.vecx = defines.get_uint("VECX");
  p.unroll = defines.get_uint("UNROLL");
  p.use_lmem = defines.get_bool("USE_LMEM");
  return p;
}

void params::to_defines(ocls::define_map& defines) const {
  defines.set("TBX", tbx);
  defines.set("TBY", tby);
  defines.set("LX", lx);
  defines.set("LY", ly);
  defines.set("VECX", vecx);
  defines.set("UNROLL", unroll);
  defines.set("USE_LMEM", use_lmem);
}

namespace {

std::size_t staged_tile_bytes(std::uint64_t tbx, std::uint64_t tby,
                              const problem& prob) {
  return static_cast<std::size_t>((tbx + prob.filter_width - 1) *
                                  (tby + prob.filter_height - 1)) *
         sizeof(float);
}

}  // namespace

tuning_setup make_tuning_parameters(const problem& prob,
                                    std::size_t max_work_group_size,
                                    std::size_t local_mem_bytes) {
  const std::uint64_t w_out = prob.out_width();
  const std::uint64_t h_out = prob.out_height();
  const std::uint64_t r = prob.filter_height;

  atf::tp<std::uint64_t> tbx("TBX", atf::interval<std::uint64_t>(1, w_out));
  atf::tp<std::uint64_t> lx("LX", atf::interval<std::uint64_t>(1, w_out),
                            atf::divides(tbx));
  atf::tp<std::uint64_t> vecx("VECX", atf::set<std::uint64_t>({1, 2, 4, 8}),
                              atf::divides(tbx / lx));
  atf::tp<std::uint64_t> tby("TBY", atf::interval<std::uint64_t>(1, h_out));
  atf::tp<std::uint64_t> ly(
      "LY", atf::interval<std::uint64_t>(1, h_out),
      atf::divides(tby) &&
          atf::less_equal(atf::expr<std::uint64_t>([lx, max_work_group_size] {
            return max_work_group_size /
                   std::max<std::uint64_t>(lx.eval(), 1);
          })));
  atf::tp<std::uint64_t> unroll("UNROLL", atf::interval<std::uint64_t>(1, r),
                                atf::divides(r));
  atf::tp<bool> use_lmem(
      "USE_LMEM", atf::set(false, true),
      atf::pred([tbx, tby, prob, local_mem_bytes](bool v) {
        return !v || staged_tile_bytes(tbx.eval(), tby.eval(), prob) <=
                         local_mem_bytes;
      }));

  return tuning_setup{std::move(tbx), std::move(lx),     std::move(vecx),
                      std::move(tby), std::move(ly),     std::move(unroll),
                      std::move(use_lmem)};
}

ocls::nd_range launch_range(const problem& prob, const params& p) {
  const std::size_t tiles_x = common::ceil_div(prob.out_width(), p.tbx);
  const std::size_t tiles_y = common::ceil_div(prob.out_height(), p.tby);
  return ocls::nd_range::d2(tiles_x * p.lx, tiles_y * p.ly, p.lx, p.ly);
}

bool valid(const problem& prob, const params& p,
           std::size_t max_work_group_size, std::size_t local_mem_bytes) {
  const auto is_vw = [](std::uint64_t v) {
    return v == 1 || v == 2 || v == 4 || v == 8;
  };
  if (p.tbx == 0 || p.tby == 0 || p.lx == 0 || p.ly == 0 || p.unroll == 0) {
    return false;
  }
  if (!is_vw(p.vecx)) return false;
  if (p.tbx % p.lx != 0) return false;
  if (p.tby % p.ly != 0) return false;
  if ((p.tbx / p.lx) % p.vecx != 0) return false;
  if (prob.filter_height % p.unroll != 0) return false;
  if (p.lx * p.ly > max_work_group_size) return false;
  if (p.use_lmem &&
      staged_tile_bytes(p.tbx, p.tby, prob) > local_mem_bytes) {
    return false;
  }
  return true;
}

namespace {

void body(const ocls::nd_item& item, const ocls::kernel_args& args,
          const ocls::define_map& defines) {
  if (args.size() != 7) {
    throw ocls::invalid_kernel_args(
        "conv2d expects (H, W, R, S, in, flt, out)");
  }
  const auto h = args[0].scalar<std::size_t>();
  const auto w = args[1].scalar<std::size_t>();
  const auto r = args[2].scalar<std::size_t>();
  const auto s = args[3].scalar<std::size_t>();
  auto& in = args[4].buf<float>();
  auto& flt = args[5].buf<float>();
  auto& out = args[6].buf<float>();

  const std::size_t h_out = h - r + 1;
  const std::size_t w_out = w - s + 1;
  const std::uint64_t tbx = defines.get_uint("TBX");
  const std::uint64_t tby = defines.get_uint("TBY");
  const std::size_t lx = item.local_size(0);
  const std::size_t ly = item.local_size(1);

  const std::size_t tile_x = item.group_id(0) * tbx;
  const std::size_t tile_y = item.group_id(1) * tby;

  // Thread (i, j) computes the tile elements with stride (LX, LY); tiles
  // overhanging the output are guarded, as with the GEMM kernel.
  for (std::size_t y = tile_y + item.local_id(1); y < tile_y + tby; y += ly) {
    if (y >= h_out) continue;
    for (std::size_t x = tile_x + item.local_id(0); x < tile_x + tbx;
         x += lx) {
      if (x >= w_out) continue;
      float acc = 0.0f;
      for (std::size_t fr = 0; fr < r; ++fr) {
        for (std::size_t fs = 0; fs < s; ++fs) {
          acc += in[(y + fr) * w + (x + fs)] * flt[fr * s + fs];
        }
      }
      out[y * w_out + x] = acc;
    }
  }
}

std::size_t local_mem(const ocls::define_map& defines) {
  if (!defines.get_bool("USE_LMEM")) {
    return 0;
  }
  // The staged input tile: (TBX+S-1) x (TBY+R-1) floats. S and R arrive as
  // defines too (the cost function injects the problem shape).
  const std::uint64_t tbx = defines.get_uint("TBX");
  const std::uint64_t tby = defines.get_uint("TBY");
  const std::uint64_t r = defines.get_uint("R");
  const std::uint64_t s = defines.get_uint("S");
  return static_cast<std::size_t>((tbx + s - 1) * (tby + r - 1)) *
         sizeof(float);
}

ocls::perf_estimate model(const ocls::nd_range& range,
                          const ocls::device_profile& dev,
                          const ocls::define_map& defines) {
  const double h = static_cast<double>(defines.get_uint("H"));
  const double w = static_cast<double>(defines.get_uint("W"));
  const double r = static_cast<double>(defines.get_uint("R"));
  const double s = static_cast<double>(defines.get_uint("S"));
  const params p = params::from_defines(defines);

  const double h_out = h - r + 1;
  const double w_out = w - s + 1;
  const double tiles_x = static_cast<double>(range.global[0] / range.local[0]);
  const double tiles_y = static_cast<double>(range.global[1] / range.local[1]);
  const double num_wgs = tiles_x * tiles_y;
  const double threads = static_cast<double>(p.lx * p.ly);
  const double cus = static_cast<double>(dev.compute_units);

  // Full tiles are computed (tail waste), 2 flops per MAC.
  const double flops_per_wg =
      2.0 * static_cast<double>(p.tbx * p.tby) * r * s;

  double vec_eff;
  double lane_eff = 1.0;
  double latency_eff = 1.0;
  if (dev.kind == ocls::device_kind::gpu) {
    vec_eff = std::min(
        1.0, 0.78 + 0.06 * std::log2(static_cast<double>(p.vecx)));
    const double simd = static_cast<double>(dev.simd_width);
    lane_eff = threads / (std::ceil(threads / simd) * simd);
    const double conc = std::max(1.0, std::floor(2048.0 / threads));
    const double wgs_per_cu_d = std::ceil(num_wgs / cus);
    latency_eff =
        std::min(1.0, threads * std::min(conc, wgs_per_cu_d) / 512.0);
  } else {
    vec_eff = 0.18 + 0.82 * static_cast<double>(std::min<std::uint64_t>(
                                p.vecx, dev.simd_width)) /
                         static_cast<double>(dev.simd_width);
  }
  const double unroll_eff =
      static_cast<double>(p.unroll) /
      (static_cast<double>(p.unroll) +
       (dev.kind == ocls::device_kind::cpu ? 0.5 : 0.3));

  // Local-memory staging amortizes the overlapping reads: without it every
  // output element re-reads R*S inputs from global memory.
  const double reads_per_wg =
      p.use_lmem
          ? (static_cast<double>(p.tbx) + s - 1) *
                (static_cast<double>(p.tby) + r - 1)
          : static_cast<double>(p.tbx * p.tby) * r * s;
  const double bytes = (num_wgs * reads_per_wg + h_out * w_out) * 4.0;

  const double rate =
      dev.flops_per_cu_per_cycle * dev.clock_ghz * vec_eff * unroll_eff *
      lane_eff * latency_eff;
  const double wgs_per_cu = std::ceil(num_wgs / cus);
  const double t_compute = wgs_per_cu * flops_per_wg / rate;

  double bw = dev.peak_bytes_per_s();
  if ((h * w + r * s + h_out * w_out) * 4.0 <
      static_cast<double>(dev.llc_bytes)) {
    bw *= dev.cache_bw_multiplier;
  }
  const double t_mem = bytes / (bw * 0.8) * 1e9;
  const double t_sched = wgs_per_cu * dev.workgroup_overhead_ns;

  const double t = std::max(t_compute, t_mem) + t_sched;
  const double busy = std::min(num_wgs, cus) / cus;
  return {t, std::clamp(busy * 0.8, 0.05, 1.0)};
}

}  // namespace

ocls::define_map make_defines(const problem& prob, const params& p) {
  ocls::define_map defines;
  defines.set("H", static_cast<std::uint64_t>(prob.height));
  defines.set("W", static_cast<std::uint64_t>(prob.width));
  defines.set("R", static_cast<std::uint64_t>(prob.filter_height));
  defines.set("S", static_cast<std::uint64_t>(prob.filter_width));
  p.to_defines(defines);
  return defines;
}

ocls::kernel make_kernel() {
  ocls::kernel k("conv2d_direct");
  k.set_body(body);
  k.set_perf_model(model);
  k.set_local_mem_model(local_mem);
  return k;
}

}  // namespace atf::kernels::conv2d
