// ATF's pre-implemented OpenCL cost function (paper, Section II Step 2).
//
//   auto cf_saxpy = atf::cf::ocl("NVIDIA", "Tesla K20c",
//                                atf::kernels::saxpy::make_kernel())
//                       .inputs(atf::cf::scalar<std::size_t>(N),
//                               atf::cf::scalar<float>(),
//                               atf::cf::buffer<float>(N),
//                               atf::cf::buffer<float>(N))
//                       .glb_size(N / WPT)
//                       .lcl_size(LS);
//
// The device is chosen by platform and device *name* (no numeric OpenCL
// ids); inputs default to random data uploaded once at initialization;
// global/local sizes are arbitrary arithmetic expressions over tuning
// parameters. Invoking the cost function with a configuration injects the
// parameter values as preprocessor defines, launches the kernel on the
// simulated device, and returns the profiled runtime in nanoseconds. Launch
// failures (e.g. CL_INVALID_WORK_GROUP_SIZE) surface as
// atf::evaluation_error, which the tuner records as a failed configuration.
//
// Result checking is optional, as in ATF: verify_output<T>(arg_index,
// reference) enables functional execution and compares the named buffer
// against a caller-provided reference after every launch.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "atf/configuration.hpp"
#include "atf/cost.hpp"
#include "atf/expression.hpp"
#include "ocls/ocls.hpp"

namespace atf::cf {

/// A lazily evaluated launch-size component: literal, tp or expression.
using size_fn = std::function<std::size_t()>;

namespace detail {
template <typename E>
size_fn to_size_fn(const E& e) {
  auto lazy = atf::make_expr(e);
  return [lazy] { return static_cast<std::size_t>(lazy.eval()); };
}
}  // namespace detail

/// Input descriptors (paper, Section III: atf::scalar<T>() generates a
/// random value, atf::buffer<T>(N) a random N-element buffer; passing
/// concrete data is also supported).
struct input {
  enum class kind { scalar_random, scalar_value, buffer_random, buffer_data };
  kind what;
  double value = 0.0;                 ///< scalar_value payload
  std::size_t count = 0;              ///< buffer element count
  std::vector<float> data;            ///< buffer_data payload
};

template <typename T>
input scalar() {
  return {input::kind::scalar_random, 0.0, 0, {}};
}
template <typename T>
input scalar(T value) {
  return {input::kind::scalar_value, static_cast<double>(value), 0, {}};
}
template <typename T>
input buffer(std::size_t count) {
  return {input::kind::buffer_random, 0.0, count, {}};
}
inline input buffer(std::vector<float> data) {
  return {input::kind::buffer_data, 0.0, data.size(), std::move(data)};
}

class ocl {
public:
  /// Chooses the target device by platform and device name substrings.
  ocl(const std::string& platform_name, const std::string& device_name,
      ocls::kernel k);

  /// Chooses an already-resolved device (tests, custom profiles).
  ocl(ocls::device dev, ocls::kernel k);

  /// Declares the kernel arguments; random payloads are generated and
  /// "uploaded" once, here.
  ocl& inputs(std::vector<input> descriptors);

  template <typename... Inputs>
  ocl& inputs(Inputs... descriptors) {
    return inputs(std::vector<input>{std::move(descriptors)...});
  }

  /// Global size as 1-3 arithmetic expressions over tuning parameters.
  template <typename... Es>
  ocl& glb_size(const Es&... es) {
    global_ = {detail::to_size_fn(es)...};
    return *this;
  }
  /// Local size, same form.
  template <typename... Es>
  ocl& lcl_size(const Es&... es) {
    local_ = {detail::to_size_fn(es)...};
    return *this;
  }

  /// Adds a fixed preprocessor define (e.g. the input size).
  ocl& define(const std::string& name, std::uint64_t value);

  /// Enables result checking: after every launch the buffer argument at
  /// `arg_index` is compared elementwise (absolute tolerance) against
  /// `expected`. Enables functional execution.
  ocl& verify_output(std::size_t arg_index, std::vector<float> expected,
                     float tolerance = 1e-3f);

  /// Fixed RNG seed for the random inputs (default deterministic).
  ocl& seed(std::uint64_t seed);

  /// Evaluates one configuration; returns the modeled kernel runtime in ns.
  double operator()(const atf::configuration& config) const;

  /// As operator(), but also returns the modeled energy — for
  /// multi-objective tuning (runtime first, energy second).
  atf::cost_pair runtime_energy(const atf::configuration& config) const;

  /// Purity annotation (atf::declares_thread_safe_cost): evaluations are
  /// pure — the analytic performance model reads only immutable session
  /// state — unless verify_output enabled functional execution, which runs
  /// the kernel against the shared argument buffers.
  [[nodiscard]] bool thread_safe() const noexcept { return !verify_; }

  [[nodiscard]] const ocls::device& dev() const;

private:
  struct launch_outcome {
    double ns;
    double energy_uj;
  };
  [[nodiscard]] launch_outcome run(const atf::configuration& config) const;
  void materialize_inputs();

  std::shared_ptr<ocls::context> context_;
  ocls::kernel kernel_;
  std::vector<input> descriptors_;
  ocls::kernel_args args_;
  std::vector<size_fn> global_;
  std::vector<size_fn> local_;
  ocls::define_map fixed_defines_;
  std::uint64_t seed_ = 0xa7f;
  bool verify_ = false;
  std::size_t verify_index_ = 0;
  std::vector<float> verify_expected_;
  float verify_tolerance_ = 1e-3f;
  std::vector<float> verify_baseline_;  ///< initial contents of the checked buffer
};

/// ATF's CUDA cost function (paper: based on NVRTC; identical to the OpenCL
/// one except that the platform is implicitly NVIDIA and sizes are given as
/// grid/block dimensions, where global = grid * block).
class cuda {
public:
  explicit cuda(const std::string& device_name, ocls::kernel k);

  cuda& inputs(std::vector<input> descriptors) {
    impl_.inputs(std::move(descriptors));
    return *this;
  }
  template <typename... Inputs>
  cuda& inputs(Inputs... descriptors) {
    impl_.inputs(std::move(descriptors)...);
    return *this;
  }

  /// Grid dimension(s): number of blocks per dimension.
  template <typename... Es>
  cuda& grid_dim(const Es&... es) {
    grid_ = {detail::to_size_fn(es)...};
    sync_sizes();
    return *this;
  }
  /// Block dimension(s): threads per block.
  template <typename... Es>
  cuda& block_dim(const Es&... es) {
    block_ = {detail::to_size_fn(es)...};
    sync_sizes();
    return *this;
  }

  cuda& define(const std::string& name, std::uint64_t value) {
    impl_.define(name, value);
    return *this;
  }

  double operator()(const atf::configuration& config) const {
    return impl_(config);
  }

  /// Purity annotation, delegated to the underlying OpenCL cost function.
  [[nodiscard]] bool thread_safe() const noexcept {
    return impl_.thread_safe();
  }

private:
  void sync_sizes();

  ocl impl_;
  std::vector<size_fn> grid_;
  std::vector<size_fn> block_;
};

}  // namespace atf::cf
