// The generic cost function: any callable over a configuration. This is
// mostly documentation-by-type — the tuner accepts arbitrary callables
// directly — but the wrapper adds failure-to-evaluation_error translation
// so user code can throw anything.
#pragma once

#include <functional>
#include <type_traits>
#include <utility>

#include "atf/configuration.hpp"
#include "atf/cost.hpp"

namespace atf::cf {

template <typename F>
class generic_cf {
public:
  explicit generic_cf(F fn, bool thread_safe = false)
      : fn_(std::move(fn)), thread_safe_(thread_safe) {}

  auto operator()(const atf::configuration& config) const {
    try {
      return fn_(config);
    } catch (const atf::evaluation_error&) {
      throw;  // already the tuner's language
    } catch (const std::exception& error) {
      throw atf::evaluation_error(error.what());
    }
  }

  /// Purity annotation consumed by atf::declares_thread_safe_cost — true
  /// only when constructed via cf::pure (or with thread_safe = true),
  /// promising the wrapped callable is safe to invoke concurrently.
  [[nodiscard]] bool thread_safe() const noexcept { return thread_safe_; }

private:
  F fn_;
  bool thread_safe_;
};

/// Wraps an arbitrary callable returning any type with operator<.
template <typename F>
generic_cf<std::decay_t<F>> generic(F&& fn) {
  return generic_cf<std::decay_t<F>>(std::forward<F>(fn));
}

/// Like cf::generic, but annotates the callable as pure — invocations share
/// no mutable state, so the tuner's batched evaluation mode can run them
/// concurrently without a warning. The promise is the caller's.
template <typename F>
generic_cf<std::decay_t<F>> pure(F&& fn) {
  return generic_cf<std::decay_t<F>>(std::forward<F>(fn), true);
}

}  // namespace atf::cf
