// The generic cost function: any callable over a configuration. This is
// mostly documentation-by-type — the tuner accepts arbitrary callables
// directly — but the wrapper adds failure-to-evaluation_error translation
// so user code can throw anything.
#pragma once

#include <functional>
#include <type_traits>
#include <utility>

#include "atf/configuration.hpp"
#include "atf/cost.hpp"

namespace atf::cf {

template <typename F>
class generic_cf {
public:
  explicit generic_cf(F fn) : fn_(std::move(fn)) {}

  auto operator()(const atf::configuration& config) const {
    try {
      return fn_(config);
    } catch (const atf::evaluation_error&) {
      throw;  // already the tuner's language
    } catch (const std::exception& error) {
      throw atf::evaluation_error(error.what());
    }
  }

private:
  F fn_;
};

/// Wraps an arbitrary callable returning any type with operator<.
template <typename F>
generic_cf<std::decay_t<F>> generic(F&& fn) {
  return generic_cf<std::decay_t<F>>(std::forward<F>(fn));
}

}  // namespace atf::cf
