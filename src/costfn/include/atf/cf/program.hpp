// The generic *program* cost function (paper, Section II Step 2): tunes a
// program written in an arbitrary language, with an arbitrary objective.
//
// It is initialized with
//   1. the path to the program's source file,
//   2. paths to two user-provided scripts for compiling and running it, and
//   3. optionally a log file the program writes its cost(s) to; without a
//      log file, ATF measures the run script's wall-clock time.
//
// Per evaluation the compile script is invoked as
//     <compile_script> <source_path> NAME1=VALUE1 NAME2=VALUE2 ...
// (one NAME=VALUE per tuning parameter), then the run script as
//     <run_script> <source_path>.
// A non-zero exit status of either script marks the configuration as
// failed. Multi-objective programs write comma-separated costs to the log
// file; the returned program_cost orders lexicographically.
#pragma once

#include <string>
#include <vector>

#include "atf/configuration.hpp"
#include "atf/cost.hpp"

namespace atf::cf {

/// Comma-separated costs from the log file, minimized lexicographically.
struct program_cost {
  std::vector<double> values;

  friend bool operator<(const program_cost& a, const program_cost& b) {
    return a.values < b.values;
  }
  friend bool operator==(const program_cost& a,
                         const program_cost& b) = default;
};

class program {
public:
  program(std::string source_path, std::string compile_script,
          std::string run_script);

  /// Opts into log-file costs; otherwise wall-clock runtime is used.
  program& log_file(std::string path);

  program_cost operator()(const atf::configuration& config) const;

  /// Never thread-safe: the compile and run scripts rewrite the source
  /// file's build artifacts in place, so concurrent evaluations would race
  /// on the filesystem.
  static constexpr bool thread_safe = false;

private:
  std::string source_path_;
  std::string compile_script_;
  std::string run_script_;
  std::string log_path_;
};

}  // namespace atf::cf

namespace atf {
template <>
struct cost_traits<cf::program_cost> {
  static double scalar(const cf::program_cost& c) {
    return c.values.empty() ? 0.0 : c.values.front();
  }
  static std::string describe(const cf::program_cost& c) {
    std::string out = "(";
    for (std::size_t i = 0; i < c.values.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += std::to_string(c.values[i]);
    }
    return out + ")";
  }
};
}  // namespace atf
