#include "atf/cf/program.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "atf/common/stopwatch.hpp"
#include "atf/common/string_utils.hpp"

namespace atf::cf {

namespace {

/// Quotes a string for POSIX sh.
std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

int run_command(const std::string& command) {
  const int status = std::system(command.c_str());
  return status;
}

}  // namespace

program::program(std::string source_path, std::string compile_script,
                 std::string run_script)
    : source_path_(std::move(source_path)),
      compile_script_(std::move(compile_script)),
      run_script_(std::move(run_script)) {}

program& program::log_file(std::string path) {
  log_path_ = std::move(path);
  return *this;
}

program_cost program::operator()(const atf::configuration& config) const {
  // Compile with the configuration's values as NAME=VALUE arguments.
  std::ostringstream compile;
  compile << shell_quote(compile_script_) << ' ' << shell_quote(source_path_);
  for (const auto& [name, value] : config.entries()) {
    compile << ' ' << shell_quote(name + "=" + atf::to_string(value));
  }
  if (run_command(compile.str()) != 0) {
    throw atf::evaluation_error("atf::cf::program: compile script failed");
  }

  const std::string run_cmd =
      shell_quote(run_script_) + ' ' + shell_quote(source_path_);
  common::stopwatch timer;
  if (run_command(run_cmd) != 0) {
    throw atf::evaluation_error("atf::cf::program: run script failed");
  }
  const double wall_ns = timer.elapsed_seconds() * 1e9;

  if (log_path_.empty()) {
    // No log file: the program's wall-clock runtime is the cost.
    return program_cost{{wall_ns}};
  }

  std::ifstream log(log_path_);
  if (!log) {
    throw atf::evaluation_error("atf::cf::program: cannot read log file '" +
                                log_path_ + "'");
  }
  std::string line;
  std::getline(log, line);
  program_cost cost;
  for (const auto& field : common::split(line, ',')) {
    const std::string text = common::trim(field);
    if (text.empty()) {
      continue;
    }
    try {
      cost.values.push_back(std::stod(text));
    } catch (const std::exception&) {
      throw atf::evaluation_error(
          "atf::cf::program: malformed cost '" + text + "' in log file");
    }
  }
  if (cost.values.empty()) {
    throw atf::evaluation_error("atf::cf::program: empty log file");
  }
  return cost;
}

}  // namespace atf::cf
