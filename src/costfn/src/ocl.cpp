#include "atf/cf/ocl.hpp"

#include <cmath>

#include "atf/common/rng.hpp"

namespace atf::cf {

ocl::ocl(const std::string& platform_name, const std::string& device_name,
         ocls::kernel k)
    : ocl(ocls::find_device(platform_name, device_name), std::move(k)) {}

ocl::ocl(ocls::device dev, ocls::kernel k)
    : context_(std::make_shared<ocls::context>(std::move(dev))),
      kernel_(std::move(k)) {}

ocl& ocl::inputs(std::vector<input> descriptors) {
  descriptors_ = std::move(descriptors);
  materialize_inputs();
  return *this;
}

ocl& ocl::define(const std::string& name, std::uint64_t value) {
  fixed_defines_.set(name, value);
  return *this;
}

ocl& ocl::seed(std::uint64_t seed) {
  seed_ = seed;
  materialize_inputs();
  return *this;
}

ocl& ocl::verify_output(std::size_t arg_index, std::vector<float> expected,
                        float tolerance) {
  verify_ = true;
  verify_index_ = arg_index;
  verify_expected_ = std::move(expected);
  verify_tolerance_ = tolerance;
  context_->execute_functionally(true);
  if (verify_index_ < args_.size() && !args_[verify_index_].is_scalar()) {
    const auto host = args_[verify_index_].buf<float>().host();
    verify_baseline_.assign(host.begin(), host.end());
  }
  return *this;
}

void ocl::materialize_inputs() {
  // Random data is generated and uploaded once — the paper avoids
  // per-evaluation host/device transfers the same way.
  args_.clear();
  if (descriptors_.empty()) {
    return;
  }
  common::xoshiro256 rng(seed_);
  for (const auto& d : descriptors_) {
    switch (d.what) {
      case input::kind::scalar_value:
        args_.emplace_back(d.value);
        break;
      case input::kind::scalar_random:
        args_.emplace_back(rng.uniform(-2.0, 2.0));
        break;
      case input::kind::buffer_random: {
        auto buf = std::make_shared<ocls::buffer<float>>(d.count);
        for (auto& v : buf->host()) {
          v = static_cast<float>(rng.uniform(-2.0, 2.0));
        }
        args_.emplace_back(std::move(buf));
        break;
      }
      case input::kind::buffer_data: {
        auto buf = std::make_shared<ocls::buffer<float>>(d.data);
        args_.emplace_back(std::move(buf));
        break;
      }
    }
  }
}

const ocls::device& ocl::dev() const { return context_->dev(); }

ocl::launch_outcome ocl::run(const atf::configuration& config) const {
  // The tuning parameters become preprocessor defines, exactly as ATF
  // substitutes them into kernel source via -D options.
  ocls::define_map defines = fixed_defines_;
  for (const auto& [name, value] : config.entries()) {
    defines.set(name, atf::to_string(value));
  }

  if (global_.empty() || local_.empty()) {
    throw atf::evaluation_error(
        "atf::cf::ocl: glb_size and lcl_size must be set");
  }

  ocls::nd_range range;
  range.dims = static_cast<unsigned>(global_.size());
  for (std::size_t d = 0; d < global_.size(); ++d) {
    range.global[d] = global_[d]();
  }
  for (std::size_t d = 0; d < local_.size() && d < 3; ++d) {
    range.local[d] = local_[d]();
  }

  // Restore the checked output buffer so repeated launches accumulate from
  // the same starting state (saxpy updates y in place).
  if (verify_ && !verify_baseline_.empty()) {
    auto host = args_[verify_index_].buf<float>().host();
    std::copy(verify_baseline_.begin(), verify_baseline_.end(), host.begin());
  }

  ocls::command_queue queue(context_);
  ocls::event event;
  try {
    event = queue.launch(kernel_, range, args_, defines);
  } catch (const ocls::error& error) {
    // Launch/validation failures are ordinary tuning events: the
    // configuration is reported as failed, not as a crash.
    throw atf::evaluation_error(error.what());
  }

  if (verify_) {
    const auto host = args_[verify_index_].buf<float>().host();
    if (host.size() != verify_expected_.size()) {
      throw atf::evaluation_error(
          "atf::cf::ocl: verification size mismatch");
    }
    for (std::size_t i = 0; i < host.size(); ++i) {
      if (std::abs(host[i] - verify_expected_[i]) > verify_tolerance_) {
        throw atf::evaluation_error(
            "atf::cf::ocl: result mismatch at element " + std::to_string(i));
      }
    }
  }
  return {event.profile_ns(), event.energy_uj()};
}

double ocl::operator()(const atf::configuration& config) const {
  return run(config).ns;
}

atf::cost_pair ocl::runtime_energy(const atf::configuration& config) const {
  const auto outcome = run(config);
  return atf::cost_pair{outcome.ns, outcome.energy_uj};
}

cuda::cuda(const std::string& device_name, ocls::kernel k)
    : impl_("NVIDIA", device_name, std::move(k)) {}

void cuda::sync_sizes() {
  if (grid_.empty() || block_.empty() || grid_.size() != block_.size()) {
    return;
  }
  // OpenCL global size = CUDA grid * block; local size = block.
  std::vector<size_fn> global;
  std::vector<size_fn> local;
  for (std::size_t d = 0; d < grid_.size(); ++d) {
    auto g = grid_[d];
    auto b = block_[d];
    global.push_back([g, b] { return g() * b(); });
    local.push_back(b);
  }
  // Rebuild impl_'s sizes through its template setters.
  switch (global.size()) {
    case 1:
      impl_.glb_size(atf::expr<std::size_t>(global[0]));
      impl_.lcl_size(atf::expr<std::size_t>(local[0]));
      break;
    case 2:
      impl_.glb_size(atf::expr<std::size_t>(global[0]),
                     atf::expr<std::size_t>(global[1]));
      impl_.lcl_size(atf::expr<std::size_t>(local[0]),
                     atf::expr<std::size_t>(local[1]));
      break;
    default:
      impl_.glb_size(atf::expr<std::size_t>(global[0]),
                     atf::expr<std::size_t>(global[1]),
                     atf::expr<std::size_t>(global[2]));
      impl_.lcl_size(atf::expr<std::size_t>(local[0]),
                     atf::expr<std::size_t>(local[1]),
                     atf::expr<std::size_t>(local[2]));
      break;
  }
}

}  // namespace atf::cf
