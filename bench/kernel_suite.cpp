// Kernel-family suite sweep: tune every registered workload family on every
// built-in device profile with fixed seeds, check the tuned best against the
// family's scalar reference, and print the comparison table (DESIGN.md §14,
// EXPERIMENTS.md "kernel suite" rows).
//
// Every cell uses the same derivation for its seed — fnv1a(family) chained
// with fnv1a(device) — so a row never changes because another row was added,
// and two runs of the binary print bit-identical tables (wall-clock timing
// is reported separately, below the table, for that reason).
//
// Usage: kernel_suite [--small]
//   --small    sanitizer-budget variant (small sizes, 60-evaluation budget) —
//              wired into the kernel-suite CI job under TSan. Exit code is 1
//              if any tuned best fails its reference check, so the job fails
//              on a functional regression, not just a crash.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "atf/common/hash.hpp"
#include "atf/kernels/registry.hpp"
#include "ocls/ocls.hpp"

namespace reg = atf::kernels::registry;

namespace {

struct cell_result {
  std::string family;
  std::string device;
  std::string size;
  reg::tune_outcome outcome;
  bool reference_ok = false;
};

/// Per-family sizes: small enough that space generation stays in the
/// milliseconds even under TSan, large enough that the landscape has a
/// non-trivial best (the full sizes are a strict superset knob-wise).
const std::map<std::string, std::string>& sizes(bool small) {
  static const std::map<std::string, std::string> full = {
      {"saxpy", "1048576"},        {"reduce", "1048576"},
      {"xgemm", "32x32x32"},       {"conv2d", "32x32x5x5"},
      {"stencil2d", "258x258x2"},  {"spmv", "4096x16"},
      {"batched_gemm", "256x16x16x16"},
  };
  static const std::map<std::string, std::string> tiny = {
      {"saxpy", "4096"},           {"reduce", "4096"},
      {"xgemm", "16x16x16"},       {"conv2d", "16x16x3x3"},
      {"stencil2d", "34x34x2"},    {"spmv", "512x8"},
      {"batched_gemm", "32x8x8x8"},
  };
  return small ? tiny : full;
}

}  // namespace

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::strcmp(argv[1], "--small") == 0;
  const std::uint64_t evaluations = small ? 60 : 250;

  const std::vector<std::string> device_names = {"Xeon", "K20m", "Iris",
                                                 "Vega"};
  std::vector<cell_result> cells;
  bool all_ok = true;

  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& device_name : device_names) {
    const auto dev = ocls::find_device("", device_name);
    for (const auto& e : reg::all()) {
      const auto size = reg::input_size::parse(sizes(small).at(e.name));

      reg::tune_settings settings;
      settings.technique = "annealing";
      settings.evaluations = evaluations;
      settings.seed = atf::common::fnv1a(device_name,
                                         atf::common::fnv1a(e.name));

      cell_result cell;
      cell.family = e.name;
      cell.device = device_name;
      cell.size = size.to_string();
      cell.outcome = reg::tune(e, size, dev, settings);
      cell.reference_ok = e.reference_check(size, dev, cell.outcome.best);
      all_ok = all_ok && cell.reference_ok;
      cells.push_back(cell);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  std::printf("kernel suite: %zu families x %zu profiles, %s sizes, "
              "annealing @ %llu evaluations, per-cell fnv1a seeds\n\n",
              reg::all().size(), device_names.size(),
              small ? "--small" : "full",
              static_cast<unsigned long long>(evaluations));
  std::printf("%-13s %-6s %-13s %12s %7s %7s %14s %5s\n", "family", "device",
              "size", "space", "evals", "failed", "best ns", "ref");
  for (const auto& cell : cells) {
    std::printf("%-13s %-6s %-13s %12llu %7llu %7llu %14.1f %5s\n",
                cell.family.c_str(), cell.device.c_str(), cell.size.c_str(),
                static_cast<unsigned long long>(cell.outcome.space_size),
                static_cast<unsigned long long>(cell.outcome.evaluations),
                static_cast<unsigned long long>(
                    cell.outcome.failed_evaluations),
                cell.outcome.best_ns, cell.reference_ok ? "ok" : "FAIL");
  }
  std::printf("\nswept %zu cells in %.2f s\n", cells.size(),
              std::chrono::duration<double>(t1 - t0).count());

  if (!all_ok) {
    std::printf("\nreference MISMATCH: at least one tuned best diverged from "
                "its scalar reference\n");
    return 1;
  }
  std::printf("\nall %zu tuned bests match their scalar references\n",
              cells.size());
  return 0;
}
