// The running example of Sections II-III: auto-tuning the CLBlast saxpy
// kernel (Listing 1) with the ATF program of Listing 2 — WPT and LS for a
// fixed input size N, on the simulated Tesla K20 (the paper's listing
// targets the sibling K20c; the evaluation machine carries a K20m).
#include <chrono>
#include <cstdio>
#include <memory>

#include "atf/atf.hpp"
#include "atf/cf/ocl.hpp"
#include "atf/kernels/saxpy.hpp"
#include "atf/search/simulated_annealing.hpp"

using namespace std::chrono_literals;

int main() {
  const std::size_t n = std::size_t{1} << 22;

  // Step 1: describe the search space (Listing 2, lines 6-13).
  auto setup = atf::kernels::saxpy::make_tuning_parameters(n);
  auto& wpt = setup.wpt;
  auto& ls = setup.ls;

  // Step 2: the pre-implemented OpenCL cost function (lines 15-24).
  auto cf_saxpy =
      atf::cf::ocl("NVIDIA", "Tesla K20", atf::kernels::saxpy::make_kernel())
          .inputs(atf::cf::scalar<std::size_t>(n),   // N
                  atf::cf::scalar<float>(),          // a (random)
                  atf::cf::buffer<float>(n),         // x (random)
                  atf::cf::buffer<float>(n))         // y (random)
          .glb_size(n / wpt)
          .lcl_size(ls);

  // Step 3: explore with simulated annealing under a duration condition
  // (the listing uses 10 minutes; a few seconds suffice on the simulator).
  atf::tuner tuner;
  tuner.tuning_parameters(wpt, ls);
  tuner.search_technique(
      std::make_unique<atf::search::simulated_annealing>());
  tuner.abort_condition(atf::cond::duration(2s) ||
                        atf::cond::evaluations(20'000));
  const auto& space = tuner.space();
  auto result = tuner.tune(cf_saxpy);

  const auto& best = result.best_configuration();
  std::printf("=== saxpy tuning (Listing 2), N = 2^22 ===\n");
  std::printf("search space:        %llu valid configurations (generated in "
              "%.3f s)\n",
              static_cast<unsigned long long>(space.size()),
              space.generation_seconds());
  std::printf("evaluations:         %llu (%llu failed)\n",
              static_cast<unsigned long long>(result.evaluations),
              static_cast<unsigned long long>(result.failed_evaluations));
  std::printf("best configuration:  WPT=%zu LS=%zu\n",
              static_cast<std::size_t>(best["WPT"]),
              static_cast<std::size_t>(best["LS"]));
  std::printf("best kernel time:    %.2f us\n", *result.best_cost / 1e3);

  // Contrast with the two extreme configurations.
  auto probe = [&](std::size_t w, std::size_t l) {
    atf::configuration config;
    config.add("WPT", atf::to_tp_value(w));
    config.add("LS", atf::to_tp_value(l));
    wpt.set_current(w);
    ls.set_current(l);
    return cf_saxpy(config);
  };
  std::printf("naive (WPT=1, LS=1): %.2f us\n", probe(1, 1) / 1e3);
  std::printf("speedup:             %.2fx\n",
              probe(1, 1) / *result.best_cost);
  return 0;
}
