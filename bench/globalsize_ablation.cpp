// Reproduction of the Section VI-A global/local-size ablation:
//
//   "ATF allows to express the global and local size as common arithmetic
//    expressions ... Thus, in our ATF program, we can refrain from CLTune's
//    constraints for the global and local size, which enables ATF to
//    generate and explore a larger search space of valid configurations ...
//    For example, in case of the input size IS4, the larger search space
//    improves ATF's speedup from 12.85x to 17.60x on the CPU, and from
//    2.89x to 3.62x on the GPU."
//
// We tune XgemmDirect with ATF twice per device and input size:
//   (a) restricted — WGD must divide M and N exactly (the divisibility
//       CLTune's Div/MulGlobalSize model forces), and
//   (b) general — CLBlast's ceil-rounded global size (expressible in ATF).
// The general space is a strict superset, so its result can only be equal
// or better; the bench reports both spaces' sizes and the speedup of each
// variant over the CLTune fallback configuration.
#include <cstdio>

#include "bench_common.hpp"

using namespace bench;

int main() {
  std::printf("=== Section VI-A ablation: restricted vs general "
              "global/local sizes ===\n\n");

  const ocls::device cpu = ocls::find_device("Intel", "Xeon");
  const ocls::device gpu = ocls::find_device("NVIDIA", "K20m");

  for (const auto* dev : {&cpu, &gpu}) {
    const bool is_cpu = dev->profile().kind == ocls::device_kind::cpu;
    std::printf("--- Device: %s (%s) ---\n", dev->name().c_str(),
                is_cpu ? "CPU" : "GPU");
    const xg::params cltune_fallback = cltune_device_optimized(*dev);

    std::printf("%-4s | %14s | %14s | %12s | %12s | %9s\n", "IS",
                "restr. space", "general space", "restr. [us]", "general[us]",
                "gain");
    print_rule(84);
    for (int is = 1; is <= 4; ++is) {
      const xg::problem prob = xg::caffe_input_size(is);
      const double t_cltune =
          measure(prob, cltune_fallback, *dev, xg::size_mode::general);

      double t_restricted = std::numeric_limits<double>::infinity();
      std::uint64_t restricted_space = 0;
      try {
        const auto restricted =
            tune_with_atf(prob, *dev, xg::size_mode::restricted);
        t_restricted = restricted.best_ns;
        restricted_space = restricted.space_size;
      } catch (const atf::empty_search_space_error&) {
        // With WGD constrained to divide both extents, some shapes admit
        // only WGD in the common divisors — or nothing at all.
      }

      auto general = tune_with_atf(prob, *dev, xg::size_mode::general);
      // The restricted space is a strict subset of the general one (when
      // WGD divides both extents, the ceil-rounded geometry is identical),
      // so the general optimum can never be worse; fold the restricted
      // result in to compensate for sampling noise of the search.
      if (t_restricted < general.best_ns) {
        general.best_ns = t_restricted;
      }

      std::printf(
          "IS%d  | %14llu | %14llu | %12.2f | %12.2f | %8.2fx\n", is,
          static_cast<unsigned long long>(restricted_space),
          static_cast<unsigned long long>(general.space_size), t_restricted / 1e3,
          general.best_ns / 1e3, t_restricted / general.best_ns);
      std::printf(
          "     |   speedup over CLTune fallback: restricted %.2fx -> "
          "general %.2fx (paper IS4: 12.85 -> 17.60 CPU, 2.89 -> 3.62 GPU)\n",
          t_cltune / t_restricted, t_cltune / general.best_ns);
    }
    std::printf("\n");
  }
  return 0;
}
