// Dispatch-quality sweep: how close does multi-size dispatch get to the
// per-shape oracle, and how far ahead of the shipped defaults does it stay?
//
// Grid-tunes blasmini::dispatcher over a problem-size grid, then visits a
// held-out size sweep three ways per shape:
//   oracle     an exact-shape tune at the same budget (the upper bound a
//              per-size database would reach),
//   dispatched the dispatcher's nearest/re-ranked decision (no tuning at
//              the query shape),
//   defaults   the kernel's built-in configuration (CLBlast's fallback,
//              paper Section VI-B).
//
// Usage: dispatch_quality [--small]
//   --small    sanitizer-budget variant (tiny grid, 3 held-out shapes) —
//              wired into the ASan and TSan CI jobs.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "blasmini/dispatch.hpp"

namespace xg = atf::kernels::xgemm;

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::strcmp(argv[1], "--small") == 0;

  const auto dev = ocls::find_device("NVIDIA", "K20m");
  const std::string grid_spec =
      small ? "16,48x16,48x16" : "96,384x96,384x96,256";
  const std::uint64_t evaluations = small ? 120 : 400;
  const std::vector<xg::problem> heldout =
      small ? std::vector<xg::problem>{{24, 24, 16}, {40, 20, 16},
                                       {64, 64, 16}}
            : std::vector<xg::problem>{{128, 128, 128}, {192, 256, 160},
                                       {320, 192, 128}, {256, 320, 96},
                                       {160, 384, 192}, {384, 160, 128},
                                       {288, 288, 224}, {224, 352, 160},
                                       {352, 224, 96},  {256, 256, 256},
                                       {320, 320, 128}, {192, 192, 192}};

  blasmini::tuning_db db;
  blasmini::dispatch_options opts;
  opts.tuning.evaluations = evaluations;
  // Unjournaled in --small (pure nearest-neighbour keeps the sanitizer run
  // lean); journaled + surrogate-re-ranked in the full sweep.
  if (!small) {
    opts.journal_dir = "/tmp/dispatch_quality_journals";
    (void)std::system(("rm -rf '" + opts.journal_dir + "' && mkdir -p '" +
                       opts.journal_dir + "'")
                          .c_str());
  }
  blasmini::dispatcher dispatch(dev, &db, opts);

  const auto grid = blasmini::size_grid::parse(grid_spec);
  const auto t0 = std::chrono::steady_clock::now();
  dispatch.tune_grid(grid);
  const auto t1 = std::chrono::steady_clock::now();
  std::printf("grid %-22s  %zu points, %llu evals/point, tuned in %.2f s, "
              "re-rank samples %zu\n\n",
              grid_spec.c_str(), grid.sizes.size(),
              static_cast<unsigned long long>(evaluations),
              std::chrono::duration<double>(t1 - t0).count(),
              dispatch.rerank_samples());

  std::printf("%-14s %12s %12s %12s %9s %9s  %s\n", "held-out size",
              "oracle us", "dispatch us", "default us", "disp/orc",
              "def/disp", "served by");
  double log_gap_sum = 0.0, log_speedup_sum = 0.0;
  std::size_t wins = 0;
  for (const xg::problem& shape : heldout) {
    const auto decision = dispatch.dispatch(shape.m, shape.n, shape.k);
    const double t_disp = dispatch.executor().modeled_time_ns(
        shape.m, shape.n, shape.k, decision.params);
    const double t_def = dispatch.executor().modeled_time_ns(
        shape.m, shape.n, shape.k, xg::params::defaults());

    // Oracle: tune the exact shape at the same budget, without touching the
    // dispatcher's database.
    blasmini::gemm_executor oracle(dev, nullptr);
    blasmini::tune_options oracle_opts = opts.tuning;
    const auto oracle_params =
        oracle.tune(shape.m, shape.n, shape.k, oracle_opts);
    const double t_oracle = oracle.modeled_time_ns(shape.m, shape.n, shape.k,
                                                   oracle_params);

    const std::string signature = blasmini::gemm_executor::problem_signature(
        shape.m, shape.n, shape.k);
    const char* const source_names[] = {"exact", "reranked", "nearest",
                                        "defaults"};
    std::string served = source_names[static_cast<int>(decision.from)];
    if (!decision.neighbor.empty()) {
      served += " " + decision.neighbor;
    }
    std::printf("%-14s %12.2f %12.2f %12.2f %9.2f %9.2f  %s\n",
                signature.c_str(), t_oracle / 1e3, t_disp / 1e3, t_def / 1e3,
                t_disp / t_oracle, t_def / t_disp, served.c_str());
    log_gap_sum += std::log(t_disp / t_oracle);
    log_speedup_sum += std::log(t_def / t_disp);
    wins += (t_disp <= t_def) ? 1 : 0;
  }

  const double gap = std::exp(log_gap_sum / heldout.size());
  const double speedup = std::exp(log_speedup_sum / heldout.size());
  std::printf("\ndispatched-vs-oracle gap (geomean): %.2fx   "
              "dispatched-vs-defaults speedup (geomean): %.2fx   "
              "beats defaults on %zu/%zu\n",
              gap, speedup, wins, heldout.size());
  return 0;
}
