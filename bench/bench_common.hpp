// Shared helpers for the reproduction benches: evaluating an XgemmDirect
// configuration on a simulated device, running the three tuners (ATF,
// CLTune-like, OpenTuner-like), and table formatting.
#pragma once

#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "atf/atf.hpp"
#include "atf/kernels/xgemm_direct.hpp"
#include "atf/search/opentuner_search.hpp"
#include "atf/search/random_search.hpp"
#include "atf/search/simulated_annealing.hpp"
#include "baselines/cltune_like.hpp"
#include "baselines/opentuner_like.hpp"
#include "ocls/ocls.hpp"

namespace bench {

namespace xg = atf::kernels::xgemm;

/// Modeled kernel time (ns) of one configuration; +inf if the launch fails.
/// Buffers and the context are cached per (problem, device) — the same
/// "upload once" optimization ATF's cost function applies.
inline double measure(const xg::problem& prob, const xg::params& p,
                      const ocls::device& dev, xg::size_mode mode) {
  static const ocls::kernel kernel = xg::make_kernel();

  struct session {
    xg::problem prob{};
    std::string device_name;
    std::shared_ptr<ocls::context> ctx;
    ocls::kernel_args args;
  };
  static session cache;
  if (cache.prob.m != prob.m || cache.prob.n != prob.n ||
      cache.prob.k != prob.k || cache.device_name != dev.name()) {
    cache.prob = prob;
    cache.device_name = dev.name();
    cache.ctx = std::make_shared<ocls::context>(dev);
    cache.args.clear();
    cache.args.emplace_back(static_cast<double>(prob.m));
    cache.args.emplace_back(static_cast<double>(prob.n));
    cache.args.emplace_back(static_cast<double>(prob.k));
    cache.args.emplace_back(
        std::make_shared<ocls::buffer<float>>(prob.m * prob.k));
    cache.args.emplace_back(
        std::make_shared<ocls::buffer<float>>(prob.k * prob.n));
    cache.args.emplace_back(
        std::make_shared<ocls::buffer<float>>(prob.m * prob.n));
  }

  ocls::define_map defines = xg::make_defines(prob, p);
  ocls::command_queue queue(cache.ctx);
  try {
    return queue
        .launch(kernel, xg::launch_range(prob, p, mode), cache.args, defines)
        .profile_ns();
  } catch (const ocls::error&) {
    return std::numeric_limits<double>::infinity();
  }
}

/// Extracts a params struct from an ATF configuration.
inline xg::params params_from_config(const atf::configuration& config) {
  xg::params p;
  p.wgd = config["WGD"];
  p.mdimcd = config["MDIMCD"];
  p.ndimcd = config["NDIMCD"];
  p.mdimad = config["MDIMAD"];
  p.ndimbd = config["NDIMBD"];
  p.kwid = config["KWID"];
  p.vwmd = config["VWMD"];
  p.vwnd = config["VWND"];
  p.pada = config["PADA"];
  p.padb = config["PADB"];
  return p;
}

struct atf_outcome {
  xg::params best;
  double best_ns;
  std::uint64_t space_size;
  double generation_seconds;
  std::uint64_t evaluations;
};

/// Runs ATF on XgemmDirect: constrained-space generation + simulated
/// annealing restarted from several seeds (keeping the overall best), with
/// a fixed per-seed evaluation budget.
inline atf_outcome tune_with_atf(const xg::problem& prob,
                                 const ocls::device& dev, xg::size_mode mode,
                                 std::uint64_t evaluations = 20'000,
                                 int seeds = 3) {
  auto setup = xg::make_tuning_parameters(
      prob, mode, xg::device_limits::of(dev.profile()));
  atf::tuner tuner;
  tuner.tuning_parameters(setup.group());
  const auto& space = tuner.space();

  auto cost = [&](const atf::configuration& config) {
    const double ns = measure(prob, params_from_config(config), dev, mode);
    if (!std::isfinite(ns)) {
      throw atf::evaluation_error("launch failed");
    }
    return ns;
  };

  atf_outcome out{};
  out.space_size = space.size();
  out.generation_seconds = space.generation_seconds();
  double best = std::numeric_limits<double>::infinity();
  auto run_one = [&](std::unique_ptr<atf::search_technique> technique) {
    tuner.search_technique(std::move(technique));
    tuner.abort_condition(atf::cond::evaluations(evaluations));
    auto result = tuner.tune(cost);
    out.evaluations += result.evaluations;
    if (result.has_best() && *result.best_cost < best) {
      best = *result.best_cost;
      out.best = params_from_config(result.best_configuration());
      out.best_ns = best;
    }
  };
  for (int seed = 1; seed <= seeds; ++seed) {
    run_one(std::make_unique<atf::search::simulated_annealing>(
        4.0, static_cast<std::uint64_t>(seed)));
  }
  // An ensemble run and a pure-random run add global-search coverage the
  // annealing walks lack (the divisor-friendly optima sit in tiny basins).
  run_one(std::make_unique<atf::search::opentuner_search>(99));
  run_one(std::make_unique<atf::search::random_search>(99));
  return out;
}

/// CLBlast's restricted CLTune parameter lists for XgemmDirect — "the tile
/// size WGD is limited to {8,16,32}" etc. (paper, Section VI-A).
struct clblast_lists {
  std::vector<std::size_t> wgd{8, 16, 32};
  std::vector<std::size_t> mdimcd{8, 16, 32};
  std::vector<std::size_t> ndimcd{8, 16, 32};
  std::vector<std::size_t> mdimad{8, 16, 32};
  std::vector<std::size_t> ndimbd{8, 16, 32};
  std::vector<std::size_t> kwid{2, 8, 16};
  std::vector<std::size_t> vwmd{1, 2, 4, 8};
  std::vector<std::size_t> vwnd{1, 2, 4, 8};
  std::vector<std::size_t> pad{0, 1};
};

/// Builds the CLTune program CLBlast uses for XgemmDirect (Listing-3 style)
/// on the given problem and device. Throws baselines::cltune::empty_space
/// when the restricted space admits no configuration (the paper's case for
/// IS1-IS4).
inline baselines::cltune::tuner make_clblast_cltune_program(
    const xg::problem& prob, const ocls::device& dev) {
  const clblast_lists lists;
  baselines::cltune::tuner tuner(dev);
  // CLTune can only divide/multiply the base sizes by parameters, so the
  // base global size must be (M, N) with DivGlobalSize(WGD) +
  // MulGlobalSize(MDIMCD/NDIMCD) — which forces WGD to divide M and N.
  (void)tuner.AddKernel(xg::make_kernel(),
                        {prob.m, prob.n}, {1, 1});
  tuner.AddDefine("M", prob.m);
  tuner.AddDefine("N", prob.n);
  tuner.AddDefine("K", prob.k);
  tuner.AddArgumentScalar(static_cast<double>(prob.m));
  tuner.AddArgumentScalar(static_cast<double>(prob.n));
  tuner.AddArgumentScalar(static_cast<double>(prob.k));
  tuner.AddArgumentBuffer(prob.m * prob.k);
  tuner.AddArgumentBuffer(prob.k * prob.n);
  tuner.AddArgumentBuffer(prob.m * prob.n);

  tuner.AddParameter(0, "WGD", lists.wgd);
  tuner.AddParameter(0, "MDIMCD", lists.mdimcd);
  tuner.AddParameter(0, "NDIMCD", lists.ndimcd);
  tuner.AddParameter(0, "MDIMAD", lists.mdimad);
  tuner.AddParameter(0, "NDIMBD", lists.ndimbd);
  tuner.AddParameter(0, "KWID", lists.kwid);
  tuner.AddParameter(0, "VWMD", lists.vwmd);
  tuner.AddParameter(0, "VWND", lists.vwnd);
  tuner.AddParameter(0, "PADA", lists.pad);
  tuner.AddParameter(0, "PADB", lists.pad);

  const std::size_t m = prob.m;
  const std::size_t n = prob.n;
  using vals = std::vector<std::size_t>;
  tuner.AddConstraint(0, [m](vals v) { return m % v[0] == 0; }, {"WGD"});
  tuner.AddConstraint(0, [n](vals v) { return n % v[0] == 0; }, {"WGD"});
  tuner.AddConstraint(0, [](vals v) { return v[0] % v[1] == 0; },
                      {"WGD", "KWID"});
  tuner.AddConstraint(0, [](vals v) { return v[0] % v[1] == 0; },
                      {"WGD", "MDIMCD"});
  tuner.AddConstraint(0, [](vals v) { return v[0] % v[1] == 0; },
                      {"WGD", "NDIMCD"});
  tuner.AddConstraint(0, [](vals v) { return v[0] % v[1] == 0; },
                      {"WGD", "MDIMAD"});
  tuner.AddConstraint(0, [](vals v) { return v[0] % v[1] == 0; },
                      {"WGD", "NDIMBD"});
  tuner.AddConstraint(
      0, [](vals v) { return (v[0] * v[1]) % v[2] == 0; },
      {"MDIMCD", "NDIMCD", "MDIMAD"});
  tuner.AddConstraint(
      0, [](vals v) { return (v[0] * v[1]) % v[2] == 0; },
      {"MDIMCD", "NDIMCD", "NDIMBD"});
  tuner.AddConstraint(0, [](vals v) { return v[0] % (v[1] * v[2]) == 0; },
                      {"WGD", "MDIMCD", "VWMD"});
  tuner.AddConstraint(0, [](vals v) { return v[0] % (v[1] * v[2]) == 0; },
                      {"WGD", "NDIMCD", "VWND"});
  tuner.AddConstraint(0, [](vals v) { return v[0] % (v[1] * v[2]) == 0; },
                      {"WGD", "MDIMAD", "VWMD"});
  tuner.AddConstraint(0, [](vals v) { return v[0] % (v[1] * v[2]) == 0; },
                      {"WGD", "NDIMBD", "VWND"});
  const std::size_t max_wg = dev.profile().max_work_group_size;
  tuner.AddConstraint(
      0, [max_wg](vals v) { return v[0] * v[1] <= max_wg; },
      {"MDIMCD", "NDIMCD"});
  const std::size_t lmem = dev.profile().local_mem_bytes;
  tuner.AddConstraint(
      0,
      [lmem](vals v) {
        const std::size_t wgd = v[0];
        return (wgd * (wgd + v[1]) + wgd * (wgd + v[2])) * sizeof(float) <=
               lmem;
      },
      {"WGD", "PADA", "PADB"});

  tuner.DivGlobalSize(0, {"WGD", "WGD"});
  tuner.MulGlobalSize(0, {"MDIMCD", "NDIMCD"});
  tuner.MulLocalSize(0, {"MDIMCD", "NDIMCD"});
  return tuner;
}

/// The device-optimized configuration CLBlast ships: the best of CLTune's
/// restricted space tuned on the average size 256 x 256 (paper, VI-A).
inline xg::params cltune_device_optimized(const ocls::device& dev) {
  const xg::problem avg{256, 256, 256};
  auto tuner = make_clblast_cltune_program(avg, dev);
  tuner.UseFullSearch();
  tuner.Tune();
  const auto best = tuner.GetBestResult();
  xg::params p;
  p.wgd = best.at("WGD");
  p.mdimcd = best.at("MDIMCD");
  p.ndimcd = best.at("NDIMCD");
  p.mdimad = best.at("MDIMAD");
  p.ndimbd = best.at("NDIMBD");
  p.kwid = best.at("KWID");
  p.vwmd = best.at("VWMD");
  p.vwnd = best.at("VWND");
  p.pada = best.at("PADA") != 0;
  p.padb = best.at("PADB") != 0;
  return p;
}

struct opentuner_outcome {
  xg::params used;       ///< best valid config, or the kernel defaults
  bool found_valid;
  std::uint64_t evaluations;
  std::uint64_t valid_evaluations;
  std::uint64_t unconstrained_size;  ///< saturated
};

/// The OpenTuner program of Section VI: unconstrained space, penalty on
/// invalid configurations, 10,000 evaluations; falls back to the kernel's
/// default parameter values when no valid configuration is found.
inline opentuner_outcome tune_with_opentuner(const xg::problem& prob,
                                             const ocls::device& dev,
                                             std::uint64_t evaluations = 10'000,
                                             std::uint64_t seed = 3) {
  baselines::opentuner::tuner tuner;
  const auto tops = xg::unconstrained_range_sizes(prob);
  tuner.add_parameter_range("WGD", tops[0]);
  tuner.add_parameter_range("MDIMCD", tops[1]);
  tuner.add_parameter_range("NDIMCD", tops[2]);
  tuner.add_parameter_range("MDIMAD", tops[3]);
  tuner.add_parameter_range("NDIMBD", tops[4]);
  tuner.add_parameter_range("KWID", tops[5]);
  tuner.add_parameter("VWMD", {1, 2, 4, 8});
  tuner.add_parameter("VWND", {1, 2, 4, 8});
  tuner.add_parameter("PADA", {0, 1});
  tuner.add_parameter("PADB", {0, 1});

  const double penalty = 1e15;  // "we report a penalty value" [3]
  const auto limits = xg::device_limits::of(dev.profile());
  auto cost = [&](const baselines::opentuner::configuration& c) {
    xg::params p;
    p.wgd = c.at("WGD");
    p.mdimcd = c.at("MDIMCD");
    p.ndimcd = c.at("NDIMCD");
    p.mdimad = c.at("MDIMAD");
    p.ndimbd = c.at("NDIMBD");
    p.kwid = c.at("KWID");
    p.vwmd = c.at("VWMD");
    p.vwnd = c.at("VWND");
    p.pada = c.at("PADA") != 0;
    p.padb = c.at("PADB") != 0;
    if (!xg::valid(prob, p, xg::size_mode::general, limits)) {
      return penalty;
    }
    const double ns = measure(prob, p, dev, xg::size_mode::general);
    return std::isfinite(ns) ? ns : penalty;
  };
  const auto result = tuner.run(evaluations, penalty, cost, seed);

  opentuner_outcome out;
  out.found_valid = result.found_valid;
  out.evaluations = result.evaluations;
  out.valid_evaluations = result.valid_evaluations;
  out.unconstrained_size = tuner.space_size();
  if (result.found_valid) {
    out.used.wgd = result.best.at("WGD");
    out.used.mdimcd = result.best.at("MDIMCD");
    out.used.ndimcd = result.best.at("NDIMCD");
    out.used.mdimad = result.best.at("MDIMAD");
    out.used.ndimbd = result.best.at("NDIMBD");
    out.used.kwid = result.best.at("KWID");
    out.used.vwmd = result.best.at("VWMD");
    out.used.vwnd = result.best.at("VWND");
    out.used.pada = result.best.at("PADA") != 0;
    out.used.padb = result.best.at("PADB") != 0;
  } else {
    out.used = xg::params::defaults();
  }
  return out;
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

}  // namespace bench
