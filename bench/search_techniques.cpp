// Comparison of ATF's three pre-implemented search techniques (Section IV)
// — exhaustive, simulated annealing, OpenTuner-style ensemble — plus random
// search as a floor, on the two paper workloads:
//
//   * saxpy (small space; exhaustive is feasible and provably optimal), and
//   * XgemmDirect at IS4 (space ~7e6; exhaustive infeasible within budget,
//     the paper's motivation for annealing/OpenTuner techniques).
//
// Also demonstrates the six abort conditions of Section II Step 3.
#include <chrono>
#include <cstdio>
#include <memory>

#include "atf/kernels/saxpy.hpp"
#include "atf/search/opentuner_search.hpp"
#include "atf/search/random_search.hpp"
#include "bench_common.hpp"

using namespace bench;
using namespace std::chrono_literals;

namespace {

void saxpy_comparison() {
  const std::size_t n = std::size_t{1} << 22;
  const ocls::device gpu = ocls::find_device("NVIDIA", "K20m");
  const ocls::kernel kernel = atf::kernels::saxpy::make_kernel();
  auto ctx = std::make_shared<ocls::context>(gpu);

  auto cost = [&](const atf::configuration& config) {
    const std::size_t wpt = config["WPT"];
    const std::size_t ls = config["LS"];
    ocls::define_map defines;
    defines.set("WPT", static_cast<std::uint64_t>(wpt));
    ocls::command_queue queue(ctx);
    ocls::kernel_args args;
    args.emplace_back(static_cast<double>(n));
    args.emplace_back(1.5);
    static auto x = std::make_shared<ocls::buffer<float>>(std::size_t{1});
    static auto y = std::make_shared<ocls::buffer<float>>(std::size_t{1});
    args.emplace_back(x);
    args.emplace_back(y);
    try {
      return queue
          .launch(kernel, atf::kernels::saxpy::launch_range(n, wpt, ls), args,
                  defines)
          .profile_ns();
    } catch (const ocls::error& error) {
      throw atf::evaluation_error(error.what());
    }
  };

  std::printf("--- saxpy, N=2^22 on %s ---\n", gpu.name().c_str());
  std::printf("%-22s | %12s | %12s | %10s\n", "technique", "evaluations",
              "best [us]", "wall [ms]");
  print_rule(68);

  auto report = [&](const char* name,
                    std::unique_ptr<atf::search_technique> technique,
                    atf::abort_condition abort) {
    auto setup = atf::kernels::saxpy::make_tuning_parameters(n);
    atf::tuner tuner;
    tuner.tuning_parameters(setup.wpt, setup.ls);
    if (technique) {
      tuner.search_technique(std::move(technique));
    }
    tuner.abort_condition(std::move(abort));
    auto result = tuner.tune(cost);
    std::printf("%-22s | %12llu | %12.3f | %10.1f\n", name,
                static_cast<unsigned long long>(result.evaluations),
                *result.best_cost / 1e3,
                std::chrono::duration<double, std::milli>(result.elapsed)
                    .count());
  };

  report("exhaustive (default)", nullptr, atf::abort_condition{});
  report("simulated annealing",
         std::make_unique<atf::search::simulated_annealing>(4.0, 7),
         atf::cond::evaluations(2'000));
  report("opentuner ensemble",
         std::make_unique<atf::search::opentuner_search>(7),
         atf::cond::evaluations(2'000));
  report("random",
         std::make_unique<atf::search::random_search>(7),
         atf::cond::evaluations(2'000));
  std::printf("\n");
}

void gemm_comparison() {
  const xg::problem prob = xg::caffe_input_size(4);
  const ocls::device gpu = ocls::find_device("NVIDIA", "K20m");

  auto cost = [&](const atf::configuration& config) {
    const double ns =
        measure(prob, params_from_config(config), gpu, xg::size_mode::general);
    if (!std::isfinite(ns)) {
      throw atf::evaluation_error("launch failed");
    }
    return ns;
  };

  auto setup = xg::make_tuning_parameters(prob, xg::size_mode::general,
                                          xg::device_limits::of(gpu.profile()));
  atf::tuner tuner;
  tuner.tuning_parameters(setup.group());
  const auto& space = tuner.space();

  std::printf("--- XgemmDirect IS4 on %s (space: %llu configurations) ---\n",
              gpu.name().c_str(),
              static_cast<unsigned long long>(space.size()));
  std::printf("%-22s | %12s | %12s | %10s\n", "technique", "evaluations",
              "best [us]", "wall [ms]");
  print_rule(68);

  auto report = [&](const char* name,
                    std::unique_ptr<atf::search_technique> technique,
                    std::uint64_t budget) {
    tuner.search_technique(std::move(technique));
    tuner.abort_condition(atf::cond::evaluations(budget));
    auto result = tuner.tune(cost);
    std::printf("%-22s | %12llu | %12.3f | %10.1f\n", name,
                static_cast<unsigned long long>(result.evaluations),
                *result.best_cost / 1e3,
                std::chrono::duration<double, std::milli>(result.elapsed)
                    .count());
  };

  for (const std::uint64_t budget : {2'000ull, 20'000ull}) {
    std::printf("(budget: %llu evaluations)\n",
                static_cast<unsigned long long>(budget));
    report("simulated annealing",
           std::make_unique<atf::search::simulated_annealing>(4.0, 11),
           budget);
    report("opentuner ensemble",
           std::make_unique<atf::search::opentuner_search>(11), budget);
    report("random", std::make_unique<atf::search::random_search>(11),
           budget);
  }
  std::printf("\n");
}

void abort_conditions_demo() {
  std::printf("--- abort conditions (Section II Step 3) ---\n");
  auto make = [] {
    auto x = atf::tp("x", atf::interval<int>(1, 100'000));
    atf::tuner t;
    t.tuning_parameters(x);
    return t;
  };
  auto cost = [](const atf::configuration& config) {
    return 1.0 + 1.0 / static_cast<double>(static_cast<int>(config["x"]));
  };
  struct row {
    const char* name;
    atf::abort_condition cond;
  };
  row rows[] = {
      {"duration(50ms)", atf::cond::duration(50ms)},
      {"evaluations(500)", atf::cond::evaluations(500)},
      {"fraction(0.02)", atf::cond::fraction(0.02)},
      {"cost(1.001)", atf::cond::cost(1.001)},
      {"speedup(1.05, 300 evals)", atf::cond::speedup(1.05, 300)},
      {"evals(2000) || cost(1.5)",
       atf::cond::evaluations(2000) || atf::cond::cost(1.5)},
  };
  for (auto& r : rows) {
    auto t = make();
    t.abort_condition(r.cond);
    auto result = t.tune(cost);
    std::printf("  %-26s -> stopped after %llu evaluations, best %.6f\n",
                r.name,
                static_cast<unsigned long long>(result.evaluations),
                *result.best_cost);
  }
}

}  // namespace

int main() {
  std::printf("=== Search techniques (Section IV) ===\n\n");
  saxpy_comparison();
  gemm_comparison();
  abort_conditions_demo();
  return 0;
}
