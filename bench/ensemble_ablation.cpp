// Ablation for the OpenTuner-style ensemble design (DESIGN.md §6, Section
// IV-C): the AUC bandit adaptively allocates evaluations among a pool of
// techniques. This bench pits the full bandit ensemble against every pool
// member running solo — each over the same 1-D configuration-index domain
// of the constrained XgemmDirect space, with identical budgets and seeds —
// and reports the best cost each one reaches. The ensemble's value is
// robustness: per-workload some solo technique may win, but the bandit is
// never far from the per-workload best without knowing it in advance
// (OpenTuner's core argument).
#include <cstdio>
#include <memory>
#include <vector>

#include "atf/search/ensemble.hpp"
#include "atf/search/genetic.hpp"
#include "atf/search/mutation.hpp"
#include "atf/search/nelder_mead.hpp"
#include "atf/search/particle_swarm.hpp"
#include "atf/search/pattern_search.hpp"
#include "atf/search/random_technique.hpp"
#include "atf/search/torczon.hpp"
#include "bench_common.hpp"

using namespace bench;
using namespace atf::search;

namespace {

using technique_factory =
    std::function<std::unique_ptr<domain_technique>()>;

double run_engine(ensemble& engine, const numeric_domain& domain,
                  std::uint64_t seed, std::uint64_t budget,
                  const std::function<double(std::uint64_t)>& cost) {
  engine.initialize(domain, seed);
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t i = 0; i < budget; ++i) {
    const point p = engine.next_point();
    const double c = cost(p[0]);
    best = std::min(best, c);
    engine.report(c);
  }
  return best;
}

}  // namespace

int main() {
  std::printf("=== Ablation: AUC-bandit ensemble vs solo techniques ===\n\n");

  const std::vector<std::pair<const char*, technique_factory>> pool{
      {"nelder-mead", [] { return std::make_unique<nelder_mead>(); }},
      {"torczon", [] { return std::make_unique<torczon>(); }},
      {"pattern", [] { return std::make_unique<pattern_search>(); }},
      {"mutation", [] { return std::make_unique<mutation>(); }},
      {"genetic", [] { return std::make_unique<genetic>(); }},
      {"pso", [] { return std::make_unique<particle_swarm>(); }},
      {"random", [] { return std::make_unique<random_technique>(); }},
  };

  const std::uint64_t budget = 8'000;
  const std::uint64_t seeds[] = {1, 2, 3};

  for (const int is : {2, 4}) {
    const xg::problem prob = xg::caffe_input_size(is);
    const ocls::device dev = ocls::find_device("NVIDIA", "K20m");
    auto setup = xg::make_tuning_parameters(
        prob, xg::size_mode::general, xg::device_limits::of(dev.profile()));
    const auto space = atf::search_space::generate({setup.group()});
    const numeric_domain domain({space.size()});

    auto cost = [&](std::uint64_t index) {
      const auto config = space.config_at(index);
      return measure(prob, params_from_config(config), dev,
                     xg::size_mode::general);
    };

    std::printf("--- XgemmDirect IS%d on %s (space %llu, budget %llu "
                "evals, best over %zu seeds) ---\n",
                is, dev.name().c_str(),
                static_cast<unsigned long long>(space.size()),
                static_cast<unsigned long long>(budget), std::size(seeds));

    double ensemble_best = std::numeric_limits<double>::infinity();
    for (const auto seed : seeds) {
      ensemble engine;  // full bandit pool
      ensemble_best =
          std::min(ensemble_best,
                   run_engine(engine, domain, seed, budget, cost));
    }
    std::printf("%-14s best %10.3f us\n", "ENSEMBLE", ensemble_best / 1e3);

    double best_solo = std::numeric_limits<double>::infinity();
    for (const auto& [name, make] : pool) {
      double solo_best = std::numeric_limits<double>::infinity();
      for (const auto seed : seeds) {
        std::vector<std::unique_ptr<domain_technique>> members;
        members.push_back(make());
        ensemble engine(std::move(members));
        solo_best = std::min(
            solo_best, run_engine(engine, domain, seed, budget, cost));
      }
      best_solo = std::min(best_solo, solo_best);
      std::printf("%-14s best %10.3f us\n", name, solo_best / 1e3);
    }
    std::printf("ensemble within %.2fx of the best solo technique "
                "(robustness without per-workload tuning)\n\n",
                ensemble_best / best_solo);
  }
  return 0;
}
