// Reproduction of the Section VI-A search-space generation study:
//
//  * "even for the multiplication of small 32x32 matrices, the [CLTune]
//    search space generation takes too much time — we aborted after 3 hours
//    — while ATF requires less than 1 second";
//  * "for the routine's maximal supported matrix size 2^10 x 2^10, the
//    unconstrained space ... has a prohibitively huge size of more than
//    10^19 configurations while the constrained search space in ATF
//    comprises nearly 10^7 configurations";
//  * for IS4 the unconstrained space is ~10^13 against ~10^6 valid
//    configurations, a validity density of ~10^-7 (Section VI-B).
//
// CLTune-style generation enumerates the full Cartesian product; we cap it
// with a budget and extrapolate the full runtime from the measured
// enumeration rate.
#include <cmath>
#include <cstdio>
#include <thread>

#include "atf/common/math_utils.hpp"
#include "atf/common/rng.hpp"
#include "atf/common/stopwatch.hpp"
#include "atf/common/thread_pool.hpp"
#include "bench_common.hpp"

using namespace bench;

namespace {

struct generation_row {
  std::size_t size;            // square matrix extent (m = n = k = size)
  double atf_seconds;
  std::uint64_t atf_valid;
  double cltune_seconds;       // measured or extrapolated
  bool cltune_completed;
  std::uint64_t product_size;  // saturated
  double product_log10;
};

generation_row run_square(std::size_t size, double cltune_budget_s) {
  generation_row row{};
  row.size = size;
  const xg::problem prob{size, size, size};

  // ATF: constrained chained-range generation.
  {
    auto setup =
        xg::make_tuning_parameters(prob, xg::size_mode::general);
    atf::common::stopwatch timer;
    const auto tree = atf::space_tree::generate(setup.group());
    row.atf_seconds = timer.elapsed_seconds();
    row.atf_valid = tree.size();
  }

  // CLTune-style: full product + filter over the SAME unrestricted ranges
  // {1..N}^6 x {1,2,4,8}^2 x {t,f}^2 — the "improved CLTune program" the
  // paper attempted.
  {
    const auto tops = xg::unconstrained_range_sizes(prob);
    row.product_size = 1;
    std::vector<std::uint64_t> factors;
    for (const auto top : tops) {
      row.product_size =
          atf::common::saturating_mul(row.product_size, top);
      factors.push_back(top);
    }
    row.product_log10 = atf::common::log10_product(factors);

    baselines::cltune::tuner tuner(ocls::find_device("NVIDIA", "K20m"));
    (void)tuner.AddKernel(xg::make_kernel(), {size, size}, {1, 1});
    auto iota = [](std::uint64_t top) {
      std::vector<std::size_t> v(top);
      for (std::uint64_t i = 0; i < top; ++i) {
        v[i] = i + 1;
      }
      return v;
    };
    tuner.AddParameter(0, "WGD", iota(tops[0]));
    tuner.AddParameter(0, "MDIMCD", iota(tops[1]));
    tuner.AddParameter(0, "NDIMCD", iota(tops[2]));
    tuner.AddParameter(0, "MDIMAD", iota(tops[3]));
    tuner.AddParameter(0, "NDIMBD", iota(tops[4]));
    tuner.AddParameter(0, "KWID", iota(tops[5]));
    tuner.AddParameter(0, "VWMD", {1, 2, 4, 8});
    tuner.AddParameter(0, "VWND", {1, 2, 4, 8});
    tuner.AddParameter(0, "PADA", {0, 1});
    tuner.AddParameter(0, "PADB", {0, 1});
    using vals = std::vector<std::size_t>;
    tuner.AddConstraint(0, [](vals v) { return v[0] % v[1] == 0; },
                        {"WGD", "KWID"});
    tuner.AddConstraint(0, [](vals v) { return v[0] % v[1] == 0; },
                        {"WGD", "MDIMCD"});
    tuner.AddConstraint(0, [](vals v) { return v[0] % v[1] == 0; },
                        {"WGD", "NDIMCD"});
    tuner.AddConstraint(0, [](vals v) { return v[0] % v[1] == 0; },
                        {"WGD", "MDIMAD"});
    tuner.AddConstraint(0, [](vals v) { return v[0] % v[1] == 0; },
                        {"WGD", "NDIMBD"});
    tuner.SetGenerationBudget(cltune_budget_s, 0);
    try {
      tuner.Tune();
      row.cltune_completed = true;
      row.cltune_seconds = tuner.GetGenerationReport().seconds;
    } catch (const baselines::cltune::generation_aborted& aborted) {
      row.cltune_completed = false;
      // Extrapolate: measured rate over the full product.
      const double rate =
          static_cast<double>(aborted.enumerated()) / aborted.seconds();
      row.cltune_seconds =
          std::pow(10.0, row.product_log10) / rate;
    } catch (const baselines::cltune::empty_space&) {
      row.cltune_completed = true;
      row.cltune_seconds = tuner.GetGenerationReport().seconds;
    }
  }
  return row;
}

// Intra-group parallel generation on the single-group XgemmDirect space:
// per-group threading (Section V) is useless here — there is only one group —
// so the chunked generator is what turns cores into speedup. Verifies the
// chunked tree is bit-identical to the sequential one before reporting.
void run_intra_group(std::size_t size) {
  const xg::problem prob{size, size, size};
  auto setup = xg::make_tuning_parameters(prob, xg::size_mode::general);
  const auto group = setup.group();

  atf::common::stopwatch timer;
  const auto sequential = atf::space_tree::generate(group);
  const double t_seq = timer.elapsed_seconds();

  atf::common::thread_pool pool(0);  // hardware concurrency
  timer.reset();
  const auto chunked = atf::space_tree::generate(group, pool);
  const double t_par = timer.elapsed_seconds();

  bool identical = chunked.size() == sequential.size() &&
                   chunked.node_count() == sequential.node_count();
  if (identical && sequential.size() > 0) {
    atf::common::xoshiro256 rng(0xbe7c);
    for (int i = 0; i < 256 && identical; ++i) {
      const auto index = rng.below(sequential.size());
      identical = chunked.values_at(index) == sequential.values_at(index);
    }
    identical = identical &&
                chunked.values_at(0) == sequential.values_at(0) &&
                chunked.values_at(sequential.size() - 1) ==
                    sequential.values_at(sequential.size() - 1);
  }

  std::printf("N=%-4zu  sequential %.4f s   intra-group parallel %.4f s "
              "(%llu chunks, %zu threads)   speedup %.2fx   bit-identical: "
              "%s\n",
              size, t_seq, t_par,
              static_cast<unsigned long long>(chunked.stats().chunks),
              pool.size(), t_seq / t_par, identical ? "yes" : "NO");
}

}  // namespace

int main() {
  std::printf("=== Section VI-A: search-space generation, ATF vs "
              "CLTune-style product+filter ===\n\n");
  std::printf("%-6s | %12s | %12s | %16s | %12s\n", "N", "ATF gen [s]",
              "valid configs", "CLTune gen [s]", "product size");
  print_rule(80);
  for (const std::size_t size : {8u, 16u, 32u, 64u}) {
    const auto row = run_square(size, /*cltune_budget_s=*/3.0);
    std::printf("%-6zu | %12.4f | %13llu | %13.4g %s | 10^%.1f\n", row.size,
                row.atf_seconds,
                static_cast<unsigned long long>(row.atf_valid),
                row.cltune_seconds, row.cltune_completed ? "   " : "(*)",
                row.product_log10);
  }
  std::printf("(*) extrapolated from the enumeration rate at the 3 s budget "
              "(the paper aborted the real CLTune after 3 HOURS at N=32)\n\n");

  std::printf("=== Storage backends: memory per representation ===\n");
  {
    const xg::problem is4 = xg::caffe_input_size(4);
    auto setup = xg::make_tuning_parameters(is4, xg::size_mode::general);
    const auto group = setup.group();
    const auto mb = [](std::size_t bytes) {
      return static_cast<double>(bytes) / (1024.0 * 1024.0);
    };
    for (const auto backend : {atf::space_storage_backend::dense,
                               atf::space_storage_backend::packed,
                               atf::space_storage_backend::lazy}) {
      atf::space_storage_policy storage;
      storage.backend = backend;
      atf::common::stopwatch timer;
      const auto tree = atf::space_tree::generate(group, storage);
      std::printf("IS4 %-6s  %10.2f MB   (%llu nodes, generated in %.3f s)\n",
                  atf::to_string(backend), mb(tree.memory_bytes()),
                  static_cast<unsigned long long>(tree.node_count()),
                  timer.elapsed_seconds());
    }
  }
  std::putchar('\n');

  std::printf("=== Intra-group parallel generation (single XgemmDirect "
              "group) ===\n");
  std::printf("hardware concurrency: %u core(s)\n",
              std::thread::hardware_concurrency());
  for (const std::size_t size : {64u, 128u, 256u}) {
    run_intra_group(size);
  }
  std::putchar('\n');

  // The paper's cardinality claims.
  std::printf("=== Cardinalities ===\n");
  {
    const xg::problem big{1024, 1024, 1024};
    const auto tops = xg::unconstrained_range_sizes(big);
    const double log10_unconstrained = atf::common::log10_product(tops);
    auto setup = xg::make_tuning_parameters(big, xg::size_mode::general);
    const auto tree = atf::space_tree::generate(setup.group());
    std::printf(
        "2^10 x 2^10:  unconstrained 10^%.1f (paper: >10^19)   constrained "
        "%llu = 10^%.1f (paper: ~10^7)\n",
        log10_unconstrained,
        static_cast<unsigned long long>(tree.size()),
        std::log10(static_cast<double>(tree.size())));
  }
  {
    const xg::problem is4 = xg::caffe_input_size(4);
    const auto tops = xg::unconstrained_range_sizes(is4);
    const double log10_unconstrained = atf::common::log10_product(tops);
    auto setup = xg::make_tuning_parameters(is4, xg::size_mode::general);
    const auto tree = atf::space_tree::generate(setup.group());
    const double density = static_cast<double>(tree.size()) /
                           std::pow(10.0, log10_unconstrained);
    std::printf(
        "IS4:          unconstrained 10^%.1f (paper: ~10^13)   constrained "
        "%llu = 10^%.1f (paper: ~10^6)   validity density %.1e (paper: "
        "~1e-7)\n",
        log10_unconstrained,
        static_cast<unsigned long long>(tree.size()),
        std::log10(static_cast<double>(tree.size())), density);

    // The paper's ~10^13 unconstrained count corresponds to integer ranges
    // capped near the reduction extent; with the same cap the validity
    // density lands at the paper's ~1e-7.
    const auto capped_tops = xg::unconstrained_range_sizes(is4, 64);
    const double capped_log10 = atf::common::log10_product(capped_tops);
    auto capped_setup = xg::make_tuning_parameters(
        is4, xg::size_mode::general, xg::device_limits{}, 64);
    const auto capped_tree = atf::space_tree::generate(capped_setup.group());
    std::printf(
        "IS4 (ranges capped at 64): unconstrained 10^%.1f   constrained "
        "%llu   validity density %.1e (paper: ~1e-7)\n",
        capped_log10, static_cast<unsigned long long>(capped_tree.size()),
        static_cast<double>(capped_tree.size()) /
            std::pow(10.0, capped_log10));
  }
  return 0;
}
