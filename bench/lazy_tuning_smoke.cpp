// Memory-capped smoke run of the lazy space-storage backend.
//
// Builds a divides-chain space with >10^8 valid configurations — about
// 3 GB of nodes if materialized as dense CSR — and runs a fixed-seed
// random-search tuning pass with the lazy backend, which keeps only
// per-chunk summaries and regenerates chunk subtrees on demand into a
// bounded LRU cache. Asserts that
//
//   * the run completes and measures every budgeted evaluation,
//   * peak RSS stays under a cap (default 768 MiB) that the dense
//     representation provably exceeds (projected dense bytes are computed
//     from the logical node count and checked against the cap),
//
// so CI can execute it under an address-space ulimit the dense backend
// could never satisfy. `--small` shrinks the space for sanitizer runs
// (TSan/ASan multiply memory and time); the RSS assertion is skipped there
// because sanitizer shadow memory dominates the measurement.
#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <cstring>

#include "atf/atf.hpp"
#include "atf/search/random_search.hpp"

namespace {

/// Peak resident set size of this process, in bytes (Linux: ru_maxrss is
/// reported in kilobytes).
std::size_t peak_rss_bytes() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

/// Pure deterministic pseudo-cost: FNV-1a over the configuration entries.
/// Fast, stable across platforms, and fixed-seed reproducible — the bench
/// measures memory behaviour, not a real kernel.
double pseudo_cost(const atf::configuration& config) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const auto& [name, value] : config.entries()) {
    for (const char c : name) {
      hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    }
    for (const char c : atf::to_string(value)) {
      hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    }
  }
  return static_cast<double>(hash % 1000000) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    }
  }

  // A and D are wide unconstrained ranges (A gives the root range its
  // chunkability, D fans every valid prefix out into many leaves); B and C
  // form the skewed divides-chain that makes generation constraint-bound.
  const std::size_t wide = small ? 64 : 1024;
  const std::size_t chain = small ? 256 : 1024;
  const std::size_t fanout = small ? 64 : 2048;
  auto a = atf::tp("A", atf::interval<std::size_t>(1, wide));
  auto b =
      atf::tp("B", atf::interval<std::size_t>(1, chain), atf::divides(chain));
  auto c = atf::tp("C", atf::interval<std::size_t>(1, chain),
                   atf::divides(chain / b));
  auto d = atf::tp("D", atf::interval<std::size_t>(1, fanout));

  atf::space_storage_policy storage;
  storage.backend = atf::space_storage_backend::lazy;
  storage.chunk_cache_bytes = std::size_t{32} << 20;
  storage.lazy_target_chunks = small ? 32 : 512;

  atf::tuner tuner;
  tuner.tuning_parameters(a, b, c, d);
  tuner.space_storage(storage);
  tuner.search_technique(
      std::make_unique<atf::search::random_search>(0x5eed));
  tuner.abort_condition(atf::cond::evaluations(small ? 50 : 200));

  const auto& space = tuner.space();
  const std::uint64_t configs = space.size();
  const std::uint64_t nodes = space.node_count();
  // What dense CSR storage would hold: 24 bytes per node
  // (u32 value_index + u64 child_begin + u32 child_count + u64 leaf_count).
  const std::size_t projected_dense_bytes = nodes * 24;
  const auto mb = [](std::size_t bytes) {
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
  };

  std::printf("space: %llu configurations, %llu nodes\n",
              static_cast<unsigned long long>(configs),
              static_cast<unsigned long long>(nodes));
  std::printf("lazy storage holds %.2f MB; dense would hold %.2f MB\n",
              mb(space.memory_bytes()), mb(projected_dense_bytes));

  const auto result = tuner.tune(pseudo_cost);
  std::printf("tuned: %llu evaluations, best cost %.3f\n",
              static_cast<unsigned long long>(result.evaluations),
              *result.best_cost);
  std::printf("lazy storage after tuning: %.2f MB; peak RSS %.2f MB\n",
              mb(space.memory_bytes()), mb(peak_rss_bytes()));

  bool ok = true;
  if (!small && configs < 100000000ull) {
    std::printf("ERROR: space smaller than 10^8 configurations\n");
    ok = false;
  }
  if (result.evaluations != (small ? 50u : 200u) || !result.has_best()) {
    std::printf("ERROR: tuning did not complete its evaluation budget\n");
    ok = false;
  }
  if (!small) {
    const std::size_t rss_cap = std::size_t{768} << 20;
    if (projected_dense_bytes <= rss_cap) {
      std::printf("ERROR: dense projection %.2f MB does not exceed the "
                  "%.0f MB cap — the cap proves nothing\n",
                  mb(projected_dense_bytes), mb(rss_cap));
      ok = false;
    }
    if (peak_rss_bytes() > rss_cap) {
      std::printf("ERROR: peak RSS %.2f MB exceeded the %.0f MB cap\n",
                  mb(peak_rss_bytes()), mb(rss_cap));
      ok = false;
    }
  }
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
