// Reproduction of Figure 2: speedup of the XgemmDirect kernel auto-tuned by
// ATF over auto-tuning by CLTune and OpenTuner, on the CPU (left) and GPU
// (right) device profiles, for the four Caffe input sizes IS1-IS4.
//
// Methodology per the paper, Section VI:
//  * CLTune runs CLBlast's program with the artificially restricted
//    parameter lists (WGD in {8,16,32}, constrained to divide the result
//    matrix extents). For IS1-IS4 this space is empty, so the kernel falls
//    back to CLTune's device-optimized values tuned on 256 x 256.
//  * OpenTuner searches the unconstrained space with a penalty for invalid
//    configurations; when 10,000 evaluations find no valid configuration it
//    falls back to the kernel's built-in defaults.
//  * ATF generates the constrained space (< 1 s) and explores it with
//    simulated annealing.
//
// Expected shape (paper): ATF wins everywhere; CPU speedups (1.66-17.60x vs
// CLTune, 1.98-5.31x vs OpenTuner) exceed GPU speedups (1.33-3.62x and
// 1.20-1.65x). Auxiliary rows reproduce the Section VI-B observation that
// the kernel defaults usually beat CLTune's 256x256-tuned values here.
#include <cstdio>

#include "bench_common.hpp"

using namespace bench;

int main() {
  std::printf("=== Figure 2: XgemmDirect speedups, ATF vs CLTune and "
              "OpenTuner ===\n\n");

  const ocls::device cpu = ocls::find_device("Intel", "Xeon");
  const ocls::device gpu = ocls::find_device("NVIDIA", "K20m");

  for (const auto* dev : {&cpu, &gpu}) {
    const bool is_cpu = dev->profile().kind == ocls::device_kind::cpu;
    std::printf("--- Device: %s (%s) ---\n", dev->name().c_str(),
                is_cpu ? "CPU" : "GPU");

    // CLTune's device-optimized fallback: tuned once per device on 256x256.
    const xg::params cltune_fallback = cltune_device_optimized(*dev);
    std::printf("CLTune device-optimized values (tuned on 256x256): %s\n\n",
                cltune_fallback.to_string().c_str());

    std::printf("%-4s | %-22s | %10s | %10s | %10s | %9s | %9s\n", "IS",
                "problem (m,n,k)", "ATF [us]", "CLTune[us]", "OpenT[us]",
                "vs CLTune", "vs OpenT");
    print_rule();

    for (int is = 1; is <= 4; ++is) {
      const xg::problem prob = xg::caffe_input_size(is);

      // --- CLTune path ---------------------------------------------------
      // CLBlast's restricted program; the space is empty for these shapes.
      bool cltune_space_empty = false;
      xg::params cltune_used = cltune_fallback;
      try {
        auto program = make_clblast_cltune_program(prob, *dev);
        program.UseFullSearch();
        program.Tune();
        const auto best = program.GetBestResult();
        cltune_used.wgd = best.at("WGD");
        cltune_used.mdimcd = best.at("MDIMCD");
        cltune_used.ndimcd = best.at("NDIMCD");
        cltune_used.mdimad = best.at("MDIMAD");
        cltune_used.ndimbd = best.at("NDIMBD");
        cltune_used.kwid = best.at("KWID");
        cltune_used.vwmd = best.at("VWMD");
        cltune_used.vwnd = best.at("VWND");
        cltune_used.pada = best.at("PADA") != 0;
        cltune_used.padb = best.at("PADB") != 0;
      } catch (const baselines::cltune::empty_space&) {
        cltune_space_empty = true;  // fall back to device-optimized values
      }
      const double t_cltune =
          measure(prob, cltune_used, *dev, xg::size_mode::general);

      // --- OpenTuner path --------------------------------------------------
      const auto ot = tune_with_opentuner(prob, *dev);
      const double t_opentuner =
          measure(prob, ot.used, *dev, xg::size_mode::general);

      // --- ATF path ---------------------------------------------------------
      const auto atf = tune_with_atf(prob, *dev, xg::size_mode::general);

      std::printf(
          "IS%d  | m=%-4zu n=%-4zu k=%-4zu | %10.2f | %10.2f | %10.2f | "
          "%8.2fx | %8.2fx\n",
          is, prob.m, prob.n, prob.k, atf.best_ns / 1e3, t_cltune / 1e3,
          t_opentuner / 1e3, t_cltune / atf.best_ns,
          t_opentuner / atf.best_ns);

      std::printf(
          "     |   CLTune restricted space %s; OpenTuner valid "
          "%llu/%llu evals%s; ATF space %llu (gen %.2f s)\n",
          cltune_space_empty ? "EMPTY -> 256x256 fallback" : "non-empty",
          static_cast<unsigned long long>(ot.valid_evaluations),
          static_cast<unsigned long long>(ot.evaluations),
          ot.found_valid ? "" : " -> kernel defaults",
          static_cast<unsigned long long>(atf.space_size),
          atf.generation_seconds);
      std::printf("     |   ATF best: %s\n", atf.best.to_string().c_str());
    }

    // Section VI-B: the kernel defaults vs CLTune's device-optimized values.
    std::printf("\nVI-B check: kernel defaults vs CLTune 256x256-optimized "
                "values\n");
    for (int is = 1; is <= 4; ++is) {
      const xg::problem prob = xg::caffe_input_size(is);
      const double t_default = measure(prob, xg::params::defaults(), *dev,
                                       xg::size_mode::general);
      const double t_fallback =
          measure(prob, cltune_fallback, *dev, xg::size_mode::general);
      std::printf(
          "  IS%d: defaults %.2f us, CLTune-optimized %.2f us -> defaults "
          "are %s (%.2fx)\n",
          is, t_default / 1e3, t_fallback / 1e3,
          t_default < t_fallback ? "better" : "worse",
          t_fallback / t_default);
    }
    std::printf("\n");
  }
  return 0;
}
