// Adaptive work-stealing chunk scheduler on a skewed workload.
//
// A divides-chain whose subtree cost falls off sharply with the root value:
// B ranges over divisors of n/A, so A = 1 owns a subtree that scans the full
// n-element range at every level while large A values are nearly free. A
// fixed over-partition of the root range puts almost all of the work into
// the first chunk; the adaptive scheduler detects that chunk as hot (its
// visited-value count exceeds hot_factor x the running median of completed
// chunks) and re-splits the remaining tail back onto the queue.
//
// Prints, for 1/2/4/8 workers: wall time of the fixed partition vs the
// adaptive scheduler, chunk counts, re-splits, and the chunk-cost imbalance
// (max / mean visited values per chunk). Verifies every parallel space is
// bit-identical to the sequential one; exits non-zero on any mismatch.
//
// `--small` shrinks the problem for sanitizer runs (TSan in CI).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "atf/atf.hpp"
#include "atf/common/statistics.hpp"
#include "atf/common/stopwatch.hpp"

namespace {

std::vector<atf::tp_group> make_skewed_group(std::size_t n) {
  auto a = atf::tp("A", atf::interval<std::size_t>(1, n), atf::divides(n));
  auto b = atf::tp("B", atf::interval<std::size_t>(1, n), atf::divides(n / a));
  auto c = atf::tp("C", atf::interval<std::size_t>(1, n), atf::divides(b));
  auto d = atf::tp("D", atf::interval<std::size_t>(1, n), atf::divides(c));
  return {atf::G(a, b, c, d)};
}

bool spaces_identical(const atf::search_space& expected,
                      const atf::search_space& actual) {
  if (actual.size() != expected.size() ||
      actual.node_count() != expected.node_count()) {
    return false;
  }
  if (expected.empty()) {
    return true;
  }
  // Deterministic sample plus both ends; full enumeration would dominate.
  atf::common::xoshiro256 rng(0x51e3);
  std::vector<std::uint64_t> indices{0, expected.size() - 1};
  for (int i = 0; i < 128; ++i) {
    indices.push_back(rng.below(expected.size()));
  }
  for (const auto index : indices) {
    if (actual.config_at(index) != expected.config_at(index)) {
      return false;
    }
  }
  return true;
}

struct run_result {
  double seconds = 0.0;
  std::uint64_t chunks = 0;
  std::uint64_t resplits = 0;
  double imbalance = 0.0;  ///< max / mean visited values per chunk
  double p95_visited = 0.0;
  bool identical = false;
};

run_result run(const std::vector<atf::tp_group>& groups,
               const atf::search_space& reference, std::size_t workers,
               const atf::generation_policy& policy) {
  atf::common::stopwatch timer;
  const auto space = atf::search_space::generate(
      groups, atf::generation_mode::intra_group, workers, policy);
  run_result r;
  r.seconds = timer.elapsed_seconds();
  const auto& stats = space.group(0).stats();
  r.chunks = stats.chunks;
  r.resplits = stats.resplits;
  std::vector<double> visited;
  visited.reserve(stats.per_chunk.size());
  double max_visited = 0.0;
  for (const auto& chunk : stats.per_chunk) {
    const auto v = static_cast<double>(chunk.visited_values);
    visited.push_back(v);
    if (v > max_visited) {
      max_visited = v;
    }
  }
  if (!visited.empty()) {
    double total = 0.0;
    for (const double v : visited) total += v;
    r.imbalance = max_visited / (total / static_cast<double>(visited.size()));
    r.p95_visited = atf::common::percentile(visited, 95.0);
  }
  r.identical = spaces_identical(reference, space);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    }
  }
  const std::size_t n = small ? 512 : 8192;

  std::printf("=== Skewed divides-chain: fixed partition vs adaptive "
              "scheduler ===\n\n");
  std::printf("n = %zu, hardware concurrency: %u core(s) — wall-clock "
              "speedups are bounded by this; the imbalance and re-split "
              "columns are schedule facts either way\n\n",
              n, std::thread::hardware_concurrency());

  const auto groups = make_skewed_group(n);
  atf::common::stopwatch seq_timer;
  const auto reference =
      atf::search_space::generate(groups, atf::generation_mode::sequential);
  const double t_seq = seq_timer.elapsed_seconds();
  std::printf("sequential: %.3f s, %llu configurations\n\n", t_seq,
              static_cast<unsigned long long>(reference.size()));

  // The fixed baseline keeps the pull-scheduled queue but never re-splits —
  // the pre-adaptive behaviour of a static over-partition.
  atf::generation_policy fixed;
  fixed.adaptive = false;

  // Aggressive enough to fire on the bench sizes even when the pool is not
  // starving (a single-core container timeshares, so starvation is rare).
  atf::generation_policy adaptive;
  adaptive.min_split_visited = 64;
  adaptive.split_only_when_starving = false;

  std::printf("%-7s | %-8s | %9s | %6s | %8s | %9s | %9s | %7s\n", "workers",
              "policy", "time [s]", "chunks", "resplits", "imbalance",
              "p95 visit", "speedup");
  for (int i = 0; i < 84; ++i) std::putchar('-');
  std::putchar('\n');

  bool all_identical = true;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const auto f = run(groups, reference, workers, fixed);
    const auto a = run(groups, reference, workers, adaptive);
    all_identical = all_identical && f.identical && a.identical;
    std::printf("%-7zu | %-8s | %9.3f | %6llu | %8llu | %8.2fx | %9.0f | %6s\n",
                workers, "fixed", f.seconds,
                static_cast<unsigned long long>(f.chunks),
                static_cast<unsigned long long>(f.resplits), f.imbalance,
                f.p95_visited, "1.00x");
    std::printf("%-7zu | %-8s | %9.3f | %6llu | %8llu | %8.2fx | %9.0f | %5.2fx\n",
                workers, "adaptive", a.seconds,
                static_cast<unsigned long long>(a.chunks),
                static_cast<unsigned long long>(a.resplits), a.imbalance,
                a.p95_visited, f.seconds / a.seconds);
  }

  std::printf("\nbit-identical: %s\n", all_identical ? "yes" : "NO");
  if (!all_identical) {
    std::printf("ERROR: a parallel space diverged from the sequential one\n");
    return 1;
  }

  std::printf("\n=== Storage backends: memory per representation ===\n");
  bool backends_identical = true;
  for (const auto backend : {atf::space_storage_backend::dense,
                             atf::space_storage_backend::packed,
                             atf::space_storage_backend::lazy}) {
    atf::space_storage_policy storage;
    storage.backend = backend;
    const auto space = atf::search_space::generate(
        groups, atf::generation_mode::sequential, 0, {}, storage);
    backends_identical =
        backends_identical && spaces_identical(reference, space);
    std::printf("%-6s  %10.2f MB   (%llu nodes)\n", atf::to_string(backend),
                static_cast<double>(space.memory_bytes()) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(space.node_count()));
  }
  std::printf("backends bit-identical: %s\n",
              backends_identical ? "yes" : "NO");
  if (!backends_identical) {
    std::printf("ERROR: a storage backend diverged from the dense space\n");
    return 1;
  }
  return 0;
}
