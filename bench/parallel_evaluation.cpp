// Batched, parallel cost evaluation: the evaluation engine's throughput
// lever for pure cost functions.
//
// Tunes XgemmDirect on the simulated device under a fixed seed and a fixed
// evaluation budget, comparing sequential evaluation against batched
// evaluation at 1/2/4/8 workers — first with random search (natively
// batchable: every mode explores the identical proposal stream and finds
// the identical best; only wall-clock throughput differs), then with the
// AUC-bandit ensemble (opentuner_search), whose mixed-technique batches
// fill one slot per member so the inherently sequential pool members also
// amortize measurement latency. For the ensemble, batched-at-1-worker is
// bit-identical to sequential; wider batches explore a different (equally
// deterministic) proposal stream, so only the wall-clock is compared.
// Unlike bench::measure, the evaluation session here is thread_local: each
// worker owns its context and argument buffers, keeping the cost function
// safe to invoke concurrently.
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <thread>

#include "atf/atf.hpp"
#include "atf/cf/generic.hpp"
#include "atf/common/stopwatch.hpp"
#include "atf/kernels/xgemm_direct.hpp"
#include "atf/search/opentuner_search.hpp"
#include "atf/search/random_search.hpp"
#include "bench_common.hpp"

namespace {

namespace xg = atf::kernels::xgemm;

/// Modeled kernel time of one configuration, with a per-thread session —
/// context and buffers are built once per worker and reused.
double measure_thread_local(const xg::problem& prob, const xg::params& p,
                            const ocls::device& dev, xg::size_mode mode) {
  static const ocls::kernel kernel = xg::make_kernel();

  struct session {
    std::shared_ptr<ocls::context> ctx;
    ocls::kernel_args args;
  };
  thread_local session cache;
  if (!cache.ctx) {
    cache.ctx = std::make_shared<ocls::context>(dev);
    cache.args.emplace_back(static_cast<double>(prob.m));
    cache.args.emplace_back(static_cast<double>(prob.n));
    cache.args.emplace_back(static_cast<double>(prob.k));
    cache.args.emplace_back(
        std::make_shared<ocls::buffer<float>>(prob.m * prob.k));
    cache.args.emplace_back(
        std::make_shared<ocls::buffer<float>>(prob.k * prob.n));
    cache.args.emplace_back(
        std::make_shared<ocls::buffer<float>>(prob.m * prob.n));
  }

  ocls::command_queue queue(cache.ctx);
  try {
    return queue
        .launch(kernel, xg::launch_range(prob, p, mode), cache.args,
                xg::make_defines(prob, p))
        .profile_ns();
  } catch (const ocls::error&) {
    return std::numeric_limits<double>::infinity();
  }
}

struct run_stats {
  double seconds = 0.0;
  double best_ns = 0.0;
  std::uint64_t evaluations = 0;
};

enum class technique { random, ensemble };

std::unique_ptr<atf::search_technique> make_technique(technique kind) {
  if (kind == technique::ensemble) {
    return std::make_unique<atf::search::opentuner_search>(0x5eed);
  }
  return std::make_unique<atf::search::random_search>(0x5eed);
}

run_stats run(const xg::problem& prob, const ocls::device& dev,
              std::uint64_t budget, atf::evaluation_mode mode,
              std::size_t workers, technique kind) {
  auto setup = xg::make_tuning_parameters(
      prob, xg::size_mode::general, xg::device_limits::of(dev.profile()));
  atf::tuner tuner;
  tuner.tuning_parameters(setup.group());
  tuner.search_technique(make_technique(kind));
  tuner.abort_condition(atf::cond::evaluations(budget));
  tuner.evaluation(mode).concurrency(workers);

  auto cf = atf::cf::pure([&](const atf::configuration& config) {
    const double ns = measure_thread_local(
        prob, bench::params_from_config(config), dev, xg::size_mode::general);
    if (!std::isfinite(ns)) {
      throw atf::evaluation_error("launch failed");
    }
    return ns;
  });

  atf::common::stopwatch timer;
  const auto result = tuner.tune(cf);
  run_stats stats;
  stats.seconds = timer.elapsed_seconds();
  stats.best_ns = result.has_best() ? *result.best_cost : 0.0;
  stats.evaluations = result.evaluations;
  return stats;
}

}  // namespace

int main() {
  std::printf("=== Batched parallel cost evaluation on XgemmDirect ===\n\n");
  std::printf("hardware concurrency: %u core(s) — batched speedups are "
              "bounded by this\n\n",
              std::thread::hardware_concurrency());

  const xg::problem prob{256, 256, 256};
  const auto dev = ocls::find_device("NVIDIA", "K20m");
  const std::uint64_t budget = 4'000;

  std::printf("--- random search (natively batchable) ---\n");
  const run_stats sequential = run(prob, dev, budget,
                                   atf::evaluation_mode::sequential, 0,
                                   technique::random);

  std::printf("%-12s | %8s | %10s | %12s | %9s | %12s\n", "mode", "workers",
              "evals", "time [s]", "speedup", "evals/s");
  bench::print_rule(76);
  std::printf("%-12s | %8s | %10llu | %12.3f | %8.2fx | %12.0f\n",
              "sequential", "-",
              static_cast<unsigned long long>(sequential.evaluations),
              sequential.seconds, 1.0,
              double(sequential.evaluations) / sequential.seconds);

  double best_ns = sequential.best_ns;
  bool ok = true;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const run_stats batched = run(prob, dev, budget,
                                  atf::evaluation_mode::batched, workers,
                                  technique::random);
    ok = ok && batched.best_ns == best_ns &&
         batched.evaluations == sequential.evaluations;
    std::printf("%-12s | %8zu | %10llu | %12.3f | %8.2fx | %12.0f\n",
                "batched", workers,
                static_cast<unsigned long long>(batched.evaluations),
                batched.seconds, sequential.seconds / batched.seconds,
                double(batched.evaluations) / batched.seconds);
  }
  std::printf("\nbest modeled time: %.0f ns — %s across all modes\n", best_ns,
              ok ? "identical" : "DIFFERS (determinism bug!)");

  std::printf("\n--- AUC-bandit ensemble / opentuner_search "
              "(mixed-technique batches) ---\n");
  const run_stats ens_sequential = run(prob, dev, budget,
                                       atf::evaluation_mode::sequential, 0,
                                       technique::ensemble);
  std::printf("%-12s | %8s | %10s | %12s | %9s | %12s\n", "mode", "workers",
              "evals", "time [s]", "speedup", "evals/s");
  bench::print_rule(76);
  std::printf("%-12s | %8s | %10llu | %12.3f | %8.2fx | %12.0f\n",
              "sequential", "-",
              static_cast<unsigned long long>(ens_sequential.evaluations),
              ens_sequential.seconds, 1.0,
              double(ens_sequential.evaluations) / ens_sequential.seconds);

  double speedup_at_4 = 0.0;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    const run_stats batched = run(prob, dev, budget,
                                  atf::evaluation_mode::batched, workers,
                                  technique::ensemble);
    if (workers == 1u) {
      // At concurrency 1 the mixed-batch fill degenerates to the
      // sequential bandit step: the runs must be bit-identical.
      ok = ok && batched.best_ns == ens_sequential.best_ns &&
           batched.evaluations == ens_sequential.evaluations;
    }
    if (workers == 4u) {
      speedup_at_4 = ens_sequential.seconds / batched.seconds;
    }
    std::printf("%-12s | %8zu | %10llu | %12.3f | %8.2fx | %12.0f\n",
                "batched", workers,
                static_cast<unsigned long long>(batched.evaluations),
                batched.seconds, ens_sequential.seconds / batched.seconds,
                double(batched.evaluations) / batched.seconds);
  }

  std::printf("\nensemble: batched@1 %s sequential; batched@4 speedup "
              "%.2fx\n",
              ok ? "bit-identical to" : "DIFFERS from (determinism bug!)",
              speedup_at_4);
  return ok ? 0 : 1;
}
