// Reproduction of Section V: parallel search-space generation.
//
// Applications with several independent groups of interdependent parameters
// allow ATF to generate each group's sub-space in its own thread ("one
// thread per dependent parameter group ... based on the Standard C++
// Threading Library"). This bench builds Figure-1-style workloads — G
// identical groups whose generation cost is dominated by scanning large
// constrained ranges — and compares sequential vs parallel generation.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "atf/atf.hpp"
#include "atf/common/stopwatch.hpp"

namespace {

/// One group: tpA | n and tpB | tpA over {1..n}. With n = p^2 for a prime
/// p, only a handful of values are valid, but every prefix scans the full
/// n-element range — generation cost without memory cost, which isolates
/// the threading speedup.
atf::tp_group make_group(int index, std::size_t n) {
  const std::string suffix = "_" + std::to_string(index);
  auto a = atf::tp("tpA" + suffix, atf::interval<std::size_t>(1, n),
                   atf::divides(n));
  auto b = atf::tp("tpB" + suffix, atf::interval<std::size_t>(1, n),
                   atf::divides(a));
  return atf::G(a, b);
}

}  // namespace

int main() {
  std::printf("=== Section V: parallel per-group space generation ===\n\n");
  std::printf("hardware concurrency: %u core(s) — the parallel speedup is "
              "bounded by this\n\n",
              std::thread::hardware_concurrency());
  std::printf("%-8s | %10s | %14s | %14s | %8s\n", "groups", "space",
              "sequential [s]", "parallel [s]", "speedup");
  for (int i = 0; i < 70; ++i) std::putchar('-');
  std::putchar('\n');

  const std::size_t p = 2003;           // prime
  const std::size_t n = p * p;          // divisors: 1, p, p^2
  for (const int groups : {1, 2, 4, 8}) {
    std::vector<atf::tp_group> gs;
    gs.reserve(groups);
    for (int g = 0; g < groups; ++g) {
      gs.push_back(make_group(g, n));
    }

    atf::common::stopwatch timer;
    const auto sequential = atf::search_space::generate(gs, false);
    const double t_seq = timer.elapsed_seconds();

    timer.reset();
    const auto parallel = atf::search_space::generate(gs, true);
    const double t_par = timer.elapsed_seconds();

    if (sequential.size() != parallel.size()) {
      std::printf("ERROR: sequential and parallel spaces disagree\n");
      return 1;
    }
    std::printf("%-8d | %10llu | %14.3f | %14.3f | %7.2fx\n", groups,
                static_cast<unsigned long long>(parallel.size()), t_seq,
                t_par, t_seq / t_par);
  }
  std::printf("\n(one thread per dependency group; groups are identical, so "
              "ideal speedup equals the group count up to core limits)\n");
  return 0;
}
