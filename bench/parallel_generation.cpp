// Reproduction of Section V: parallel search-space generation.
//
// Applications with several independent groups of interdependent parameters
// allow ATF to generate each group's sub-space in its own thread ("one
// thread per dependent parameter group ... based on the Standard C++
// Threading Library"). This bench builds Figure-1-style workloads — G
// identical groups whose generation cost is dominated by scanning large
// constrained ranges — and compares the three generation modes:
//
//   sequential   everything on the calling thread
//   per_group    the paper's one-std::thread-per-group scheme, which cannot
//                help a single-group space
//   intra_group  nested groups-by-chunks parallelism over a shared pool,
//                which scales with cores even at groups = 1
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "atf/atf.hpp"
#include "atf/common/stopwatch.hpp"

namespace {

/// One group: tpA | n and tpB | tpA over {1..n}. With n = p^2 for a prime
/// p, only a handful of values are valid, but every prefix scans the full
/// n-element range — generation cost without memory cost, which isolates
/// the threading speedup.
atf::tp_group make_group(int index, std::size_t n) {
  const std::string suffix = "_" + std::to_string(index);
  auto a = atf::tp("tpA" + suffix, atf::interval<std::size_t>(1, n),
                   atf::divides(n));
  auto b = atf::tp("tpB" + suffix, atf::interval<std::size_t>(1, n),
                   atf::divides(a));
  return atf::G(a, b);
}

double time_mode(const std::vector<atf::tp_group>& gs,
                 atf::generation_mode mode, std::uint64_t& size_out) {
  atf::common::stopwatch timer;
  const auto space = atf::search_space::generate(gs, mode);
  size_out = space.size();
  return timer.elapsed_seconds();
}

}  // namespace

int main() {
  std::printf("=== Section V: parallel space generation, three modes ===\n\n");
  std::printf("hardware concurrency: %u core(s) — parallel speedups are "
              "bounded by this\n\n",
              std::thread::hardware_concurrency());
  std::printf("%-8s | %10s | %12s | %12s | %12s | %9s | %9s\n", "groups",
              "space", "seq [s]", "per-grp [s]", "intra [s]", "per-grp x",
              "intra x");
  for (int i = 0; i < 90; ++i) std::putchar('-');
  std::putchar('\n');

  const std::size_t p = 2003;           // prime
  const std::size_t n = p * p;          // divisors: 1, p, p^2
  for (const int groups : {1, 2, 4, 8}) {
    std::vector<atf::tp_group> gs;
    gs.reserve(groups);
    for (int g = 0; g < groups; ++g) {
      gs.push_back(make_group(g, n));
    }

    std::uint64_t size_seq = 0;
    std::uint64_t size_per_group = 0;
    std::uint64_t size_intra = 0;
    const double t_seq =
        time_mode(gs, atf::generation_mode::sequential, size_seq);
    const double t_per_group =
        time_mode(gs, atf::generation_mode::per_group, size_per_group);
    const double t_intra =
        time_mode(gs, atf::generation_mode::intra_group, size_intra);

    if (size_seq != size_per_group || size_seq != size_intra) {
      std::printf("ERROR: generation modes disagree on the space size\n");
      return 1;
    }
    std::printf("%-8d | %10llu | %12.3f | %12.3f | %12.3f | %8.2fx | %8.2fx\n",
                groups, static_cast<unsigned long long>(size_seq), t_seq,
                t_per_group, t_intra, t_seq / t_per_group, t_seq / t_intra);
  }
  std::printf("\n(per_group: one thread per dependency group — no help at "
              "groups = 1; intra_group: chunks each group's root range "
              "across a shared pool, so it scales with cores even for a "
              "single group)\n");
  return 0;
}
