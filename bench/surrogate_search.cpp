// Surrogate-guided search vs the random and ensemble baselines (DESIGN.md
// §10): measured-evaluations-to-reach-best on the two paper workloads,
// XgemmDirect (IS4) and conv2d, on the simulated K20m.
//
// Protocol, per workload: random search burns a fixed budget R and sets the
// bar B_r (its final best). Each challenger then runs with the abort
// condition cost(B_r) || evaluations(R) — stop as soon as the bar is
// reached — under an evaluation cache, and is scored by *measured*
// evaluations: evaluations minus cache hits minus store hits. The
// acceptance gate requires the surrogate to reach the bar on XgemmDirect
// with >= 30% fewer measured evaluations than random spent, and a
// fixed-seed rerun to reproduce the exact measured-cost stream
// (bit-identity). Exit code 0 iff both hold.
//
// --small: a thread-sanitizer workout, not a comparison — batched
// evaluation with several workers on a tiny budget, exercising the
// propose_batch/report_batch path concurrently.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "atf/kernels/conv2d.hpp"
#include "atf/search/surrogate_search.hpp"
#include "bench_common.hpp"

using namespace bench;

namespace {

constexpr std::uint64_t kSeed = 4242;

struct run_outcome {
  double best = 0.0;
  std::uint64_t measured = 0;
  std::vector<double> stream;  ///< measured costs in evaluation order
};

std::uint64_t measured_of(std::uint64_t evaluations, std::uint64_t cached,
                          std::uint64_t store_hits) {
  return evaluations - cached - store_hits;
}

/// One tuning run under an evaluation cache, recording the measured-cost
/// stream for the bit-identity check.
template <typename MakeTuner, typename Cost>
run_outcome run_technique(MakeTuner&& make_tuner, Cost&& cost,
                          std::unique_ptr<atf::search_technique> technique,
                          atf::abort_condition abort) {
  atf::tuner tuner = make_tuner();
  tuner.cache_evaluations(true);
  tuner.search_technique(std::move(technique));
  tuner.abort_condition(std::move(abort));
  run_outcome out;
  const auto result = tuner.tune([&](const atf::configuration& config) {
    const double c = cost(config);
    out.stream.push_back(c);
    return c;
  });
  out.best = result.has_best() ? *result.best_cost
                               : std::numeric_limits<double>::infinity();
  out.measured = measured_of(result.evaluations, result.cached_evaluations,
                             result.store_hits);
  return out;
}

template <typename MakeTuner, typename Cost>
bool compare_on(const char* workload, MakeTuner&& make_tuner, Cost&& cost,
                std::uint64_t budget, bool gated) {
  std::printf("--- %s (budget: %llu evaluations, seed %llu) ---\n", workload,
              static_cast<unsigned long long>(budget),
              static_cast<unsigned long long>(kSeed));

  // The bar: random search's final best after the full budget.
  const run_outcome random = run_technique(
      make_tuner, cost, std::make_unique<atf::search::random_search>(kSeed),
      atf::cond::evaluations(budget));
  const auto to_bar = atf::cond::cost(random.best) ||
                      atf::cond::evaluations(budget);

  const run_outcome ensemble = run_technique(
      make_tuner, cost,
      std::make_unique<atf::search::opentuner_search>(kSeed), to_bar);
  const run_outcome surrogate = run_technique(
      make_tuner, cost, std::make_unique<atf::search::surrogate_search>(kSeed),
      to_bar);

  std::printf("%-22s | %14s | %18s\n", "technique", "best [us]",
              "measured evals");
  print_rule(62);
  auto row = [&](const char* name, const run_outcome& out) {
    std::printf("%-22s | %14.3f | %18llu\n", name, out.best / 1e3,
                static_cast<unsigned long long>(out.measured));
  };
  row("random (sets the bar)", random);
  row("opentuner ensemble", ensemble);
  row("surrogate", surrogate);

  const bool reached = surrogate.best <= random.best;
  const double ratio = random.measured == 0
                           ? 1.0
                           : static_cast<double>(surrogate.measured) /
                                 static_cast<double>(random.measured);
  std::printf("surrogate reached the bar: %s, measured ratio vs random: "
              "%.2f (gate: <= 0.70)\n",
              reached ? "yes" : "NO", ratio);

  // Bit-identity: the same seed must reproduce the exact measured-cost
  // stream, not merely the same final best.
  const run_outcome rerun = run_technique(
      make_tuner, cost, std::make_unique<atf::search::surrogate_search>(kSeed),
      to_bar);
  const bool identical = rerun.stream == surrogate.stream;
  std::printf("fixed-seed rerun bit-identical: %s\n\n",
              identical ? "yes" : "NO");

  if (!identical) {
    return false;
  }
  if (!gated) {
    return true;
  }
  return reached && ratio <= 0.70;
}

bool xgemm_comparison() {
  const xg::problem prob = xg::caffe_input_size(4);
  const ocls::device gpu = ocls::find_device("NVIDIA", "K20m");
  auto make_tuner = [&] {
    auto setup = xg::make_tuning_parameters(
        prob, xg::size_mode::general, xg::device_limits::of(gpu.profile()));
    atf::tuner tuner;
    tuner.tuning_parameters(setup.group());
    return tuner;
  };
  auto cost = [&](const atf::configuration& config) {
    // Failed launches surface as the +infinity penalty and train the
    // surrogate's invalid classifier head.
    return measure(prob, params_from_config(config), gpu,
                   xg::size_mode::general);
  };
  return compare_on("XgemmDirect IS4", make_tuner, cost, 600, /*gated=*/true);
}

bool conv2d_comparison() {
  namespace cv = atf::kernels::conv2d;
  const cv::problem prob{512, 512, 5, 5};
  const ocls::device gpu = ocls::find_device("NVIDIA", "K20m");
  const ocls::kernel kernel = cv::make_kernel();
  auto ctx = std::make_shared<ocls::context>(gpu);
  ocls::kernel_args args;
  args.emplace_back(static_cast<double>(prob.height));
  args.emplace_back(static_cast<double>(prob.width));
  args.emplace_back(static_cast<double>(prob.filter_height));
  args.emplace_back(static_cast<double>(prob.filter_width));
  args.emplace_back(std::make_shared<ocls::buffer<float>>(prob.height *
                                                          prob.width));
  args.emplace_back(std::make_shared<ocls::buffer<float>>(
      prob.filter_height * prob.filter_width));
  args.emplace_back(std::make_shared<ocls::buffer<float>>(
      prob.out_height() * prob.out_width()));

  auto make_tuner = [&] {
    auto setup = cv::make_tuning_parameters(prob);
    atf::tuner tuner;
    tuner.tuning_parameters(setup.groups()[0], setup.groups()[1]);
    return tuner;
  };
  auto cost = [&](const atf::configuration& config) -> double {
    cv::params p;
    p.tbx = config["TBX"];
    p.tby = config["TBY"];
    p.lx = config["LX"];
    p.ly = config["LY"];
    p.vecx = config["VECX"];
    p.unroll = config["UNROLL"];
    p.use_lmem = config["USE_LMEM"];
    ocls::command_queue queue(ctx);
    try {
      return queue
          .launch(kernel, cv::launch_range(prob, p), args,
                  cv::make_defines(prob, p))
          .profile_ns();
    } catch (const ocls::error&) {
      return std::numeric_limits<double>::infinity();
    }
  };
  // Informational on conv2d — the acceptance gate is pinned to XgemmDirect.
  return compare_on("conv2d 512x512 5x5", make_tuner, cost, 400,
                    /*gated=*/false);
}

/// --small: drive surrogate_search through batched evaluation with worker
/// threads on a pure cost function — the TSan workout.
struct small_cost {
  static constexpr bool thread_safe = true;
  double operator()(const atf::configuration& config) const {
    const int x = config["x"];
    const int y = config["y"];
    if ((x + y) % 7 == 3) {
      return std::numeric_limits<double>::infinity();  // failure stripe
    }
    double cost = (x - 17) * (x - 17) + (y - 42) * (y - 42);
    if (x % 4 != 0) {
      cost += 25;
    }
    return cost;
  }
};

int small_run() {
  auto x = atf::tp("x", atf::interval<int>(0, 63));
  auto y = atf::tp("y", atf::interval<int>(0, 63));
  atf::tuner tuner;
  tuner.tuning_parameters(x, y);
  tuner.search_technique(std::make_unique<atf::search::surrogate_search>(7));
  tuner.abort_condition(atf::cond::evaluations(200));
  tuner.evaluation(atf::evaluation_mode::batched);
  tuner.concurrency(4);
  tuner.cache_evaluations(true);
  const auto result = tuner.tune(small_cost{});
  std::printf("small: %llu evaluations, best %.1f\n",
              static_cast<unsigned long long>(result.evaluations),
              result.has_best() ? *result.best_cost : -1.0);
  return result.has_best() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--small") == 0) {
    return small_run();
  }
  std::printf("=== Surrogate-guided search (DESIGN.md §10) ===\n\n");
  const bool xgemm_ok = xgemm_comparison();
  const bool conv_ok = conv2d_comparison();
  if (!xgemm_ok || !conv_ok) {
    std::printf("FAIL: acceptance gate not met\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
