// Google-benchmark microbenchmarks of ATF's core operations: constrained
// search-space generation, indexed configuration access, neighbor moves and
// lazy expression evaluation. These quantify the costs behind the paper's
// "less than 1 second" generation claim and the per-evaluation overhead of
// the exploration loop.
#include <benchmark/benchmark.h>

#include "atf/atf.hpp"
#include "atf/kernels/xgemm_direct.hpp"

namespace {

void BM_SaxpySpaceGeneration(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto wpt =
        atf::tp("WPT", atf::interval<std::size_t>(1, n), atf::divides(n));
    auto ls = atf::tp("LS", atf::interval<std::size_t>(1, n),
                      atf::divides(n / wpt));
    auto tree = atf::space_tree::generate(atf::G(wpt, ls));
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_SaxpySpaceGeneration)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_XgemmSpaceGeneration(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const atf::kernels::xgemm::problem prob{n, n, n};
  for (auto _ : state) {
    auto setup = atf::kernels::xgemm::make_tuning_parameters(
        prob, atf::kernels::xgemm::size_mode::general);
    auto tree = atf::space_tree::generate(setup.group());
    benchmark::DoNotOptimize(tree.size());
  }
}
BENCHMARK(BM_XgemmSpaceGeneration)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

class XgemmSpaceFixture : public benchmark::Fixture {
public:
  void SetUp(const benchmark::State&) override {
    if (!space) {
      const atf::kernels::xgemm::problem prob{64, 64, 64};
      auto setup = atf::kernels::xgemm::make_tuning_parameters(
          prob, atf::kernels::xgemm::size_mode::general);
      space = std::make_unique<atf::search_space>(
          atf::search_space::generate({setup.group()}));
    }
  }
  static std::unique_ptr<atf::search_space> space;
};
std::unique_ptr<atf::search_space> XgemmSpaceFixture::space;

BENCHMARK_F(XgemmSpaceFixture, ConfigAt)(benchmark::State& state) {
  atf::common::xoshiro256 rng(1);
  for (auto _ : state) {
    const auto config = space->config_at(space->random_index(rng));
    benchmark::DoNotOptimize(config.size());
  }
}

BENCHMARK_F(XgemmSpaceFixture, RandomNeighbor)(benchmark::State& state) {
  atf::common::xoshiro256 rng(2);
  std::uint64_t index = space->random_index(rng);
  for (auto _ : state) {
    index = space->random_neighbor(index, rng);
    benchmark::DoNotOptimize(index);
  }
}

BENCHMARK_F(XgemmSpaceFixture, ApplyToSlots)(benchmark::State& state) {
  atf::common::xoshiro256 rng(3);
  for (auto _ : state) {
    space->apply(space->random_index(rng));
  }
}

void BM_ExpressionEval(benchmark::State& state) {
  auto a = atf::tp("a", atf::interval<std::size_t>(1, 1024));
  auto b = atf::tp("b", atf::interval<std::size_t>(1, 1024));
  a.set_current(128);
  b.set_current(7);
  const auto expr = atf::round_up(std::size_t{1000}, a / b + 1) * b;
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr.eval());
  }
}
BENCHMARK(BM_ExpressionEval);

void BM_ConstraintCheck(benchmark::State& state) {
  auto a = atf::tp("a", atf::interval<std::size_t>(1, 1024));
  a.set_current(64);
  const auto constraint = atf::divides(a) && atf::less_than(std::size_t{512});
  std::size_t v = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(constraint(v));
  }
}
BENCHMARK(BM_ConstraintCheck);

}  // namespace

BENCHMARK_MAIN();
