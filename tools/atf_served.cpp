// atf_served — the tuning-as-a-service daemon (DESIGN.md §13).
//
//   atf_served --socket /tmp/atf.sock --journal-dir ./journals \
//              [--device K20m] [--technique opentuner|annealing|surrogate|
//              random] [--refine-step N] [--seed N] [--max-pending N]
//              [--batch N] [--merge-from DIR] [--compact-on-start]
//              [--compact-on-exit] [--no-refiner]
//
// Answers "best configuration for (kernel, device, size)" over a Unix
// domain socket: one JSON request line in, one JSON reply line out (see
// atf/service/protocol.hpp). Hits are served lock-free from an immutable
// snapshot rebuilt from per-key crash-safe journals; misses go on a
// bounded dedup queue drained by a background thread that runs a
// journaled, warm-started tune on the simulated device. 'xgemm' keys keep
// the original blasmini XgemmDirect backend; every other kernel-registry
// family (saxpy, reduce, conv2d, stencil2d, spmv, batched_gemm, ...) is
// refined through atf::kernels::registry::tune with the same progressive
// budget and per-key seeds. Every
// answer the daemon ever gives survives SIGKILL: restart with the same
// --journal-dir and the same queries return bit-identical reply lines.
//
//   --refine-step N     fresh evaluations added per refinement pass; each
//                       pass resumes the key's journal, so repeated misses
//                       keep deepening the search (default 200)
//   --merge-from DIR    fold another daemon's journal directory into this
//                       one before serving (content-hash dedup, the
//                       supersedes total order breaks ties)
//   --compact-on-start  rewrite superseded-heavy journals before serving
//   --compact-on-exit   ... and after the drain on SIGTERM/SIGINT
//   --no-refiner        serve snapshots only; misses are enqueued but
//                       never refined (CI uses this for determinism)
//
// SIGTERM/SIGINT drain: stop accepting, finish in-flight replies and the
// in-flight refinement (journal appends are never torn), then exit 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define ATF_SERVED_HAVE_UNIX 1
#endif

#include "atf/common/hash.hpp"
#include "atf/kernels/registry.hpp"
#include "atf/service/service.hpp"
#include "atf/service/socket_server.hpp"
#include "atf/session/journal.hpp"
#include "blasmini/gemm.hpp"
#include "ocls/ocls.hpp"

namespace {

struct served_options {
  std::string socket_path;
  std::string journal_dir;
  std::string device = "K20m";
  std::string technique = "opentuner";
  std::uint64_t refine_step = 200;
  std::uint64_t seed = 0x5eed;
  std::size_t max_pending = 64;
  std::size_t batch = 4;
  std::string merge_from;
  bool compact_on_start = false;
  bool compact_on_exit = false;
  bool no_refiner = false;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH --journal-dir DIR\n"
      "          [--device NAME] [--technique opentuner|annealing|surrogate|"
      "random]\n"
      "          [--refine-step N] [--seed N] [--max-pending N] [--batch N]\n"
      "          [--merge-from DIR] [--compact-on-start] [--compact-on-exit]\n"
      "          [--no-refiner]\n",
      argv0);
}

bool parse_u64_flag(const char* flag, const char* text, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (*text == '\0' || *text == '-' || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "atf_served: %s expects a non-negative integer, got '%s'\n",
                 flag, text);
    return false;
  }
  out = value;
  return true;
}

std::optional<served_options> parse_cli(int argc, char** argv) {
  served_options opts;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "atf_served: missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = nullptr;
    std::uint64_t parsed = 0;
    if (flag == "--socket" && (value = need_value(i))) {
      opts.socket_path = value;
    } else if (flag == "--journal-dir" && (value = need_value(i))) {
      opts.journal_dir = value;
    } else if (flag == "--device" && (value = need_value(i))) {
      opts.device = value;
    } else if (flag == "--technique" && (value = need_value(i))) {
      opts.technique = value;
    } else if (flag == "--refine-step" && (value = need_value(i))) {
      if (!parse_u64_flag("--refine-step", value, opts.refine_step)) {
        return std::nullopt;
      }
    } else if (flag == "--seed" && (value = need_value(i))) {
      if (!parse_u64_flag("--seed", value, opts.seed)) {
        return std::nullopt;
      }
    } else if (flag == "--max-pending" && (value = need_value(i))) {
      if (!parse_u64_flag("--max-pending", value, parsed)) {
        return std::nullopt;
      }
      opts.max_pending = static_cast<std::size_t>(parsed);
    } else if (flag == "--batch" && (value = need_value(i))) {
      if (!parse_u64_flag("--batch", value, parsed)) {
        return std::nullopt;
      }
      opts.batch = static_cast<std::size_t>(parsed);
    } else if (flag == "--merge-from" && (value = need_value(i))) {
      opts.merge_from = value;
    } else if (flag == "--compact-on-start") {
      opts.compact_on_start = true;
    } else if (flag == "--compact-on-exit") {
      opts.compact_on_exit = true;
    } else if (flag == "--no-refiner") {
      opts.no_refiner = true;
    } else {
      std::fprintf(stderr, "atf_served: unknown or incomplete option '%s'\n",
                   flag.c_str());
      return std::nullopt;
    }
  }
  if (opts.socket_path.empty() || opts.journal_dir.empty()) {
    return std::nullopt;
  }
  return opts;
}

/// "MxNxK" with strictly positive components; nullopt on anything else.
struct gemm_shape {
  std::size_t m = 0, n = 0, k = 0;
};

std::optional<gemm_shape> parse_shape(const std::string& size) {
  gemm_shape shape;
  std::size_t* fields[3] = {&shape.m, &shape.n, &shape.k};
  const char* cursor = size.c_str();
  for (int i = 0; i < 3; ++i) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(cursor, &end, 10);
    if (end == cursor || *cursor == '-' || errno == ERANGE || value == 0) {
      return std::nullopt;
    }
    *fields[i] = static_cast<std::size_t>(value);
    cursor = end;
    if (i < 2) {
      if (*cursor != 'x') {
        return std::nullopt;
      }
      ++cursor;
    }
  }
  if (*cursor != '\0') {
    return std::nullopt;
  }
  return shape;
}

blasmini::tune_technique technique_from(const std::string& name) {
  if (name == "annealing") return blasmini::tune_technique::annealing;
  if (name == "surrogate") return blasmini::tune_technique::surrogate;
  if (name == "random") return blasmini::tune_technique::random;
  return blasmini::tune_technique::opentuner;
}

std::string known_kernel_names() {
  std::string joined;
  for (const auto& name : atf::kernels::registry::names()) {
    if (!joined.empty()) {
      joined += ", ";
    }
    joined += name;
  }
  return joined;
}

#if ATF_SERVED_HAVE_UNIX
// Self-pipe: the signal handler writes one byte, main blocks on read().
int signal_pipe[2] = {-1, -1};
volatile sig_atomic_t received_signal = 0;

extern "C" void on_terminate(int signum) {
  received_signal = signum;
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(signal_pipe[1], &byte, 1);
}
#endif

}  // namespace

int main(int argc, char** argv) {
#if !ATF_SERVED_HAVE_UNIX
  (void)argc;
  (void)argv;
  std::fprintf(stderr, "atf_served: requires a Unix platform\n");
  return 1;
#else
  const auto opts = parse_cli(argc, argv);
  if (!opts.has_value()) {
    usage(argv[0]);
    return 1;
  }
  if (opts->technique != "opentuner" && opts->technique != "annealing" &&
      opts->technique != "surrogate" && opts->technique != "random") {
    std::fprintf(stderr, "atf_served: unknown technique '%s'\n",
                 opts->technique.c_str());
    return 1;
  }

  try {
    std::filesystem::create_directories(opts->journal_dir);

    // The refine backend: a journaled, warm-started tune on the simulated
    // device. The budget is progressive — existing journal records plus one
    // refine step — so every pass deepens the search and a restarted daemon
    // continues where the killed one stopped. 'xgemm' keeps the original
    // blasmini executor (warm-started per-shape program cache); every other
    // registry family goes through the generic registry::tune driver.
    ocls::device device = ocls::find_device("", opts->device);
    const std::string device_name = device.name();
    const blasmini::tune_technique technique =
        technique_from(opts->technique);
    const std::string technique_name = opts->technique;
    const std::uint64_t base_seed = opts->seed;
    const std::uint64_t refine_step = opts->refine_step;

    auto refine = [device, technique, technique_name, base_seed, refine_step](
                      const atf::service::service_key& key,
                      const std::string& journal_path) {
      const std::size_t existing =
          atf::session::read_journal(journal_path).records.size();
      // Deterministic per-key seed: different keys explore differently,
      // the same key resumes identically after a restart.
      const std::uint64_t key_seed =
          base_seed ^ atf::common::fnv1a(key.to_string());

      if (key.kernel == "xgemm") {
        const auto shape = parse_shape(key.size);
        if (!shape.has_value()) {
          return false;  // validate() should have rejected this
        }
        blasmini::tune_options topts;
        topts.technique = technique;
        topts.evaluations = existing + refine_step;
        topts.seed = key_seed;
        topts.journal = journal_path;
        blasmini::gemm_executor gemm(device);
        gemm.tune(shape->m, shape->n, shape->k, topts);
        return true;
      }

      const auto* family = atf::kernels::registry::find(key.kernel);
      if (family == nullptr) {
        return false;  // validate() should have rejected this
      }
      try {
        const auto size = atf::kernels::registry::input_size::parse(key.size);
        atf::kernels::registry::tune_settings settings;
        settings.technique = technique_name;
        settings.evaluations = existing + refine_step;
        settings.seed = key_seed;
        settings.journal = journal_path;
        (void)atf::kernels::registry::tune(*family, size, device, settings);
      } catch (const std::exception&) {
        return false;  // empty space / degenerate size: nothing to journal
      }
      return true;
    };

    auto validate = [device, device_name](
                        const atf::service::service_key& key) -> std::string {
      const auto* family = key.kernel == "xgemm"
                               ? nullptr
                               : atf::kernels::registry::find(key.kernel);
      if (key.kernel != "xgemm" && family == nullptr) {
        return "unknown kernel '" + key.kernel + "' (this daemon tunes: " +
               known_kernel_names() + ")";
      }
      // Same substring semantics as ocls::find_device: "K20m" matches the
      // canonical "Tesla K20m". The key keeps the client's spelling — two
      // spellings are two keys, each with its own journal.
      if (key.device.empty() ||
          device_name.find(key.device) == std::string::npos) {
        return "foreign device '" + key.device + "' (this daemon tunes '" +
               device_name + "')";
      }
      if (key.kernel == "xgemm") {
        if (!parse_shape(key.size).has_value()) {
          return "malformed size '" + key.size + "' (expected MxNxK, all > 0)";
        }
        return {};
      }
      // Registry families validate through their own space builder: wrong
      // dimension counts and degenerate extents are rejected here, before
      // the key can occupy a refinement slot.
      try {
        const auto size = atf::kernels::registry::input_size::parse(key.size);
        (void)family->make_groups(size, device.profile());
      } catch (const std::exception& error) {
        return "bad size '" + key.size + "' for kernel '" + key.kernel +
               "' (expected " + family->dim_names + "): " + error.what();
      }
      return {};
    };

    atf::service::service_options sopts;
    sopts.journal_dir = opts->journal_dir;
    sopts.max_pending = opts->max_pending;
    sopts.refine_batch = opts->batch;
    atf::service::tuning_service service(sopts, refine, validate);

    const std::size_t loaded = service.load();
    std::fprintf(stderr, "atf_served: loaded %zu key(s) from '%s'\n", loaded,
                 opts->journal_dir.c_str());

    if (!opts->merge_from.empty()) {
      std::size_t merged_keys = 0;
      for (const auto& entry :
           std::filesystem::directory_iterator(opts->merge_from)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".jsonl") {
          continue;
        }
        const auto key = atf::service::service_key::from_file_stem(
            entry.path().stem().string());
        if (!key.has_value()) {
          std::fprintf(stderr, "atf_served: skipping foreign file '%s'\n",
                       entry.path().string().c_str());
          continue;
        }
        const auto stats =
            service.merge_journal(*key, entry.path().string());
        ++merged_keys;
        std::fprintf(stderr,
                     "atf_served: merged '%s': %zu added, %zu superseded, "
                     "%zu ignored\n",
                     key->to_string().c_str(), stats.added, stats.superseded,
                     stats.ignored);
      }
      std::fprintf(stderr, "atf_served: merged %zu key(s) from '%s'\n",
                   merged_keys, opts->merge_from.c_str());
    }

    if (opts->compact_on_start) {
      std::fprintf(stderr, "atf_served: compacted %zu journal(s)\n",
                   service.compact_all());
    }

    if (::pipe(signal_pipe) != 0) {
      std::fprintf(stderr, "atf_served: pipe() failed: %s\n",
                   std::strerror(errno));
      return 1;
    }
    std::signal(SIGTERM, on_terminate);
    std::signal(SIGINT, on_terminate);
    std::signal(SIGPIPE, SIG_IGN);  // a client vanishing mid-reply is normal

    if (!opts->no_refiner) {
      service.start();
    }
    atf::service::socket_server server(
        opts->socket_path,
        [&service](const std::string& line) {
          return service.handle_line(line);
        });
    server.start();
    std::fprintf(stderr, "atf_served: serving on '%s'\n",
                 opts->socket_path.c_str());

    // Block until SIGTERM/SIGINT.
    char byte = 0;
    while (::read(signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    std::fprintf(stderr, "atf_served: signal %d, draining\n",
                 static_cast<int>(received_signal));

    server.stop();    // finish in-flight replies, close the socket
    service.stop();   // finish the in-flight refinement
    if (opts->compact_on_exit) {
      std::fprintf(stderr, "atf_served: compacted %zu journal(s)\n",
                   service.compact_all());
    }
    const auto final_stats = service.stats();
    std::fprintf(stderr,
                 "atf_served: served %llu request(s), %llu hit(s), %llu "
                 "refine(s), %llu dropped\n",
                 static_cast<unsigned long long>(final_stats.requests),
                 static_cast<unsigned long long>(final_stats.hits),
                 static_cast<unsigned long long>(final_stats.refines),
                 static_cast<unsigned long long>(
                     final_stats.dropped_refinements));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "atf_served: %s\n", error.what());
    return 1;
  }
  return 0;
#endif
}
