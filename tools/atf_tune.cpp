// atf_tune — command-line auto-tuner for arbitrary programs, driving
// ATF's generic program cost function (paper, Section II Step 2).
//
//   atf_tune --source app.c --compile ./compile.sh --run ./run.sh \
//            [--log-file cost.log] \
//            --param "BLOCK=interval:1:64" \
//            --param "BLOCK2=interval:1:64:divides=BLOCK" \
//            --param "UNROLL=set:1,2,4,8" \
//            [--technique exhaustive|annealing|opentuner|surrogate|random] \
//            [--evaluations N] [--seconds S] [--seed N] [--csv out.csv] \
//            [--space-storage dense|packed|lazy] [--chunk-cache-mb N]
//
// GEMM grid mode (multi-size dispatch, DESIGN.md §12): instead of tuning a
// program, grid-tune the built-in XgemmDirect kernel over a problem-size
// grid and persist the winners in a tuning database:
//
//   atf_tune --size-grid "32,128x32,128x32,64" --db tuning.tsv \
//            [--device NAME] [--journal-dir DIR] \
//            [--technique opentuner|annealing|surrogate|random] \
//            [--evaluations N] [--seed N]
//
// Kernel registry mode (DESIGN.md §14): tune any registered kernel family
// on a simulated device and verify the winner against the family's scalar
// reference:
//
//   atf_tune --list-kernels
//   atf_tune --kernel stencil2d [--size 66x66x1] [--device NAME] \
//            [--technique T] [--evaluations N] [--seed N] [--journal-dir D]
//
// Parameter specs:
//   NAME=interval:LO:HI[:divides=OTHER|:multiple-of=OTHER|:pow2]
//   NAME=set:v1,v2,...
// Constraints may reference any parameter declared EARLIER on the command
// line, exactly like ATF programs. Prints the best configuration as
// NAME=VALUE pairs on stdout and exits 0; exits 1 on usage errors, 2 when
// no valid configuration was found.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "atf/atf.hpp"
#include "atf/cf/program.hpp"
#include "atf/common/string_utils.hpp"
#include "atf/kernels/registry.hpp"
#include "atf/search/opentuner_search.hpp"
#include "atf/search/random_search.hpp"
#include "atf/search/simulated_annealing.hpp"
#include "atf/search/surrogate_search.hpp"
#include "atf/service/client.hpp"
#include "blasmini/dispatch.hpp"

namespace {

// Strict numeric flag parsing: every conversion is end-pointer-checked so
// garbage like "--seconds abc" (which strtod silently turned into 0.0,
// making the tune exit immediately) errors out naming the offending flag.

bool parse_u64_flag(const char* flag, const char* text, std::uint64_t& out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (*text == '\0' || *text == '-' || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "atf_tune: %s expects a non-negative integer, got '%s'\n",
                 flag, text);
    return false;
  }
  out = value;
  return true;
}

bool parse_seconds_flag(const char* flag, const char* text, double& out) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (*text == '\0' || *end != '\0' || errno == ERANGE || !(value >= 0.0)) {
    std::fprintf(stderr,
                 "atf_tune: %s expects a non-negative number of seconds, "
                 "got '%s'\n",
                 flag, text);
    return false;
  }
  out = value;
  return true;
}

std::optional<std::int64_t> parse_i64(const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return static_cast<std::int64_t>(value);
}

struct cli_options {
  std::string source;
  std::string compile;
  std::string run;
  std::string log_file;
  std::string csv;
  std::string technique = "exhaustive";
  std::string space_storage = "dense";
  std::optional<std::size_t> chunk_cache_mb;
  std::vector<std::string> params;
  std::optional<std::uint64_t> evaluations;
  std::optional<double> seconds;
  std::uint64_t seed = 0x5eed;
  // GEMM grid mode
  std::string size_grid;
  std::string db_path;
  std::string device = "K20m";
  std::string journal_dir;
  // Service client mode
  std::string serve_socket;
  std::string query;
  bool serve_stats = false;
  // Kernel registry mode (also reuses --kernel in serve mode; empty means
  // "xgemm" there)
  std::string kernel;
  std::string size;
  bool list_kernels = false;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --source FILE --compile SCRIPT --run SCRIPT\n"
      "          --param \"NAME=interval:LO:HI[:divides=P|:multiple-of=P|"
      ":pow2]\"\n"
      "          --param \"NAME=set:v1,v2,...\"  [...]\n"
      "          [--log-file FILE] [--technique exhaustive|annealing|"
      "opentuner|surrogate|random]\n"
      "          [--evaluations N] [--seconds S] [--seed N] [--csv FILE]\n"
      "          [--space-storage dense|packed|lazy] [--chunk-cache-mb N]\n"
      "\n"
      "  --space-storage   how the generated search space stores its nodes:\n"
      "                    dense (default) plain arrays; packed bit-packed\n"
      "                    arrays, 3-8x smaller; lazy keeps only per-chunk\n"
      "                    summaries and regenerates subtrees on demand into\n"
      "                    a bounded cache -- for spaces too large for RAM.\n"
      "                    All backends tune bit-identically.\n"
      "  --chunk-cache-mb  lazy only: budget of the regenerated-chunk cache\n"
      "                    in MiB (default 64).\n"
      "\n"
      "GEMM grid mode:\n"
      "       %s --size-grid \"32,128x32,128x32,64\" --db tuning.tsv\n"
      "          [--device NAME] [--journal-dir DIR] [--technique T]\n"
      "          [--evaluations N] [--seed N]\n"
      "  Grid-tunes the built-in XgemmDirect kernel over the size grid on a\n"
      "  simulated device and stores the winners in the tuning database\n"
      "  (loaded first if it exists, so runs accumulate). --journal-dir\n"
      "  makes the grid tune crash-safe and warm-startable.\n"
      "\n"
      "Kernel registry mode (tunes a registered kernel family):\n"
      "       %s --list-kernels\n"
      "       %s --kernel NAME [--size DIMS] [--device NAME] [--technique T]\n"
      "          [--evaluations N] [--seed N] [--journal-dir DIR]\n"
      "  --list-kernels prints every registered family (name, size form,\n"
      "  knob count, constraint shape). --kernel tunes one family on the\n"
      "  simulated device, verifies the winner against the family's scalar\n"
      "  reference and prints it as NAME=VALUE lines. An unknown kernel\n"
      "  name lists the registry and exits 2.\n"
      "\n"
      "Service client mode (queries a running atf_served daemon):\n"
      "       %s --serve SOCKET --query MxNxK [--kernel NAME] "
      "[--device NAME]\n"
      "       %s --serve SOCKET --stats\n"
      "  A hit prints the tuned configuration as NAME=VALUE lines and exits\n"
      "  0; a miss (tuning was enqueued on the daemon) exits 3. --stats\n"
      "  prints the daemon's counters.\n",
      argv0, argv0, argv0, argv0, argv0, argv0);
}

std::optional<cli_options> parse_cli(int argc, char** argv) {
  cli_options opts;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "atf_tune: missing value for %s\n", argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* value = nullptr;
    if (flag == "--source" && (value = need_value(i))) {
      opts.source = value;
    } else if (flag == "--compile" && (value = need_value(i))) {
      opts.compile = value;
    } else if (flag == "--run" && (value = need_value(i))) {
      opts.run = value;
    } else if (flag == "--log-file" && (value = need_value(i))) {
      opts.log_file = value;
    } else if (flag == "--csv" && (value = need_value(i))) {
      opts.csv = value;
    } else if (flag == "--technique" && (value = need_value(i))) {
      opts.technique = value;
    } else if (flag == "--space-storage" && (value = need_value(i))) {
      opts.space_storage = value;
    } else if (flag == "--chunk-cache-mb" && (value = need_value(i))) {
      std::uint64_t parsed = 0;
      if (!parse_u64_flag("--chunk-cache-mb", value, parsed)) {
        return std::nullopt;
      }
      opts.chunk_cache_mb = static_cast<std::size_t>(parsed);
    } else if (flag == "--param" && (value = need_value(i))) {
      opts.params.emplace_back(value);
    } else if (flag == "--evaluations" && (value = need_value(i))) {
      std::uint64_t parsed = 0;
      if (!parse_u64_flag("--evaluations", value, parsed)) {
        return std::nullopt;
      }
      opts.evaluations = parsed;
    } else if (flag == "--seconds" && (value = need_value(i))) {
      double parsed = 0.0;
      if (!parse_seconds_flag("--seconds", value, parsed)) {
        return std::nullopt;
      }
      opts.seconds = parsed;
    } else if (flag == "--seed" && (value = need_value(i))) {
      if (!parse_u64_flag("--seed", value, opts.seed)) {
        return std::nullopt;
      }
    } else if (flag == "--size-grid" && (value = need_value(i))) {
      opts.size_grid = value;
    } else if (flag == "--db" && (value = need_value(i))) {
      opts.db_path = value;
    } else if (flag == "--device" && (value = need_value(i))) {
      opts.device = value;
    } else if (flag == "--journal-dir" && (value = need_value(i))) {
      opts.journal_dir = value;
    } else if (flag == "--serve" && (value = need_value(i))) {
      opts.serve_socket = value;
    } else if (flag == "--query" && (value = need_value(i))) {
      opts.query = value;
    } else if (flag == "--kernel" && (value = need_value(i))) {
      opts.kernel = value;
    } else if (flag == "--size" && (value = need_value(i))) {
      opts.size = value;
    } else if (flag == "--list-kernels") {
      opts.list_kernels = true;
    } else if (flag == "--stats") {
      opts.serve_stats = true;
    } else {
      std::fprintf(stderr, "atf_tune: unknown or incomplete option '%s'\n",
                   flag.c_str());
      return std::nullopt;
    }
  }
  if (!opts.serve_socket.empty()) {
    if (opts.query.empty() && !opts.serve_stats) {
      std::fprintf(stderr,
                   "atf_tune: --serve requires --query or --stats\n");
      return std::nullopt;
    }
    return opts;  // other modes' flags are not required
  }
  if (!opts.size_grid.empty()) {
    if (opts.db_path.empty()) {
      std::fprintf(stderr, "atf_tune: --size-grid requires --db\n");
      return std::nullopt;
    }
    return opts;  // program-mode flags are not required
  }
  if (opts.list_kernels || !opts.kernel.empty()) {
    return opts;  // registry mode needs nothing else
  }
  if (opts.source.empty() || opts.compile.empty() || opts.run.empty() ||
      opts.params.empty()) {
    return std::nullopt;
  }
  return opts;
}

/// Service client mode: query a running atf_served daemon. Exit codes:
/// 0 hit (configuration printed), 3 miss (refinement enqueued on the
/// daemon — retry shortly), 1 anything else.
int run_serve_client_mode(const cli_options& opts) {
  try {
    atf::service::service_client client(opts.serve_socket);
    if (opts.serve_stats) {
      const auto stats = client.stats();
      if (!stats.ok) {
        std::fprintf(stderr, "atf_tune: daemon error: %s\n",
                     stats.error.c_str());
        return 1;
      }
      for (const auto& [name, value] : stats.counters) {
        std::printf("%s=%llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      }
      return 0;
    }

    atf::service::service_key key;
    key.kernel = opts.kernel.empty() ? "xgemm" : opts.kernel;
    key.device = opts.device;
    key.size = opts.query;
    const auto reply = client.get(key);
    if (!reply.ok) {
      std::fprintf(stderr, "atf_tune: daemon error: %s\n",
                   reply.error.c_str());
      return 1;
    }
    if (!reply.hit) {
      if (reply.unrefinable) {
        std::fprintf(stderr,
                     "atf_tune: miss for %s — the daemon cannot tune this "
                     "key\n",
                     key.to_string().c_str());
      } else {
        std::fprintf(
            stderr,
            "atf_tune: miss for %s — refinement %s, retry shortly\n",
            key.to_string().c_str(),
            reply.dropped ? "dropped (daemon queue full)"
                          : (reply.enqueued ? "enqueued" : "already queued"));
      }
      return 3;
    }
    std::fprintf(stderr, "atf_tune: hit for %s, scalar %.17g over %llu "
                         "configuration(s)\n",
                 key.to_string().c_str(), reply.scalar,
                 static_cast<unsigned long long>(reply.configs));
    for (const auto& [name, value] : reply.config) {
      std::printf("%s=%s\n", name.c_str(), value.c_str());
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "atf_tune: %s\n", error.what());
    return 1;
  }
}

/// --list-kernels: prints the registry table.
int run_list_kernels_mode() {
  std::printf("%-14s %-10s %-14s %-6s %s\n", "KERNEL", "SIZE", "DEFAULT",
              "KNOBS", "CONSTRAINTS");
  for (const auto& e : atf::kernels::registry::all()) {
    std::printf("%-14s %-10s %-14s %-6zu %s\n", e.name.c_str(),
                e.dim_names.c_str(), e.default_size.to_string().c_str(),
                e.knob_count, e.constraint_summary.c_str());
  }
  return 0;
}

void print_registry(std::FILE* out) {
  for (const auto& e : atf::kernels::registry::all()) {
    std::fprintf(out, "  %-14s --size %s (default %s) — %s\n", e.name.c_str(),
                 e.dim_names.c_str(), e.default_size.to_string().c_str(),
                 e.description.c_str());
  }
}

/// Kernel registry mode: tune one registered family, verify the winner
/// against the family reference, print it. Exit codes: 0 success, 1 error
/// or reference mismatch, 2 unknown kernel / no valid configuration.
int run_registry_mode(const cli_options& opts) {
  namespace reg = atf::kernels::registry;
  const reg::entry* entry = reg::find(opts.kernel);
  if (entry == nullptr) {
    std::fprintf(stderr,
                 "atf_tune: unknown kernel '%s'; registered kernels:\n",
                 opts.kernel.c_str());
    print_registry(stderr);
    return 2;
  }

  try {
    const ocls::device dev = ocls::find_device("", opts.device);
    const reg::input_size size = opts.size.empty()
                                     ? entry->default_size
                                     : reg::input_size::parse(opts.size);

    reg::tune_settings settings;
    settings.technique = opts.technique;
    settings.evaluations = opts.evaluations.value_or(1'000);
    settings.seed = opts.seed;
    if (!opts.journal_dir.empty()) {
      settings.journal = opts.journal_dir + "/" + entry->name + "-" +
                         opts.device + "-" + size.to_string() + ".jsonl";
    }

    const reg::tune_outcome outcome = reg::tune(*entry, size, dev, settings);
    if (outcome.best.empty()) {
      std::fprintf(stderr,
                   "atf_tune: no valid configuration found (%llu "
                   "evaluations, all failed)\n",
                   static_cast<unsigned long long>(outcome.evaluations));
      return 2;
    }

    const bool verified = entry->reference_check(size, dev, outcome.best);
    std::fprintf(stderr,
                 "atf_tune: kernel %s size %s on %s: space %llu, %llu "
                 "evaluations (%llu failed), best %.1f ns, reference %s\n",
                 entry->name.c_str(), size.to_string().c_str(),
                 dev.name().c_str(),
                 static_cast<unsigned long long>(outcome.space_size),
                 static_cast<unsigned long long>(outcome.evaluations),
                 static_cast<unsigned long long>(outcome.failed_evaluations),
                 outcome.best_ns, verified ? "ok" : "MISMATCH");
    if (!verified) {
      return 1;
    }
    for (const auto& [name, value] : outcome.best.entries()) {
      std::printf("%s=%s\n", name.c_str(), atf::to_string(value).c_str());
    }
    return 0;
  } catch (const atf::empty_search_space_error&) {
    std::fprintf(stderr, "atf_tune: the constrained search space is empty\n");
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "atf_tune: %s\n", error.what());
    return 1;
  }
}

/// GEMM grid mode: grid-tune XgemmDirect over the size grid and persist the
/// winners; accumulates into an existing database.
int run_size_grid_mode(const cli_options& opts) {
  blasmini::tune_technique technique = blasmini::tune_technique::opentuner;
  if (opts.technique == "annealing") {
    technique = blasmini::tune_technique::annealing;
  } else if (opts.technique == "surrogate") {
    technique = blasmini::tune_technique::surrogate;
  } else if (opts.technique == "random") {
    technique = blasmini::tune_technique::random;
  } else if (opts.technique != "opentuner" &&
             opts.technique != "exhaustive") {  // exhaustive = the default
    std::fprintf(stderr, "atf_tune: unknown technique '%s'\n",
                 opts.technique.c_str());
    return 1;
  }

  try {
    const auto grid = blasmini::size_grid::parse(opts.size_grid);
    auto db = blasmini::tuning_db::load(opts.db_path);

    blasmini::dispatch_options dopts;
    dopts.journal_dir = opts.journal_dir;
    dopts.tuning.technique = technique;
    dopts.tuning.evaluations = opts.evaluations.value_or(2'000);
    dopts.tuning.seed = opts.seed;
    blasmini::dispatcher dispatch(ocls::find_device("", opts.device), &db,
                                  dopts);

    dispatch.tune_grid(grid);
    db.save(opts.db_path);

    const auto& dev = dispatch.executor().device();
    for (const auto& shape : grid.sizes) {
      const auto decision = dispatch.dispatch(shape.m, shape.n, shape.k);
      std::printf("%s=%s\n",
                  blasmini::gemm_executor::problem_signature(shape.m, shape.n,
                                                             shape.k)
                      .c_str(),
                  decision.params.to_string().c_str());
    }
    std::fprintf(stderr,
                 "atf_tune: tuned %zu grid points on %s, database '%s' now "
                 "holds %zu entries\n",
                 grid.sizes.size(), dev.name().c_str(), opts.db_path.c_str(),
                 db.size());
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "atf_tune: %s\n", error.what());
    return 1;
  } catch (const ocls::device_not_found& error) {
    std::fprintf(stderr, "atf_tune: %s\n", error.what());
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "atf_tune: %s\n", error.what());
    return 1;
  }
  return 0;
}

/// Builds one tuning parameter from its spec; earlier parameters are
/// available for constraint references.
std::optional<atf::tp<std::int64_t>> parse_param(
    const std::string& spec,
    const std::map<std::string, atf::tp<std::int64_t>>& earlier) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos) {
    std::fprintf(stderr, "atf_tune: malformed --param '%s'\n", spec.c_str());
    return std::nullopt;
  }
  const std::string name = spec.substr(0, eq);
  const auto fields = atf::common::split(spec.substr(eq + 1), ':');
  if (fields.empty()) {
    std::fprintf(stderr, "atf_tune: empty spec for '%s'\n", name.c_str());
    return std::nullopt;
  }

  if (fields[0] == "set") {
    if (fields.size() != 2) {
      std::fprintf(stderr, "atf_tune: set spec needs values: '%s'\n",
                   spec.c_str());
      return std::nullopt;
    }
    std::vector<std::int64_t> values;
    for (const auto& item : atf::common::split(fields[1], ',')) {
      const auto parsed = parse_i64(item);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "atf_tune: bad set value '%s' in '%s'\n",
                     item.c_str(), spec.c_str());
        return std::nullopt;
      }
      values.push_back(*parsed);
    }
    return atf::tp<std::int64_t>(name, atf::set(values));
  }

  if (fields[0] != "interval" || fields.size() < 3) {
    std::fprintf(stderr, "atf_tune: bad range spec '%s'\n", spec.c_str());
    return std::nullopt;
  }
  const auto lo = parse_i64(fields[1]);
  const auto hi = parse_i64(fields[2]);
  if (!lo.has_value() || !hi.has_value()) {
    std::fprintf(stderr, "atf_tune: bad interval bound in '%s'\n",
                 spec.c_str());
    return std::nullopt;
  }
  auto range = atf::interval<std::int64_t>(*lo, *hi);

  if (fields.size() == 3) {
    return atf::tp<std::int64_t>(name, std::move(range));
  }

  // One optional constraint clause.
  const std::string& clause = fields[3];
  auto ref_of = [&](const std::string& text)
      -> std::optional<atf::tp<std::int64_t>> {
    const auto it = earlier.find(text);
    if (it == earlier.end()) {
      std::fprintf(stderr,
                   "atf_tune: constraint of '%s' references unknown earlier "
                   "parameter '%s'\n",
                   name.c_str(), text.c_str());
      return std::nullopt;
    }
    return it->second;
  };
  if (clause == "pow2") {
    return atf::tp<std::int64_t>(name, std::move(range),
                                 atf::power_of_two());
  }
  if (clause.rfind("divides=", 0) == 0) {
    auto ref = ref_of(clause.substr(8));
    if (!ref) {
      return std::nullopt;
    }
    return atf::tp<std::int64_t>(name, std::move(range),
                                 atf::divides(*ref));
  }
  if (clause.rfind("multiple-of=", 0) == 0) {
    auto ref = ref_of(clause.substr(12));
    if (!ref) {
      return std::nullopt;
    }
    return atf::tp<std::int64_t>(name, std::move(range),
                                 atf::is_multiple_of(*ref));
  }
  std::fprintf(stderr, "atf_tune: unknown constraint clause '%s'\n",
               clause.c_str());
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = parse_cli(argc, argv);
  if (!opts.has_value()) {
    usage(argv[0]);
    return 1;
  }

  if (opts->list_kernels) {
    return run_list_kernels_mode();
  }

  if (!opts->serve_socket.empty()) {
    return run_serve_client_mode(*opts);
  }

  if (!opts->size_grid.empty()) {
    return run_size_grid_mode(*opts);
  }

  if (!opts->kernel.empty()) {
    return run_registry_mode(*opts);
  }

  // Build the tuning parameters in command-line order.
  std::map<std::string, atf::tp<std::int64_t>> by_name;
  atf::tp_group group;
  for (const auto& spec : opts->params) {
    auto param = parse_param(spec, by_name);
    if (!param.has_value()) {
      return 1;
    }
    group.add(*param);
    by_name.emplace(param->name(), *param);
  }

  atf::tuner tuner;
  tuner.tuning_parameters(std::move(group));

  atf::space_storage_policy storage;
  if (opts->space_storage == "packed") {
    storage.backend = atf::space_storage_backend::packed;
  } else if (opts->space_storage == "lazy") {
    storage.backend = atf::space_storage_backend::lazy;
  } else if (opts->space_storage != "dense") {
    std::fprintf(stderr, "atf_tune: unknown space storage '%s'\n",
                 opts->space_storage.c_str());
    return 1;
  }
  if (opts->chunk_cache_mb.has_value()) {
    storage.chunk_cache_bytes = *opts->chunk_cache_mb << 20;
  }
  tuner.space_storage(storage);

  if (opts->technique == "annealing") {
    tuner.search_technique(
        std::make_unique<atf::search::simulated_annealing>(4.0, opts->seed));
  } else if (opts->technique == "opentuner") {
    tuner.search_technique(
        std::make_unique<atf::search::opentuner_search>(opts->seed));
  } else if (opts->technique == "surrogate") {
    tuner.search_technique(
        std::make_unique<atf::search::surrogate_search>(opts->seed));
  } else if (opts->technique == "random") {
    tuner.search_technique(
        std::make_unique<atf::search::random_search>(opts->seed));
  } else if (opts->technique != "exhaustive") {
    std::fprintf(stderr, "atf_tune: unknown technique '%s'\n",
                 opts->technique.c_str());
    return 1;
  }

  atf::abort_condition abort;
  if (opts->evaluations.has_value()) {
    abort = atf::cond::evaluations(*opts->evaluations);
  }
  if (opts->seconds.has_value()) {
    auto by_time = atf::cond::duration(std::chrono::duration<double>(
        *opts->seconds));
    abort = abort.valid() ? (abort || by_time) : by_time;
  }
  if (abort.valid()) {
    tuner.abort_condition(std::move(abort));
  }
  if (!opts->csv.empty()) {
    tuner.log_file(opts->csv);
  }

  auto cf = atf::cf::program(opts->source, opts->compile, opts->run);
  if (!opts->log_file.empty()) {
    cf.log_file(opts->log_file);
  }

  try {
    const auto result = tuner.tune(cf);
    if (!result.has_best()) {
      std::fprintf(stderr, "atf_tune: no valid configuration found (%llu "
                           "evaluations, all failed)\n",
                   static_cast<unsigned long long>(result.evaluations));
      return 2;
    }
    std::fprintf(stderr,
                 "atf_tune: %llu evaluations (%llu failed), best cost %s\n",
                 static_cast<unsigned long long>(result.evaluations),
                 static_cast<unsigned long long>(result.failed_evaluations),
                 atf::cost_traits<atf::cf::program_cost>::describe(
                     *result.best_cost)
                     .c_str());
    for (const auto& [name, value] : result.best_configuration().entries()) {
      std::printf("%s=%s\n", name.c_str(), atf::to_string(value).c_str());
    }
  } catch (const atf::empty_search_space_error&) {
    std::fprintf(stderr, "atf_tune: the constrained search space is empty\n");
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "atf_tune: %s\n", error.what());
    return 1;
  }
  return 0;
}
